"""The paper's core contribution: ISM + the ASV system composition."""

from repro.core.asv import MODES, ASVSystem, FrameCost
from repro.core.depth import DepthEstimator, DepthFrame
from repro.core.correspondence import (
    compose_flows,
    propagate_correspondences,
    reconstruct_correspondences,
    refine_correspondences,
)
from repro.core.ism import ISM, ISMConfig, ISMResult, nonkey_frame_ops
from repro.core.keyframe import MotionAdaptivePolicy, StaticKeyFramePolicy

__all__ = [
    "ASVSystem",
    "DepthEstimator",
    "DepthFrame",
    "FrameCost",
    "compose_flows",
    "ISM",
    "ISMConfig",
    "ISMResult",
    "MODES",
    "MotionAdaptivePolicy",
    "StaticKeyFramePolicy",
    "nonkey_frame_ops",
    "propagate_correspondences",
    "reconstruct_correspondences",
    "refine_correspondences",
]
