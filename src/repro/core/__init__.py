"""The paper's core contribution: ISM + the ASV system composition."""

from repro.core.asv import MODES, ASVSystem, FrameCost
from repro.core.depth import DepthEstimator, DepthFrame
from repro.core.correspondence import (
    compose_flows,
    propagate_correspondences,
    reconstruct_correspondences,
    refine_correspondences,
)
from repro.core.ism import (
    ISM,
    ISMConfig,
    ISMResult,
    NonKeyOpCounts,
    nonkey_frame_ops,
    nonkey_op_counts,
)
from repro.core.keyframe import MotionAdaptivePolicy, StaticKeyFramePolicy

__all__ = [
    "ASVSystem",
    "DepthEstimator",
    "DepthFrame",
    "FrameCost",
    "compose_flows",
    "ISM",
    "ISMConfig",
    "ISMResult",
    "MODES",
    "MotionAdaptivePolicy",
    "NonKeyOpCounts",
    "StaticKeyFramePolicy",
    "nonkey_frame_ops",
    "nonkey_op_counts",
    "propagate_correspondences",
    "reconstruct_correspondences",
    "refine_correspondences",
]
