"""Key-frame selection policies (paper Sec. 5.2, "Control").

The paper's micro-sequencer picks key frames with a *static
propagation window*: with PW-k, every k-th frame is a key frame and
the correspondence invariant is propagated across the k-1 frames in
between.  The paper notes adaptive schemes (EVA2/Euphrates-style) are
possible but finds the static policy sufficient (Sec. 7.2); an
adaptive policy is provided as the natural extension point.

Stateful policies may additionally implement the optional hook
``sync_forced_key(index)``: the serving planner (:func:`repro.
pipeline.costing.plan_keys`) calls it when it forces a key frame the
policy did not ask for (frame 0 of a stream is always key — there is
nothing to propagate from), so the policy's internal last-key state
stays in sync with the plan actually served.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StaticKeyFramePolicy", "MotionAdaptivePolicy"]


class StaticKeyFramePolicy:
    """PW-k: frames 0, k, 2k, ... are key frames."""

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("propagation window must be >= 1")
        self.window = window

    def is_key(self, index: int, context: dict | None = None) -> bool:
        """Whether frame ``index`` must run full DNN inference."""
        return index % self.window == 0

    def __repr__(self):
        return f"PW-{self.window}"


class MotionAdaptivePolicy:
    """Re-key when the mean motion magnitude exceeds a threshold.

    An example of the adaptive schemes the paper cites: large inter-
    frame motion degrades propagated correspondences, so the policy
    forces a key frame when the previous frame's mean optical-flow
    magnitude crosses ``motion_threshold`` (pixels), and otherwise
    behaves like PW-``max_window``.
    """

    def __init__(self, max_window: int = 8, motion_threshold: float = 4.0):
        if max_window < 1:
            raise ValueError("max_window must be >= 1")
        self.max_window = max_window
        self.motion_threshold = motion_threshold
        self._since_key = 0

    def is_key(self, index: int, context: dict | None = None) -> bool:
        if index == 0 or self._since_key + 1 >= self.max_window:
            self._since_key = 0
            return True
        flow = (context or {}).get("last_flow")
        if flow is not None:
            magnitude = float(np.hypot(flow[..., 0], flow[..., 1]).mean())
            if magnitude > self.motion_threshold:
                self._since_key = 0
                return True
        self._since_key += 1
        return False

    def sync_forced_key(self, index: int) -> None:
        """A caller forced frame ``index`` key; reset the key clock.

        Keeps :attr:`_since_key` consistent with the served plan when
        the planner overrides a non-key verdict (it always does for
        frame 0), so the next adaptive re-key lands ``max_window``
        frames after the key actually served, not after the one this
        policy believed in.
        """
        self._since_key = 0

    def __repr__(self):
        return f"Adaptive(max={self.max_window}, thr={self.motion_threshold})"
