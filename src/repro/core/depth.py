"""End-to-end metric depth estimation (disparity + triangulation).

The paper's Fig. 2 pipeline: stereo matching produces a disparity map,
triangulation turns it into metric depth.  :class:`DepthEstimator`
packages the whole stack — any disparity backend (ISM, a proxy, a
classic matcher) plus a :class:`~repro.stereo.triangulate.StereoCamera`
— into the object an application would actually hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ism import ISM, ISMConfig
from repro.datasets.scenes import StereoFrame
from repro.stereo.triangulate import BUMBLEBEE2, StereoCamera

__all__ = ["DepthFrame", "DepthEstimator"]


@dataclass(frozen=True)
class DepthFrame:
    """Depth output for one stereo frame."""

    disparity: np.ndarray
    depth_m: np.ndarray
    is_key_frame: bool

    def nearest_m(self, region: tuple[slice, slice] | None = None) -> float:
        """Robust nearest-surface distance (2nd percentile of depth)."""
        depth = self.depth_m if region is None else self.depth_m[region]
        finite = depth[np.isfinite(depth)]
        if finite.size == 0:
            return float("inf")
        return float(np.percentile(finite, 2))


class DepthEstimator:
    """Continuous metric depth from a stereo video stream.

    ``matcher`` is any callable mapping a :class:`StereoFrame` to a
    disparity map; when ``ism_config`` is given the matcher is used as
    the ISM key-frame network and non-key frames are propagated.
    """

    def __init__(
        self,
        matcher,
        camera: StereoCamera = BUMBLEBEE2,
        ism_config: ISMConfig | None = None,
        max_depth_m: float = 200.0,
    ):
        self.camera = camera
        self.max_depth_m = float(max_depth_m)
        self._ism = ISM(matcher, ism_config) if ism_config else None
        self._matcher = matcher

    def _to_depth(self, disparity: np.ndarray) -> np.ndarray:
        depth = self.camera.depth_from_disparity(disparity)
        return np.minimum(depth, self.max_depth_m)

    def process_frame(self, frame: StereoFrame) -> DepthFrame:
        """Single-shot depth (no temporal propagation)."""
        disp = np.asarray(self._matcher(frame), dtype=np.float64)
        return DepthFrame(disp, self._to_depth(disp), is_key_frame=True)

    def process_sequence(self, frames: list[StereoFrame]) -> list[DepthFrame]:
        """Depth for a whole video; uses ISM when configured."""
        if self._ism is None:
            return [self.process_frame(f) for f in frames]
        result = self._ism.run_sequence(frames)
        return [
            DepthFrame(d, self._to_depth(d), k)
            for d, k in zip(result.disparities, result.key_frames)
        ]
