"""System-level composition: the ASV accelerator running ISM + DCO.

Couples the algorithmic side (ISM's key/non-key frame split) with the
hardware side (the systolic accelerator model and the deconvolution
optimizations) to produce per-frame latency and energy for any stereo
network under any of the paper's execution modes:

* ``baseline`` — naive deconvolutions, exhaustively-searched *static*
  buffer partition (the paper's baseline accelerator);
* ``dct``     — deconvolution-to-convolution transformation only,
  still scheduled on the static-partition baseline;
* ``convr``   — DCT + per-layer reuse optimization, no ILAR;
* ``ilar``    — the full deconvolution optimization (DCO of Fig. 10).

Non-key frames execute optical flow and guided block matching on the
same hardware (Sec. 5.1's mapping): the convolution-shaped work
(Gaussian/moment filters, SAD passes) runs on the PE array; the
point-wise "Matrix Update" / "Compute Flow" stages run on the scalar
unit, whose lanes implement each per-pixel update as one fused
operation (Sec. 6.1); frame pixels and maps stream through DRAM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.ism import ISMConfig
from repro.deconv.exhaustive import best_static_partition
from repro.deconv.lowering import lower_network
from repro.deconv.optimizer import optimize_layers
from repro.flow.farneback import farneback_ops
from repro.hw.config import ASV_BASE, HWConfig
from repro.hw.energy import ENERGY_16NM, EnergyBreakdown, EnergyModel
from repro.hw.systolic import LayerResult, RunResult, SystolicModel
from repro.models.stereo_networks import QHD, network_specs
from repro.stereo.block_matching import guided_block_match_ops

__all__ = ["FrameCost", "ASVSystem", "MODES"]

MODES = ("baseline", "dct", "convr", "ilar")


@dataclass(frozen=True)
class FrameCost:
    """Average per-frame cost of a processing configuration."""

    cycles: float
    energy_j: float

    def seconds(self, hw: HWConfig) -> float:
        return self.cycles / hw.frequency_hz

    def fps(self, hw: HWConfig) -> float:
        return hw.frequency_hz / self.cycles


class ASVSystem:
    """The co-designed system on one hardware configuration."""

    def __init__(self, hw: HWConfig = ASV_BASE, energy: EnergyModel = ENERGY_16NM):
        self.hw = hw
        self.energy = energy
        self.model = SystolicModel(hw, energy)
        self._dnn_cache: dict = {}

    # ------------------------------------------------------------------
    # key frames: stereo DNN inference
    # ------------------------------------------------------------------
    def dnn_frame(self, network: str, mode: str = "ilar", size=QHD) -> RunResult:
        """Latency/energy of one full DNN inference under a mode."""
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
        key = (network, mode, tuple(size))
        if key not in self._dnn_cache:
            specs = network_specs(network, size)
            if mode == "baseline":
                layers = lower_network(specs, transform=False)
                _, schedules = best_static_partition(layers, self.hw, self.model)
            elif mode == "dct":
                layers = lower_network(specs, transform=True, ilar=False)
                _, schedules = best_static_partition(layers, self.hw, self.model)
            else:
                layers = lower_network(
                    specs, transform=True, ilar=(mode == "ilar")
                )
                schedules = optimize_layers(layers, self.hw, self.model)
            self._dnn_cache[key] = self.model.run_schedules(
                schedules, validate=False
            )
        return self._dnn_cache[key]

    # ------------------------------------------------------------------
    # non-key frames: OF + guided BM on the same hardware
    # ------------------------------------------------------------------
    def nonkey_frame(self, size=QHD, config: ISMConfig | None = None) -> LayerResult:
        """Latency/energy of one ISM non-key frame (Sec. 5.1 mapping)."""
        config = config or ISMConfig()
        h, w = size
        hw = self.hw
        # convolution-shaped work on the PE array: both flow streams'
        # moment/window filters + the SAD passes of the guided search
        conv_ops = 2 * farneback_ops(
            h, w, levels=config.flow_levels, iterations=config.flow_iterations
        )
        search_ops = guided_block_match_ops(
            h, w, radius=config.search_radius, block_size=config.block_size
        )
        pe_cycles = math.ceil((conv_ops + search_ops) / hw.pe_count)

        # point-wise pixel updates on the scalar unit: matrix update +
        # compute flow per pixel per iteration per stream, plus the WTA
        # comparisons of the refinement
        pixel_updates = (
            2 * 2 * config.flow_iterations * h * w  # two stages, two streams
            + (2 * config.search_radius + 1) * h * w  # WTA compares
        )
        scalar = self.model.scalar_op_result(
            "ism-pointwise", ops=pixel_updates, elems_touched=pixel_updates
        )

        # DRAM streaming: current + key frame pixels for both views,
        # two flow fields, in/out disparity maps
        moved_elems = (4 + 4 + 2) * h * w
        moved_bytes = moved_elems * hw.bytes_per_elem
        mem_cycles = math.ceil(moved_bytes / hw.dram_bytes_per_cycle)

        cycles = max(pe_cycles, mem_cycles) + scalar.cycles
        seconds = cycles / hw.frequency_hz
        energy = EnergyBreakdown(
            mac_j=self.energy.compute(conv_ops + search_ops) + scalar.energy.mac_j,
            sram_j=self.energy.sram(2 * moved_bytes),
            rf_j=self.energy.rf(2 * (conv_ops + search_ops) * hw.bytes_per_elem),
            dram_j=self.energy.dram(moved_bytes),
            static_j=self.energy.static(seconds),
        )
        return LayerResult(
            name="ism-nonkey",
            cycles=cycles,
            compute_cycles=pe_cycles + scalar.cycles,
            memory_cycles=mem_cycles,
            macs=conv_ops + search_ops,
            dram_bytes=moved_bytes,
            sram_bytes=2 * moved_bytes,
            energy=energy,
        )

    # ------------------------------------------------------------------
    # system modes
    # ------------------------------------------------------------------
    def frame_cost(
        self,
        network: str,
        use_ism: bool = True,
        mode: str = "ilar",
        pw: int = 4,
        size=QHD,
        ism_config: ISMConfig | None = None,
    ) -> FrameCost:
        """Average per-frame cost of a full configuration.

        With ISM, one frame in ``pw`` runs the DNN (under ``mode``) and
        the rest run the cheap non-key pipeline; without ISM every
        frame runs the DNN.
        """
        key = self.dnn_frame(network, mode, size)
        if not use_ism or pw == 1:
            return FrameCost(cycles=float(key.cycles), energy_j=key.energy_j)
        nonkey = self.nonkey_frame(size, ism_config)
        cycles = (key.cycles + (pw - 1) * nonkey.cycles) / pw
        energy = (key.energy_j + (pw - 1) * nonkey.energy_j) / pw
        return FrameCost(cycles=cycles, energy_j=energy)

    def speedup_over_baseline(
        self, network: str, use_ism: bool, mode: str, pw: int = 4, size=QHD
    ) -> tuple[float, float]:
        """(speedup, energy-reduction-fraction) vs the paper's baseline:
        the same accelerator running the unmodified DNN every frame."""
        base = self.frame_cost(network, use_ism=False, mode="baseline", size=size)
        ours = self.frame_cost(network, use_ism=use_ism, mode=mode, pw=pw, size=size)
        return base.cycles / ours.cycles, 1.0 - ours.energy_j / base.energy_j
