"""System-level composition: ISM + DCO on a pluggable execution backend.

Couples the algorithmic side (ISM's key/non-key frame split) with the
hardware side to produce per-frame latency and energy for any stereo
network under any of the paper's execution modes:

* ``baseline`` — naive deconvolutions, exhaustively-searched *static*
  buffer partition (the paper's baseline accelerator);
* ``dct``     — deconvolution-to-convolution transformation only,
  still scheduled on the static-partition baseline;
* ``convr``   — DCT + per-layer reuse optimization, no ILAR;
* ``ilar``    — the full deconvolution optimization (DCO of Fig. 10).

All hardware execution goes through the backend protocol
(:mod:`repro.backends`): the system never constructs a concrete
accelerator model itself, it asks :func:`repro.backends.get_backend`
for a named target (the systolic ASV prototype by default) and calls
``run_network`` / ``nonkey_frame`` on it.  Backends advertise
:class:`~repro.backends.BackendCapabilities` — which modes they
schedule and whether the ISM non-key pipeline maps onto them — and
memoize per-``(network, mode, size)`` results in a bounded LRU
(:meth:`ASVSystem.cache_info` exposes its hit/miss statistics).

On the default systolic backend, non-key frames execute optical flow
and guided block matching on the same hardware (Sec. 5.1's mapping):
the convolution-shaped work runs on the PE array, the point-wise
"Matrix Update" / "Compute Flow" stages run on the scalar unit
(Sec. 6.1), and frame pixels and maps stream through DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.base import MODES, ExecutionBackend
from repro.backends.registry import get_backend
from repro.cache import CacheInfo
from repro.core.ism import ISMConfig
from repro.hw.config import ASV_BASE, HWConfig
from repro.hw.energy import ENERGY_16NM, EnergyModel
from repro.hw.systolic import LayerResult, RunResult
from repro.models.stereo_networks import QHD

__all__ = ["FrameCost", "ASVSystem", "MODES"]


@dataclass(frozen=True)
class FrameCost:
    """Average per-frame cost of a processing configuration."""

    cycles: float
    energy_j: float

    def seconds(self, hw: HWConfig) -> float:
        return self.cycles / hw.frequency_hz

    def fps(self, hw: HWConfig) -> float:
        return hw.frequency_hz / self.cycles


class ASVSystem:
    """The co-designed system on one hardware configuration.

    ``backend`` is a registered backend name (resolved through
    :func:`repro.backends.get_backend` with this system's ``hw`` and
    ``energy``) or an already-constructed
    :class:`~repro.backends.ExecutionBackend`.
    """

    def __init__(
        self,
        hw: HWConfig | None = None,
        energy: EnergyModel | None = None,
        backend: str | ExecutionBackend = "systolic",
        cache_size: int | None = None,
    ):
        if isinstance(backend, str):
            self.hw = hw or ASV_BASE
            self.energy = energy or ENERGY_16NM
            backend = get_backend(
                backend,
                hw=self.hw,
                energy=self.energy,
                cache_size=32 if cache_size is None else cache_size,
            )
        else:
            # an already-constructed backend carries its own
            # configuration; adopt it so self.hw never disagrees with
            # what the backend actually computes with, and reject
            # settings that could not be applied to it
            if energy is not None or cache_size is not None:
                raise ValueError(
                    "energy/cache_size only apply when backend is a "
                    "name; configure the backend instance instead"
                )
            backend_hw = getattr(backend, "hw", None)
            if backend_hw is not None and hw is not None and hw is not backend_hw:
                raise ValueError(
                    "conflicting hw: the backend instance was built "
                    "with its own HWConfig"
                )
            # clock-less backends (the GPU roofline) accept a caller
            # hw purely as the reporting clock for FrameCost
            self.hw = backend_hw or hw or ASV_BASE
            self.energy = getattr(backend, "energy", None) or ENERGY_16NM
        self.backend = backend

    @property
    def model(self):
        """The backend's underlying accelerator model (compatibility)."""
        return getattr(self.backend, "model", None)

    # ------------------------------------------------------------------
    # key frames: stereo DNN inference
    # ------------------------------------------------------------------
    def dnn_frame(self, network: str, mode: str = "ilar", size=QHD) -> RunResult:
        """Latency/energy of one full DNN inference under a mode."""
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
        return self.backend.network_result(network, mode, size)

    def cache_info(self) -> CacheInfo:
        """Hit/miss statistics of the bounded DNN-result cache."""
        return self.backend.cache_info()

    # ------------------------------------------------------------------
    # non-key frames: OF + guided BM on the same hardware
    # ------------------------------------------------------------------
    def nonkey_frame(self, size=QHD, config: ISMConfig | None = None) -> LayerResult:
        """Latency/energy of one ISM non-key frame (Sec. 5.1 mapping)."""
        return self.backend.nonkey_frame(size, config)

    # ------------------------------------------------------------------
    # system modes
    # ------------------------------------------------------------------
    def frame_cost(
        self,
        network: str,
        use_ism: bool = True,
        mode: str = "ilar",
        pw: int = 4,
        size=QHD,
        ism_config: ISMConfig | None = None,
    ) -> FrameCost:
        """Average per-frame cost of a full configuration.

        With ISM, one frame in ``pw`` runs the DNN (under ``mode``) and
        the rest run the cheap non-key pipeline; without ISM every
        frame runs the DNN.
        """
        # backend results are in the backend's clock; FrameCost is
        # consumed against self.hw (seconds/fps), so rescale when the
        # two clocks differ (e.g. the GPU's virtual tick) — for the
        # default systolic backend the scale is exactly 1.0
        scale = self.hw.frequency_hz / self.backend.frequency_hz
        key = self.dnn_frame(network, mode, size)
        if not use_ism or pw == 1:
            return FrameCost(cycles=key.cycles * scale, energy_j=key.energy_j)
        nonkey = self.nonkey_frame(size, ism_config)
        cycles = scale * (key.cycles + (pw - 1) * nonkey.cycles) / pw
        energy = (key.energy_j + (pw - 1) * nonkey.energy_j) / pw
        return FrameCost(cycles=cycles, energy_j=energy)

    def speedup_over_baseline(
        self, network: str, use_ism: bool, mode: str, pw: int = 4, size=QHD
    ) -> tuple[float, float]:
        """(speedup, energy-reduction-fraction) vs the paper's baseline:
        the same accelerator running the unmodified DNN every frame."""
        base = self.frame_cost(network, use_ism=False, mode="baseline", size=size)
        ours = self.frame_cost(network, use_ism=use_ism, mode=mode, pw=pw, size=size)
        return base.cycles / ours.cycles, 1.0 - ours.energy_j / base.energy_j
