"""The invariant-based stereo matching (ISM) pipeline (paper Sec. 3).

ISM exploits the *correspondence invariant*: two pixels that are
projections of the same scene point remain a correspondence pair in
every frame, even as their image locations move.  Expensive stereo
DNN inference therefore only runs on key frames; in between, the
key-frame correspondences are propagated by dense optical flow and
refined by a cheap local block-matching search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.correspondence import (
    ExpansionCache,
    propagate_correspondences,
    refine_correspondences,
)
from repro.core.keyframe import StaticKeyFramePolicy
from repro.datasets.scenes import StereoFrame
from repro.flow.farneback import farneback_ops
from repro.stereo.block_matching import guided_block_match_ops

__all__ = [
    "ISMConfig",
    "ISMResult",
    "ISM",
    "NonKeyOpCounts",
    "nonkey_op_counts",
    "nonkey_frame_ops",
]


@dataclass(frozen=True)
class ISMConfig:
    """Algorithm parameters (defaults follow Sec. 3.3 / Sec. 7.2)."""

    propagation_window: int = 4   # PW-k
    search_radius: int = 4        # half-width of the guided 1-D search
    block_size: int = 9           # SAD block for the refinement
    flow_levels: int = 3
    flow_iterations: int = 2

    def __post_init__(self):
        if self.propagation_window < 1:
            raise ValueError("propagation window must be >= 1")
        if self.search_radius < 1 or self.block_size < 3:
            raise ValueError("invalid search parameters")


@dataclass
class ISMResult:
    """Outputs of a sequence run."""

    disparities: list[np.ndarray] = field(default_factory=list)
    key_frames: list[bool] = field(default_factory=list)

    @property
    def n_key_frames(self) -> int:
        return sum(self.key_frames)


class ISM:
    """Stereo over video with key-frame DNN + propagation.

    ``dnn`` is any callable mapping a :class:`StereoFrame` to a
    disparity map — a :class:`repro.models.proxy.StereoDNNProxy`, a
    classic matcher, or a real network.  ``refiner`` likewise swaps
    the non-key guided-search implementation (same signature as
    :func:`~repro.stereo.block_matching.guided_block_match`), and
    ``flow`` the motion estimator (an object with ``expand_frame`` /
    ``flow_from_expansions`` methods); the serving stack passes a
    :class:`repro.parallel.TileExecutor` bound method / the executor
    itself here so non-key frames run tiled multi-core.

    The estimator is *stateful and online*: :meth:`step` consumes one
    frame at a time (the shape a robot control loop needs);
    :meth:`run_sequence` is the batch convenience over it.  Motion is
    estimated between consecutive frames (cheap, small displacements)
    but composed back to the key frame, so every non-key frame
    propagates the *key frame's* correspondences — the invariant the
    algorithm is named after — rather than re-propagating
    already-refined estimates.

    With ``expansion_cache=True`` (the default) the estimator carries
    each frame's polynomial-expansion pyramids forward in an
    :class:`~repro.core.correspondence.ExpansionCache`, so
    steady-state non-key stepping computes one new expansion per
    stream instead of two.  The cache is invalidated on
    :meth:`reset` and on every key frame (re-keying breaks the
    consecutive-frame chain), and the cached path is bit-identical to
    ``expansion_cache=False`` by construction — the A/B toggle exists
    for benchmarking, not for accuracy trade-offs.
    """

    def __init__(
        self,
        dnn,
        config: ISMConfig | None = None,
        policy=None,
        refiner=None,
        flow=None,
        expansion_cache: bool = True,
    ):
        self.dnn = dnn
        self.config = config or ISMConfig()
        self.policy = policy or StaticKeyFramePolicy(self.config.propagation_window)
        self.refiner = refiner
        self.flow = flow
        self.expansion_cache = expansion_cache
        self.reset()

    def reset(self) -> None:
        """Forget all temporal state (start of a new video)."""
        self._index = 0
        self._prev_frame: StereoFrame | None = None
        self._key_disp: np.ndarray | None = None
        self._accumulated = None
        self._context: dict = {}
        self._cache = ExpansionCache() if self.expansion_cache else None

    def step(
        self, frame: StereoFrame, is_key: bool | None = None
    ) -> tuple[np.ndarray, bool]:
        """Process the next frame; returns ``(disparity, is_key_frame)``.

        ``is_key`` overrides the key-frame policy when given — the
        serving stack's :class:`~repro.pipeline.quality.QualityProbe`
        replays decisions an engine actually made (including ``shed``
        re-keying after a drop), so the decision comes from outside.
        ``None`` (the default) consults the policy as before.  A
        forced key is reported to the policy through its optional
        ``sync_forced_key(index)`` hook (the same contract
        :func:`repro.pipeline.costing.plan_keys` honours), so a
        stateful policy's last-key state tracks what was actually
        served if the caller later resumes policy-driven stepping.
        """
        if is_key is None:
            is_key = self._key_disp is None or self.policy.is_key(
                self._index, self._context
            )
        elif not is_key and self._key_disp is None:
            raise ValueError(
                "cannot serve a non-key frame before any key frame"
            )
        elif is_key:
            sync = getattr(self.policy, "sync_forced_key", None)
            if sync is not None:
                sync(self._index)
        if is_key:
            disp = np.asarray(self.dnn(frame), dtype=np.float64)
            self._key_disp = disp
            self._accumulated = None
            if self._cache is not None:
                # the cached expansions describe the pre-key chain;
                # the first non-key after a (re-)key starts fresh
                self._cache.clear()
        else:
            initial, _, self._accumulated = propagate_correspondences(
                self._prev_frame,
                frame,
                self._key_disp,
                flow_kwargs=dict(
                    levels=self.config.flow_levels,
                    iterations=self.config.flow_iterations,
                ),
                accumulated=self._accumulated,
                key_disparity=self._key_disp,
                cache=self._cache,
                flow=self.flow,
            )
            self._context["last_flow"] = self._accumulated[0]
            disp = refine_correspondences(
                frame,
                initial,
                radius=self.config.search_radius,
                block_size=self.config.block_size,
                matcher=self.refiner,
            )
        self._prev_frame = frame
        self._index += 1
        return disp, is_key

    def run_sequence(self, frames: list[StereoFrame]) -> ISMResult:
        """Process a stereo video, returning per-frame disparities."""
        self.reset()
        result = ISMResult()
        for frame in frames:
            disp, is_key = self.step(frame)
            result.disparities.append(disp)
            result.key_frames.append(is_key)
        return result


@dataclass(frozen=True)
class NonKeyOpCounts:
    """Arithmetic-operation budget of one non-key frame (Sec. 3.3).

    The single source of truth for the Farneback + guided-BM op
    accounting: both the algorithm-side budget report
    (:func:`nonkey_frame_ops`) and the hardware-side cost models
    (:meth:`repro.backends.ExecutionBackend.nonkey_frame`) derive
    their numbers from these counts rather than re-deriving them.
    """

    flow: int           # motion estimation, both video streams
    search: int         # guided block-matching refinement (SAD passes)
    pixel_updates: int  # per-pixel point ops (matrix update / compute
                        # flow per iteration per stream + WTA compares)
    bookkeeping: int    # coordinate reconstruction + warps/fills
    streamed_elems: int  # DRAM-streamed elements: current + key frame
                         # pixels for both views, two flow fields,
                         # in/out disparity maps

    @property
    def array_ops(self) -> int:
        """Convolution-shaped work that maps onto a PE array."""
        return self.flow + self.search

    @property
    def total(self) -> int:
        """The paper's Sec. 3.3 budget (flow + search + bookkeeping)."""
        return self.flow + self.search + self.bookkeeping


def nonkey_op_counts(
    height: int, width: int, config: ISMConfig | None = None
) -> NonKeyOpCounts:
    """Op counts of one ISM non-key frame at a given resolution.

    Motion estimation runs on *both* video streams; the refinement
    search is a ``2r+1``-wide guided block matching.  At qHD the total
    is on the order of 10^8 operations versus 10^10-10^12 MACs for the
    stereo DNNs — the 2-4 orders-of-magnitude gap the paper reports.
    """
    config = config or ISMConfig()
    flow = 2 * farneback_ops(
        height, width,
        levels=config.flow_levels, iterations=config.flow_iterations,
    )
    search = guided_block_match_ops(
        height, width, radius=config.search_radius, block_size=config.block_size
    )
    # point-wise pixel updates: matrix update + compute flow per pixel
    # per iteration per stream, plus the WTA comparisons of the
    # refinement (Sec. 5.1's scalar-unit mapping)
    pixel_updates = (
        2 * 2 * config.flow_iterations * height * width
        + (2 * config.search_radius + 1) * height * width
    )
    reconstruct = height * width         # coordinate arithmetic
    propagate_misc = 4 * height * width  # warps + fills
    return NonKeyOpCounts(
        flow=flow,
        search=search,
        pixel_updates=pixel_updates,
        bookkeeping=reconstruct + propagate_misc,
        streamed_elems=(4 + 4 + 2) * height * width,
    )


def nonkey_frame_ops(
    height: int, width: int, config: ISMConfig | None = None
) -> dict[str, int]:
    """Per-component op budget of one non-key frame, as a dict.

    Thin view over :func:`nonkey_op_counts` kept for the budget
    reports (Fig. 3 discussion, Sec. 7.1 overhead analysis).
    """
    ops = nonkey_op_counts(height, width, config)
    return {
        "motion_estimation": ops.flow,
        "correspondence_search": ops.search,
        "bookkeeping": ops.bookkeeping,
        "total": ops.total,
    }
