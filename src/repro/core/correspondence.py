"""The four ISM steps on correspondences (paper Sec. 3.2, Fig. 5).

1. **DNN inference** produces the key frame's disparity map (the
   caller supplies the network / proxy).
2. **Reconstruct correspondences** — by Eq. 2, every left pixel
   ``<x, y>`` with disparity ``d`` pairs with right pixel
   ``<x + d, y>``; the disparity map *is* the correspondence set, so
   reconstruction is a coordinate-view, provided here for clarity and
   for tests.
3. **Propagate correspondences** — dense optical flow on the left and
   right video streams moves both endpoints; the propagated disparity
   is the horizontal offset of the moved pair.
4. **Refine correspondences** — local block matching seeded by the
   propagated estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.scenes import StereoFrame
from repro.flow import farneback as _farneback
from repro.flow.farneback import FrameExpansion
from repro.flow.warp import _grid, bilinear_sample, forward_warp_disparity
from repro.stereo.block_matching import guided_block_match
from repro.stereo.refine import fill_background, median2d, median_clean

__all__ = [
    "ExpansionCache",
    "reconstruct_correspondences",
    "compose_flows",
    "propagate_correspondences",
    "refine_correspondences",
]


@dataclass
class ExpansionCache:
    """Per-stream polynomial expansions carried between consecutive
    :func:`propagate_correspondences` calls.

    Frame ``t``'s expansion pyramid serves both the ``(t-1, t)`` and
    the ``(t, t+1)`` flow computations; caching it halves the
    steady-state expansion cost of the ISM non-key path with
    bit-identical results (the expansion depends only on the frame and
    the flow parameters).  The cache is owned by whoever owns the
    frame sequence — :class:`repro.core.ism.ISM` carries one and
    clears it on :meth:`~repro.core.ism.ISM.reset` and on every key
    frame (a key frame breaks the consecutive-frame chain the cached
    entries describe).  Entries whose recorded shape or flow
    parameters no longer match are recomputed, never reused.
    """

    left: FrameExpansion | None = None
    right: FrameExpansion | None = None

    def clear(self) -> None:
        """Drop both cached expansions (chain broken / new video)."""
        self.left = None
        self.right = None


def reconstruct_correspondences(
    disparity: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Left/right pixel coordinate pairs implied by a disparity map.

    Returns ``(left_xy, right_xy)`` as (H, W, 2) arrays of (y, x)
    coordinates; ``right_xy[..., 1] = x + d`` per Eq. 2.
    """
    h, w = disparity.shape
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
    left = np.stack([yy, xx], axis=-1)
    right = np.stack([yy, xx + disparity], axis=-1)
    return left, right


def compose_flows(first: np.ndarray, then: np.ndarray) -> np.ndarray:
    """Concatenate two motion fields: ``p -> p + first(p) + then(p + first(p))``.

    Used to accumulate per-frame motion from the key frame so that the
    key-frame correspondences (the trusted DNN output) can always be
    propagated directly, instead of re-propagating already-refined
    estimates and compounding their noise.
    """
    h, w = first.shape[:2]
    yy, xx = _grid(h, w, np.float64)
    my = yy + first[..., 0]
    mx = xx + first[..., 1]
    out = np.empty_like(first)
    out[..., 0] = first[..., 0] + bilinear_sample(then[..., 0], my, mx)
    out[..., 1] = first[..., 1] + bilinear_sample(then[..., 1], my, mx)
    return out


def propagate_correspondences(
    prev: StereoFrame,
    cur: StereoFrame,
    prev_disparity: np.ndarray,
    flow_kwargs: dict | None = None,
    accumulated: tuple[np.ndarray, np.ndarray] | None = None,
    key_disparity: np.ndarray | None = None,
    cache: ExpansionCache | None = None,
    flow=None,
) -> tuple[np.ndarray, np.ndarray, tuple[np.ndarray, np.ndarray]]:
    """ISM step 3: move the correspondence set to the next frame.

    Estimates dense motion on the left and right streams separately
    between consecutive frames, composes it with the motion
    ``accumulated`` since the key frame, forward-warps the *key-frame*
    disparity along the composed motion while adjusting it by the
    differential horizontal motion of the right endpoints, and fills
    pixels nothing landed on.

    ``flow_kwargs`` tunes the Farneback estimator (``levels``,
    ``iterations``, ``sigma``, ``window_sigma``, ``precision``,
    ``median_size``).  ``cache`` is an :class:`ExpansionCache` that
    carries ``prev``'s polynomial expansions in and receives ``cur``'s
    back out, so a caller stepping through a video computes one new
    expansion per stream per call instead of two — the caller must
    clear it whenever ``prev`` is not the frame the cached entries
    were computed for.  ``flow`` swaps the flow implementation: any
    object with :func:`~repro.flow.farneback.expand_frame` /
    :func:`~repro.flow.farneback.flow_from_expansions` methods (e.g. a
    :class:`repro.parallel.TileExecutor` for tiled multi-core
    execution); ``None`` runs the plain single-core functions.

    Returns ``(propagated_disparity, known_mask, accumulated_flows)``
    where ``accumulated_flows`` is the ``(left, right)`` motion from
    the key frame to ``cur``, to be passed back in on the next call.
    """
    kw = dict(levels=3, iterations=2, window_sigma=2.5)
    if flow_kwargs:
        kw.update(flow_kwargs)
    median_size = kw.pop("median_size", 5)
    impl = _farneback if flow is None else flow
    expand_kw = dict(levels=kw.pop("levels"), sigma=kw.pop("sigma", 1.5))
    if "precision" in kw:
        expand_kw["precision"] = kw.pop("precision")
    iter_kw = dict(
        iterations=kw.pop("iterations"), window_sigma=kw.pop("window_sigma")
    )
    if kw:
        raise TypeError(f"unknown flow_kwargs: {sorted(kw)}")

    def stream_flow(side: str, prev_img, cur_img) -> np.ndarray:
        prev_exp = getattr(cache, side) if cache is not None else None
        if prev_exp is not None and not prev_exp.matches(
            np.asarray(prev_img).shape[:2],
            expand_kw["levels"],
            expand_kw["sigma"],
            None,
            expand_kw.get("precision", prev_exp.precision),
        ):
            prev_exp = None
        if prev_exp is None:
            prev_exp = impl.expand_frame(prev_img, **expand_kw)
        cur_exp = impl.expand_frame(cur_img, **expand_kw)
        if cache is not None:
            setattr(cache, side, cur_exp)
        return impl.flow_from_expansions(prev_exp, cur_exp, **iter_kw)

    flow_l = stream_flow("left", prev.left, cur.left)
    flow_r = stream_flow("right", prev.right, cur.right)
    if median_size:
        # median filtering sharpens motion boundaries the Gaussian
        # window of the flow estimator smears across object edges
        comps = median2d(
            np.stack([flow_l[..., 0], flow_l[..., 1],
                      flow_r[..., 0], flow_r[..., 1]]),
            median_size,
        )
        flow_l[..., 0], flow_l[..., 1] = comps[0], comps[1]
        flow_r[..., 0], flow_r[..., 1] = comps[2], comps[3]
    if accumulated is not None:
        flow_l = compose_flows(accumulated[0], flow_l)
        flow_r = compose_flows(accumulated[1], flow_r)
    source = prev_disparity if key_disparity is None else key_disparity
    disp, known = forward_warp_disparity(source, flow_l, flow_r)
    # pixels nothing landed on are disocclusions: fill from background
    disp = fill_background(disp, known)
    return disp, known, (flow_l, flow_r)


def refine_correspondences(
    frame: StereoFrame,
    initial: np.ndarray,
    radius: int = 4,
    block_size: int = 9,
    matcher=None,
) -> np.ndarray:
    """ISM step 4: local search around the propagated estimate.

    ``matcher`` swaps the guided search implementation — e.g. a
    :meth:`repro.parallel.TileExecutor.guided_block_match` bound
    method for tiled multi-core execution; ``None`` runs the plain
    single-core :func:`~repro.stereo.block_matching.
    guided_block_match`.  Any replacement must keep its signature.
    """
    match = guided_block_match if matcher is None else matcher
    disp = match(
        frame.left, frame.right, initial, radius=radius, block_size=block_size
    )
    return median_clean(disp, size=3)
