"""The four ISM steps on correspondences (paper Sec. 3.2, Fig. 5).

1. **DNN inference** produces the key frame's disparity map (the
   caller supplies the network / proxy).
2. **Reconstruct correspondences** — by Eq. 2, every left pixel
   ``<x, y>`` with disparity ``d`` pairs with right pixel
   ``<x + d, y>``; the disparity map *is* the correspondence set, so
   reconstruction is a coordinate-view, provided here for clarity and
   for tests.
3. **Propagate correspondences** — dense optical flow on the left and
   right video streams moves both endpoints; the propagated disparity
   is the horizontal offset of the moved pair.
4. **Refine correspondences** — local block matching seeded by the
   propagated estimate.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.datasets.scenes import StereoFrame
from repro.flow.farneback import farneback_flow
from repro.flow.warp import bilinear_sample, forward_warp_disparity
from repro.stereo.block_matching import guided_block_match
from repro.stereo.refine import fill_background, median_clean

__all__ = [
    "reconstruct_correspondences",
    "compose_flows",
    "propagate_correspondences",
    "refine_correspondences",
]


def reconstruct_correspondences(
    disparity: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Left/right pixel coordinate pairs implied by a disparity map.

    Returns ``(left_xy, right_xy)`` as (H, W, 2) arrays of (y, x)
    coordinates; ``right_xy[..., 1] = x + d`` per Eq. 2.
    """
    h, w = disparity.shape
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
    left = np.stack([yy, xx], axis=-1)
    right = np.stack([yy, xx + disparity], axis=-1)
    return left, right


def compose_flows(first: np.ndarray, then: np.ndarray) -> np.ndarray:
    """Concatenate two motion fields: ``p -> p + first(p) + then(p + first(p))``.

    Used to accumulate per-frame motion from the key frame so that the
    key-frame correspondences (the trusted DNN output) can always be
    propagated directly, instead of re-propagating already-refined
    estimates and compounding their noise.
    """
    h, w = first.shape[:2]
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
    my = yy + first[..., 0]
    mx = xx + first[..., 1]
    out = np.empty_like(first)
    out[..., 0] = first[..., 0] + bilinear_sample(then[..., 0], my, mx)
    out[..., 1] = first[..., 1] + bilinear_sample(then[..., 1], my, mx)
    return out


def propagate_correspondences(
    prev: StereoFrame,
    cur: StereoFrame,
    prev_disparity: np.ndarray,
    flow_kwargs: dict | None = None,
    accumulated: tuple[np.ndarray, np.ndarray] | None = None,
    key_disparity: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, tuple[np.ndarray, np.ndarray]]:
    """ISM step 3: move the correspondence set to the next frame.

    Estimates dense motion on the left and right streams separately
    between consecutive frames, composes it with the motion
    ``accumulated`` since the key frame, forward-warps the *key-frame*
    disparity along the composed motion while adjusting it by the
    differential horizontal motion of the right endpoints, and fills
    pixels nothing landed on.

    Returns ``(propagated_disparity, known_mask, accumulated_flows)``
    where ``accumulated_flows`` is the ``(left, right)`` motion from
    the key frame to ``cur``, to be passed back in on the next call.
    """
    kw = dict(levels=3, iterations=2, window_sigma=2.5)
    if flow_kwargs:
        kw.update(flow_kwargs)
    median_size = kw.pop("median_size", 5)
    flow_l = farneback_flow(prev.left, cur.left, **kw)
    flow_r = farneback_flow(prev.right, cur.right, **kw)
    if median_size:
        # median filtering sharpens motion boundaries the Gaussian
        # window of the flow estimator smears across object edges
        for f in (flow_l, flow_r):
            f[..., 0] = ndimage.median_filter(f[..., 0], size=median_size)
            f[..., 1] = ndimage.median_filter(f[..., 1], size=median_size)
    if accumulated is not None:
        flow_l = compose_flows(accumulated[0], flow_l)
        flow_r = compose_flows(accumulated[1], flow_r)
    source = prev_disparity if key_disparity is None else key_disparity
    disp, known = forward_warp_disparity(source, flow_l, flow_r)
    # pixels nothing landed on are disocclusions: fill from background
    disp = fill_background(disp, known)
    return disp, known, (flow_l, flow_r)


def refine_correspondences(
    frame: StereoFrame,
    initial: np.ndarray,
    radius: int = 4,
    block_size: int = 9,
    matcher=None,
) -> np.ndarray:
    """ISM step 4: local search around the propagated estimate.

    ``matcher`` swaps the guided search implementation — e.g. a
    :meth:`repro.parallel.TileExecutor.guided_block_match` bound
    method for tiled multi-core execution; ``None`` runs the plain
    single-core :func:`~repro.stereo.block_matching.
    guided_block_match`.  Any replacement must keep its signature.
    """
    match = guided_block_match if matcher is None else matcher
    disp = match(
        frame.left, frame.right, initial, radius=radius, block_size=block_size
    )
    return median_clean(disp, size=3)
