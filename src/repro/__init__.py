"""repro — reproduction of "ASV: Accelerated Stereo Vision System" (MICRO 2019).

Top-level subpackages:

* :mod:`repro.nn`         — numpy mini-NN framework (ops, layers, workloads)
* :mod:`repro.deconv`     — deconvolution transformation + tiling optimizer
* :mod:`repro.hw`         — analytic accelerator / GPU / Eyeriss / GANNX models
* :mod:`repro.backends`   — unified execution-backend protocol + registry
* :mod:`repro.models`     — stereo DNN and GAN layer tables + accuracy proxies
* :mod:`repro.stereo`     — classic stereo matching substrate
* :mod:`repro.parallel`   — tiled multi-core execution of the stereo kernels
* :mod:`repro.flow`       — dense optical flow (Farneback)
* :mod:`repro.datasets`   — procedural stereo video generators
* :mod:`repro.core`       — the ISM algorithm and the ASV system
* :mod:`repro.pipeline`   — streaming multi-camera serving engine
* :mod:`repro.evaluation` — per-figure experiment drivers
"""

__version__ = "1.0.0"
