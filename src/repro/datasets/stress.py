"""Stress scenes: the classic failure modes of stereo matching.

Real evaluations (KITTI reflective regions, Middlebury textureless
walls) stress matchers in ways random-texture scenes do not.  These
generators isolate the two canonical failure modes so the library's
algorithm zoo can be characterised against them:

* **textureless regions** — local SAD has no signal inside a flat
  patch; global/semi-global smoothness (SGM) and prior-based matchers
  (ELAS) are expected to fill them, plain BM is not;
* **repetitive texture** — periodic patterns alias the 1-D search;
  uniqueness-aware support points (ELAS) and smoothness costs help.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.scenes import SceneObject, StereoScene, make_texture

__all__ = ["textureless_scene", "repetitive_scene"]


def textureless_scene(
    seed: int = 0,
    size: tuple[int, int] = (120, 200),
    max_disp: int = 32,
    patch_fraction: float = 0.35,
) -> StereoScene:
    """A normal scene with a large flat (constant-intensity) object.

    The flat object covers ``patch_fraction`` of the width at a known
    disparity; matchers without smoothness or priors have no evidence
    inside it.
    """
    rng = np.random.default_rng(seed)
    h, w = size
    flat = SceneObject(
        center=(h * 0.5, w * 0.5),
        size=(int(h * 0.5), int(w * patch_fraction)),
        disparity=float(max_disp * 0.6),
        texture=np.full((int(h * 0.5) + 8, int(w * patch_fraction) + 8), 0.42),
    )
    side = SceneObject(
        center=(h * 0.3, w * 0.15),
        size=(h // 4, w // 6),
        disparity=float(max_disp * 0.3),
        texture_seed=int(rng.integers(0, 2**31)),
    )
    return StereoScene(h, w, [side, flat], background_disparity=2.0, seed=seed)


def repetitive_scene(
    seed: int = 0,
    size: tuple[int, int] = (120, 200),
    max_disp: int = 32,
    period_px: int = 11,
) -> StereoScene:
    """A scene whose foreground carries a horizontally periodic stripe
    pattern with period smaller than the search range: every multiple
    of the period is a plausible (aliased) match."""
    h, w = size
    oh, ow = int(h * 0.5), int(w * 0.45)
    ys, xs = np.mgrid[0 : oh + 8, 0 : ow + 8]
    stripes = np.sin(2 * np.pi * xs / period_px)
    striped = SceneObject(
        center=(h * 0.5, w * 0.5),
        size=(oh, ow),
        disparity=float(max_disp * 0.55),
        texture=0.8 * stripes,
    )
    return StereoScene(h, w, [striped], background_disparity=3.0, seed=seed)
