"""Procedural stereo scenes with exact ground-truth disparity.

The paper evaluates on SceneFlow (synthetic video) and KITTI (street
scenes); neither dataset is available offline, so this module renders
layered fronto-parallel scenes instead:

* every object is a textured region at a fixed disparity (nearer
  objects have larger disparity, per ``d = B f / Z``);
* the **right view is rendered from the same world texture displaced
  by exactly the disparity** (paper convention ``x_r = x_l + d``), so
  the ground truth is exact by construction;
* objects translate (and may approach/recede) over time, giving the
  temporal coherence the ISM algorithm exploits — and occlusions,
  appearance/disappearance at frame borders, and depth discontinuities
  that stress it.

Textures are band-passed noise: enough high-frequency content for
block matching to lock on, enough smoothness to make sub-pixel
interpolation meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.flow.warp import bilinear_sample

__all__ = ["StereoFrame", "SceneObject", "StereoScene", "make_texture"]


@dataclass(frozen=True)
class StereoFrame:
    """One rendered stereo pair with ground truth."""

    left: np.ndarray       # (H, W) float image
    right: np.ndarray      # (H, W) float image
    disparity: np.ndarray  # (H, W) ground-truth disparity of the left view

    @property
    def shape(self) -> tuple[int, int]:
        return self.left.shape


def make_texture(
    rng: np.random.Generator, size: tuple[int, int],
    smooth: float = 1.2, contrast: float = 1.0,
) -> np.ndarray:
    """Band-passed noise texture in roughly [-1, 1]."""
    noise = rng.normal(size=size)
    tex = ndimage.gaussian_filter(noise, smooth)
    tex = tex / (np.abs(tex).max() + 1e-9)
    return contrast * tex


@dataclass
class SceneObject:
    """A textured fronto-parallel layer."""

    center: tuple[float, float]          # (y, x) at t = 0
    size: tuple[int, int]                # (h, w) extent
    disparity: float
    velocity: tuple[float, float] = (0.0, 0.0)   # (vy, vx) px/frame
    disparity_rate: float = 0.0                  # px/frame (approach > 0)
    shape: str = "rect"                          # "rect" | "ellipse"
    texture: np.ndarray | None = None
    texture_seed: int = 0

    def __post_init__(self):
        if self.shape not in ("rect", "ellipse"):
            raise ValueError(f"unknown object shape {self.shape!r}")
        if self.texture is None:
            rng = np.random.default_rng(self.texture_seed)
            margin = 4
            tex_size = (self.size[0] + 2 * margin, self.size[1] + 2 * margin)
            self.texture = make_texture(rng, tex_size)

    def disparity_at(self, t: float) -> float:
        return max(0.0, self.disparity + t * self.disparity_rate)

    def center_at(self, t: float) -> tuple[float, float]:
        return (
            self.center[0] + t * self.velocity[0],
            self.center[1] + t * self.velocity[1],
        )

    def _mask_and_tex(self, ys, xs, t: float, x_shift: float):
        """Object mask and texture values at image coordinates."""
        cy, cx = self.center_at(t)
        h, w = self.size
        ly = ys - (cy - h / 2.0)
        lx = xs - (cx - w / 2.0) - x_shift
        if self.shape == "rect":
            mask = (ly >= 0) & (ly < h) & (lx >= 0) & (lx < w)
        else:
            ny = (ly - h / 2.0) / (h / 2.0)
            nx = (lx - w / 2.0) / (w / 2.0)
            mask = ny * ny + nx * nx <= 1.0
        margin = (np.asarray(self.texture.shape) - self.size) // 2
        vals = bilinear_sample(self.texture, ly + margin[0], lx + margin[1])
        return mask, vals


class StereoScene:
    """A renderable stereo world: background plane + moving layers."""

    def __init__(
        self,
        height: int,
        width: int,
        objects: list[SceneObject],
        background_disparity: float = 2.0,
        background_velocity: tuple[float, float] = (0.0, 0.0),
        seed: int = 0,
    ):
        if height < 8 or width < 8:
            raise ValueError("scene too small")
        self.height = height
        self.width = width
        self.objects = list(objects)
        self.background_disparity = float(background_disparity)
        self.background_velocity = background_velocity
        rng = np.random.default_rng(seed)
        # background texture large enough to pan over time
        self._bg = make_texture(rng, (height + 64, width + 256), smooth=1.5)

    def _render_view(self, t: float, right: bool) -> tuple[np.ndarray, np.ndarray]:
        ys, xs = np.mgrid[0 : self.height, 0 : self.width].astype(np.float64)
        bvy, bvx = self.background_velocity
        d_bg = self.background_disparity
        shift = d_bg if right else 0.0
        img = bilinear_sample(
            self._bg, ys + 32 + t * bvy, xs + 128 + t * bvx - shift
        )
        disp = np.full((self.height, self.width), d_bg)
        # draw far-to-near so nearer layers occlude
        for obj in sorted(self.objects, key=lambda o: o.disparity_at(t)):
            d = obj.disparity_at(t)
            mask, vals = obj._mask_and_tex(ys, xs, t, d if right else 0.0)
            img = np.where(mask, vals, img)
            disp = np.where(mask, d, disp)
        return img, disp

    def render(self, t: float) -> StereoFrame:
        """Render the stereo pair and ground truth at time ``t``."""
        left, disp = self._render_view(t, right=False)
        right, _ = self._render_view(t, right=True)
        return StereoFrame(left=left, right=right, disparity=disp)

    def sequence(self, n_frames: int, t0: float = 0.0) -> list[StereoFrame]:
        """Render ``n_frames`` consecutive frames starting at ``t0``."""
        return [self.render(t0 + t) for t in range(n_frames)]
