"""KITTI-like synthetic street scenes.

KITTI 2015 provides 200 stereo pairs of real driving footage with at
most two consecutive frames per scene (which is why the paper's Fig. 9
evaluates only PW-2 on KITTI).  The generator mimics the geometry of a
driving scene:

* a **road plane** filling the lower image half whose disparity grows
  linearly from the horizon to the bottom edge (a slanted plane under
  ``d = B f / Z``);
* **buildings/walls** — tall static rectangles at mid disparities on
  both sides;
* **vehicles** — a few near rectangles with lateral motion and a
  looming component (ego-motion towards the scene increases their
  disparity over time);
* a weakly-textured **sky** at near-zero disparity.

Because the road's disparity varies per pixel it cannot be a layered
object; it is rendered directly with a per-row displacement.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.scenes import SceneObject, StereoFrame, make_texture
from repro.flow.warp import bilinear_sample

__all__ = ["kitti_scene_pair", "kitti_pairs"]


class _StreetScene:
    """Road plane + layered obstacles (internal to the generator)."""

    def __init__(self, seed: int, size: tuple[int, int], max_disp: int):
        rng = np.random.default_rng(seed)
        self.h, self.w = size
        self.max_disp = max_disp
        self.horizon = int(self.h * rng.uniform(0.38, 0.5))
        self.road_max_disp = max_disp * rng.uniform(0.6, 0.85)
        self.sky_disparity = 0.5
        self.ego_speed = rng.uniform(0.0, 0.25)     # looming, px disparity/frame
        self.ego_lateral = rng.uniform(-1.5, 1.5)   # px/frame
        self._sky = make_texture(rng, (self.h + 16, self.w + 64), smooth=6.0,
                                 contrast=0.3)
        self._road = make_texture(rng, (self.h + 16, self.w + 2 * max_disp + 64),
                                  smooth=0.9)
        objects = []
        # buildings: static, mid-depth, flanking the road
        for side in (0.12, 0.88):
            if rng.random() < 0.8:
                bh = int(rng.uniform(0.35, 0.6) * self.h)
                bw = int(rng.uniform(0.15, 0.3) * self.w)
                objects.append(
                    SceneObject(
                        center=(self.horizon - bh * 0.25, side * self.w),
                        size=(bh, bw),
                        disparity=float(rng.uniform(4.0, 12.0)),
                        velocity=(0.0, self.ego_lateral),
                        disparity_rate=self.ego_speed * 0.3,
                        texture_seed=int(rng.integers(0, 2**31)),
                    )
                )
        # vehicles: near, moving
        for _ in range(int(rng.integers(1, 4))):
            vh = int(rng.uniform(0.12, 0.22) * self.h)
            vw = int(rng.uniform(0.12, 0.25) * self.w)
            objects.append(
                SceneObject(
                    center=(float(rng.uniform(self.horizon, 0.85 * self.h)),
                            float(rng.uniform(0.2 * self.w, 0.8 * self.w))),
                    size=(vh, vw),
                    disparity=float(rng.uniform(14.0, max_disp * 0.85)),
                    velocity=(float(rng.uniform(-0.5, 0.5)),
                              float(rng.uniform(-3.0, 3.0)) + self.ego_lateral),
                    disparity_rate=self.ego_speed,
                    texture_seed=int(rng.integers(0, 2**31)),
                )
            )
        self.objects = objects

    def _road_disparity(self) -> np.ndarray:
        """Per-row road disparity: 0 at horizon scaling to road_max."""
        rows = np.arange(self.h, dtype=np.float64)
        frac = (rows - self.horizon) / max(1, self.h - 1 - self.horizon)
        return np.clip(frac, 0.0, 1.0) * self.road_max_disp

    def render(self, t: float) -> StereoFrame:
        ys, xs = np.mgrid[0 : self.h, 0 : self.w].astype(np.float64)
        pan = t * self.ego_lateral
        # sky / backdrop
        left = bilinear_sample(self._sky, ys + 8, xs + 32 + pan)
        right = bilinear_sample(self._sky, ys + 8, xs + 32 + pan - self.sky_disparity)
        disp = np.full((self.h, self.w), self.sky_disparity)
        # road plane (rows below the horizon)
        road_d = self._road_disparity()
        road_rows = road_d > 0
        d_map = np.broadcast_to(road_d[:, None], (self.h, self.w))
        road_left = bilinear_sample(self._road, ys + 8, xs + self.max_disp + 32 + pan)
        road_right = bilinear_sample(
            self._road, ys + 8, xs + self.max_disp + 32 + pan - d_map
        )
        mask = np.broadcast_to(road_rows[:, None], (self.h, self.w))
        left = np.where(mask, road_left, left)
        right = np.where(mask, road_right, right)
        disp = np.where(mask, d_map, disp)
        # obstacles, far to near
        for obj in sorted(self.objects, key=lambda o: o.disparity_at(t)):
            d = obj.disparity_at(t)
            m_l, v_l = obj._mask_and_tex(ys, xs, t, 0.0)
            m_r, v_r = obj._mask_and_tex(ys, xs, t, d)
            left = np.where(m_l, v_l, left)
            right = np.where(m_r, v_r, right)
            disp = np.where(m_l, d, disp)
        return StereoFrame(left=left, right=right, disparity=disp)


def kitti_scene_pair(
    seed: int, size: tuple[int, int] = (96, 320), max_disp: int = 48
) -> list[StereoFrame]:
    """Two consecutive frames of one street scene (KITTI's structure)."""
    scene = _StreetScene(seed, size, max_disp)
    return [scene.render(0.0), scene.render(1.0)]


def kitti_pairs(
    n_scenes: int = 200, size: tuple[int, int] = (96, 320),
    max_disp: int = 48, seed: int = 0,
):
    """Yield ``n_scenes`` two-frame street sequences."""
    for i in range(n_scenes):
        yield kitti_scene_pair(seed * 10_000 + i, size=size, max_disp=max_disp)
