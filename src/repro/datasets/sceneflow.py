"""SceneFlow-like synthetic stereo videos.

SceneFlow (Mayer et al., CVPR'16) renders randomly flying textured
objects in front of a background — the generator here mimics exactly
that recipe: 5-12 random rectangles/ellipses at disparities spanning
the search range, each with an independent velocity and a slow
approach/recede rate, over a panning background.

The paper's SceneFlow evaluation uses 26 stereo videos; use
:func:`sceneflow_videos` with ``n_videos=26`` to reproduce that setup
at any resolution.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.scenes import SceneObject, StereoScene

__all__ = ["sceneflow_scene", "sceneflow_videos"]


def sceneflow_scene(
    seed: int,
    size: tuple[int, int] = (135, 240),
    max_disp: int = 48,
    max_speed: float = 3.0,
) -> StereoScene:
    """One random flying-objects scene."""
    rng = np.random.default_rng(seed)
    h, w = size
    n_objects = int(rng.integers(5, 13))
    objects = []
    for i in range(n_objects):
        oh = int(rng.integers(h // 8, h // 3))
        ow = int(rng.integers(w // 10, w // 3))
        objects.append(
            SceneObject(
                center=(float(rng.uniform(0.15 * h, 0.85 * h)),
                        float(rng.uniform(0.15 * w, 0.85 * w))),
                size=(oh, ow),
                disparity=float(rng.uniform(4.0, max_disp * 0.8)),
                velocity=(float(rng.uniform(-max_speed, max_speed)),
                          float(rng.uniform(-max_speed, max_speed))),
                disparity_rate=float(rng.uniform(-0.3, 0.3)),
                shape="ellipse" if rng.random() < 0.4 else "rect",
                texture_seed=int(rng.integers(0, 2**31)),
            )
        )
    return StereoScene(
        height=h,
        width=w,
        objects=objects,
        background_disparity=float(rng.uniform(1.0, 3.0)),
        background_velocity=(float(rng.uniform(-1, 1)), float(rng.uniform(-1, 1))),
        seed=seed,
    )


def sceneflow_videos(
    n_videos: int = 26,
    n_frames: int = 4,
    size: tuple[int, int] = (135, 240),
    max_disp: int = 48,
    seed: int = 0,
):
    """Yield ``n_videos`` frame sequences (lists of StereoFrame)."""
    for i in range(n_videos):
        scene = sceneflow_scene(seed * 10_000 + i, size=size, max_disp=max_disp)
        yield scene.sequence(n_frames)
