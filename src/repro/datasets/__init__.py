"""Procedural stereo datasets with exact ground truth."""

from repro.datasets.kitti import kitti_pairs, kitti_scene_pair
from repro.datasets.scenes import SceneObject, StereoFrame, StereoScene, make_texture
from repro.datasets.sceneflow import sceneflow_scene, sceneflow_videos
from repro.datasets.stress import repetitive_scene, textureless_scene

__all__ = [
    "SceneObject",
    "StereoFrame",
    "StereoScene",
    "kitti_pairs",
    "kitti_scene_pair",
    "make_texture",
    "repetitive_scene",
    "sceneflow_scene",
    "sceneflow_videos",
    "textureless_scene",
]
