"""Separable Gaussian filtering (the OF stage the paper maps to a conv
layer: "Gaussian blur is inherently a convolution operation").
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.parallel.tiles import blur_tap_radius

__all__ = [
    "gaussian_kernel1d",
    "blur_kernel1d",
    "gaussian_blur",
    "batched_gaussian_blur",
    "downsample2",
    "gaussian_blur_ops",
]


def gaussian_kernel1d(sigma: float, radius: int | None = None) -> np.ndarray:
    """Normalised 1-D Gaussian taps."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if radius is None:
        radius = max(1, int(round(3.0 * sigma)))
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    k = np.exp(-0.5 * (x / sigma) ** 2)
    return k / k.sum()


def blur_kernel1d(sigma: float) -> np.ndarray:
    """The exact taps :func:`gaussian_blur` applies along each axis.

    :func:`scipy.ndimage.gaussian_filter` truncates at ``4 * sigma``
    (its default) and normalises ``exp(-x^2 / (2 sigma^2))`` over the
    integer tap grid; this reproduces that kernel bit for bit, so a
    single :func:`scipy.ndimage.correlate1d` pass with these taps is
    *bit-identical* to the corresponding ``gaussian_filter`` axis pass
    (the kernel is symmetric, so scipy's internal tap reversal is a
    no-op).  :func:`batched_gaussian_blur` builds on this to fuse many
    blurs into two stacked sweeps.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    radius = blur_tap_radius(sigma)
    x = np.arange(-radius, radius + 1)
    k = np.exp(-0.5 / (sigma * sigma) * x**2)
    return k / k.sum()


def gaussian_blur(img: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur with edge replication."""
    return ndimage.gaussian_filter(
        np.asarray(img, dtype=np.float64), sigma=sigma, mode="nearest"
    )


def batched_gaussian_blur(stack: np.ndarray, sigma: float) -> np.ndarray:
    """Blur every (H, W) slice of a ``(..., H, W)`` stack at once.

    Two axis-wise :func:`scipy.ndimage.correlate1d` sweeps over the
    whole stack replace one :func:`gaussian_blur` call per slice; each
    slice of the result is **bit-identical** to ``gaussian_blur`` of
    that slice (same taps via :func:`blur_kernel1d`, same ``nearest``
    edge replication, same per-line double-precision accumulation),
    except that the input dtype is preserved — a ``float32`` stack
    stays ``float32`` instead of being promoted.
    """
    weights = blur_kernel1d(sigma)
    out = ndimage.correlate1d(stack, weights, axis=-2, mode="nearest")
    return ndimage.correlate1d(out, weights, axis=-1, mode="nearest")


def downsample2(img: np.ndarray) -> np.ndarray:
    """Anti-aliased 2x downsampling (pyramid construction)."""
    return gaussian_blur(img, 1.0)[::2, ::2]


def gaussian_blur_ops(h: int, w: int, sigma: float) -> int:
    """MAC count of a separable blur (two 1-D passes)."""
    taps = 2 * max(1, int(round(3.0 * sigma))) + 1
    return 2 * taps * h * w
