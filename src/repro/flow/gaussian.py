"""Separable Gaussian filtering (the OF stage the paper maps to a conv
layer: "Gaussian blur is inherently a convolution operation").
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["gaussian_kernel1d", "gaussian_blur", "downsample2", "gaussian_blur_ops"]


def gaussian_kernel1d(sigma: float, radius: int | None = None) -> np.ndarray:
    """Normalised 1-D Gaussian taps."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if radius is None:
        radius = max(1, int(round(3.0 * sigma)))
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    k = np.exp(-0.5 * (x / sigma) ** 2)
    return k / k.sum()


def gaussian_blur(img: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur with edge replication."""
    return ndimage.gaussian_filter(
        np.asarray(img, dtype=np.float64), sigma=sigma, mode="nearest"
    )


def downsample2(img: np.ndarray) -> np.ndarray:
    """Anti-aliased 2x downsampling (pyramid construction)."""
    return gaussian_blur(img, 1.0)[::2, ::2]


def gaussian_blur_ops(h: int, w: int, sigma: float) -> int:
    """MAC count of a separable blur (two 1-D passes)."""
    taps = 2 * max(1, int(round(3.0 * sigma))) + 1
    return 2 * taps * h * w
