"""Image warping and correspondence propagation utilities."""

from __future__ import annotations

import numpy as np

__all__ = ["bilinear_sample", "warp_backward", "forward_warp_disparity"]

#: cached read-only meshgrids — every non-key ISM step needs several
#: (h, w) coordinate grids, and rebuilding them dominates the small
#: fixed cost of the warp helpers
_GRIDS: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}


def _grid(h: int, w: int, dtype=np.intp) -> tuple[np.ndarray, np.ndarray]:
    key = (h, w, np.dtype(dtype).str)
    got = _GRIDS.get(key)
    if got is None:
        if len(_GRIDS) >= 16:
            _GRIDS.clear()
        yy, xx = np.mgrid[0:h, 0:w].astype(dtype)
        yy.setflags(write=False)
        xx.setflags(write=False)
        got = _GRIDS[key] = (yy, xx)
    return got


def bilinear_sample(img: np.ndarray, ys: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Sample ``img`` at float coordinates with bilinear interpolation
    and edge clamping."""
    h, w = img.shape[:2]
    ys = np.clip(ys, 0, h - 1)
    xs = np.clip(xs, 0, w - 1)
    # clipped non-negative, so truncation is the floor in one pass
    y0 = ys.astype(np.intp)
    x0 = xs.astype(np.intp)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    fy = ys - y0
    fx = xs - x0
    omx = 1 - fx
    top = img[y0, x0] * omx + img[y0, x1] * fx
    bot = img[y1, x0] * omx + img[y1, x1] * fx
    return top * (1 - fy) + bot * fy


def warp_backward(img: np.ndarray, flow: np.ndarray) -> np.ndarray:
    """``out(p) = img(p + flow(p))`` — warp ``img`` towards the frame
    the flow was computed on."""
    h, w = img.shape[:2]
    yy, xx = _grid(h, w, np.float64)
    return bilinear_sample(img, yy + flow[..., 0], xx + flow[..., 1])


def forward_warp_disparity(
    disp: np.ndarray,
    flow_left: np.ndarray,
    flow_right: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Propagate a disparity map along per-pixel motion (ISM step 3).

    Each left-frame pixel ``p`` with disparity ``d`` moves to
    ``p + flow_left(p)``; its right-image correspondence moves by
    ``flow_right`` sampled at the corresponding right-image pixel, so
    the propagated disparity is ``d + flow_right_x - flow_left_x``
    (the horizontal offset between the two moved pixels).  Collisions
    keep the larger disparity (nearer surface), matching a z-buffer.

    Returns ``(disparity, known_mask)`` for the next frame; pixels no
    correspondence landed on are marked unknown.
    """
    h, w = disp.shape
    yy, xx = _grid(h, w)
    ty = np.rint(yy + flow_left[..., 0]).astype(int)
    tx = np.rint(xx + flow_left[..., 1]).astype(int)

    if flow_right is None:
        new_d = disp
    else:
        # sample the right-frame motion at the correspondence <x + d, y>
        rx = np.clip(np.rint(xx + disp).astype(int), 0, w - 1)
        dx_right = flow_right[yy, rx, 1]
        dx_left = flow_left[..., 1]
        new_d = disp + (dx_right - dx_left)

    inside = (ty >= 0) & (ty < h) & (tx >= 0) & (tx < w)
    out = np.full((h, w), -1.0, dtype=np.float64)
    flat = ty[inside] * w + tx[inside]
    vals = new_d[inside]
    # z-buffer: larger disparity (nearer) wins; maximum.at resolves
    # collisions without ordering artefacts
    buf = np.full(h * w, -1.0, dtype=np.float64)
    np.maximum.at(buf, flat, vals)
    out = buf.reshape(h, w)
    known = out >= 0
    return np.where(known, out, 0.0), known
