"""Farneback dense optical flow (paper Sec. 3.3's motion estimator).

Implements the two-frame displacement algorithm of Farneback (SCIA'03):

1. **Polynomial expansion** — every neighbourhood of each frame is
   approximated as ``f(x) ~ x^T A x + b^T x + c`` by Gaussian-weighted
   least squares, computed with separable moment filters (this is the
   "Gaussian blur" convolution stage of the paper's OF mapping).
2. **Matrix update** — given the expansions of both frames and the
   current displacement estimate, the per-pixel normal-equation
   quantities ``G = A^T A`` and ``h = A^T db`` are formed and averaged
   over a Gaussian window (the paper's point-wise "Matrix Update").
3. **Compute flow** — the 2x2 system ``G d = h`` is solved per pixel
   (the paper's point-wise "Compute Flow").

A coarse-to-fine pyramid with warping handles displacements larger
than the expansion window.
"""

from __future__ import annotations

import numpy as np

from repro.flow.gaussian import downsample2, gaussian_blur, gaussian_kernel1d
from repro.flow.warp import bilinear_sample

__all__ = ["poly_expansion", "flow_iteration", "farneback_flow", "farneback_ops"]


def _moment_filters(sigma: float, radius: int):
    g = gaussian_kernel1d(sigma, radius)
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    return g, g * x, g * x * x


def _sep_correlate(img, ky, kx):
    """Separable correlation: 1-D along y then along x."""
    pad_y = len(ky) // 2
    pad_x = len(kx) // 2
    padded = np.pad(img, ((pad_y, pad_y), (0, 0)), mode="edge")
    tmp = np.zeros_like(img)
    for i, t in enumerate(ky):
        if t:
            tmp += t * padded[i : i + img.shape[0], :]
    padded = np.pad(tmp, ((0, 0), (pad_x, pad_x)), mode="edge")
    out = np.zeros_like(img)
    for i, t in enumerate(kx):
        if t:
            out += t * padded[:, i : i + img.shape[1]]
    return out


def poly_expansion(
    img: np.ndarray, sigma: float = 1.5, radius: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Quadratic-polynomial expansion of an image.

    Returns ``(A, b)`` where ``A`` is (H, W, 2, 2) and ``b`` is
    (H, W, 2); the constant term is not needed by the flow update.
    Coordinates are (y, x).
    """
    img = np.asarray(img, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError("poly_expansion expects a grayscale image")
    if radius is None:
        radius = max(2, int(round(3.0 * sigma)))
    g0, g1, g2 = _moment_filters(sigma, radius)

    # Gaussian-weighted image moments <I * y^a x^b>
    m00 = _sep_correlate(img, g0, g0)
    m01 = _sep_correlate(img, g0, g1)   # x
    m10 = _sep_correlate(img, g1, g0)   # y
    m02 = _sep_correlate(img, g0, g2)   # x^2
    m20 = _sep_correlate(img, g2, g0)   # y^2
    m11 = _sep_correlate(img, g1, g1)   # xy

    # basis Gram matrix for weight g (constant over the image);
    # basis order: [1, x, y, x^2, y^2, xy]
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    s0 = g0.sum()           # = 1
    s2 = float((g0 * x * x).sum())
    s4 = float((g0 * x * x * x * x).sum())
    G = np.array(
        [
            [s0, 0, 0, s2, s2, 0],
            [0, s2, 0, 0, 0, 0],
            [0, 0, s2, 0, 0, 0],
            [s2, 0, 0, s4, s2 * s2, 0],
            [s2, 0, 0, s2 * s2, s4, 0],
            [0, 0, 0, 0, 0, s2 * s2],
        ]
    )
    G_inv = np.linalg.inv(G)

    moments = np.stack([m00, m01, m10, m02, m20, m11], axis=-1)
    coeffs = moments @ G_inv.T  # [c, bx, by, axx, ayy, axy]

    h, w = img.shape
    A = np.empty((h, w, 2, 2))
    A[..., 0, 0] = coeffs[..., 4]        # ayy (y quadratic)
    A[..., 1, 1] = coeffs[..., 3]        # axx
    A[..., 0, 1] = A[..., 1, 0] = coeffs[..., 5] / 2.0
    b = np.empty((h, w, 2))
    b[..., 0] = coeffs[..., 2]           # by
    b[..., 1] = coeffs[..., 1]           # bx
    return A, b


def flow_iteration(
    A1, b1, A2, b2, flow: np.ndarray, window_sigma: float = 4.0
) -> np.ndarray:
    """One Farneback update: warp, matrix update, Gaussian average,
    per-pixel 2x2 solve.  ``flow`` is (H, W, 2) in (dy, dx)."""
    h, w = flow.shape[:2]
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
    sy = yy + flow[..., 0]
    sx = xx + flow[..., 1]

    A2w = np.stack(
        [bilinear_sample(A2[..., i, j], sy, sx) for i in range(2) for j in range(2)],
        axis=-1,
    ).reshape(h, w, 2, 2)
    b2w = np.stack(
        [bilinear_sample(b2[..., i], sy, sx) for i in range(2)], axis=-1
    )

    A = 0.5 * (A1 + A2w)
    db = -0.5 * (b2w - b1) + np.einsum("hwij,hwj->hwi", A, flow)

    # matrix update: G = A^T A, h = A^T db, averaged over a window
    G = np.einsum("hwki,hwkj->hwij", A, A)
    hvec = np.einsum("hwki,hwk->hwi", A, db)
    for i in range(2):
        hvec[..., i] = gaussian_blur(hvec[..., i], window_sigma)
        for j in range(2):
            G[..., i, j] = gaussian_blur(G[..., i, j], window_sigma)

    # compute flow: solve the 2x2 system per pixel with Tikhonov damping
    # *relative* to the local signal energy, so low-contrast images are
    # not biased towards zero flow
    trace = G[..., 0, 0] + G[..., 1, 1]
    lam = 1e-3 * 0.5 * trace + 1e-12
    g00 = G[..., 0, 0] + lam
    g11 = G[..., 1, 1] + lam
    det = g00 * g11 - G[..., 0, 1] * G[..., 1, 0]
    new = np.empty_like(flow)
    new[..., 0] = (g11 * hvec[..., 0] - G[..., 0, 1] * hvec[..., 1]) / det
    new[..., 1] = (g00 * hvec[..., 1] - G[..., 1, 0] * hvec[..., 0]) / det
    return new


def farneback_flow(
    frame0: np.ndarray,
    frame1: np.ndarray,
    levels: int = 3,
    iterations: int = 3,
    sigma: float = 1.5,
    window_sigma: float = 4.0,
) -> np.ndarray:
    """Dense (H, W, 2) flow from ``frame0`` to ``frame1`` in (dy, dx)."""
    f0 = np.asarray(frame0, dtype=np.float64)
    f1 = np.asarray(frame1, dtype=np.float64)
    if f0.ndim == 3:
        f0 = f0.mean(axis=2)
    if f1.ndim == 3:
        f1 = f1.mean(axis=2)
    if f0.shape != f1.shape:
        raise ValueError("frames must share a shape")

    pyramid = [(f0, f1)]
    for _ in range(levels - 1):
        if min(pyramid[-1][0].shape) < 16:
            break
        pyramid.append((downsample2(pyramid[-1][0]), downsample2(pyramid[-1][1])))

    flow = np.zeros(pyramid[-1][0].shape + (2,))
    for lvl, (p0, p1) in enumerate(reversed(pyramid)):
        if lvl:
            up = np.zeros(p0.shape + (2,))
            for c in range(2):
                rep = np.repeat(np.repeat(flow[..., c], 2, 0), 2, 1)
                up[..., c] = 2.0 * rep[: p0.shape[0], : p0.shape[1]]
            flow = up
        A1, b1 = poly_expansion(p0, sigma)
        A2, b2 = poly_expansion(p1, sigma)
        for _ in range(iterations):
            flow = flow_iteration(A1, b1, A2, b2, flow, window_sigma)
    return flow


def farneback_ops(
    h: int, w: int, levels: int = 3, iterations: int = 3,
    sigma: float = 1.5, window_sigma: float = 4.0,
) -> int:
    """Arithmetic-operation count of the flow computation (Sec. 3.3's
    cost model; ~99 % is Gaussian blur + the two point-wise stages)."""
    taps_exp = 2 * max(2, int(round(3.0 * sigma))) + 1
    taps_win = 2 * max(1, int(round(3.0 * window_sigma))) + 1
    total = 0
    size = h * w
    for _ in range(levels):
        # polynomial expansion: 6 separable moment filters x 2 frames
        total += 2 * 6 * 2 * taps_exp * size
        # per iteration: matrix update (~40 point ops) + 6 Gaussian
        # blurs + 2x2 solve (~12 point ops)
        total += iterations * (40 * size + 6 * 2 * taps_win * size + 12 * size)
        size //= 4
    return total
