"""Farneback dense optical flow (paper Sec. 3.3's motion estimator).

Implements the two-frame displacement algorithm of Farneback (SCIA'03):

1. **Polynomial expansion** — every neighbourhood of each frame is
   approximated as ``f(x) ~ x^T A x + b^T x + c`` by Gaussian-weighted
   least squares, computed with separable moment filters (this is the
   "Gaussian blur" convolution stage of the paper's OF mapping).
2. **Matrix update** — given the expansions of both frames and the
   current displacement estimate, the per-pixel normal-equation
   quantities ``G = A^T A`` and ``h = A^T db`` are formed and averaged
   over a Gaussian window (the paper's point-wise "Matrix Update").
3. **Compute flow** — the 2x2 system ``G d = h`` is solved per pixel
   (the paper's point-wise "Compute Flow").

A coarse-to-fine pyramid with warping handles displacements larger
than the expansion window.

The hot path is written for the non-key serving loop:

* the six separable moment filters share their three y-passes (the
  moments factor over ``g``, ``g*x``, ``g*x^2``), and every 1-D pass
  is a single :func:`scipy.ndimage.correlate1d` sweep rather than a
  Python tap loop;
* ``flow_iteration`` blurs only the three distinct components of the
  symmetric ``G`` plus the two of ``h`` — five maps fused into two
  stacked axis-wise sweeps (:func:`~repro.flow.gaussian.
  batched_gaussian_blur`);
* a ``precision`` knob threads ``float32`` through the whole pipeline
  (the expansions and flow fields halve their memory traffic);
* :func:`expand_frame` exposes a frame's per-level ``(A, b)`` pyramid
  as a reusable :class:`FrameExpansion`, so consecutive video frames
  can share expansions (see :class:`repro.core.ism.ISM`'s cross-frame
  expansion cache) — :func:`farneback_flow` is a thin composition of
  :func:`expand_frame` and :func:`flow_from_expansions`.

Every vectorized stage is pinned bit-identical to a per-pixel scalar
reference in ``tests/test_flow.py``, in both precisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.flow.gaussian import batched_gaussian_blur, downsample2, gaussian_kernel1d
from repro.parallel.tiles import Stencil, gaussian_support_radius, stencil
from repro.stereo.block_matching import resolve_precision

__all__ = [
    "EXPANSION_STENCIL",
    "FLOW_STENCIL",
    "FrameExpansion",
    "poly_expansion",
    "expand_frame",
    "flow_iteration",
    "flow_from_expansions",
    "farneback_flow",
    "farneback_ops",
]

#: pyramid levels stop once a side falls below this (matches the
#: pre-cache implementation, so cached pyramids line up exactly)
_MIN_PYRAMID_SIDE = 16

#: vertical reach of the polynomial expansion: the moment filters' tap
#: radius — 3-sigma support unless an explicit ``radius`` overrides it
EXPANSION_STENCIL = Stencil.gaussian("sigma", override="radius")

#: vertical reach of one flow iteration: the Gaussian averaging
#: window's tap radius (everything upstream of the blur is per-pixel,
#: everything downstream reads only blurred rows)
FLOW_STENCIL = Stencil.blur("window_sigma")


def _moment_filters(sigma: float, radius: int):
    g = gaussian_kernel1d(sigma, radius)
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    return g, g * x, g * x * x


def _expansion_radius(sigma: float) -> int:
    return gaussian_support_radius(sigma)


def _corr(img: np.ndarray, taps: np.ndarray, axis: int) -> np.ndarray:
    """One edge-replicated 1-D correlation sweep (dtype-preserving)."""
    return ndimage.correlate1d(img, taps, axis=axis, mode="nearest")


@stencil(EXPANSION_STENCIL)
def poly_expansion(
    img: np.ndarray,
    sigma: float = 1.5,
    radius: int | None = None,
    precision: str = "float64",
) -> tuple[np.ndarray, np.ndarray]:
    """Quadratic-polynomial expansion of an image.

    Returns ``(A, b)`` where ``A`` is (H, W, 2, 2) and ``b`` is
    (H, W, 2); the constant term is not needed by the flow update.
    Coordinates are (y, x).  ``precision`` selects the working dtype
    of the moment filters and the returned coefficient maps.

    The six Gaussian image moments share separable structure: filters
    ``{g, g*x, g*x^2} x {g, g*x, g*x^2}`` need only the three y-passes
    ``g*I``, ``(g*x)*I``, ``(g*x^2)*I`` followed by six x-passes.  The
    basis Gram matrix is block-diagonal (the ``{1, x^2, y^2}`` block
    and three scalars), so the normal-equation solve is five short
    explicit dot products rather than a dense (H, W, 6) @ (6, 6).
    """
    dtype = resolve_precision(precision)
    img = np.asarray(img, dtype=dtype)
    if img.ndim != 2:
        raise ValueError("poly_expansion expects a grayscale image")
    if radius is None:
        radius = _expansion_radius(sigma)
    g0, g1, g2 = _moment_filters(sigma, radius)

    # Gaussian-weighted image moments <I * y^a x^b>: 3 shared y-passes
    t0 = _corr(img, g0, axis=0)
    t1 = _corr(img, g1, axis=0)
    t2 = _corr(img, g2, axis=0)
    m00 = _corr(t0, g0, axis=1)
    m01 = _corr(t0, g1, axis=1)   # x
    m02 = _corr(t0, g2, axis=1)   # x^2
    m10 = _corr(t1, g0, axis=1)   # y
    m11 = _corr(t1, g1, axis=1)   # xy
    m20 = _corr(t2, g0, axis=1)   # y^2

    # basis Gram matrix for weight g (constant over the image); basis
    # order [1, x, y, x^2, y^2, xy] block-diagonalises into the
    # {1, x^2, y^2} block below plus the scalars s2, s2, s2^2
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    s0 = float(g0.sum())        # = 1
    s2 = float((g0 * x * x).sum())
    s4 = float((g0 * x * x * x * x).sum())
    inv3 = np.linalg.inv(
        np.array([[s0, s2, s2], [s2, s4, s2 * s2], [s2, s2 * s2, s4]])
    ).astype(dtype)
    inv_s2 = dtype(1.0 / s2)
    inv_s2s2 = dtype(1.0 / (s2 * s2))

    h, w = img.shape
    A = np.empty((h, w, 2, 2), dtype)
    # [c, axx, ayy] = inv3 @ [m00, m02, m20]; c is never used
    A[..., 1, 1] = inv3[1, 0] * m00 + inv3[1, 1] * m02 + inv3[1, 2] * m20  # axx
    A[..., 0, 0] = inv3[2, 0] * m00 + inv3[2, 1] * m02 + inv3[2, 2] * m20  # ayy
    off = 0.5 * (m11 * inv_s2s2)                                           # axy/2
    A[..., 0, 1] = off
    A[..., 1, 0] = off
    b = np.empty((h, w, 2), dtype)
    b[..., 0] = m10 * inv_s2     # by
    b[..., 1] = m01 * inv_s2     # bx
    return A, b


@dataclass(frozen=True)
class FrameExpansion:
    """One frame's polynomial-expansion pyramid, ready for reuse.

    ``coeffs[k]`` is the ``(A, b)`` pair of pyramid level ``k`` (level
    0 is full resolution) and ``shapes[k]`` its image shape.  The
    remaining fields record the parameters the expansion was computed
    with, so a consumer (the ISM cross-frame cache) can check that a
    carried-over expansion is still compatible before reusing it.
    """

    coeffs: tuple[tuple[np.ndarray, np.ndarray], ...]
    shapes: tuple[tuple[int, int], ...]
    levels: int
    sigma: float
    radius: int | None
    precision: str

    @property
    def depth(self) -> int:
        """Number of pyramid levels actually built."""
        return len(self.coeffs)

    def matches(
        self,
        shape: tuple[int, int],
        levels: int,
        sigma: float,
        radius: int | None,
        precision: str,
    ) -> bool:
        """Whether this expansion was built for exactly these inputs."""
        return (
            self.shapes[0] == tuple(shape)
            and self.levels == levels
            and self.sigma == sigma
            and self.radius == radius
            and self.precision == precision
        )


def _as_gray(frame: np.ndarray, dtype) -> np.ndarray:
    f = np.asarray(frame, dtype=dtype)
    if f.ndim == 3:
        f = f.mean(axis=2)
    return f


def _pyramid(f: np.ndarray, levels: int, dtype) -> list[np.ndarray]:
    pyramid = [f]
    for _ in range(levels - 1):
        if min(pyramid[-1].shape) < _MIN_PYRAMID_SIDE:
            break
        pyramid.append(downsample2(pyramid[-1]).astype(dtype, copy=False))
    return pyramid


def expand_frame(
    frame: np.ndarray,
    levels: int = 3,
    sigma: float = 1.5,
    radius: int | None = None,
    precision: str = "float64",
) -> FrameExpansion:
    """Polynomial-expansion pyramid of one frame.

    The per-frame half of :func:`farneback_flow`: build the Gaussian
    pyramid and expand every level.  In a video, frame ``t``'s
    expansion serves both the ``(t-1, t)`` and the ``(t, t+1)`` flow
    computations, so carrying the returned object forward halves the
    steady-state expansion cost — values stay bit-identical because
    the expansion depends only on the frame and the parameters.
    """
    dtype = resolve_precision(precision)
    pyramid = _pyramid(_as_gray(frame, dtype), levels, dtype)
    coeffs = tuple(
        poly_expansion(p, sigma=sigma, radius=radius, precision=precision)
        for p in pyramid
    )
    return FrameExpansion(
        coeffs=coeffs,
        shapes=tuple(p.shape for p in pyramid),
        levels=levels,
        sigma=sigma,
        radius=radius,
        precision=precision,
    )


@stencil(FLOW_STENCIL)
def flow_iteration(
    A1, b1, A2, b2, flow: np.ndarray, window_sigma: float = 4.0, row0: int = 0
) -> np.ndarray:
    """One Farneback update: warp, matrix update, Gaussian average,
    per-pixel 2x2 solve.  ``flow`` is (H, W, 2) in (dy, dx).

    ``A1``/``b1``/``flow`` may be a row band of the frame while
    ``A2``/``b2`` stay whole-frame: ``row0`` is then the band's
    absolute first row, so the warp gathers (which reach anywhere in
    the frame) index ``A2``/``b2`` at the correct global coordinates.
    This is the hook :class:`repro.parallel.TileExecutor` tiles the
    iteration through; ``row0=0`` with equal shapes is the ordinary
    whole-frame call.

    Only the three distinct components of the symmetric ``G = A^T A``
    and the two of ``h = A^T db`` are Gaussian-averaged, as one fused
    five-slice stacked sweep.
    """
    dtype = flow.dtype
    h, w = flow.shape[:2]
    fh, fw = A2.shape[:2]
    yy = (row0 + np.arange(h, dtype=dtype))[:, None]
    xx = np.arange(w, dtype=dtype)[None, :]
    sy = np.clip(yy + flow[..., 0], 0, fh - 1)
    sx = np.clip(xx + flow[..., 1], 0, fw - 1)

    # bilinear warp of the five distinct second-frame channels with
    # shared gather coordinates (A2 is symmetric by construction)
    # sy/sx are clipped non-negative, so the float->int truncation IS
    # the floor — one pass instead of floor-then-cast
    y0 = sy.astype(np.intp)
    x0 = sx.astype(np.intp)
    y1 = np.minimum(y0 + 1, fh - 1)
    x1 = np.minimum(x0 + 1, fw - 1)
    # keep the interpolation weights in the working dtype: float32
    # minus an int64 index grid would silently promote the whole warp
    # (and the blurred stack below) to float64
    fy = (sy - y0).astype(dtype, copy=False)
    fx = (sx - x0).astype(dtype, copy=False)

    # pack the five channels so each bilinear corner is a single
    # fancy-indexing gather of five contiguous values instead of five
    # strided ones (the weights broadcast over the packed axis, so the
    # per-element arithmetic — and therefore every bit of the result —
    # is unchanged)
    packed = np.empty((fh, fw, 5), dtype)
    packed[..., 0] = A2[..., 0, 0]
    packed[..., 1] = A2[..., 0, 1]
    packed[..., 2] = A2[..., 1, 1]
    packed[..., 3] = b2[..., 0]
    packed[..., 4] = b2[..., 1]
    wx = fx[..., None]
    wy = fy[..., None]
    omx = 1 - wx
    top = packed[y0, x0] * omx + packed[y0, x1] * wx
    bot = packed[y1, x0] * omx + packed[y1, x1] * wx
    warped = top * (1 - wy) + bot * wy

    A00 = 0.5 * (A1[..., 0, 0] + warped[..., 0])
    A01 = 0.5 * (A1[..., 0, 1] + warped[..., 1])
    A11 = 0.5 * (A1[..., 1, 1] + warped[..., 2])
    f0 = flow[..., 0]
    f1 = flow[..., 1]
    db0 = -0.5 * (warped[..., 3] - b1[..., 0]) + (A00 * f0 + A01 * f1)
    db1 = -0.5 * (warped[..., 4] - b1[..., 1]) + (A01 * f0 + A11 * f1)

    # matrix update: G = A^T A (symmetric: three distinct components),
    # h = A^T db, averaged over a window in one fused stacked blur;
    # the products land straight in the blur input, skipping the
    # five temporaries plus copy a np.stack would make
    stack = np.empty((5, h, w), dtype)
    np.multiply(A00, A00, out=stack[0])
    stack[0] += A01 * A01            # G00
    np.multiply(A00, A01, out=stack[1])
    stack[1] += A01 * A11            # G01 = G10
    np.multiply(A01, A01, out=stack[2])
    stack[2] += A11 * A11            # G11
    np.multiply(A00, db0, out=stack[3])
    stack[3] += A01 * db1            # h0
    np.multiply(A01, db0, out=stack[4])
    stack[4] += A11 * db1            # h1
    G00, G01, G11, h0, h1 = batched_gaussian_blur(stack, window_sigma)

    # compute flow: solve the 2x2 system per pixel with Tikhonov damping
    # *relative* to the local signal energy, so low-contrast images are
    # not biased towards zero flow
    lam = 1e-3 * 0.5 * (G00 + G11) + 1e-12
    g00 = G00 + lam
    g11 = G11 + lam
    det = g00 * g11 - G01 * G01
    new = np.empty_like(flow)
    new[..., 0] = (g11 * h0 - G01 * h1) / det
    new[..., 1] = (g00 * h1 - G01 * h0) / det
    return new


def flow_from_expansions(
    exp0: FrameExpansion,
    exp1: FrameExpansion,
    iterations: int = 3,
    window_sigma: float = 4.0,
    step=None,
) -> np.ndarray:
    """Coarse-to-fine flow between two pre-expanded frames.

    ``step`` swaps the per-level update — e.g. a
    :meth:`repro.parallel.TileExecutor.flow_iteration` bound method
    for tiled multi-core execution; ``None`` runs the plain
    :func:`flow_iteration`.  Any replacement must keep its signature.
    """
    if exp0.shapes != exp1.shapes:
        raise ValueError("frames must share a shape")
    if step is None:
        step = flow_iteration
    dtype = resolve_precision(exp0.precision)
    flow = np.zeros(exp0.shapes[-1] + (2,), dtype)
    for lvl in range(exp0.depth - 1, -1, -1):
        shape = exp0.shapes[lvl]
        if lvl != exp0.depth - 1:
            up = np.zeros(shape + (2,), dtype)
            for c in range(2):
                rep = np.repeat(np.repeat(flow[..., c], 2, 0), 2, 1)
                up[..., c] = 2.0 * rep[: shape[0], : shape[1]]
            flow = up
        A1, b1 = exp0.coeffs[lvl]
        A2, b2 = exp1.coeffs[lvl]
        for _ in range(iterations):
            flow = step(A1, b1, A2, b2, flow, window_sigma)
    return flow


def farneback_flow(
    frame0: np.ndarray,
    frame1: np.ndarray,
    levels: int = 3,
    iterations: int = 3,
    sigma: float = 1.5,
    window_sigma: float = 4.0,
    precision: str = "float64",
) -> np.ndarray:
    """Dense (H, W, 2) flow from ``frame0`` to ``frame1`` in (dy, dx)."""
    exp0 = expand_frame(frame0, levels=levels, sigma=sigma, precision=precision)
    exp1 = expand_frame(frame1, levels=levels, sigma=sigma, precision=precision)
    return flow_from_expansions(exp0, exp1, iterations, window_sigma)


def farneback_ops(
    h: int, w: int, levels: int = 3, iterations: int = 3,
    sigma: float = 1.5, window_sigma: float = 4.0,
) -> int:
    """Arithmetic-operation count of the flow computation (Sec. 3.3's
    cost model; ~99 % is Gaussian blur + the two point-wise stages)."""
    taps_exp = 2 * gaussian_support_radius(sigma) + 1
    taps_win = 2 * max(1, int(round(3.0 * window_sigma))) + 1
    total = 0
    size = h * w
    for _ in range(levels):
        # polynomial expansion: 6 separable moment filters x 2 frames
        total += 2 * 6 * 2 * taps_exp * size
        # per iteration: matrix update (~40 point ops) + 6 Gaussian
        # blurs + 2x2 solve (~12 point ops)
        total += iterations * (40 * size + 6 * 2 * taps_win * size + 12 * size)
        size //= 4
    return total
