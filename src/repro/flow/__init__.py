"""Dense optical flow substrate (paper Sec. 3.3's motion estimation)."""

from repro.flow.farneback import (
    farneback_flow,
    farneback_ops,
    flow_iteration,
    poly_expansion,
)
from repro.flow.gaussian import (
    downsample2,
    gaussian_blur,
    gaussian_blur_ops,
    gaussian_kernel1d,
)
from repro.flow.warp import bilinear_sample, forward_warp_disparity, warp_backward

__all__ = [
    "bilinear_sample",
    "downsample2",
    "farneback_flow",
    "farneback_ops",
    "flow_iteration",
    "forward_warp_disparity",
    "gaussian_blur",
    "gaussian_blur_ops",
    "gaussian_kernel1d",
    "poly_expansion",
    "warp_backward",
]
