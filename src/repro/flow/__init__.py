"""Dense optical flow substrate (paper Sec. 3.3's motion estimation)."""

from repro.flow.farneback import (
    FrameExpansion,
    expand_frame,
    farneback_flow,
    farneback_ops,
    flow_from_expansions,
    flow_iteration,
    poly_expansion,
)
from repro.flow.gaussian import (
    batched_gaussian_blur,
    blur_kernel1d,
    downsample2,
    gaussian_blur,
    gaussian_blur_ops,
    gaussian_kernel1d,
)
from repro.flow.warp import bilinear_sample, forward_warp_disparity, warp_backward

__all__ = [
    "FrameExpansion",
    "batched_gaussian_blur",
    "bilinear_sample",
    "blur_kernel1d",
    "downsample2",
    "expand_frame",
    "farneback_flow",
    "farneback_ops",
    "flow_from_expansions",
    "flow_iteration",
    "forward_warp_disparity",
    "gaussian_blur",
    "gaussian_blur_ops",
    "gaussian_kernel1d",
    "poly_expansion",
    "warp_backward",
]
