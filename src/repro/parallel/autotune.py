"""Design-space exploration for :class:`~repro.parallel.TileExecutor`.

Choosing a tiled configuration by hand — how many rows per band, how
many workers, which pool, which precision — is exactly the kind of
guessing the hardware DSE literature replaced with analytical models:
openposeFPGA's explorer scores every candidate tiling with closed-form
latency estimates (its ``effective_dram_est`` discounts raw DRAM
bandwidth by how well a transfer's burst length amortises the fixed
access latency) and only ever builds the winner.  This module is the
same idea for the software substrate: a :class:`LatencyModel` with
per-band compute, pool-dispatch and transport terms (the bandwidth
terms use the same burst-amortisation form), an exhaustive
:func:`search_config` over ``(tile_rows, workers, pool, precision)``,
and a pre-built table shipped as package data
(``tuned_configs.json``) that ``TileExecutor(tile_rows="auto")`` —
the default — consumes at run time.

The model is deliberately coarse: its job is to rank configurations,
not to predict wall-clock to the millisecond.  What matters is that it
captures the three first-order effects the benchmarks show — pickling
whole volumes swamps band compute, many tiny bands pay dispatch
overhead per band, and one-band-per-worker leaves load imbalance on
the table — and that it is **deterministic**: the same model always
produces the same table (pinned by ``tests/test_autotune.py``).

>>> cfg = search_config("sgm", (270, 480), workers=4)
>>> cfg.workers, cfg.pool
(4, 'process')
>>> cfg.tile_rows >= 1
True
"""

from __future__ import annotations

import argparse
import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.flow.farneback import farneback_ops
from repro.stereo.block_matching import block_match_ops, guided_block_match_ops
from repro.stereo.sgm import sgm_ops

__all__ = [
    "LatencyModel",
    "TileConfig",
    "build_table",
    "load_table",
    "predict_latency",
    "save_table",
    "search_config",
    "table_path",
    "tuned_tile_rows",
]

#: frame sizes the shipped table is built for; lookups snap to the
#: nearest size by area, so off-grid frames still get a sane config
SIZES = ((96, 160), (270, 480), (540, 960), (1080, 1920))

#: worker counts the shipped table is built for
WORKER_GRID = (1, 2, 4, 8, 16)

#: candidate band heights the search scans (clamped to the frame)
TILE_ROWS_LADDER = (1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256)

#: representative disparity search range for the model's op counts
MODEL_MAX_DISP = 64

_POOLS = ("process", "thread")
_PRECISIONS = ("float64", "float32")


@dataclass(frozen=True)
class TileConfig:
    """One explored configuration and its predicted latency."""

    kernel: str
    height: int
    width: int
    tile_rows: int
    workers: int
    pool: str
    precision: str
    predicted_ms: float


@dataclass(frozen=True)
class LatencyModel:
    """Closed-form latency terms for one tiled kernel invocation.

    The defaults describe a commodity multi-core host; they are
    deliberately round numbers — the search only needs the *ratios*
    (compute per op, bytes per second, seconds per dispatch) to rank
    configurations, and the table records the model it was built with.
    """

    #: sustained NumPy elementwise throughput of one core, Gop/s
    core_gops: float = 1.5
    #: raw streaming memory bandwidth, GB/s
    dram_gbs: float = 20.0
    #: fixed latency a transfer must amortise (page faults, syscalls), µs
    burst_latency_us: float = 50.0
    #: pool submit + result round trip per job, µs
    dispatch_us: float = 200.0
    #: pickle + pipe + unpickle throughput (serial in the parent), GB/s
    pickle_gbs: float = 1.2
    #: copy into / out of shared-memory segments, GB/s
    shm_gbs: float = 6.0
    #: shared-memory segment open + mmap per attach, µs
    attach_us: float = 60.0
    #: fraction of ideal scaling extra thread workers deliver (GIL)
    thread_efficiency: float = 0.45

    def effective_bandwidth(self, raw_gbs: float, nbytes: float) -> float:
        """Burst-amortised bandwidth in bytes/s (``effective_dram_est``).

        A transfer of ``nbytes`` sustains ``raw * t_burst / (latency +
        t_burst)``: short bursts are latency-bound, long ones approach
        the raw rate.
        """
        raw = raw_gbs * 1e9
        t_burst = nbytes / raw
        return raw * t_burst / (self.burst_latency_us * 1e-6 + t_burst)

    def transfer_seconds(self, raw_gbs: float, nbytes: float) -> float:
        """Seconds to move ``nbytes`` at the burst-amortised rate."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.effective_bandwidth(raw_gbs, nbytes)


DEFAULT_MODEL = LatencyModel()


@dataclass(frozen=True)
class _KernelProfile:
    """Static shape of one band kernel's work and traffic."""

    n_inputs: int          # arrays shipped to each band job
    halo: int              # extra rows per interior band edge
    volume_out: bool       # output is a (D, h, w) volume, not a map
    ops: "callable"        # ops(h, w) for an h-by-w region


_PROFILES = {
    "bm": _KernelProfile(
        n_inputs=2, halo=4, volume_out=False,
        ops=lambda h, w: block_match_ops(h, w, MODEL_MAX_DISP),
    ),
    "census": _KernelProfile(
        # census transform (~2 ops per comparison bit) + Hamming volume
        n_inputs=2, halo=2, volume_out=False,
        ops=lambda h, w: h * w * (2 * 24 + 4 * MODEL_MAX_DISP),
    ),
    # the banded stages of the non-key flow: per-level expansion and
    # iteration sweeps at the ISM serving parameters (levels=1 because
    # the executor bands each pyramid level separately; the halo is the
    # window-blur tap radius int(4 * 2.5 + 0.5))
    "farneback": _KernelProfile(
        n_inputs=5, halo=10, volume_out=False,
        ops=lambda h, w: farneback_ops(
            h, w, levels=1, iterations=2, window_sigma=2.5
        ),
    ),
    "guided": _KernelProfile(
        n_inputs=3, halo=4, volume_out=False,
        ops=lambda h, w: guided_block_match_ops(h, w),
    ),
    # the banded stage of SGM is the cost-volume build; the direction
    # fan-out is modelled separately in predict_latency
    "sgm": _KernelProfile(
        n_inputs=2, halo=2, volume_out=True,
        ops=lambda h, w: MODEL_MAX_DISP * h * w * (1 + 2 * 5),
    ),
}


def _parallel_workers(model: LatencyModel, pool: str, workers: int) -> float:
    """Effective parallelism of ``workers`` on the given pool."""
    if workers <= 1:
        return 1.0
    if pool == "thread":
        return 1.0 + (workers - 1) * model.thread_efficiency
    return float(workers)


def predict_latency(
    kernel: str,
    size: tuple[int, int],
    tile_rows: int,
    workers: int,
    pool: str = "process",
    precision: str = "float64",
    model: LatencyModel = DEFAULT_MODEL,
) -> float:
    """Predicted seconds for one tiled kernel invocation.

    ``workers=1`` models the inline path (no pool, no transport, no
    halo recompute).  Multi-worker process pools are modelled with the
    shared-memory transport the executor uses by default: inputs are
    shared once, band payloads land in one output segment, and only
    the SGM direction fan-out moves whole volumes.
    """
    if kernel not in _PROFILES:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {sorted(_PROFILES)}")
    h, w = size
    tile_rows = max(1, min(int(tile_rows), h))
    prof = _PROFILES[kernel]
    px = 4 if precision == "float32" else 8
    compute_scale = 0.75 if precision == "float32" else 1.0
    core = model.core_gops * 1e9 / compute_scale

    out_px_bytes = MODEL_MAX_DISP * px if prof.volume_out else 8

    if workers == 1:
        total = prof.ops(h, w) / core
        if kernel == "sgm":
            total += (sgm_ops(h, w, MODEL_MAX_DISP) - prof.ops(h, w)) / core
        return total

    n_bands = math.ceil(h / tile_rows)
    band_rows = tile_rows + 2 * prof.halo
    eff_workers = _parallel_workers(model, pool, workers)

    t_band = prof.ops(band_rows, w) / core
    parent = model.dispatch_us * 1e-6 * n_bands
    if pool == "process":
        in_bytes = prof.n_inputs * h * w * 8
        out_bytes = h * w * out_px_bytes
        # inputs shared once + each job attaches its segments; the
        # payload write streams into the output segment in parallel
        parent += model.transfer_seconds(model.shm_gbs, in_bytes + out_bytes)
        t_band += model.attach_us * 1e-6 * (prof.n_inputs + 1)
        t_band += model.transfer_seconds(
            model.shm_gbs, tile_rows * w * out_px_bytes
        )
    total = parent + math.ceil(n_bands / eff_workers) * t_band

    if kernel == "sgm":
        # direction fan-out: 8 jobs, each one path's share of the
        # aggregation plus a volume write into its output slot
        agg_ops = sgm_ops(h, w, MODEL_MAX_DISP) - prof.ops(h, w)
        vol_bytes = MODEL_MAX_DISP * h * w * px
        t_dir = agg_ops / 8 / core
        parent_dir = model.dispatch_us * 1e-6 * 8
        if pool == "process":
            t_dir += model.attach_us * 1e-6 * 2
            t_dir += model.transfer_seconds(model.shm_gbs, vol_bytes)
            # the parent consumes each slot serially (total += slot)
            parent_dir += 8 * model.transfer_seconds(model.dram_gbs, vol_bytes)
        total += parent_dir + math.ceil(8 / eff_workers) * t_dir
    return total


def search_config(
    kernel: str,
    size: tuple[int, int],
    workers: int | None = None,
    model: LatencyModel = DEFAULT_MODEL,
) -> TileConfig:
    """Exhaustively score the design space and return the winner.

    ``workers`` pins the worker count (the per-worker-count table
    entries use this — an executor's pool size is the user's choice);
    ``None`` searches it too.  Ties break deterministically toward
    fewer workers, larger bands, ``process``, ``float64``.
    """
    h, w = size
    worker_space = WORKER_GRID if workers is None else (workers,)
    ladder = sorted({min(r, h) for r in TILE_ROWS_LADDER})
    best = None
    for wk in worker_space:
        pools = ("process",) if wk == 1 else _POOLS
        for pool in pools:
            for precision in _PRECISIONS:
                for rows in ladder:
                    predicted = predict_latency(
                        kernel, size, rows, wk, pool, precision, model
                    )
                    key = (
                        predicted,
                        wk,
                        -rows,
                        _POOLS.index(pool),
                        _PRECISIONS.index(precision),
                    )
                    if best is None or key < best[0]:
                        best = (
                            key,
                            TileConfig(
                                kernel=kernel,
                                height=h,
                                width=w,
                                tile_rows=rows,
                                workers=wk,
                                pool=pool,
                                precision=precision,
                                predicted_ms=round(predicted * 1e3, 4),
                            ),
                        )
    return best[1]


def build_table(
    model: LatencyModel = DEFAULT_MODEL,
    sizes: tuple = SIZES,
    worker_grid: tuple = WORKER_GRID,
) -> dict:
    """The full tuned-config table (JSON-serialisable, deterministic).

    Per kernel and frame size: the unconstrained ``best`` config, plus
    ``by_workers`` entries pinning each worker count of the grid —
    the ``tile_rows="auto"`` lookup reads the entry matching the
    executor's own pool size.
    """
    kernels = {}
    for kernel in sorted(_PROFILES):
        per_size = {}
        for size in sizes:
            per_size[f"{size[0]}x{size[1]}"] = {
                "best": asdict(search_config(kernel, size, None, model)),
                "by_workers": {
                    str(wk): asdict(search_config(kernel, size, wk, model))
                    for wk in worker_grid
                },
            }
        kernels[kernel] = per_size
    return {"model": asdict(model), "kernels": kernels}


def table_path() -> Path:
    """Location of the tuned table shipped as package data."""
    return Path(__file__).with_name("tuned_configs.json")


def save_table(table: dict, path: str | Path | None = None) -> Path:
    """Write a table as pretty JSON (stable key order)."""
    path = Path(path) if path is not None else table_path()
    path.write_text(json.dumps(table, indent=2, sort_keys=True) + "\n")
    return path


_loaded_table: dict | None = None


def load_table(path: str | Path | None = None) -> dict:
    """Load a tuned table; the shipped default is cached per process."""
    global _loaded_table
    if path is not None:
        return json.loads(Path(path).read_text())
    if _loaded_table is None:
        shipped = table_path()
        _loaded_table = (
            json.loads(shipped.read_text()) if shipped.exists() else build_table()
        )
    return _loaded_table


def _nearest_size_key(entries: dict, size: tuple[int, int]) -> str:
    """The table size key closest to ``size`` (by log-area distance)."""
    area = max(1, size[0] * size[1])

    def distance(key: str) -> tuple[float, str]:
        kh, kw = key.split("x")
        return abs(math.log(int(kh) * int(kw)) - math.log(area)), key

    return min(sorted(entries), key=distance)


def tuned_tile_rows(
    kernel: str, size: tuple[int, int], workers: int, pool: str = "process"
) -> int | None:
    """Band height the tuned table recommends, or ``None`` if unknown.

    Snaps to the nearest tabulated frame size and worker count (ties
    toward fewer workers), because the executor must band *this* frame
    for *its* pool.  ``None`` — an unknown kernel or an empty table —
    falls back to the executor's one-band-per-worker default.
    """
    table = load_table()
    entries = table.get("kernels", {}).get(kernel)
    if not entries:
        return None
    sized = entries[_nearest_size_key(entries, size)]
    by_workers = sized.get("by_workers", {})
    if not by_workers:
        return None
    nearest = min(sorted(by_workers, key=int), key=lambda k: abs(int(k) - workers))
    return int(by_workers[nearest]["tile_rows"])


def main(argv: list[str] | None = None) -> None:
    """Regenerate the shipped table: ``python -m repro.parallel.autotune``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None, help="output path (default: the package-data table)"
    )
    args = parser.parse_args(argv)
    path = save_table(build_table(), args.out)
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
