"""Tiled parallel execution of the stereo kernel substrate.

The paper's premise is that exact stereo kernels must be restructured
for parallel hardware to serve in real time; this package is the
software analogue for the reproduction's own hot path.  The real
matchers that back every :class:`~repro.pipeline.quality.QualityProbe`
replay and figure benchmark run single-core out of the box;
:class:`TileExecutor` splits frames into overlap-halo row bands, fans
them across a process/thread pool, and stitches results that are
**bit-identical** to whole-frame execution (pinned by
``tests/test_parallel.py``; design notes in ``docs/performance.md``).

>>> from repro.parallel import TileExecutor, available_kernels
>>> available_kernels()
('bm', 'census', 'guided', 'sgm')
>>> TileExecutor(workers=4).workers
4
"""

from repro.parallel.executor import TileExecutor, available_kernels
from repro.parallel.tiles import RowBand, split_rows

__all__ = ["RowBand", "TileExecutor", "available_kernels", "split_rows"]
