"""Tiled parallel execution of the stereo kernel substrate.

The paper's premise is that exact stereo kernels must be restructured
for parallel hardware to serve in real time; this package is the
software analogue for the reproduction's own hot path.  The real
matchers that back every :class:`~repro.pipeline.quality.QualityProbe`
replay and figure benchmark run single-core out of the box;
:class:`TileExecutor` splits frames into overlap-halo row bands, fans
them across a process/thread pool, and stitches results that are
**bit-identical** to whole-frame execution (pinned by
``tests/test_parallel.py``; design notes in ``docs/performance.md``).

Two transports feed the pools: pickling (the classic baseline) and
named shared memory (:mod:`repro.parallel.shm`), which passes buffer
names instead of arrays; the default band sizes come from the
design-space-explored table in :mod:`repro.parallel.autotune`
(``tile_rows="auto"``).

>>> from repro.parallel import TileExecutor, available_kernels
>>> available_kernels()
('bm', 'census', 'guided', 'sgm')
>>> TileExecutor(workers=4).workers
4
"""

from typing import TYPE_CHECKING, Any

from repro.parallel.tiles import RowBand, Stencil, split_rows, stencil

if TYPE_CHECKING:  # the lazy names below, visible to type checkers
    from repro.parallel.autotune import (
        LatencyModel,
        TileConfig,
        search_config,
        tuned_tile_rows,
    )
    from repro.parallel.executor import TileExecutor, available_kernels
    from repro.parallel.shm import ShmArena, ShmHandle, shm_available

_AUTOTUNE_EXPORTS = ("LatencyModel", "TileConfig", "search_config", "tuned_tile_rows")
_EXECUTOR_EXPORTS = ("TileExecutor", "available_kernels")
_SHM_EXPORTS = ("ShmArena", "ShmHandle", "shm_available")


def __getattr__(name: str) -> Any:
    # Lazy for two reasons: `python -m repro.parallel.autotune` must not
    # re-execute a module the package import already pulled in, and the
    # kernel modules (`repro.stereo`, `repro.flow`) import their stencil
    # declarations from `repro.parallel.tiles` — an eager executor import
    # here would close an import cycle back into those half-initialised
    # modules.
    if name in _AUTOTUNE_EXPORTS:
        from repro.parallel import autotune

        return getattr(autotune, name)
    if name in _EXECUTOR_EXPORTS:
        from repro.parallel import executor

        return getattr(executor, name)
    if name in _SHM_EXPORTS:
        from repro.parallel import shm

        return getattr(shm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "LatencyModel",
    "RowBand",
    "ShmArena",
    "ShmHandle",
    "Stencil",
    "TileConfig",
    "TileExecutor",
    "available_kernels",
    "search_config",
    "shm_available",
    "split_rows",
    "stencil",
    "tuned_tile_rows",
]
