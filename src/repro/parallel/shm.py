"""Shared-memory transport for tiled kernel jobs.

Process-pool band jobs used to receive their inputs (and return their
outputs) by pickling whole arrays through the pool's pipes — for the
SGM direction fan-out that meant serialising the full ``(D, H, W)``
cost volume once per direction.  This module moves the arrays into
named POSIX shared memory instead: jobs are handed an
:class:`ShmHandle` (name + shape + dtype — a few hundred bytes) and
map the same physical pages the parent wrote.

Lifecycle: the parent side owns every segment through an
:class:`ShmArena` — it creates, unlinks, and closes them, and a
``weakref.finalize`` guard unlinks leftovers even if the owning call
dies mid-flight (the ``asv_``-prefixed names also make stray segments
easy to audit in ``/dev/shm``).  Workers only ever *attach*:
:func:`attached` maps a segment for the duration of a job and closes
the mapping on the way out.

Resource-tracker protocol: on this Python (< 3.13, no ``track=False``)
*every* ``SharedMemory`` — attach included — registers with the
resource tracker, whose cache is a *set* keyed by name.  The pool
workers are forked, so they share the parent's tracker: their attach
registrations are idempotent re-adds of the parent's own entry, and
nobody may unregister except the single parent-side ``unlink()``
(a per-attach unregister would remove the shared entry and make the
parent's later unlink a tracker error).  Keeping the entry registered
until unlink is also the crash-safety net — if the parent dies without
cleanup, the tracker unlinks the segment at exit.

>>> import numpy as np
>>> with ShmArena() as arena:
...     handle = arena.share(np.arange(6.0).reshape(2, 3))
...     with attached(handle) as arr:
...         float(arr.sum())
15.0
"""

from __future__ import annotations

import os
import secrets
import threading
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator

import numpy as np
from numpy.typing import DTypeLike

__all__ = [
    "ShmArena",
    "ShmHandle",
    "ShmSanitizeError",
    "attached",
    "shm_available",
    "sanitize_enabled",
    "arm_segment",
    "claim_region",
    "assert_covered",
]

#: every segment name starts with this, so a leak check is just
#: ``ls /dev/shm/asv_*``
SEGMENT_PREFIX = "asv_"


def shm_available() -> bool:
    """Whether named shared memory works on this platform."""
    try:
        seg = shared_memory.SharedMemory(
            name=SEGMENT_PREFIX + "probe_" + secrets.token_hex(4), create=True, size=8
        )
    except (OSError, ValueError):  # pragma: no cover - platform-dependent
        return False
    seg.unlink()
    seg.close()
    return True


@dataclass(frozen=True)
class ShmHandle:
    """Picklable reference to a shared array (name, not data)."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _as_array(handle: ShmHandle, seg: shared_memory.SharedMemory) -> np.ndarray:
    return np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=seg.buf)


def _close_quietly(seg: shared_memory.SharedMemory) -> None:
    """Close a mapping, tolerating still-exported numpy views.

    ``close()`` raises ``BufferError`` while any view of ``seg.buf`` is
    alive; the view's owner drops it moments later and the mapping is
    then reclaimed by ``SharedMemory.__del__`` — only the *name* must
    be released promptly, and that is ``unlink()``'s job.
    """
    try:
        seg.close()
    except BufferError:  # pragma: no cover - depends on caller ref timing
        pass


# ----------------------------------------------------------------------
# the opt-in write-overlap sanitizer (ASV_SHM_SANITIZE=1)
# ----------------------------------------------------------------------
#
# Band jobs write disjoint row ranges of one full-size output segment;
# nothing *enforces* the disjointness — a banding bug would make two
# jobs race on the same rows and the corruption would only surface as a
# wrong pixel somewhere downstream.  With ``ASV_SHM_SANITIZE=1`` the
# parent arms each float output segment by filling it with NaN (the
# "unwritten" sentinel — no tiled kernel produces NaN, which
# :func:`assert_covered` re-checks), every band job *claims* its target
# region by asserting it is still all-NaN before writing, and the
# parent asserts full coverage (no sentinel left) after the last job.
# Claimed-before-write + fully-covered-after == the bands partition the
# output.  The SGM direction fan-out is exempt by design: its jobs
# rewrite whole cycled slots, serialised by the bounded ``_iter_map``.


def sanitize_enabled() -> bool:
    """Whether the ``ASV_SHM_SANITIZE=1`` overlap sanitizer is armed.

    Read per call (not cached) so pool workers — which inherit the
    parent's environment — and tests see changes immediately.
    """
    return os.environ.get("ASV_SHM_SANITIZE", "") == "1"


class ShmSanitizeError(AssertionError):
    """An overlap/coverage violation caught by the shm sanitizer."""


def arm_segment(view: np.ndarray) -> bool:
    """Fill a float output segment with the unwritten sentinel.

    Returns whether the segment was armed (only floating dtypes have a
    NaN sentinel; every tiled kernel output is float32/float64).
    """
    if not np.issubdtype(view.dtype, np.floating):
        return False
    view.fill(np.nan)
    return True


def claim_region(dest: np.ndarray, index: tuple, label: str = "band") -> None:
    """Assert the target region is still unwritten, then let the write
    proceed.  Called by band jobs *in the worker* just before their
    ``np.copyto``; raises :class:`ShmSanitizeError` when another band
    already wrote any of these rows."""
    region = dest[index]
    if not np.issubdtype(region.dtype, np.floating):
        return
    if not np.all(np.isnan(region)):
        raise ShmSanitizeError(
            f"shm sanitizer: {label} writes rows already claimed by another "
            f"band (index {index!r}); row ranges must be disjoint"
        )


def assert_covered(view: np.ndarray, label: str = "output") -> None:
    """Assert every element of an armed segment was written exactly once
    (no sentinel survives).  Runs in the parent after the last job."""
    if not np.issubdtype(view.dtype, np.floating):
        return
    if np.any(np.isnan(view)):
        raise ShmSanitizeError(
            f"shm sanitizer: {label} has unwritten (or NaN-producing) "
            "elements after all bands completed; bands must cover every row"
        )


@contextmanager
def attached(handle: ShmHandle) -> Iterator[np.ndarray]:
    """Map a shared segment for the duration of a worker job.

    The mapping is closed on exit; the tracker registration made by the
    attach is intentionally left in place (see the module docstring —
    forked workers share the parent's tracker, and the registration set
    entry belongs to the parent until it unlinks).
    """
    seg = shared_memory.SharedMemory(name=handle.name)
    try:
        yield _as_array(handle, seg)
    finally:
        _close_quietly(seg)


class ShmArena:
    """Parent-owned set of shared-memory arrays with crash-safe cleanup.

    ``share`` copies an existing array into a fresh segment; ``alloc``
    creates an uninitialised output segment the parent can read back
    through the returned view.  ``release`` drops one segment early
    (the SGM fan-out frees each direction's output as soon as it is
    summed); ``close`` — also run by the context manager and by a
    ``weakref.finalize`` if the arena is dropped without it — unlinks
    everything that remains.

    The segment table is guarded by an ``RLock``: the finalizer runs on
    whatever thread drops the last reference (often the GC), so it can
    race a concurrent ``release``/``close`` on the owning thread —
    without the lock a double ``unlink`` of the same segment, or an
    unlink skipped entirely, is possible.  The lock is re-entrant
    because ``close`` calls ``_cleanup`` while already holding it, and
    it is passed to the finalizer explicitly (the finalizer must not
    keep ``self`` alive).
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._lock = threading.RLock()
        self._finalizer = weakref.finalize(
            self, ShmArena._cleanup, self._segments, self._lock
        )

    @staticmethod
    def _cleanup(
        segments: dict[str, shared_memory.SharedMemory], lock: threading.RLock
    ) -> None:
        with lock:
            for seg in segments.values():
                try:
                    seg.unlink()
                except Exception:  # pragma: no cover - best-effort teardown
                    pass
                _close_quietly(seg)
            segments.clear()

    def _create(
        self, shape: tuple[int, ...], dtype: DTypeLike
    ) -> tuple[ShmHandle, np.ndarray]:
        dtype = np.dtype(dtype)
        handle = ShmHandle(
            name=SEGMENT_PREFIX + secrets.token_hex(8),
            shape=tuple(int(s) for s in shape),
            dtype=dtype.str,
        )
        seg = shared_memory.SharedMemory(
            name=handle.name, create=True, size=max(1, handle.nbytes)
        )
        with self._lock:
            self._segments[handle.name] = seg
        return handle, _as_array(handle, seg)

    def share(self, array: np.ndarray) -> ShmHandle:
        """Copy ``array`` into a new shared segment, returning its handle."""
        array = np.ascontiguousarray(array)
        handle, view = self._create(array.shape, array.dtype)
        np.copyto(view, array)
        del view
        return handle

    def alloc(
        self, shape: tuple[int, ...], dtype: DTypeLike
    ) -> tuple[ShmHandle, np.ndarray]:
        """Create an output segment; the parent keeps the writable view."""
        return self._create(shape, dtype)

    def release(self, handle: ShmHandle) -> None:
        """Unlink one segment early (no-op if already released)."""
        with self._lock:
            seg = self._segments.pop(handle.name, None)
        if seg is not None:
            seg.unlink()
            _close_quietly(seg)

    def close(self) -> None:
        """Unlink every remaining segment (idempotent)."""
        with self._lock:  # re-entrant: _cleanup locks again
            ShmArena._cleanup(self._segments, self._lock)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
