"""Tiled multi-core execution of the stereo kernels.

:class:`TileExecutor` runs the four real matchers —
:func:`~repro.stereo.block_matching.block_match`,
:func:`~repro.stereo.census.census_block_match`,
:func:`~repro.stereo.sgm.sgm` and
:func:`~repro.stereo.block_matching.guided_block_match` — plus the
non-key flow kernels (:func:`~repro.flow.farneback.poly_expansion` and
:func:`~repro.flow.farneback.flow_iteration`, see
:meth:`TileExecutor.farneback_flow`) split into overlap-halo row bands
(:mod:`repro.parallel.tiles`) and fanned across a process or thread
pool, then stitches the bands back together.  The result is
**bit-identical** to whole-frame execution:

* the halo covers each kernel's vertical data dependence (the
  box-filter / census window radius), so every payload pixel sees the
  same inputs it would see un-tiled;
* the cost volumes' box filter computes each output as an independent
  window sum (:func:`repro.stereo.block_matching._box_mean`), so its
  rounding cannot depend on where a band starts;
* bands are stitched in order with plain concatenation.

SGM is the exception that proves the halo rule: its path aggregation
is a whole-image dynamic program (a vertical path runs top to bottom),
so *no finite halo* can make independently aggregated bands exact.
The SGM adapter therefore tiles the cost-volume build by rows and
parallelises the aggregation across the 2/4/8 path *directions* —
both embarrassingly parallel — and sums the per-direction volumes in
the same order :func:`~repro.stereo.sgm.sgm` does, keeping
bit-identity without approximating the DP.

Two knobs govern *how* the work is fanned out.  ``transport`` selects
how arrays reach process-pool workers: ``"pickle"`` serialises them
through the pool pipes, ``"shm"`` passes :mod:`repro.parallel.shm`
buffer names instead (the workers map the parent's pages), and the
default ``"auto"`` uses shared memory whenever a process pool is
actually in play.  ``tile_rows="auto"`` (the default) sizes the row
bands from the design-space-explored table in
:mod:`repro.parallel.autotune` instead of the one-band-per-worker
fallback.  Neither knob affects the computed values — every transport
and banding produces bit-identical output, pinned by the
seam-equivalence tests.

``workers=1`` executes inline (no pool, no pickling, no shared
memory) and is the reference the seam-equivalence tests pin every
multi-worker configuration against.  The ``precision`` knob selects
the cost-volume dtype for every kernel the executor runs.

>>> import numpy as np
>>> from repro.datasets import sceneflow_scene
>>> from repro.stereo import block_match
>>> frame = sceneflow_scene(3, size=(31, 48), max_disp=12).render(0)
>>> with TileExecutor(workers=2, pool="thread") as ex:
...     tiled = ex.block_match(frame.left, frame.right, 12)
>>> np.array_equal(tiled, block_match(frame.left, frame.right, 12))
True
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import ExitStack
from itertools import islice
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.flow import farneback as _fb
from repro.flow.farneback import (
    EXPANSION_STENCIL,
    FLOW_STENCIL,
    FrameExpansion,
    _as_gray,
    _pyramid,
    flow_iteration,
    poly_expansion,
)
from repro.parallel.shm import (
    ShmArena,
    ShmHandle,
    arm_segment,
    assert_covered,
    attached,
    claim_region,
    sanitize_enabled,
    shm_available,
)
from repro.parallel.tiles import split_rows, stencil
from repro.stereo.block_matching import (
    BLOCK_STENCIL,
    block_match,
    guided_block_match,
    resolve_precision,
    sad_cost_volume,
)
from repro.stereo.census import CENSUS_STENCIL, census_block_match, census_transform
from repro.stereo.sgm import _DIRECTIONS_8, aggregate_path, wta_disparity

__all__ = ["TileExecutor", "available_kernels"]


@stencil(CENSUS_STENCIL)
def _census_coded(left: np.ndarray, right_codes: np.ndarray, **kwargs) -> np.ndarray:
    """Band kernel: census matching against precomputed right codes.

    The right image's census codes depend only on the right frame, so
    the tiled adapter computes them once in the parent and hands every
    band the same code rows instead of re-transforming the right band
    per job.
    """
    return census_block_match(left, None, right_codes=right_codes, **kwargs)


@stencil(EXPANSION_STENCIL)
def _poly_band(img: np.ndarray, **kwargs) -> np.ndarray:
    """Band kernel: polynomial expansion packed into one dense map.

    ``(A, b)`` of a band, packed as the five distinct channels
    ``[A00, A01, A11, b0, b1]`` of an (h, w, 5) array (``A`` is
    symmetric) so the generic banded machinery — which stitches one
    output array — applies unchanged; the executor unpacks on the way
    out.  Packing copies values bit-for-bit.
    """
    A, b = poly_expansion(img, **kwargs)
    out = np.empty(A.shape[:2] + (5,), A.dtype)
    out[..., 0] = A[..., 0, 0]
    out[..., 1] = A[..., 0, 1]
    out[..., 2] = A[..., 1, 1]
    out[..., 3] = b[..., 0]
    out[..., 4] = b[..., 1]
    return out


#: whole-frame callables a band job may name (names, not functions,
#: cross the process boundary)
_BAND_KERNELS: dict[str, Callable[..., np.ndarray]] = {
    "bm": block_match,
    "census": census_block_match,
    "census_coded": _census_coded,
    "guided": guided_block_match,
    "poly": _poly_band,
    "sad_cost": sad_cost_volume,
}

#: band-kernel name -> the kernel name the autotuned table is keyed by
_TUNE_KEYS = {
    "sad_cost": "sgm",
    "census_coded": "census",
    "poly": "farneback",
    "flow": "farneback",
}

_POOLS: dict[str, Callable[..., Executor]] = {
    "process": ProcessPoolExecutor,
    "thread": ThreadPoolExecutor,
}

_TRANSPORTS = ("auto", "pickle", "shm")


def available_kernels() -> tuple[str, ...]:
    """Names accepted by :meth:`TileExecutor.kernel`.

    >>> available_kernels()
    ('bm', 'census', 'guided', 'sgm')
    """
    return ("bm", "census", "guided", "sgm")


def _run_band(
    kernel: str,
    arrays: Sequence[np.ndarray],
    kwargs: dict,
    crop: tuple[int, int],
    row_axis: int,
) -> np.ndarray:
    """Execute one haloed band and crop it back to its payload rows.

    Top-level so process pools can pickle the job; the kernel is named
    rather than passed.
    """
    out = _BAND_KERNELS[kernel](*arrays, **kwargs)
    index = (slice(None),) * row_axis + (slice(*crop),)
    return out[index]


def _run_band_shm(
    kernel: str,
    handles: Sequence[ShmHandle],
    lo: int,
    hi: int,
    kwargs: dict,
    crop: tuple[int, int],
    row_axis: int,
    out_handle: ShmHandle,
    start: int,
) -> None:
    """Shared-memory twin of :func:`_run_band`.

    Inputs arrive as segment handles plus the band's row range; the
    cropped payload is written straight into its rows of the full-size
    output segment.  Nothing but the handles crosses the pool pipe —
    the return value is ``None``.
    """
    with ExitStack() as stack:
        arrays = tuple(stack.enter_context(attached(h))[lo:hi] for h in handles)
        out = _BAND_KERNELS[kernel](*arrays, **kwargs)
        del arrays
    part = out[(slice(None),) * row_axis + (slice(*crop),)]
    with attached(out_handle) as dest:
        rows = (slice(None),) * row_axis
        rows += (slice(start, start + part.shape[row_axis]),)
        if sanitize_enabled():
            claim_region(dest, rows, label=f"{kernel} band")
        np.copyto(dest[rows], part)


def _flow_band(
    A1b: np.ndarray,
    b1b: np.ndarray,
    A2: np.ndarray,
    b2: np.ndarray,
    flowb: np.ndarray,
    window_sigma: float,
    row0: int,
    crop: tuple[int, int],
) -> np.ndarray:
    """One banded Farneback iteration (top-level for pickling).

    ``A1``/``b1``/``flow`` arrive as haloed row bands; ``A2``/``b2``
    stay whole-frame because the warp gathers reach anywhere in the
    frame, and ``row0`` anchors the band's coordinates globally (see
    :func:`repro.flow.farneback.flow_iteration`).
    """
    out = flow_iteration(A1b, b1b, A2, b2, flowb, window_sigma=window_sigma, row0=row0)
    return out[slice(*crop)]


def _flow_band_shm(
    handles: Sequence[ShmHandle],
    lo: int,
    hi: int,
    window_sigma: float,
    crop: tuple[int, int],
    out_handle: ShmHandle,
    start: int,
) -> None:
    """Shared-memory twin of :func:`_flow_band`.

    All five inputs are shared whole-frame once; each job slices its
    own ``A1``/``b1``/``flow`` rows out of the mapped segments (the
    warp reads ``A2``/``b2`` globally either way) and writes its
    payload rows straight into the full-size flow output segment.
    """
    with ExitStack() as stack:
        A1, b1, A2, b2, flow = (stack.enter_context(attached(h)) for h in handles)
        out = flow_iteration(
            A1[lo:hi], b1[lo:hi], A2, b2, flow[lo:hi],
            window_sigma=window_sigma, row0=lo,
        )
        del A1, b1, A2, b2, flow
    part = out[slice(*crop)]
    with attached(out_handle) as dest:
        rows = (slice(start, start + part.shape[0]),)
        if sanitize_enabled():
            claim_region(dest, rows, label="flow band")
        np.copyto(dest[rows], part)


def _run_direction(
    cost: np.ndarray, dy: int, dx: int, p1: float, p2: float
) -> np.ndarray:
    """One SGM path-direction aggregation (top-level for pickling)."""
    return aggregate_path(cost, dy, dx, p1, p2)


def _run_direction_shm(
    cost_handle: ShmHandle,
    dy: int,
    dx: int,
    p1: float,
    p2: float,
    out_handle: ShmHandle,
) -> None:
    """Shared-memory twin of :func:`_run_direction`.

    The cost volume is attached read-only by name (every direction job
    maps the same pages) and the aggregated volume lands in the
    caller's output slot segment.
    """
    with attached(cost_handle) as cost:
        part = aggregate_path(cost, dy, dx, p1, p2)
    with attached(out_handle) as out:
        np.copyto(out, part)


def _band_output(
    kernel: str, arrays: Sequence[np.ndarray], kwargs: dict
) -> tuple[tuple[int, ...], np.dtype]:
    """Full-frame output (shape, dtype) of a band kernel."""
    h, w = arrays[0].shape[:2]
    if kernel == "sad_cost":
        return (kwargs["max_disp"], h, w), resolve_precision(kwargs["precision"])
    if kernel == "poly":
        return (h, w, 5), resolve_precision(kwargs["precision"])
    return (h, w), np.dtype(np.float64)


class TileExecutor:
    """Fan stereo kernels across row-band tiles on a worker pool.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` (the default) executes inline — same code
        path, no pool — and is the bit-identical reference.
    pool:
        ``"process"`` (default; real multi-core) or ``"thread"`` (no
        pickling; NumPy releases the GIL in the heavy ops, so scaling
        is workload-dependent).
    tile_rows:
        Rows per band.  ``"auto"`` (default) looks the band size up in
        the autotuned config table (:mod:`repro.parallel.autotune`)
        for this kernel, frame size and worker count; ``None`` cuts
        one band per worker; a small explicit value exercises many
        more bands than workers (the seam-equivalence tests use this).
    precision:
        Cost-volume dtype knob, ``"float64"`` (default) or
        ``"float32"``, passed to every kernel the executor runs.
    transport:
        How arrays reach process-pool workers.  ``"auto"`` (default)
        uses shared memory whenever a process pool is in play and
        falls back to pickling otherwise; ``"pickle"`` and ``"shm"``
        force one or the other.  Thread pools share the address space
        already, so ``"shm"`` demands a process pool.

    The pool is created lazily on first multi-band call; use the
    executor as a context manager (or call :meth:`close`) to release
    worker processes deterministically.

    >>> TileExecutor(workers=2, pool="thread", tile_rows=8)
    TileExecutor(workers=2, pool='thread', tile_rows=8, precision='float64', transport='auto')
    >>> TileExecutor(pool="greenlet")
    Traceback (most recent call last):
        ...
    ValueError: pool must be one of ('process', 'thread'), got 'greenlet'
    >>> TileExecutor(transport="carrier-pigeon")
    Traceback (most recent call last):
        ...
    ValueError: transport must be one of ('auto', 'pickle', 'shm'), got 'carrier-pigeon'
    """

    def __init__(
        self,
        workers: int = 1,
        pool: str = "process",
        tile_rows: int | str | None = "auto",
        precision: str = "float64",
        transport: str = "auto",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if pool not in _POOLS:
            raise ValueError(
                f"pool must be one of {tuple(sorted(_POOLS))}, got {pool!r}"
            )
        if tile_rows is not None and tile_rows != "auto":
            if not isinstance(tile_rows, int) or tile_rows < 1:
                raise ValueError("tile_rows must be a positive int, 'auto' or None")
        if transport not in _TRANSPORTS:
            raise ValueError(
                f"transport must be one of {_TRANSPORTS}, got {transport!r}"
            )
        if transport == "shm" and pool != "process":
            raise ValueError(
                "transport='shm' requires pool='process'; thread workers "
                "already share the address space"
            )
        resolve_precision(precision)  # validate eagerly
        self.workers = int(workers)
        self.pool = pool
        self.tile_rows = tile_rows
        self.precision = precision
        self.transport = transport
        # resolved once: shared memory moves data only when a process
        # pool is actually in play (workers=1 stays inline on purpose)
        self._shm = (
            transport != "pickle"
            and pool == "process"
            and self.workers > 1
            and shm_available()
        )
        if transport == "shm" and self.workers > 1 and not self._shm:
            raise ValueError(  # pragma: no cover - platform-dependent
                "shared memory is not available on this platform"
            )
        self._pool: Executor | None = None

    def __repr__(self) -> str:
        return (
            f"TileExecutor(workers={self.workers}, pool={self.pool!r}, "
            f"tile_rows={self.tile_rows!r}, precision={self.precision!r}, "
            f"transport={self.transport!r})"
        )

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "TileExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _iter_map(
        self, fn: Callable[..., Any], jobs: list[tuple]
    ) -> Iterator[Any]:
        """Yield ``fn``'s results over argument tuples, in job order.

        Lazy so reducers (the SGM direction sum) can consume one
        result at a time, and **bounded**: at most ``workers`` jobs
        are in flight at once.  Eager submission would hold every
        job's payload alive simultaneously — for the SGM fan-out that
        was all 8 pickled cost-volume copies — and the bound is also
        what lets the shared-memory path cycle ``workers`` output
        slots.  The next job is submitted only after the previous
        result has been *consumed* (the generator is resumed), so a
        yielded buffer is never overwritten while the caller reads it.
        """
        if self.workers == 1 or len(jobs) == 1:
            for job in jobs:
                yield fn(*job)
            return
        pool = self._pool
        if pool is None:
            pool = self._pool = _POOLS[self.pool](max_workers=self.workers)
        queue = iter(jobs)
        pending = deque(
            pool.submit(fn, *job) for job in islice(queue, self.workers)
        )
        while pending:
            yield pending.popleft().result()
            job = next(queue, None)
            if job is not None:
                pending.append(pool.submit(fn, *job))

    def _map(self, fn: Callable[..., Any], jobs: list[tuple]) -> list:
        """Run ``fn`` over argument tuples, results in job order."""
        return list(self._iter_map(fn, jobs))

    # ------------------------------------------------------------------
    # row-band tiling
    # ------------------------------------------------------------------
    def _n_bands(
        self, height: int, kernel: str, frame_shape: tuple[int, ...]
    ) -> int:
        tile_rows = self.tile_rows
        if tile_rows == "auto":
            if self.workers == 1:
                return 1  # inline reference path: one band, no pool
            from repro.parallel.autotune import tuned_tile_rows

            tile_rows = tuned_tile_rows(
                _TUNE_KEYS.get(kernel, kernel),
                frame_shape[:2],
                self.workers,
                self.pool,
            )
            if tile_rows is not None:
                # the table is tuned at its own grid sizes; on a frame
                # smaller than the snapped entry, never cut fewer bands
                # than there are workers
                tile_rows = min(tile_rows, -(-height // self.workers))
        if tile_rows is not None:
            return -(-height // tile_rows)  # ceil
        return self.workers

    def _tiled(
        self,
        kernel: str,
        arrays: Sequence[np.ndarray],
        kwargs: dict,
        halo: int,
        row_axis: int = 0,
        arena: ShmArena | None = None,
    ) -> Any:
        """Run ``kernel`` over haloed row bands and stitch the payloads.

        With the shared-memory transport the inputs are shared once,
        whole-frame, and every band writes its payload straight into
        its rows of one full-size output segment — no per-band pickling
        and no parent-side concatenation.  Passing an ``arena`` asks
        for the output *in shared memory*: the return value becomes
        ``(view, handle)`` and the caller owns the segment through the
        arena (the SGM adapter reuses the cost volume's segment for
        the direction fan-out without another copy).
        """
        arrays = tuple(np.asarray(a) for a in arrays)
        height = arrays[0].shape[0]
        bands = split_rows(height, self._n_bands(height, kernel, arrays[0].shape), halo)
        if len(bands) == 1 or not self._shm:
            if len(bands) == 1:
                out = _run_band(kernel, arrays, kwargs, bands[0].crop, row_axis)
            else:
                parts = self._map(
                    _run_band,
                    [
                        (
                            kernel,
                            tuple(a[band.lo : band.hi] for a in arrays),
                            kwargs,
                            band.crop,
                            row_axis,
                        )
                        for band in bands
                    ],
                )
                out = np.concatenate(parts, axis=row_axis)
            if arena is None:
                return out
            handle, view = arena.alloc(out.shape, out.dtype)
            np.copyto(view, out)
            return view, handle
        local = arena if arena is not None else ShmArena()
        try:
            in_handles = tuple(local.share(a) for a in arrays)
            out_shape, out_dtype = _band_output(kernel, arrays, kwargs)
            out_handle, out_view = local.alloc(out_shape, out_dtype)
            sanitize = sanitize_enabled() and arm_segment(out_view)
            for _ in self._iter_map(
                _run_band_shm,
                [
                    (
                        kernel,
                        in_handles,
                        band.lo,
                        band.hi,
                        kwargs,
                        band.crop,
                        row_axis,
                        out_handle,
                        band.start,
                    )
                    for band in bands
                ],
            ):
                pass
            if sanitize:
                assert_covered(out_view, label=f"{kernel} output")
            for handle in in_handles:  # free the input frames early
                local.release(handle)
            if arena is not None:
                return out_view, out_handle
            out = out_view.copy()
            del out_view
            return out
        finally:
            if arena is None:
                local.close()

    # ------------------------------------------------------------------
    # the four matchers
    # ------------------------------------------------------------------
    def block_match(
        self,
        left: np.ndarray,
        right: np.ndarray,
        max_disp: int,
        block_size: int = 9,
        subpixel: bool = True,
    ) -> np.ndarray:
        """Tiled :func:`~repro.stereo.block_matching.block_match`."""
        return self._tiled(
            "bm",
            (left, right),
            dict(
                max_disp=max_disp,
                block_size=block_size,
                subpixel=subpixel,
                precision=self.precision,
            ),
            halo=BLOCK_STENCIL.halo(block_size=block_size),
        )

    def census_block_match(
        self,
        left: np.ndarray,
        right: np.ndarray,
        max_disp: int,
        window: int = 5,
        subpixel: bool = True,
    ) -> np.ndarray:
        """Tiled :func:`~repro.stereo.census.census_block_match`.

        Multi-band runs compute the right image's census transform
        once, in the parent, and hand every band the precomputed code
        rows (the codes depend only on the right frame); the
        single-band inline path calls the plain two-image matcher and
        is the bit-identity reference for both.
        """
        left = np.asarray(left)
        kwargs = dict(
            max_disp=max_disp,
            window=window,
            subpixel=subpixel,
            precision=self.precision,
        )
        if self._n_bands(left.shape[0], "census", left.shape) == 1:
            return self._tiled(
                "census", (left, right), kwargs,
                halo=CENSUS_STENCIL.halo(window=window),
            )
        codes = census_transform(np.asarray(right), window)
        return self._tiled(
            "census_coded", (left, codes), kwargs,
            halo=CENSUS_STENCIL.halo(window=window),
        )

    def guided_block_match(
        self,
        left: np.ndarray,
        right: np.ndarray,
        init: np.ndarray,
        radius: int = 4,
        block_size: int = 9,
        subpixel: bool = True,
        accept_margin: float = 0.1,
    ) -> np.ndarray:
        """Tiled :func:`~repro.stereo.block_matching.guided_block_match`.

        The per-pixel init map is banded alongside the images; the
        guided gather is same-row, so the halo is still just the
        box-filter radius no matter how large ``radius`` is.
        """
        return self._tiled(
            "guided",
            (left, right, init),
            dict(
                radius=radius,
                block_size=block_size,
                subpixel=subpixel,
                accept_margin=accept_margin,
                precision=self.precision,
            ),
            halo=BLOCK_STENCIL.halo(block_size=block_size),
        )

    def sgm(
        self,
        left: np.ndarray,
        right: np.ndarray,
        max_disp: int,
        block_size: int = 5,
        p1: float = 0.05,
        p2: float = 0.5,
        paths: int = 8,
        subpixel: bool = True,
    ) -> np.ndarray:
        """Parallel :func:`~repro.stereo.sgm.sgm`.

        The cost volume is built from row bands; the aggregation — a
        whole-image DP that no finite halo can tile exactly — is
        parallelised across path directions instead, and the
        per-direction volumes are summed in :func:`~repro.stereo.sgm.
        sgm`'s direction order so the result stays bit-identical.

        With the shared-memory transport the cost volume is built
        straight into a shared segment; every direction job attaches
        the same pages by name (nothing is pickled per direction) and
        writes its aggregated volume into one of ``min(workers,
        paths)`` cycled output slots — the bounded :meth:`_iter_map`
        guarantees a slot's previous result is consumed before the job
        that reuses it is submitted.
        """
        if paths not in (2, 4, 8):
            raise ValueError("paths must be 2, 4 or 8")
        cost_kwargs = dict(
            max_disp=max_disp, block_size=block_size, precision=self.precision
        )
        directions = _DIRECTIONS_8[:paths]
        if not self._shm:
            cost = self._tiled(
                "sad_cost",
                (left, right),
                cost_kwargs,
                halo=BLOCK_STENCIL.halo(block_size=block_size),
                row_axis=1,
            )
            total = np.zeros_like(cost)
            # consume lazily, in sgm()'s direction order: bit-identical
            # summation while holding one aggregated volume at a time
            for part in self._iter_map(
                _run_direction,
                [(cost, dy, dx, p1, p2) for dy, dx in directions],
            ):
                total += part
            return wta_disparity(total, subpixel)
        with ShmArena() as arena:
            cost_view, cost_handle = self._tiled(
                "sad_cost",
                (left, right),
                cost_kwargs,
                halo=BLOCK_STENCIL.halo(block_size=block_size),
                row_axis=1,
                arena=arena,
            )
            n_slots = min(self.workers, len(directions))
            slots = [
                arena.alloc(cost_view.shape, cost_view.dtype) for _ in range(n_slots)
            ]
            total = np.zeros_like(cost_view)
            del cost_view
            jobs = [
                (cost_handle, dy, dx, p1, p2, slots[i % n_slots][0])
                for i, (dy, dx) in enumerate(directions)
            ]
            for i, _ in enumerate(self._iter_map(_run_direction_shm, jobs)):
                np.add(total, slots[i % n_slots][1], out=total)
            slots.clear()
            return wta_disparity(total, subpixel)

    # ------------------------------------------------------------------
    # the non-key flow kernels
    # ------------------------------------------------------------------
    def poly_expansion(
        self,
        img: np.ndarray,
        sigma: float = 1.5,
        radius: int | None = None,
        precision: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tiled :func:`~repro.flow.farneback.poly_expansion`.

        The moment filters' vertical reach is the tap radius, so that
        is the halo; each band's expansion is an independent pair of
        separable sweeps and the stitched ``(A, b)`` is bit-identical
        to the whole-frame call.  ``precision=None`` (the default)
        uses the executor's own precision knob.
        """
        if precision is None:
            precision = self.precision
        halo = EXPANSION_STENCIL.halo(sigma=sigma, radius=radius)
        packed = self._tiled(
            "poly",
            (img,),
            dict(sigma=sigma, radius=radius, precision=precision),
            halo=halo,
        )
        A = np.empty(packed.shape[:2] + (2, 2), packed.dtype)
        A[..., 0, 0] = packed[..., 0]
        A[..., 0, 1] = packed[..., 1]
        A[..., 1, 0] = packed[..., 1]
        A[..., 1, 1] = packed[..., 2]
        b = np.ascontiguousarray(packed[..., 3:5])
        return A, b

    def expand_frame(
        self,
        frame: np.ndarray,
        levels: int = 3,
        sigma: float = 1.5,
        radius: int | None = None,
        precision: str | None = None,
    ) -> FrameExpansion:
        """:func:`~repro.flow.farneback.expand_frame` with every
        pyramid level expanded through :meth:`poly_expansion`.

        The pyramid itself is built in the parent (downsampling is a
        fraction of the expansion cost); only the per-level expansions
        fan out.
        """
        if precision is None:
            precision = self.precision
        dtype = resolve_precision(precision)
        pyramid = _pyramid(_as_gray(frame, dtype), levels, dtype)
        coeffs = tuple(
            self.poly_expansion(p, sigma=sigma, radius=radius, precision=precision)
            for p in pyramid
        )
        return FrameExpansion(
            coeffs=coeffs,
            shapes=tuple(p.shape for p in pyramid),
            levels=levels,
            sigma=sigma,
            radius=radius,
            precision=precision,
        )

    def flow_iteration(
        self,
        A1: np.ndarray,
        b1: np.ndarray,
        A2: np.ndarray,
        b2: np.ndarray,
        flow: np.ndarray,
        window_sigma: float = 4.0,
    ) -> np.ndarray:
        """Tiled :func:`~repro.flow.farneback.flow_iteration`.

        ``A1``/``b1``/``flow`` are banded; ``A2``/``b2`` go to every
        band whole (the warp gathers reach anywhere in the frame), and
        each band's absolute first row anchors its coordinates via the
        kernel's ``row0`` hook.  The halo is the Gaussian averaging
        window's tap radius — everything upstream of the blur is
        per-pixel, everything downstream reads only blurred rows.
        """
        A1, b1, A2, b2, flow = (np.asarray(a) for a in (A1, b1, A2, b2, flow))
        height = flow.shape[0]
        halo = FLOW_STENCIL.halo(window_sigma=window_sigma)
        bands = split_rows(height, self._n_bands(height, "flow", flow.shape), halo)
        if len(bands) == 1:
            return flow_iteration(A1, b1, A2, b2, flow, window_sigma=window_sigma)
        if not self._shm:
            parts = self._map(
                _flow_band,
                [
                    (
                        A1[band.lo : band.hi],
                        b1[band.lo : band.hi],
                        A2,
                        b2,
                        flow[band.lo : band.hi],
                        window_sigma,
                        band.lo,
                        band.crop,
                    )
                    for band in bands
                ],
            )
            return np.concatenate(parts, axis=0)
        with ShmArena() as arena:
            handles = tuple(arena.share(a) for a in (A1, b1, A2, b2, flow))
            out_handle, out_view = arena.alloc(flow.shape, flow.dtype)
            sanitize = sanitize_enabled() and arm_segment(out_view)
            for _ in self._iter_map(
                _flow_band_shm,
                [
                    (handles, band.lo, band.hi, window_sigma, band.crop,
                     out_handle, band.start)
                    for band in bands
                ],
            ):
                pass
            if sanitize:
                assert_covered(out_view, label="flow output")
            return out_view.copy()

    def flow_from_expansions(
        self,
        exp0: FrameExpansion,
        exp1: FrameExpansion,
        iterations: int = 3,
        window_sigma: float = 4.0,
    ) -> np.ndarray:
        """:func:`~repro.flow.farneback.flow_from_expansions` with the
        per-level update tiled through :meth:`flow_iteration`."""
        return _fb.flow_from_expansions(
            exp0, exp1, iterations, window_sigma, step=self.flow_iteration
        )

    def farneback_flow(
        self,
        frame0: np.ndarray,
        frame1: np.ndarray,
        levels: int = 3,
        iterations: int = 3,
        sigma: float = 1.5,
        window_sigma: float = 4.0,
        precision: str | None = None,
    ) -> np.ndarray:
        """Tiled :func:`~repro.flow.farneback.farneback_flow`.

        The executor exposes the same ``expand_frame`` /
        ``flow_from_expansions`` split as :mod:`repro.flow.farneback`,
        so it can be passed wholesale as :class:`repro.core.ism.ISM`'s
        ``flow=`` implementation — the cross-frame expansion cache then
        caches *tiled* expansions.
        """
        exp0 = self.expand_frame(frame0, levels, sigma=sigma, precision=precision)
        exp1 = self.expand_frame(frame1, levels, sigma=sigma, precision=precision)
        return self.flow_from_expansions(exp0, exp1, iterations, window_sigma)

    def kernel(self, name: str) -> Callable[..., np.ndarray]:
        """The tiled kernel registered under ``name``.

        ``"bm"`` / ``"census"`` / ``"sgm"`` return matchers with the
        ``(left, right, max_disp, ...)`` signature the serving stack's
        matcher registry expects; ``"guided"`` returns the ISM
        refinement with its ``(left, right, init, ...)`` signature.

        >>> ex = TileExecutor()
        >>> ex.kernel("bm").__name__
        'block_match'
        >>> ex.kernel("orb")
        Traceback (most recent call last):
            ...
        ValueError: unknown kernel 'orb'; choose from ('bm', 'census', 'guided', 'sgm')
        """
        kernels: dict[str, Callable[..., np.ndarray]] = {
            "bm": self.block_match,
            "census": self.census_block_match,
            "guided": self.guided_block_match,
            "sgm": self.sgm,
        }
        if name not in kernels:
            raise ValueError(
                f"unknown kernel {name!r}; choose from {available_kernels()}"
            )
        return kernels[name]
