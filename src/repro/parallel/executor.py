"""Tiled multi-core execution of the stereo kernels.

:class:`TileExecutor` runs the four real matchers —
:func:`~repro.stereo.block_matching.block_match`,
:func:`~repro.stereo.census.census_block_match`,
:func:`~repro.stereo.sgm.sgm` and
:func:`~repro.stereo.block_matching.guided_block_match` — split into
overlap-halo row bands (:mod:`repro.parallel.tiles`) and fanned across
a process or thread pool, then stitches the bands back together.  The
result is **bit-identical** to whole-frame execution:

* the halo covers each kernel's vertical data dependence (the
  box-filter / census window radius), so every payload pixel sees the
  same inputs it would see un-tiled;
* the cost volumes' box filter computes each output as an independent
  window sum (:func:`repro.stereo.block_matching._box_mean`), so its
  rounding cannot depend on where a band starts;
* bands are stitched in order with plain concatenation.

SGM is the exception that proves the halo rule: its path aggregation
is a whole-image dynamic program (a vertical path runs top to bottom),
so *no finite halo* can make independently aggregated bands exact.
The SGM adapter therefore tiles the cost-volume build by rows and
parallelises the aggregation across the 2/4/8 path *directions* —
both embarrassingly parallel — and sums the per-direction volumes in
the same order :func:`~repro.stereo.sgm.sgm` does, keeping
bit-identity without approximating the DP.

``workers=1`` executes inline (no pool, no pickling) and is the
reference the seam-equivalence tests pin every multi-worker
configuration against.  The ``precision`` knob selects the cost-volume
dtype for every kernel the executor runs.

>>> import numpy as np
>>> from repro.datasets import sceneflow_scene
>>> from repro.stereo import block_match
>>> frame = sceneflow_scene(3, size=(31, 48), max_disp=12).render(0)
>>> with TileExecutor(workers=2, pool="thread") as ex:
...     tiled = ex.block_match(frame.left, frame.right, 12)
>>> np.array_equal(tiled, block_match(frame.left, frame.right, 12))
True
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.parallel.tiles import split_rows
from repro.stereo.block_matching import (
    block_match,
    guided_block_match,
    resolve_precision,
    sad_cost_volume,
)
from repro.stereo.census import census_block_match
from repro.stereo.sgm import _DIRECTIONS_8, aggregate_path, wta_disparity

__all__ = ["TileExecutor", "available_kernels"]

#: whole-frame callables a band job may name (names, not functions,
#: cross the process boundary)
_BAND_KERNELS = {
    "bm": block_match,
    "census": census_block_match,
    "guided": guided_block_match,
    "sad_cost": sad_cost_volume,
}

_POOLS = {"process": ProcessPoolExecutor, "thread": ThreadPoolExecutor}


def available_kernels() -> tuple[str, ...]:
    """Names accepted by :meth:`TileExecutor.kernel`.

    >>> available_kernels()
    ('bm', 'census', 'guided', 'sgm')
    """
    return ("bm", "census", "guided", "sgm")


def _run_band(kernel: str, arrays, kwargs, crop, row_axis: int):
    """Execute one haloed band and crop it back to its payload rows.

    Top-level so process pools can pickle the job; the kernel is named
    rather than passed.
    """
    out = _BAND_KERNELS[kernel](*arrays, **kwargs)
    index = (slice(None),) * row_axis + (slice(*crop),)
    return out[index]


def _run_direction(cost, dy: int, dx: int, p1: float, p2: float):
    """One SGM path-direction aggregation (top-level for pickling)."""
    return aggregate_path(cost, dy, dx, p1, p2)


class TileExecutor:
    """Fan stereo kernels across row-band tiles on a worker pool.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` (the default) executes inline — same code
        path, no pool — and is the bit-identical reference.
    pool:
        ``"process"`` (default; real multi-core, inputs are pickled to
        the workers) or ``"thread"`` (no pickling; NumPy releases the
        GIL in the heavy ops, so scaling is workload-dependent).
    tile_rows:
        Rows per band.  ``None`` (default) cuts one band per worker;
        a small explicit value exercises many more bands than workers
        (the seam-equivalence tests use this).
    precision:
        Cost-volume dtype knob, ``"float64"`` (default) or
        ``"float32"``, passed to every kernel the executor runs.

    The pool is created lazily on first multi-band call; use the
    executor as a context manager (or call :meth:`close`) to release
    worker processes deterministically.

    >>> TileExecutor(workers=2, pool="thread", tile_rows=8)
    TileExecutor(workers=2, pool='thread', tile_rows=8, precision='float64')
    >>> TileExecutor(pool="greenlet")
    Traceback (most recent call last):
        ...
    ValueError: pool must be one of ('process', 'thread'), got 'greenlet'
    """

    def __init__(
        self,
        workers: int = 1,
        pool: str = "process",
        tile_rows: int | None = None,
        precision: str = "float64",
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if pool not in _POOLS:
            raise ValueError(
                f"pool must be one of {tuple(sorted(_POOLS))}, got {pool!r}"
            )
        if tile_rows is not None and tile_rows < 1:
            raise ValueError("tile_rows must be >= 1 (or None)")
        resolve_precision(precision)  # validate eagerly
        self.workers = int(workers)
        self.pool = pool
        self.tile_rows = tile_rows
        self.precision = precision
        self._pool: Executor | None = None

    def __repr__(self):
        return (
            f"TileExecutor(workers={self.workers}, pool={self.pool!r}, "
            f"tile_rows={self.tile_rows}, precision={self.precision!r})"
        )

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "TileExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _iter_map(self, fn, jobs: list[tuple]):
        """Yield ``fn``'s results over argument tuples, in job order.

        Lazy so reducers (the SGM direction sum) can consume one
        result at a time instead of holding every part in memory.
        """
        if self.workers == 1 or len(jobs) == 1:
            for job in jobs:
                yield fn(*job)
            return
        if self._pool is None:
            self._pool = _POOLS[self.pool](max_workers=self.workers)
        for future in [self._pool.submit(fn, *job) for job in jobs]:
            yield future.result()

    def _map(self, fn, jobs: list[tuple]) -> list:
        """Run ``fn`` over argument tuples, results in job order."""
        return list(self._iter_map(fn, jobs))

    # ------------------------------------------------------------------
    # row-band tiling
    # ------------------------------------------------------------------
    def _n_bands(self, height: int) -> int:
        if self.tile_rows is not None:
            return -(-height // self.tile_rows)  # ceil
        return self.workers

    def _tiled(self, kernel, arrays, kwargs, halo, row_axis=0) -> np.ndarray:
        arrays = tuple(np.asarray(a) for a in arrays)
        height = arrays[0].shape[0]
        bands = split_rows(height, self._n_bands(height), halo)
        if len(bands) == 1:
            return _run_band(kernel, arrays, kwargs, bands[0].crop, row_axis)
        parts = self._map(
            _run_band,
            [
                (
                    kernel,
                    tuple(a[band.lo : band.hi] for a in arrays),
                    kwargs,
                    band.crop,
                    row_axis,
                )
                for band in bands
            ],
        )
        return np.concatenate(parts, axis=row_axis)

    # ------------------------------------------------------------------
    # the four matchers
    # ------------------------------------------------------------------
    def block_match(
        self, left, right, max_disp: int, block_size: int = 9, subpixel: bool = True
    ) -> np.ndarray:
        """Tiled :func:`~repro.stereo.block_matching.block_match`."""
        return self._tiled(
            "bm",
            (left, right),
            dict(
                max_disp=max_disp,
                block_size=block_size,
                subpixel=subpixel,
                precision=self.precision,
            ),
            halo=block_size // 2,
        )

    def census_block_match(
        self, left, right, max_disp: int, window: int = 5, subpixel: bool = True
    ) -> np.ndarray:
        """Tiled :func:`~repro.stereo.census.census_block_match`."""
        return self._tiled(
            "census",
            (left, right),
            dict(
                max_disp=max_disp,
                window=window,
                subpixel=subpixel,
                precision=self.precision,
            ),
            halo=window // 2,
        )

    def guided_block_match(
        self,
        left,
        right,
        init,
        radius: int = 4,
        block_size: int = 9,
        subpixel: bool = True,
        accept_margin: float = 0.1,
    ) -> np.ndarray:
        """Tiled :func:`~repro.stereo.block_matching.guided_block_match`.

        The per-pixel init map is banded alongside the images; the
        guided gather is same-row, so the halo is still just the
        box-filter radius no matter how large ``radius`` is.
        """
        return self._tiled(
            "guided",
            (left, right, init),
            dict(
                radius=radius,
                block_size=block_size,
                subpixel=subpixel,
                accept_margin=accept_margin,
                precision=self.precision,
            ),
            halo=block_size // 2,
        )

    def sgm(
        self,
        left,
        right,
        max_disp: int,
        block_size: int = 5,
        p1: float = 0.05,
        p2: float = 0.5,
        paths: int = 8,
        subpixel: bool = True,
    ) -> np.ndarray:
        """Parallel :func:`~repro.stereo.sgm.sgm`.

        The cost volume is built from row bands; the aggregation — a
        whole-image DP that no finite halo can tile exactly — is
        parallelised across path directions instead, and the
        per-direction volumes are summed in :func:`~repro.stereo.sgm.
        sgm`'s direction order so the result stays bit-identical.
        """
        if paths not in (2, 4, 8):
            raise ValueError("paths must be 2, 4 or 8")
        cost = self._tiled(
            "sad_cost",
            (left, right),
            dict(max_disp=max_disp, block_size=block_size, precision=self.precision),
            halo=block_size // 2,
            row_axis=1,
        )
        total = np.zeros_like(cost)
        # consume lazily, in sgm()'s direction order: bit-identical
        # summation while holding one aggregated volume at a time
        for part in self._iter_map(
            _run_direction,
            [(cost, dy, dx, p1, p2) for dy, dx in _DIRECTIONS_8[:paths]],
        ):
            total += part
        return wta_disparity(total, subpixel)

    def kernel(self, name: str):
        """The tiled kernel registered under ``name``.

        ``"bm"`` / ``"census"`` / ``"sgm"`` return matchers with the
        ``(left, right, max_disp, ...)`` signature the serving stack's
        matcher registry expects; ``"guided"`` returns the ISM
        refinement with its ``(left, right, init, ...)`` signature.

        >>> ex = TileExecutor()
        >>> ex.kernel("bm").__name__
        'block_match'
        >>> ex.kernel("orb")
        Traceback (most recent call last):
            ...
        ValueError: unknown kernel 'orb'; choose from ('bm', 'census', 'guided', 'sgm')
        """
        kernels = {
            "bm": self.block_match,
            "census": self.census_block_match,
            "guided": self.guided_block_match,
            "sgm": self.sgm,
        }
        if name not in kernels:
            raise ValueError(
                f"unknown kernel {name!r}; choose from {available_kernels()}"
            )
        return kernels[name]
