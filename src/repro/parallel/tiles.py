"""Row-band tiling with overlap halos.

A frame is split into contiguous horizontal bands; each band is
extended by a *halo* of extra rows on its interior edges so that every
output pixel a band is responsible for sees exactly the input rows it
would see in whole-frame execution.  The matchers' vertical data
dependence is the box-filter (or census) window, so a halo of the
window radius makes band seams bit-identical — the disparity search
itself is horizontal and row bands keep the full image width, which is
why ``max_disp`` / ``radius`` never enter the halo.

>>> bands = split_rows(10, 3, halo=2)
>>> [(b.start, b.stop) for b in bands]   # payload rows: cover, no gaps
[(0, 3), (3, 6), (6, 10)]
>>> [(b.lo, b.hi) for b in bands]        # sliced rows: payload + halo
[(0, 5), (1, 8), (4, 10)]
>>> bands[1].crop                        # rows to keep of the slice
(2, 5)

Each kernel declares its vertical footprint once, as a
:class:`Stencil` attached with the :func:`stencil` decorator; the
executor computes every halo from that declaration and the ``ASV006``
lint rule cross-checks both the declaration (against the footprint it
derives from the kernel body) and every call site (against the
declaration), so a halo can never silently drift from the kernel it
protects.

>>> Stencil.window("block_size").halo(block_size=9)
4
>>> Stencil.infinite().tileable
False
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, TypeVar

__all__ = [
    "RowBand",
    "Stencil",
    "blur_tap_radius",
    "gaussian_support_radius",
    "split_rows",
    "stencil",
]


def gaussian_support_radius(sigma: float) -> int:
    """Tap radius of a 3-sigma Gaussian moment filter.

    The single source of truth for the Farneback polynomial-expansion
    support (:func:`repro.flow.farneback.poly_expansion` and its tiled
    halo both delegate here).
    """
    return max(2, int(round(3.0 * sigma)))


def blur_tap_radius(sigma: float) -> int:
    """Tap radius of a ``gaussian_filter``-compatible blur.

    scipy truncates at ``4 * sigma`` (its default); this is the exact
    radius :func:`repro.flow.gaussian.blur_kernel1d` builds its taps
    with, so it is also the exact vertical halo a banded
    :func:`repro.flow.farneback.flow_iteration` needs.
    """
    return int(4.0 * sigma + 0.5)


@dataclass(frozen=True)
class RowBand:
    """One horizontal band of a frame.

    ``[start, stop)`` are the rows the band is responsible for (its
    payload); ``[lo, hi)`` are the rows actually sliced out of the
    frame — the payload plus up to ``halo`` extra rows on each side,
    clamped to the image.  At the image's top and bottom edge the halo
    is absent by construction, so the kernels' edge-replicated padding
    applies exactly where whole-frame execution would pad.
    """

    start: int
    stop: int
    lo: int
    hi: int

    @property
    def rows(self) -> int:
        """Payload height."""
        return self.stop - self.start

    @property
    def crop(self) -> tuple[int, int]:
        """Row range of the payload *within the sliced band*."""
        return (self.start - self.lo, self.stop - self.lo)


def split_rows(height: int, n_bands: int, halo: int) -> list[RowBand]:
    """Split ``height`` rows into ``n_bands`` haloed bands.

    Payloads tile ``[0, height)`` exactly (no gaps, no overlap); band
    heights differ by at most one row.  Asking for more bands than
    rows yields one band per row.

    >>> [b.rows for b in split_rows(7, 3, halo=1)]
    [2, 2, 3]
    >>> split_rows(2, 5, halo=0) == split_rows(2, 2, halo=0)
    True
    """
    if height < 1:
        raise ValueError("height must be >= 1")
    if n_bands < 1:
        raise ValueError("n_bands must be >= 1")
    if halo < 0:
        raise ValueError("halo must be >= 0")
    n_bands = min(n_bands, height)
    edges = [(i * height) // n_bands for i in range(n_bands + 1)]
    return [
        RowBand(start=a, stop=b, lo=max(0, a - halo), hi=min(height, b + halo))
        for a, b in zip(edges, edges[1:])
    ]


@dataclass(frozen=True)
class Stencil:
    """A kernel's declared vertical data dependence.

    ``kind`` selects how the halo is computed from the kernel's own
    keyword arguments:

    * ``"pointwise"`` — no vertical reach (halo 0);
    * ``"fixed"`` — a constant ``value`` of rows;
    * ``"window"`` — an odd ``param``-sized window (halo ``param // 2``,
      the box-filter / census case);
    * ``"radius"`` — ``param`` *is* the halo;
    * ``"gaussian"`` — 3-sigma moment-filter support of ``param``
      (:func:`gaussian_support_radius`), optionally overridden by an
      explicit tap-radius argument named ``override``;
    * ``"blur"`` — ``gaussian_filter``-compatible taps of ``param``
      (:func:`blur_tap_radius`);
    * ``"infinite"`` — a whole-image dependence (SGM path aggregation):
      no finite halo exists and :meth:`halo` refuses to produce one.

    >>> Stencil.window("window").halo(window=5)
    2
    >>> Stencil.gaussian("sigma", override="radius").halo(sigma=1.5, radius=None)
    4
    >>> Stencil.gaussian("sigma", override="radius").halo(sigma=1.5, radius=7)
    7
    >>> Stencil.blur("window_sigma").halo(window_sigma=4.0)
    16
    >>> Stencil.infinite().halo()
    Traceback (most recent call last):
        ...
    ValueError: an infinite stencil cannot be tiled with a finite halo
    """

    kind: str
    param: str | None = None
    value: int = 0
    override: str | None = None

    @classmethod
    def pointwise(cls) -> "Stencil":
        return cls("pointwise")

    @classmethod
    def fixed(cls, value: int) -> "Stencil":
        return cls("fixed", value=int(value))

    @classmethod
    def window(cls, param: str) -> "Stencil":
        return cls("window", param=param)

    @classmethod
    def radius(cls, param: str) -> "Stencil":
        return cls("radius", param=param)

    @classmethod
    def gaussian(cls, param: str, override: str | None = None) -> "Stencil":
        return cls("gaussian", param=param, override=override)

    @classmethod
    def blur(cls, param: str) -> "Stencil":
        return cls("blur", param=param)

    @classmethod
    def infinite(cls) -> "Stencil":
        return cls("infinite")

    @property
    def tileable(self) -> bool:
        """Whether any finite halo makes banded execution exact."""
        return self.kind != "infinite"

    def halo(self, **params: Any) -> int:
        """The halo rows this stencil needs for the given kernel kwargs."""
        if self.kind == "pointwise":
            return 0
        if self.kind == "fixed":
            return self.value
        if self.kind == "infinite":
            raise ValueError(
                "an infinite stencil cannot be tiled with a finite halo"
            )
        if self.override is not None:
            explicit = params.get(self.override)
            if explicit is not None:
                return int(explicit)
        if self.param is None:  # pragma: no cover - constructors set it
            raise ValueError(f"stencil kind {self.kind!r} needs a param")
        arg = params[self.param]
        if self.kind == "window":
            return int(arg) // 2
        if self.kind == "radius":
            return int(arg)
        if self.kind == "gaussian":
            return gaussian_support_radius(arg)
        if self.kind == "blur":
            return blur_tap_radius(arg)
        raise ValueError(f"unknown stencil kind {self.kind!r}")


_F = TypeVar("_F", bound=Callable[..., Any])


def stencil(spec: Stencil) -> Callable[[_F], _F]:
    """Attach a declared :class:`Stencil` to a kernel function.

    The declaration is readable at runtime as ``fn.stencil`` and
    statically by the ``ASV006`` halo-sufficiency rule, which checks
    it against the footprint derived from the kernel body.

    >>> @stencil(Stencil.window("size"))
    ... def blurry(img, size=9):
    ...     return img
    >>> blurry.stencil.halo(size=9)
    4
    """

    def attach(fn: _F) -> _F:
        fn.stencil = spec  # type: ignore[attr-defined]
        return fn

    return attach
