"""Row-band tiling with overlap halos.

A frame is split into contiguous horizontal bands; each band is
extended by a *halo* of extra rows on its interior edges so that every
output pixel a band is responsible for sees exactly the input rows it
would see in whole-frame execution.  The matchers' vertical data
dependence is the box-filter (or census) window, so a halo of the
window radius makes band seams bit-identical — the disparity search
itself is horizontal and row bands keep the full image width, which is
why ``max_disp`` / ``radius`` never enter the halo.

>>> bands = split_rows(10, 3, halo=2)
>>> [(b.start, b.stop) for b in bands]   # payload rows: cover, no gaps
[(0, 3), (3, 6), (6, 10)]
>>> [(b.lo, b.hi) for b in bands]        # sliced rows: payload + halo
[(0, 5), (1, 8), (4, 10)]
>>> bands[1].crop                        # rows to keep of the slice
(2, 5)
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RowBand", "split_rows"]


@dataclass(frozen=True)
class RowBand:
    """One horizontal band of a frame.

    ``[start, stop)`` are the rows the band is responsible for (its
    payload); ``[lo, hi)`` are the rows actually sliced out of the
    frame — the payload plus up to ``halo`` extra rows on each side,
    clamped to the image.  At the image's top and bottom edge the halo
    is absent by construction, so the kernels' edge-replicated padding
    applies exactly where whole-frame execution would pad.
    """

    start: int
    stop: int
    lo: int
    hi: int

    @property
    def rows(self) -> int:
        """Payload height."""
        return self.stop - self.start

    @property
    def crop(self) -> tuple[int, int]:
        """Row range of the payload *within the sliced band*."""
        return (self.start - self.lo, self.stop - self.lo)


def split_rows(height: int, n_bands: int, halo: int) -> list[RowBand]:
    """Split ``height`` rows into ``n_bands`` haloed bands.

    Payloads tile ``[0, height)`` exactly (no gaps, no overlap); band
    heights differ by at most one row.  Asking for more bands than
    rows yields one band per row.

    >>> [b.rows for b in split_rows(7, 3, halo=1)]
    [2, 2, 3]
    >>> split_rows(2, 5, halo=0) == split_rows(2, 2, halo=0)
    True
    """
    if height < 1:
        raise ValueError("height must be >= 1")
    if n_bands < 1:
        raise ValueError("n_bands must be >= 1")
    if halo < 0:
        raise ValueError("halo must be >= 0")
    n_bands = min(n_bands, height)
    edges = [(i * height) // n_bands for i in range(n_bands + 1)]
    return [
        RowBand(start=a, stop=b, lo=max(0, a - halo), hi=min(height, b + halo))
        for a, b in zip(edges, edges[1:])
    ]
