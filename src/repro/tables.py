"""Fixed-width text-table rendering (shared, dependency-free)."""

from __future__ import annotations

__all__ = ["render_table"]


def render_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Render a fixed-width text table with a title rule."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "  "
    lines = [title, "=" * len(title)]
    lines.append(sep.join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
