"""Layer tables of the four stereo DNNs the paper evaluates.

The performance/energy side of the reproduction only needs each
network's *layer geometry* (the paper likewise schedules shapes onto
its accelerator model), so the networks are described as
:class:`~repro.nn.workload.ConvSpec` tables following the published
architectures:

* **DispNet(C)** — Mayer et al., CVPR'16: siamese conv encoder,
  1-D correlation, conv decoder with 4x4 stride-2 *upconvolutions*
  interleaved with iconv merge layers.
* **FlowNetC** — Dosovitskiy et al., ICCV'15 (the paper uses it for
  disparity): like DispNet but the decoder concatenates skip inputs
  directly into the next deconvolution, making deconvolution ~half of
  all MACs — the largest DR share of the four.
* **GC-Net** — Kendall et al., ICCV'17: 2-D residual feature towers, a
  4-D concatenation cost volume at half resolution, a 3-D conv
  encoder, and five 3-D stride-2 deconvolutions back to full
  resolution (the final one produces the full D x H x W volume).
* **PSMNet** — Chang & Chen, CVPR'18: CNN + SPP feature extractor at
  quarter resolution, then three stacked-hourglass 3-D conv/deconv
  towers over the cost volume.

Stage tags (Sec. 2.2): FE = feature extraction, MO = matching
optimization (correlation / cost-volume convolutions / merge layers),
DR = disparity refinement (all deconvolutions).  MAC distributions over
these stages reproduce the paper's Fig. 3 (DR ~38 % on average, ~50 %
max for FlowNetC, conv+deconv > 99 % of all operations).

All tables are generated for a configurable input resolution; the
default is the paper's qHD (960 x 540).
"""

from __future__ import annotations

import math

from repro.nn.workload import ConvSpec, Stage

__all__ = [
    "dispnet",
    "flownetc",
    "gcnet",
    "psmnet",
    "STEREO_NETWORKS",
    "network_specs",
    "QHD",
]

QHD = (540, 960)  # (H, W)


def _half(size):
    return tuple(math.ceil(s / 2) for s in size)


def _down(size, times):
    for _ in range(times):
        size = _half(size)
    return tuple(size)


def _siamese_encoder_2d(size, max_disp):
    """Shared DispNet/FlowNetC front end: two-stream convs + correlation."""
    s1 = _half(size)       # 1/2
    s2 = _half(s1)         # 1/4
    d = max_disp // 4 + 1  # correlation displacements at 1/4 resolution
    return s1, s2, d


def dispnet(size=QHD, max_disp=160) -> list[ConvSpec]:
    """DispNetC layer table."""
    s1, s2, d = _siamese_encoder_2d(size, max_disp)
    s3 = _half(s2)
    s4 = _half(s3)
    s5 = _half(s4)
    s6 = _half(s5)
    L = []
    # feature extraction (both images -> repeat=2)
    L.append(ConvSpec("conv1", 3, 64, (7, 7), size, 2, 3, stage=Stage.FE, repeat=2))
    L.append(ConvSpec("conv2", 64, 128, (5, 5), s1, 2, 2, stage=Stage.FE, repeat=2))
    # matching: 1-D correlation (as a 1x1 pseudo-conv) + redirect
    L.append(ConvSpec("corr1d", 128, d, (1, 1), s2, 1, 0, stage=Stage.MO))
    L.append(ConvSpec("conv_redir", 128, 64, (1, 1), s2, 1, 0, stage=Stage.MO))
    L.append(ConvSpec("conv3", d + 64, 256, (5, 5), s2, 2, 2, stage=Stage.MO))
    L.append(ConvSpec("conv3_1", 256, 256, (3, 3), s3, 1, 1, stage=Stage.MO))
    L.append(ConvSpec("conv4", 256, 512, (3, 3), s3, 2, 1, stage=Stage.MO))
    L.append(ConvSpec("conv4_1", 512, 512, (3, 3), s4, 1, 1, stage=Stage.MO))
    L.append(ConvSpec("conv5", 512, 512, (3, 3), s4, 2, 1, stage=Stage.MO))
    L.append(ConvSpec("conv5_1", 512, 512, (3, 3), s5, 1, 1, stage=Stage.MO))
    L.append(ConvSpec("conv6", 512, 1024, (3, 3), s5, 2, 1, stage=Stage.MO))
    L.append(ConvSpec("conv6_1", 1024, 1024, (3, 3), s6, 1, 1, stage=Stage.MO))
    L.append(ConvSpec("pr6", 1024, 1, (3, 3), s6, 1, 1, stage=Stage.MO))
    # refinement: upconv + iconv + pr at each scale
    chans = [(1024, 512, 512), (512, 256, 512), (256, 128, 256),
             (128, 64, 128), (64, 32, 64)]
    scale_in = [s6, s5, s4, s3, s2]
    for i, ((cin, cout, skip), sz) in enumerate(zip(chans, scale_in)):
        lvl = 5 - i
        L.append(
            ConvSpec(f"upconv{lvl}", cin, cout, (4, 4), sz, 2, 1,
                     deconv=True, stage=Stage.DR)
        )
        out = tuple(n * 2 for n in sz)  # 4x4 s2 p1 doubles each extent
        L.append(
            ConvSpec(f"iconv{lvl}", cout + skip + 1, cout, (3, 3), out, 1, 1,
                     stage=Stage.MO)
        )
        L.append(ConvSpec(f"pr{lvl}", cout, 1, (3, 3), out, 1, 1, stage=Stage.MO))
    return L


def flownetc(size=QHD, max_disp=160) -> list[ConvSpec]:
    """FlowNetC layer table (used for disparity as in the paper)."""
    s1, s2, d = _siamese_encoder_2d(size, max_disp)
    s3 = _half(s2)
    s4 = _half(s3)
    s5 = _half(s4)
    s6 = _half(s5)
    L = []
    L.append(ConvSpec("conv1", 3, 64, (7, 7), size, 2, 3, stage=Stage.FE, repeat=2))
    L.append(ConvSpec("conv2", 64, 128, (5, 5), s1, 2, 2, stage=Stage.FE, repeat=2))
    L.append(ConvSpec("conv3", 128, 256, (5, 5), s2, 2, 2, stage=Stage.FE, repeat=2))
    L.append(ConvSpec("corr", 256, d, (1, 1), s3, 1, 0, stage=Stage.MO))
    L.append(ConvSpec("conv_redir", 256, 32, (1, 1), s3, 1, 0, stage=Stage.MO))
    L.append(ConvSpec("conv3_1", d + 32, 256, (3, 3), s3, 1, 1, stage=Stage.MO))
    L.append(ConvSpec("conv4", 256, 512, (3, 3), s3, 2, 1, stage=Stage.MO))
    L.append(ConvSpec("conv4_1", 512, 512, (3, 3), s4, 1, 1, stage=Stage.MO))
    L.append(ConvSpec("conv5", 512, 512, (3, 3), s4, 2, 1, stage=Stage.MO))
    L.append(ConvSpec("conv5_1", 512, 512, (3, 3), s5, 1, 1, stage=Stage.MO))
    L.append(ConvSpec("conv6", 512, 1024, (3, 3), s5, 2, 1, stage=Stage.MO))
    # refinement: deconvs fed by concat(previous deconv, skip, flow)
    L.append(
        ConvSpec("deconv5", 1024, 512, (4, 4), s6, 2, 1, deconv=True, stage=Stage.DR)
    )
    L.append(
        ConvSpec("deconv4", 512 + 512 + 1, 256, (4, 4), s5, 2, 1,
                 deconv=True, stage=Stage.DR)
    )
    L.append(
        ConvSpec("deconv3", 256 + 512 + 1, 128, (4, 4), s4, 2, 1,
                 deconv=True, stage=Stage.DR)
    )
    L.append(
        ConvSpec("deconv2", 128 + 256 + 1, 64, (4, 4), s3, 2, 1,
                 deconv=True, stage=Stage.DR)
    )
    # per-scale predictors
    for lvl, (cin, sz) in enumerate(
        [(1024, s6), (1025, s5), (769, s4), (385, s3), (193, s2)]
    ):
        L.append(
            ConvSpec(f"predict{6 - lvl}", cin, 1, (3, 3), sz, 1, 1, stage=Stage.MO)
        )
    return L


def gcnet(size=QHD, max_disp=192) -> list[ConvSpec]:
    """GC-Net layer table (3-D cost-volume network)."""
    s1 = _half(size)          # 1/2: feature + cost volume resolution
    d1 = max_disp // 2
    cv1 = (d1,) + s1          # (D/2, H/2, W/2)
    cv2 = tuple(math.ceil(c / 2) for c in cv1)
    cv3 = tuple(math.ceil(c / 2) for c in cv2)
    cv4 = tuple(math.ceil(c / 2) for c in cv3)
    cv5 = tuple(math.ceil(c / 2) for c in cv4)
    L = []
    # 2-D feature towers (both images)
    L.append(ConvSpec("conv1", 3, 32, (5, 5), size, 2, 2, stage=Stage.FE, repeat=2))
    L.append(
        ConvSpec("res_tower", 32, 32, (3, 3), s1, 1, 1, stage=Stage.FE, repeat=32)
    )
    L.append(ConvSpec("conv18", 32, 32, (3, 3), s1, 1, 1, stage=Stage.FE, repeat=2))
    # 3-D matching encoder over the concatenation cost volume (64 ch)
    L.append(ConvSpec("conv19", 64, 32, (3, 3, 3), cv1, 1, 1, stage=Stage.MO))
    L.append(ConvSpec("conv20", 32, 32, (3, 3, 3), cv1, 1, 1, stage=Stage.MO))
    L.append(ConvSpec("conv21", 64, 64, (3, 3, 3), cv1, 2, 1, stage=Stage.MO))
    L.append(ConvSpec("conv22_23", 64, 64, (3, 3, 3), cv2, 1, 1, stage=Stage.MO, repeat=2))
    L.append(ConvSpec("conv24", 64, 64, (3, 3, 3), cv2, 2, 1, stage=Stage.MO))
    L.append(ConvSpec("conv25_26", 64, 64, (3, 3, 3), cv3, 1, 1, stage=Stage.MO, repeat=2))
    L.append(ConvSpec("conv27", 64, 64, (3, 3, 3), cv3, 2, 1, stage=Stage.MO))
    L.append(ConvSpec("conv28_29", 64, 64, (3, 3, 3), cv4, 1, 1, stage=Stage.MO, repeat=2))
    L.append(ConvSpec("conv30", 64, 128, (3, 3, 3), cv4, 2, 1, stage=Stage.MO))
    L.append(ConvSpec("conv31_32", 128, 128, (3, 3, 3), cv5, 1, 1, stage=Stage.MO, repeat=2))
    # 3-D refinement decoder: five stride-2 deconvolutions
    L.append(ConvSpec("deconv33", 128, 64, (3, 3, 3), cv5, 2, 1, deconv=True, stage=Stage.DR))
    L.append(ConvSpec("deconv34", 64, 64, (3, 3, 3), cv4, 2, 1, deconv=True, stage=Stage.DR))
    L.append(ConvSpec("deconv35", 64, 64, (3, 3, 3), cv3, 2, 1, deconv=True, stage=Stage.DR))
    L.append(ConvSpec("deconv36", 64, 32, (3, 3, 3), cv2, 2, 1, deconv=True, stage=Stage.DR))
    L.append(ConvSpec("deconv37", 32, 1, (3, 3, 3), cv1, 2, 1, deconv=True, stage=Stage.DR))
    return L


def psmnet(size=QHD, max_disp=192) -> list[ConvSpec]:
    """PSMNet layer table (SPP features + stacked hourglass)."""
    s1 = _half(size)
    s2 = _half(s1)            # 1/4: feature and cost-volume resolution
    d2 = max_disp // 4
    cv = (d2,) + s2           # (D/4, H/4, W/4)
    cvh = tuple(math.ceil(c / 2) for c in cv)
    cvq = tuple(math.ceil(c / 2) for c in cvh)
    L = []
    # CNN feature extractor (both images)
    L.append(ConvSpec("conv0_1", 3, 32, (3, 3), size, 2, 1, stage=Stage.FE, repeat=2))
    L.append(ConvSpec("conv0_2_3", 32, 32, (3, 3), s1, 1, 1, stage=Stage.FE, repeat=4))
    L.append(ConvSpec("layer1", 32, 32, (3, 3), s1, 1, 1, stage=Stage.FE, repeat=6))
    L.append(ConvSpec("layer2_down", 32, 64, (3, 3), s1, 2, 1, stage=Stage.FE, repeat=2))
    L.append(ConvSpec("layer2", 64, 64, (3, 3), s2, 1, 1, stage=Stage.FE, repeat=62))
    L.append(ConvSpec("layer3", 64, 128, (3, 3), s2, 1, 1, stage=Stage.FE, repeat=2))
    L.append(ConvSpec("layer3_4", 128, 128, (3, 3), s2, 1, 1, stage=Stage.FE, repeat=22))
    # SPP branches + fusion
    L.append(ConvSpec("spp_branches", 128, 32, (1, 1), s2, 1, 0, stage=Stage.FE, repeat=8))
    L.append(ConvSpec("fusion1", 320, 128, (3, 3), s2, 1, 1, stage=Stage.FE, repeat=2))
    L.append(ConvSpec("fusion2", 128, 32, (1, 1), s2, 1, 0, stage=Stage.FE, repeat=2))
    # 3-D matching: dres + 3 hourglasses
    L.append(ConvSpec("dres0", 64, 32, (3, 3, 3), cv, 1, 1, stage=Stage.MO))
    L.append(ConvSpec("dres0_1", 32, 32, (3, 3, 3), cv, 1, 1, stage=Stage.MO))
    L.append(ConvSpec("dres1", 32, 32, (3, 3, 3), cv, 1, 1, stage=Stage.MO, repeat=2))
    for h in (1, 2, 3):
        L.append(ConvSpec(f"hg{h}_conv1", 32, 64, (3, 3, 3), cv, 2, 1, stage=Stage.MO))
        L.append(ConvSpec(f"hg{h}_conv2", 64, 64, (3, 3, 3), cvh, 1, 1, stage=Stage.MO))
        L.append(ConvSpec(f"hg{h}_conv3", 64, 64, (3, 3, 3), cvh, 2, 1, stage=Stage.MO))
        L.append(ConvSpec(f"hg{h}_conv4", 64, 64, (3, 3, 3), cvq, 1, 1, stage=Stage.MO))
        L.append(
            ConvSpec(f"hg{h}_deconv5", 64, 64, (3, 3, 3), cvq, 2, 1,
                     deconv=True, stage=Stage.DR)
        )
        L.append(
            ConvSpec(f"hg{h}_deconv6", 64, 32, (3, 3, 3), cvh, 2, 1,
                     deconv=True, stage=Stage.DR)
        )
    # classification heads
    L.append(ConvSpec("classif_a", 32, 32, (3, 3, 3), cv, 1, 1, stage=Stage.MO, repeat=3))
    L.append(ConvSpec("classif_b", 32, 1, (3, 3, 3), cv, 1, 1, stage=Stage.MO, repeat=3))
    return L


STEREO_NETWORKS = {
    "DispNet": dispnet,
    "FlowNetC": flownetc,
    "GC-Net": gcnet,
    "PSMNet": psmnet,
}


def network_specs(name: str, size=QHD) -> list[ConvSpec]:
    """Layer table of a stereo network by name."""
    try:
        builder = STEREO_NETWORKS[name]
    except KeyError:
        raise ValueError(
            f"unknown network {name!r}; choose from {sorted(STEREO_NETWORKS)}"
        ) from None
    return builder(size)
