"""Generator layer tables of the six GANs used in the GANNX comparison.

Sec. 7.6 applies the deconvolution optimizations to the GAN suite of
the GANNX paper (Yazdanbakhsh et al., ISCA'18): DCGAN, GP-GAN, ArtGAN,
MAGAN, 3D-GAN and DiscoGAN.  Only the generators matter — they are the
deconvolution-heavy half — and their architectures follow the original
publications:

* **DCGAN** — project z to 4x4x1024, then four 4x4 stride-2
  deconvolutions up to 64x64x3.
* **GP-GAN** — encoder-decoder blending network at 64x64.
* **ArtGAN** — z to 1024-wide 4x4 seed, deconv stack to 64x64 with
  intermediate convs.
* **MAGAN** — DCGAN-style generator at 128x128 output.
* **3D-GAN** — four 4x4x4 stride-2 *3-D* deconvolutions from a
  4^3 x 512 seed to a 64^3 voxel grid.
* **DiscoGAN** — conv encoder + deconv decoder at 64x64 (image-to-image
  translation).
"""

from __future__ import annotations

from repro.nn.workload import ConvSpec, Stage

__all__ = ["GAN_NETWORKS", "gan_specs"]


def dcgan() -> list[ConvSpec]:
    return [
        ConvSpec("g1", 100, 1024, (4, 4), (1, 1), 1, 0, deconv=True, stage=Stage.DR),
        ConvSpec("g2", 1024, 512, (4, 4), (4, 4), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g3", 512, 256, (4, 4), (8, 8), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g4", 256, 128, (4, 4), (16, 16), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g5", 128, 3, (4, 4), (32, 32), 2, 1, deconv=True, stage=Stage.DR),
    ]


def gp_gan() -> list[ConvSpec]:
    enc = [
        ConvSpec("e1", 3, 64, (4, 4), (64, 64), 2, 1, stage=Stage.FE),
        ConvSpec("e2", 64, 128, (4, 4), (32, 32), 2, 1, stage=Stage.FE),
        ConvSpec("e3", 128, 256, (4, 4), (16, 16), 2, 1, stage=Stage.FE),
        ConvSpec("e4", 256, 512, (4, 4), (8, 8), 2, 1, stage=Stage.FE),
        ConvSpec("e5", 512, 4000, (4, 4), (4, 4), 1, 0, stage=Stage.FE),
    ]
    dec = [
        ConvSpec("d1", 4000, 512, (4, 4), (1, 1), 1, 0, deconv=True, stage=Stage.DR),
        ConvSpec("d2", 512, 256, (4, 4), (4, 4), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("d3", 256, 128, (4, 4), (8, 8), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("d4", 128, 64, (4, 4), (16, 16), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("d5", 64, 3, (4, 4), (32, 32), 2, 1, deconv=True, stage=Stage.DR),
    ]
    return enc + dec


def artgan() -> list[ConvSpec]:
    return [
        ConvSpec("fc_seed", 110, 1024, (4, 4), (1, 1), 1, 0, deconv=True, stage=Stage.DR),
        ConvSpec("g1", 1024, 512, (4, 4), (4, 4), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g1c", 512, 512, (3, 3), (8, 8), 1, 1, stage=Stage.MO),
        ConvSpec("g2", 512, 256, (4, 4), (8, 8), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g2c", 256, 256, (3, 3), (16, 16), 1, 1, stage=Stage.MO),
        ConvSpec("g3", 256, 128, (4, 4), (16, 16), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g3c", 128, 128, (3, 3), (32, 32), 1, 1, stage=Stage.MO),
        ConvSpec("g4", 128, 3, (4, 4), (32, 32), 2, 1, deconv=True, stage=Stage.DR),
    ]


def magan() -> list[ConvSpec]:
    return [
        ConvSpec("g1", 100, 1024, (4, 4), (1, 1), 1, 0, deconv=True, stage=Stage.DR),
        ConvSpec("g2", 1024, 512, (4, 4), (4, 4), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g3", 512, 256, (4, 4), (8, 8), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g4", 256, 128, (4, 4), (16, 16), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g5", 128, 64, (4, 4), (32, 32), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g6", 64, 3, (4, 4), (64, 64), 2, 1, deconv=True, stage=Stage.DR),
    ]


def gan3d() -> list[ConvSpec]:
    return [
        ConvSpec("g1", 200, 512, (4, 4, 4), (1, 1, 1), 1, 0, deconv=True, stage=Stage.DR),
        ConvSpec("g2", 512, 256, (4, 4, 4), (4, 4, 4), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g3", 256, 128, (4, 4, 4), (8, 8, 8), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g4", 128, 64, (4, 4, 4), (16, 16, 16), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("g5", 64, 1, (4, 4, 4), (32, 32, 32), 2, 1, deconv=True, stage=Stage.DR),
    ]


def discogan() -> list[ConvSpec]:
    enc = [
        ConvSpec("e1", 3, 64, (4, 4), (64, 64), 2, 1, stage=Stage.FE),
        ConvSpec("e2", 64, 128, (4, 4), (32, 32), 2, 1, stage=Stage.FE),
        ConvSpec("e3", 128, 256, (4, 4), (16, 16), 2, 1, stage=Stage.FE),
        ConvSpec("e4", 256, 512, (4, 4), (8, 8), 2, 1, stage=Stage.FE),
    ]
    dec = [
        ConvSpec("d1", 512, 256, (4, 4), (4, 4), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("d2", 256, 128, (4, 4), (8, 8), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("d3", 128, 64, (4, 4), (16, 16), 2, 1, deconv=True, stage=Stage.DR),
        ConvSpec("d4", 64, 3, (4, 4), (32, 32), 2, 1, deconv=True, stage=Stage.DR),
    ]
    return enc + dec


GAN_NETWORKS = {
    "DCGAN": dcgan,
    "GP-GAN": gp_gan,
    "ArtGAN": artgan,
    "MAGAN": magan,
    "3D-GAN": gan3d,
    "DiscoGAN": discogan,
}


def gan_specs(name: str) -> list[ConvSpec]:
    """Generator layer table of a GAN by name."""
    try:
        return GAN_NETWORKS[name]()
    except KeyError:
        raise ValueError(
            f"unknown GAN {name!r}; choose from {sorted(GAN_NETWORKS)}"
        ) from None
