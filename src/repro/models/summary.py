"""Human-readable layer tables for the model zoo."""

from __future__ import annotations

from repro.tables import render_table
from repro.models.gans import gan_specs
from repro.models.stereo_networks import QHD, STEREO_NETWORKS, network_specs
from repro.nn.workload import total_macs

__all__ = ["network_summary", "zoo_summary"]


def network_summary(name: str, size=QHD) -> str:
    """Per-layer table of one stereo network (or GAN) by name."""
    try:
        specs = network_specs(name, size)
        title = f"{name} at {size[1]}x{size[0]}"
    except ValueError:
        specs = gan_specs(name)
        title = f"{name} (generator)"
    rows = []
    for s in specs:
        rows.append(
            [
                s.name,
                "deconv" if s.deconv else "conv",
                s.stage,
                f"{s.in_channels}->{s.out_channels}",
                "x".join(map(str, s.kernel)),
                "x".join(map(str, s.input_size)),
                s.repeat,
                s.macs / 1e9,
            ]
        )
    rows.append(["TOTAL", "", "", "", "", "", "", total_macs(specs) / 1e9])
    return render_table(
        title,
        ["layer", "kind", "stage", "channels", "kernel", "input", "rep",
         "GMACs"],
        rows,
    )


def zoo_summary(size=QHD) -> str:
    """One-line-per-network overview of the stereo zoo."""
    rows = []
    for name in STEREO_NETWORKS:
        specs = network_specs(name, size)
        dense = total_macs(specs)
        eff = total_macs(specs, effective=True)
        rows.append(
            [name, len(specs), dense / 1e9, eff / 1e9, dense / eff]
        )
    return render_table(
        f"Stereo network zoo at {size[1]}x{size[0]}",
        ["network", "layer entries", "dense GMACs", "transformed GMACs",
         "DCT reduction (x)"],
        rows,
    )
