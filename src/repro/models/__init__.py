"""Stereo DNN and GAN model zoo (layer tables + accuracy proxies)."""

from repro.models.gans import GAN_NETWORKS, gan_specs
from repro.models.summary import network_summary, zoo_summary
from repro.models.stereo_networks import (
    QHD,
    STEREO_NETWORKS,
    dispnet,
    flownetc,
    gcnet,
    network_specs,
    psmnet,
)

__all__ = [
    "GAN_NETWORKS",
    "QHD",
    "STEREO_NETWORKS",
    "dispnet",
    "flownetc",
    "gan_specs",
    "gcnet",
    "network_specs",
    "network_summary",
    "psmnet",
    "zoo_summary",
]
