"""Runnable miniature stereo networks.

The layer tables in :mod:`repro.models.stereo_networks` describe the
published architectures at full scale for the cost models; the
miniatures here are *executable* scaled-down versions built on
:class:`repro.nn.Graph` (random weights — inference quality comes from
the calibrated proxies, see DESIGN.md).  They exist to close the loop
between the model zoo and the numeric stack: a network built from the
same topology can be run forward, its deconvolutions transformed with
:func:`repro.deconv.runtime.TransformedDeconv`, and the outputs checked
for exact equality — which the tests do.
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Graph
from repro.nn.layers import Conv, Deconv, LeakyReLU

__all__ = ["mini_dispnet_graph", "mini_flownetc_graph"]


def mini_dispnet_graph(seed: int = 0, base_channels: int = 8) -> Graph:
    """A miniature DispNet: siamese-free encoder, two upconv levels
    with skip connections and a disparity head.

    Input: a ``(2, H, W)`` stack of the two grayscale views (H, W
    divisible by 8).
    """
    rng = np.random.default_rng(seed)
    c = base_channels
    g = Graph("mini-dispnet")
    g.add("conv1", Conv(2, c, 7, stride=2, padding=3, name="conv1", rng=rng))
    g.add("act1", LeakyReLU(), inputs="conv1")
    g.add("conv2", Conv(c, 2 * c, 5, stride=2, padding=2, name="conv2", rng=rng),
          inputs="act1")
    g.add("act2", LeakyReLU(), inputs="conv2")
    g.add("conv3", Conv(2 * c, 4 * c, 3, stride=2, padding=1, name="conv3", rng=rng),
          inputs="act2")
    g.add("act3", LeakyReLU(), inputs="conv3")
    g.add("upconv2", Deconv(4 * c, 2 * c, 4, stride=2, padding=1,
                            name="upconv2", rng=rng), inputs="act3")
    g.add("iconv2", Conv(4 * c, 2 * c, 3, padding=1, name="iconv2", rng=rng),
          inputs=("upconv2", "act2"))
    g.add("upconv1", Deconv(2 * c, c, 4, stride=2, padding=1,
                            name="upconv1", rng=rng), inputs="iconv2")
    g.add("iconv1", Conv(2 * c, c, 3, padding=1, name="iconv1", rng=rng),
          inputs=("upconv1", "act1"))
    g.add("pr", Deconv(c, 1, 4, stride=2, padding=1, name="pr", rng=rng),
          inputs="iconv1")
    return g


def mini_flownetc_graph(seed: int = 0, base_channels: int = 8) -> Graph:
    """A miniature FlowNetC-style decoder: encoder + direct deconv
    stack without iconv merge layers (the deconv-heavy topology)."""
    rng = np.random.default_rng(seed)
    c = base_channels
    g = Graph("mini-flownetc")
    g.add("conv1", Conv(2, c, 7, stride=2, padding=3, name="conv1", rng=rng))
    g.add("act1", LeakyReLU(), inputs="conv1")
    g.add("conv2", Conv(c, 2 * c, 5, stride=2, padding=2, name="conv2", rng=rng),
          inputs="act1")
    g.add("act2", LeakyReLU(), inputs="conv2")
    g.add("deconv1", Deconv(2 * c, c, 4, stride=2, padding=1,
                            name="deconv1", rng=rng), inputs="act2")
    g.add("deconv0", Deconv(2 * c, 1, 4, stride=2, padding=1,
                            name="deconv0", rng=rng), inputs=("deconv1", "act1"))
    return g
