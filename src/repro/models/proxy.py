"""Accuracy proxies for the trained stereo DNNs.

No trained DispNet/FlowNetC/GC-Net/PSMNet weights can exist in this
offline reproduction, so key-frame "DNN inference" is emulated by a
*calibrated error model* applied to the exact ground truth the
synthetic datasets provide.  The proxy reproduces the error structure
that matters to the ISM evaluation:

* **boundary fattening** — stereo DNN errors concentrate at disparity
  discontinuities; the proxy blends disparities across a band around
  ground-truth edges;
* **gross outliers** — a small fraction of pixels receive a wrong
  disparity (mis-matches / ambiguous texture);
* **sub-pixel noise** — everywhere-on Gaussian regression noise.

Per-network profiles are calibrated so the *three-pixel error rate* of
each proxy matches the published operating point of the corresponding
network (PSMNet < GC-Net < DispNet < FlowNetC), which is what Figs. 1
and 9 need; no claim is made about any other property of the real
networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.datasets.scenes import StereoFrame

__all__ = ["DNNAccuracyProfile", "StereoDNNProxy", "DNN_PROFILES"]


@dataclass(frozen=True)
class DNNAccuracyProfile:
    """Error-model knobs for one network."""

    name: str
    boundary_width: int       # half-width (px) of the discontinuity band
    boundary_miss_rate: float  # fraction of band pixels that get fattened
    boundary_error_px: float  # error magnitude inside the band
    outlier_rate: float       # fraction of gross mismatches
    outlier_scale_px: float   # magnitude of gross mismatches
    noise_sigma: float        # sub-pixel regression noise


#: Calibrated so proxy three-pixel error rates land near the published
#: SceneFlow/KITTI operating points of each network (see Fig. 9).
DNN_PROFILES = {
    "DispNet": DNNAccuracyProfile("DispNet", 2, 0.30, 5.0, 0.012, 12.0, 0.45),
    "FlowNetC": DNNAccuracyProfile("FlowNetC", 3, 0.38, 6.0, 0.018, 14.0, 0.55),
    "GC-Net": DNNAccuracyProfile("GC-Net", 1, 0.20, 4.0, 0.006, 10.0, 0.35),
    "PSMNet": DNNAccuracyProfile("PSMNet", 1, 0.16, 3.5, 0.005, 9.0, 0.30),
}


class StereoDNNProxy:
    """Callable that emulates one stereo DNN's disparity output."""

    def __init__(self, profile: DNNAccuracyProfile | str, seed: int = 0):
        if isinstance(profile, str):
            profile = DNN_PROFILES[profile]
        self.profile = profile
        self._rng = np.random.default_rng(seed)

    def infer(self, frame: StereoFrame) -> np.ndarray:
        """Disparity prediction for one stereo pair."""
        p = self.profile
        gt = frame.disparity
        rng = self._rng
        disp = gt + rng.normal(0.0, p.noise_sigma, size=gt.shape)

        # boundary fattening: inside the discontinuity band a fraction of
        # pixels take the cross-edge blurred disparity plus jitter
        grad = np.hypot(*np.gradient(gt))
        band = ndimage.binary_dilation(grad > 1.0, iterations=p.boundary_width)
        fattened = band & (rng.random(gt.shape) < p.boundary_miss_rate)
        blurred = ndimage.uniform_filter(gt, size=2 * p.boundary_width + 3)
        jitter = rng.uniform(-p.boundary_error_px, p.boundary_error_px, gt.shape)
        disp = np.where(fattened, blurred + jitter, disp)

        # gross outliers
        outliers = rng.random(gt.shape) < p.outlier_rate
        wrong = gt + rng.normal(0.0, p.outlier_scale_px, size=gt.shape)
        disp = np.where(outliers, wrong, disp)
        return np.maximum(disp, 0.0)

    __call__ = infer
