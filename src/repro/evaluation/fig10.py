"""Fig. 10 — speedup and energy reduction of the three ASV variants.

For each network: ISM only, DCO only, and ISM+DCO, all against the
baseline accelerator running the unmodified DNN every frame.  Paper
averages: ISM 3.3x / 75 %, DCO 1.57x / 38 %, combined 4.9x / 85 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import ASVSystem
from repro.evaluation.common import render_table
from repro.hw.config import HWConfig
from repro.models import STEREO_NETWORKS

__all__ = ["AblationRow", "run_fig10", "format_fig10"]


@dataclass(frozen=True)
class AblationRow:
    network: str
    dco_speedup: float
    dco_energy_red_pct: float
    ism_speedup: float
    ism_energy_red_pct: float
    combined_speedup: float
    combined_energy_red_pct: float


VARIANTS = {
    "dco": dict(use_ism=False, mode="ilar"),
    "ism": dict(use_ism=True, mode="baseline"),
    "combined": dict(use_ism=True, mode="ilar"),
}


def run_fig10(
    hw: HWConfig | None = None, pw: int = 4, networks=None
) -> list[AblationRow]:
    system = ASVSystem(hw) if hw else ASVSystem()
    rows = []
    for net in networks or STEREO_NETWORKS:
        vals = {}
        for label, kw in VARIANTS.items():
            sp, er = system.speedup_over_baseline(net, pw=pw, **kw)
            vals[label] = (sp, 100.0 * er)
        rows.append(
            AblationRow(
                network=net,
                dco_speedup=vals["dco"][0],
                dco_energy_red_pct=vals["dco"][1],
                ism_speedup=vals["ism"][0],
                ism_energy_red_pct=vals["ism"][1],
                combined_speedup=vals["combined"][0],
                combined_energy_red_pct=vals["combined"][1],
            )
        )
    return rows


def averages(rows: list[AblationRow]) -> AblationRow:
    n = len(rows)
    return AblationRow(
        network="AVG",
        dco_speedup=sum(r.dco_speedup for r in rows) / n,
        dco_energy_red_pct=sum(r.dco_energy_red_pct for r in rows) / n,
        ism_speedup=sum(r.ism_speedup for r in rows) / n,
        ism_energy_red_pct=sum(r.ism_energy_red_pct for r in rows) / n,
        combined_speedup=sum(r.combined_speedup for r in rows) / n,
        combined_energy_red_pct=sum(r.combined_energy_red_pct for r in rows) / n,
    )


def format_fig10(rows: list[AblationRow]) -> str:
    rows = rows + [averages(rows)]
    table = [
        [
            r.network,
            r.dco_speedup, r.dco_energy_red_pct,
            r.ism_speedup, r.ism_energy_red_pct,
            r.combined_speedup, r.combined_energy_red_pct,
        ]
        for r in rows
    ]
    return render_table(
        "Fig. 10 — ASV variants vs baseline accelerator (PW-4)",
        ["network", "DCO x", "DCO E-red %", "ISM x", "ISM E-red %",
         "DCO+ISM x", "DCO+ISM E-red %"],
        table,
    )
