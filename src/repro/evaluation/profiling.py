"""Per-layer profiling of a network on the accelerator.

Accelerator papers live and die by per-layer breakdowns; this driver
produces the table the paper's evaluation implies but never prints:
for every layer of a stereo network, its share of cycles, DRAM
traffic, and energy, under any execution mode — which is also how one
*sees* that deconvolutions dominate the baseline and stop dominating
after the transformation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deconv.exhaustive import best_static_partition
from repro.deconv.lowering import lower_network
from repro.deconv.optimizer import optimize_layers
from repro.evaluation.common import render_table
from repro.hw.config import ASV_BASE, HWConfig
from repro.hw.systolic import SystolicModel
from repro.models import QHD, network_specs

__all__ = ["LayerProfile", "profile_network", "format_profile"]


@dataclass(frozen=True)
class LayerProfile:
    layer: str
    is_deconv: bool
    cycles: int
    cycle_share_pct: float
    dram_mb: float
    energy_mj: float
    bound: str  # "compute" | "memory"


def profile_network(
    network: str,
    mode: str = "baseline",
    hw: HWConfig = ASV_BASE,
    size=QHD,
) -> list[LayerProfile]:
    """Per-layer profile under a mode (see :data:`repro.core.MODES`)."""
    model = SystolicModel(hw)
    specs = network_specs(network, size)
    if mode == "baseline":
        layers = lower_network(specs, transform=False)
        _, schedules = best_static_partition(layers, hw, model)
    elif mode == "dct":
        layers = lower_network(specs, transform=True, ilar=False)
        _, schedules = best_static_partition(layers, hw, model)
    elif mode in ("convr", "ilar"):
        layers = lower_network(specs, transform=True, ilar=(mode == "ilar"))
        schedules = optimize_layers(layers, hw, model)
    else:
        raise ValueError(f"unknown mode {mode!r}")
    results = [model.run_schedule(s, validate=False) for s in schedules]
    total = sum(r.cycles for r in results) or 1
    return [
        LayerProfile(
            layer=r.name,
            is_deconv="[naive]" in r.name or "[dct" in r.name,
            cycles=r.cycles,
            cycle_share_pct=100.0 * r.cycles / total,
            dram_mb=r.dram_bytes / 1e6,
            energy_mj=1e3 * r.energy_j,
            bound="memory" if r.memory_cycles > r.compute_cycles else "compute",
        )
        for r in results
    ]


def format_profile(network: str, mode: str, profiles: list[LayerProfile]) -> str:
    rows = [
        [p.layer, "deconv" if p.is_deconv else "conv", p.cycles,
         p.cycle_share_pct, p.dram_mb, p.energy_mj, p.bound]
        for p in profiles
    ]
    deconv_share = sum(p.cycle_share_pct for p in profiles if p.is_deconv)
    rows.append(["TOTAL deconv share", "", "", deconv_share, "", "", ""])
    return render_table(
        f"Per-layer profile — {network} [{mode}]",
        ["layer", "kind", "cycles", "share %", "DRAM MB", "energy mJ", "bound"],
        rows,
    )
