"""Fig. 13 — ASV versus Eyeriss and a mobile GPU.

All systems process the same four stereo networks per frame; results
are geometric compositions over the networks, normalised to the
Eyeriss baseline (as the paper plots).  Series:

* Eyeriss (row-stationary, naive deconvolutions) — the 1.0x reference;
* Eyeriss+DCT — the simulator extended with the transformation
  (the paper reports 1.6x / 31 % energy saving);
* GPU — the Jetson TX2 roofline model;
* ASV DCO / ISM / DCO+ISM — the co-designed system
  (the paper reports 8.2x at 16 % of Eyeriss's energy for the full
  system).

The driver is backend-agnostic: every platform is obtained from the
backend registry and spoken to through the
:class:`~repro.backends.ExecutionBackend` protocol, so adding a
platform to this comparison means registering a backend, not editing
this file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends import get_backend
from repro.core import ASVSystem
from repro.evaluation.common import backend_network_costs, render_table
from repro.hw.config import ASV_BASE, HWConfig
from repro.models import QHD, STEREO_NETWORKS

__all__ = ["SystemPoint", "run_fig13", "format_fig13"]


@dataclass(frozen=True)
class SystemPoint:
    system: str
    speedup_vs_eyeriss: float
    norm_energy: float  # energy / Eyeriss energy (lower is better)


def run_fig13(
    hw: HWConfig = ASV_BASE, size=QHD, pw: int = 4, networks=None
) -> list[SystemPoint]:
    networks = list(networks or STEREO_NETWORKS)
    eyeriss = get_backend("eyeriss", hw=hw)
    gpu = get_backend("gpu")
    asv = ASVSystem(hw)

    eye_secs, eye_js = backend_network_costs(eyeriss, networks, size, "baseline")
    eye_dct_secs, eye_dct_js = backend_network_costs(eyeriss, networks, size, "dct")
    gpu_secs, gpu_js = backend_network_costs(gpu, networks, size, "baseline")

    asv_variants = {
        "ASV-DCO": dict(use_ism=False, mode="ilar"),
        "ASV-ISM": dict(use_ism=True, mode="baseline"),
        "ASV-DCO+ISM": dict(use_ism=True, mode="ilar"),
    }
    asv_secs = {k: 0.0 for k in asv_variants}
    asv_js = {k: 0.0 for k in asv_variants}
    for net in networks:
        for label, kw in asv_variants.items():
            cost = asv.frame_cost(net, pw=pw, size=size, **kw)
            asv_secs[label] += cost.seconds(hw)
            asv_js[label] += cost.energy_j

    points = [
        SystemPoint("Eyeriss", 1.0, 1.0),
        SystemPoint("Eyeriss+DCT", eye_secs / eye_dct_secs, eye_dct_js / eye_js),
        SystemPoint("GPU", eye_secs / gpu_secs, gpu_js / eye_js),
    ]
    for label in asv_variants:
        points.append(
            SystemPoint(
                label, eye_secs / asv_secs[label], asv_js[label] / eye_js
            )
        )
    return points


def format_fig13(points: list[SystemPoint]) -> str:
    rows = [[p.system, p.speedup_vs_eyeriss, p.norm_energy] for p in points]
    return render_table(
        "Fig. 13 — speedup and normalised energy vs Eyeriss",
        ["system", "speedup (x)", "norm. energy"],
        rows,
    )
