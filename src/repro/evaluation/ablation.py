"""Scheduler design-choice ablations (beyond the paper's figures).

DESIGN.md calls out three design decisions in the tiling scheduler
worth isolating; this driver quantifies each on a representative
transformed deconvolution group:

* **β (reuse order, Eq. 7)** — forcing ifmap-resident or
  weight-resident scheduling versus letting the optimizer choose;
* **knapsack filter packing** — the paper's greedy-DP packer versus a
  degenerate one-filter-per-round packer (the value of batching
  filters against the buffer);
* **static partition** — the per-layer optimizer versus the baseline's
  network-wide static buffer split.

Also includes the propagation-window sweep (PW-1 ... PW-8): the
latency/energy side of the paper's Sec. 7.2 key-frame discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import ASVSystem
from repro.deconv.exhaustive import Partition, schedule_with_partition
from repro.deconv.lowering import lower_transformed
from repro.deconv.optimizer import build_schedule, optimize_layer
from repro.evaluation.common import render_table
from repro.hw.config import ASV_BASE, HWConfig
from repro.hw.systolic import SystolicModel
from repro.models import QHD
from repro.nn.workload import ConvSpec

__all__ = [
    "BandwidthRow",
    "SchedulerAblationRow",
    "format_bandwidth_sweep",
    "run_bandwidth_sweep",
    "run_scheduler_ablation",
    "format_scheduler_ablation",
    "PWSweepRow",
    "run_pw_sweep",
    "format_pw_sweep",
]


@dataclass(frozen=True)
class SchedulerAblationRow:
    strategy: str
    cycles: int
    dram_bytes: int
    energy_mj: float


def _default_layer() -> ConvSpec:
    """A FlowNetC-scale deconvolution: big enough that tiling matters."""
    return ConvSpec(
        "deconv3", 769, 128, (4, 4), (68, 120), 2, 1, deconv=True, stage="DR"
    )


def run_scheduler_ablation(
    spec: ConvSpec | None = None, hw: HWConfig = ASV_BASE
) -> list[SchedulerAblationRow]:
    spec = spec or _default_layer()
    model = SystolicModel(hw)
    (group,) = lower_transformed(spec, ilar=True)
    rows = []

    def add(label, sched):
        res = model.run_schedule(sched, validate=False)
        rows.append(
            SchedulerAblationRow(
                label, res.cycles, res.dram_bytes, 1e3 * res.energy_j
            )
        )

    third = hw.usable_buffer_bytes // 3
    static = schedule_with_partition(
        group, hw, Partition(third, third, third), model
    )
    if static is not None:
        add("static partition (even thirds)", static)

    add("optimizer, beta=ifmap-resident",
        optimize_layer(group, hw, model, beta_choices=(False,)))
    add("optimizer, beta=weight-resident",
        optimize_layer(group, hw, model, beta_choices=(True,)))

    # degenerate packing: one filter per round
    groups = [
        tuple(1 if k == j else 0 for k in range(len(group.subconvs)))
        for j in range(len(group.subconvs))
        for _ in range(group.subconvs[j].filters)
    ]
    best_single = None
    for n_row in (4, 8, 16):
        for n_ic in (1, 4, 16, 64):
            if n_ic > group.in_channels:
                continue
            try:
                sched = build_schedule(group, hw, n_row, 1, n_ic, groups, False)
                sched.validate(hw)
            except ValueError:
                continue
            res = model.run_schedule(sched, validate=False)
            if best_single is None or res.cycles < best_single[1].cycles:
                best_single = (sched, res)
    if best_single:
        add("one filter per round (no knapsack)", best_single[0])

    add("optimizer, full (paper)", optimize_layer(group, hw, model))
    return rows


def format_scheduler_ablation(rows: list[SchedulerAblationRow]) -> str:
    table = [
        [r.strategy, r.cycles, r.dram_bytes, r.energy_mj] for r in rows
    ]
    return render_table(
        "Scheduler ablation — one transformed deconvolution group",
        ["strategy", "cycles", "DRAM bytes", "energy (mJ)"],
        table,
    )


@dataclass(frozen=True)
class BandwidthRow:
    bandwidth_gbps: float
    baseline_mcycles: float
    dco_mcycles: float
    speedup: float


def run_bandwidth_sweep(
    network: str = "FlowNetC",
    bandwidths_gbps=(6.4, 12.8, 25.6, 51.2, 102.4),
    size=(270, 480),
) -> list[BandwidthRow]:
    """DRAM-bandwidth sensitivity of the deconvolution optimizations.

    Probes the Fig. 12 discussion directly: as bandwidth shrinks the
    baseline's redundant zero traffic becomes the bottleneck and DCO's
    traffic elimination is worth more; with abundant bandwidth the gain
    converges to the pure MAC reduction.
    """
    from repro.deconv.exhaustive import best_static_partition
    from repro.deconv.lowering import lower_network
    from repro.deconv.optimizer import optimize_layers
    from repro.models import network_specs

    specs = network_specs(network, size)
    rows = []
    for bw in bandwidths_gbps:
        hw = ASV_BASE.with_resources(
            name=f"bw{bw}", dram_bytes_per_sec=bw * 1e9
        )
        model = SystolicModel(hw)
        _, base_scheds = best_static_partition(
            lower_network(specs, transform=False), hw, model
        )
        base = model.run_schedules(base_scheds, validate=False)
        opt = model.run_schedules(
            optimize_layers(
                lower_network(specs, transform=True, ilar=True), hw, model
            ),
            validate=False,
        )
        rows.append(
            BandwidthRow(
                bandwidth_gbps=bw,
                baseline_mcycles=base.cycles / 1e6,
                dco_mcycles=opt.cycles / 1e6,
                speedup=base.cycles / opt.cycles,
            )
        )
    return rows


def format_bandwidth_sweep(rows: list[BandwidthRow], network="FlowNetC") -> str:
    table = [
        [f"{r.bandwidth_gbps:g}", r.baseline_mcycles, r.dco_mcycles, r.speedup]
        for r in rows
    ]
    return render_table(
        f"DRAM-bandwidth sensitivity of DCO — {network}",
        ["GB/s", "baseline Mcyc", "DCO Mcyc", "speedup (x)"],
        table,
    )


@dataclass(frozen=True)
class PWSweepRow:
    pw: int
    speedup: float
    energy_reduction_pct: float
    fps: float


def run_pw_sweep(
    network: str = "DispNet", windows=(1, 2, 4, 8), hw: HWConfig | None = None
) -> list[PWSweepRow]:
    system = ASVSystem(hw) if hw else ASVSystem()
    rows = []
    for pw in windows:
        sp, er = system.speedup_over_baseline(
            network, use_ism=pw > 1, mode="ilar", pw=pw
        )
        cost = system.frame_cost(
            network, use_ism=pw > 1, mode="ilar", pw=pw, size=QHD
        )
        rows.append(PWSweepRow(pw, sp, 100.0 * er, cost.fps(system.hw)))
    return rows


def format_pw_sweep(rows: list[PWSweepRow], network: str = "DispNet") -> str:
    table = [[r.pw, r.speedup, r.energy_reduction_pct, r.fps] for r in rows]
    return render_table(
        f"Propagation-window sweep — {network} with DCO",
        ["PW", "speedup (x)", "energy red. (%)", "FPS"],
        table,
    )
