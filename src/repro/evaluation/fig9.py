"""Fig. 9 — accuracy of ISM versus per-frame DNN inference.

For each network: the DNN's own three-pixel error rate, and ISM's at
PW-2 and PW-4, on both procedural datasets.  KITTI-like scenes have
only two consecutive frames (exactly like the real KITTI), so only
PW-2 applies there.

Expected shape (paper): PW-2 matches the DNN; PW-4 costs a small
accuracy loss; occasionally ISM *beats* the DNN (temporal propagation
filters single-frame outliers).  The absolute PW-4 degradation here is
larger than the paper's 0.02 % because the procedural scenes have much
larger per-frame motion relative to their resolution (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ISM, ISMConfig
from repro.datasets import kitti_pairs, sceneflow_videos
from repro.evaluation.common import ExperimentScale, default_scale, render_table
from repro.models import STEREO_NETWORKS
from repro.models.proxy import StereoDNNProxy
from repro.stereo import error_rate

__all__ = ["AccuracyRow", "run_fig9", "format_fig9"]


@dataclass(frozen=True)
class AccuracyRow:
    dataset: str
    network: str
    dnn_error_pct: float
    pw2_error_pct: float
    pw4_error_pct: float | None  # None on two-frame datasets


def _sequence_errors(seqs, network: str, pw: int) -> float:
    errs = []
    for i, frames in enumerate(seqs):
        ism = ISM(
            StereoDNNProxy(network, seed=1000 + i),
            config=ISMConfig(propagation_window=pw),
        )
        result = ism.run_sequence(frames)
        errs.extend(
            error_rate(d, f.disparity)
            for d, f in zip(result.disparities, frames)
        )
    return float(np.mean(errs))


def _dnn_errors(seqs, network: str) -> float:
    errs = []
    for i, frames in enumerate(seqs):
        proxy = StereoDNNProxy(network, seed=1000 + i)
        errs.extend(error_rate(proxy(f), f.disparity) for f in frames)
    return float(np.mean(errs))


def run_fig9(scale: ExperimentScale | None = None) -> list[AccuracyRow]:
    scale = scale or default_scale()
    sf = list(
        sceneflow_videos(
            n_videos=scale.n_sceneflow_videos,
            n_frames=scale.n_sceneflow_frames,
            size=scale.accuracy_size,
            max_disp=scale.accuracy_max_disp,
            seed=scale.seed,
        )
    )
    kt = list(
        kitti_pairs(
            n_scenes=scale.n_kitti_scenes,
            size=scale.accuracy_size,
            max_disp=scale.accuracy_max_disp,
            seed=scale.seed,
        )
    )
    rows = []
    for net in STEREO_NETWORKS:
        rows.append(
            AccuracyRow(
                dataset="SceneFlow",
                network=net,
                dnn_error_pct=_dnn_errors(sf, net),
                pw2_error_pct=_sequence_errors(sf, net, 2),
                pw4_error_pct=_sequence_errors(sf, net, 4),
            )
        )
    for net in STEREO_NETWORKS:
        rows.append(
            AccuracyRow(
                dataset="KITTI",
                network=net,
                dnn_error_pct=_dnn_errors(kt, net),
                pw2_error_pct=_sequence_errors(kt, net, 2),
                pw4_error_pct=None,
            )
        )
    return rows


def format_fig9(rows: list[AccuracyRow]) -> str:
    table = [
        [
            r.dataset,
            r.network,
            r.dnn_error_pct,
            r.pw2_error_pct,
            "-" if r.pw4_error_pct is None else r.pw4_error_pct,
        ]
        for r in rows
    ]
    return render_table(
        "Fig. 9 — three-pixel error: DNN vs ISM (PW-2 / PW-4)",
        ["dataset", "network", "DNN %", "PW-2 %", "PW-4 %"],
        table,
    )
