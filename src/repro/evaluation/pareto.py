"""Pareto-frontier analysis of the Fig. 1 design space.

The paper's framing of Fig. 1 is exactly a Pareto argument: classic
algorithms and DNNs trace an accuracy/performance frontier, and ASV's
contribution is a point that *dominates* a stretch of it.  This module
extracts the non-dominated set from frontier points so that claim can
be asserted rather than eyeballed.
"""

from __future__ import annotations

from repro.evaluation.fig1 import FrontierPoint

__all__ = ["dominates", "pareto_frontier"]


def dominates(a: FrontierPoint, b: FrontierPoint) -> bool:
    """True when ``a`` is at least as good as ``b`` on both axes
    (lower error, higher FPS) and strictly better on one."""
    as_good = a.error_pct <= b.error_pct and a.fps >= b.fps
    strictly = a.error_pct < b.error_pct or a.fps > b.fps
    return as_good and strictly


def pareto_frontier(points: list[FrontierPoint]) -> list[FrontierPoint]:
    """The non-dominated subset, sorted by error rate."""
    frontier = [
        p for p in points
        if not any(dominates(q, p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: p.error_pct)
