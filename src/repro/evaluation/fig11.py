"""Fig. 11 — dissecting the deconvolution optimizations.

Three cumulative variants against the naive baseline:

* **DCT**  — the deconvolution-to-convolution transformation alone,
  still scheduled by the baseline static-partition scheduler;
* **ConvR** — DCT plus the per-layer constrained-optimization reuse
  scheduler, but each sub-convolution scheduled independently
  (conventional reuse only);
* **ILAR** — ConvR plus inter-layer activation reuse: the
  sub-convolutions of each transformed deconvolution are co-scheduled
  around one shared ifmap.

Reported both for the deconvolution layers alone (Fig. 11a) and for
whole networks (Fig. 11b).  Expected shapes: DCT alone ~3.9x on
deconvolutions (the MAC reduction); reuse optimization raises it
further; ConvR ~ ILAR in *speed* but ILAR clearly better in *energy*
(DRAM traffic), with 3-D networks gaining the most.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deconv.exhaustive import best_static_partition
from repro.deconv.lowering import lower_network
from repro.deconv.optimizer import optimize_layers
from repro.evaluation.common import render_table
from repro.hw.config import ASV_BASE, HWConfig
from repro.hw.systolic import SystolicModel
from repro.models import QHD, STEREO_NETWORKS, network_specs

__all__ = ["DeconvOptRow", "run_fig11", "format_fig11"]

VARIANTS = ("dct", "convr", "ilar")


@dataclass(frozen=True)
class DeconvOptRow:
    network: str
    variant: str
    deconv_speedup: float
    deconv_energy_red_pct: float
    network_speedup: float
    network_energy_red_pct: float
    deconv_dram_bytes: int


def _is_deconv_layer(name: str) -> bool:
    return "[naive]" in name or "[dct" in name


def _totals(results):
    cycles = sum(r.cycles for r in results)
    energy = sum(r.energy_j for r in results)
    dram = sum(r.dram_bytes for r in results)
    return cycles, energy, dram


def _run_variant(specs, variant: str, hw: HWConfig, model: SystolicModel):
    if variant == "baseline":
        layers = lower_network(specs, transform=False)
        _, schedules = best_static_partition(layers, hw, model)
    elif variant == "dct":
        layers = lower_network(specs, transform=True, ilar=False)
        _, schedules = best_static_partition(layers, hw, model)
    elif variant == "convr":
        layers = lower_network(specs, transform=True, ilar=False)
        schedules = optimize_layers(layers, hw, model)
    elif variant == "ilar":
        layers = lower_network(specs, transform=True, ilar=True)
        schedules = optimize_layers(layers, hw, model)
    else:
        raise ValueError(f"unknown variant {variant!r}")
    results = [model.run_schedule(s, validate=False) for s in schedules]
    deconv = [r for r in results if _is_deconv_layer(r.name)]
    return _totals(results), _totals(deconv)


def run_fig11(
    hw: HWConfig = ASV_BASE, size=QHD, networks=None
) -> list[DeconvOptRow]:
    model = SystolicModel(hw)
    rows = []
    for net in networks or STEREO_NETWORKS:
        specs = network_specs(net, size)
        (b_all, b_e, _), (b_dc, b_dce, _) = _run_variant(specs, "baseline", hw, model)
        for variant in VARIANTS:
            (v_all, v_e, _), (v_dc, v_dce, v_dram) = _run_variant(
                specs, variant, hw, model
            )
            rows.append(
                DeconvOptRow(
                    network=net,
                    variant=variant,
                    deconv_speedup=b_dc / v_dc,
                    deconv_energy_red_pct=100.0 * (1 - v_dce / b_dce),
                    network_speedup=b_all / v_all,
                    network_energy_red_pct=100.0 * (1 - v_e / b_e),
                    deconv_dram_bytes=v_dram,
                )
            )
    return rows


def format_fig11(rows: list[DeconvOptRow]) -> str:
    table = [
        [
            r.network, r.variant.upper(),
            r.deconv_speedup, r.deconv_energy_red_pct,
            r.network_speedup, r.network_energy_red_pct,
        ]
        for r in rows
    ]
    for variant in VARIANTS:
        sub = [r for r in rows if r.variant == variant]
        table.append(
            [
                "AVG", variant.upper(),
                sum(r.deconv_speedup for r in sub) / len(sub),
                sum(r.deconv_energy_red_pct for r in sub) / len(sub),
                sum(r.network_speedup for r in sub) / len(sub),
                sum(r.network_energy_red_pct for r in sub) / len(sub),
            ]
        )
    return render_table(
        "Fig. 11 — deconvolution optimizations (a: deconv layers, b: whole net)",
        ["network", "variant", "deconv x", "deconv E-red %",
         "net x", "net E-red %"],
        table,
    )
