"""Fig. 4 — depth-estimation sensitivity to stereo-matching error.

Reproduces the paper's triangulation sensitivity curves for the
Bumblebee2 rig (B = 120 mm, f = 2.5 mm, 7.4 um pixels): depth error in
metres as a function of disparity error in pixels, for objects at 10,
15 and 30 m.  The headline check: two tenths of a pixel already cost
0.5-5 m depending on distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.common import render_table
from repro.stereo.triangulate import BUMBLEBEE2, StereoCamera

__all__ = ["SensitivityCurve", "run_fig4", "format_fig4"]

DISTANCES_M = (10.0, 15.0, 30.0)


@dataclass(frozen=True)
class SensitivityCurve:
    distance_m: float
    disparity_errors_px: np.ndarray
    depth_errors_m: np.ndarray


def run_fig4(
    camera: StereoCamera = BUMBLEBEE2,
    max_disparity_error_px: float = 0.2,
    n_points: int = 21,
) -> list[SensitivityCurve]:
    errs = np.linspace(0.0, max_disparity_error_px, n_points)
    curves = []
    for dist in DISTANCES_M:
        depth_err = camera.depth_error(dist, errs)
        curves.append(SensitivityCurve(dist, errs, np.asarray(depth_err)))
    return curves


def format_fig4(curves: list[SensitivityCurve]) -> str:
    sample = curves[0].disparity_errors_px
    picks = [0, len(sample) // 4, len(sample) // 2, 3 * len(sample) // 4, -1]
    headers = ["distance (m)"] + [
        f"dz={sample[i]:.2f}px" for i in picks
    ]
    rows = []
    for c in curves:
        rows.append(
            [c.distance_m] + [float(c.depth_errors_m[i]) for i in picks]
        )
    return render_table(
        "Fig. 4 — depth error (m) vs disparity error (Bumblebee2)",
        headers,
        rows,
    )
