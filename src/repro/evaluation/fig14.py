"""Fig. 14 — the deconvolution optimizations applied to GANs.

Compares ASV's *software* deconvolution optimizations against GANNX, a
dedicated deconvolution accelerator, on the six GAN generators of the
GANNX paper.  Both are normalised to the same Eyeriss baseline and
configured with equal PE/buffer resources.  The paper's expectation:
ASV ~5.0x / 4.2x (speedup / energy) versus GANNX's ~3.6x / 3.2x — ASV
wins on inter-layer activation reuse, which a per-pattern hardware
engine cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends import get_backend
from repro.evaluation.common import render_table
from repro.hw.config import ASV_BASE, HWConfig
from repro.hw.gannx import GannxModel
from repro.models.gans import GAN_NETWORKS, gan_specs

__all__ = ["GANRow", "run_fig14", "format_fig14"]


@dataclass(frozen=True)
class GANRow:
    gan: str
    asv_speedup: float
    gannx_speedup: float
    asv_energy_reduction: float    # Eyeriss energy / system energy
    gannx_energy_reduction: float


def run_fig14(hw: HWConfig = ASV_BASE, gans=None) -> list[GANRow]:
    eyeriss = get_backend("eyeriss", hw=hw)
    asv_backend = get_backend("systolic", hw=hw)
    gannx = GannxModel(hw)
    rows = []
    for name in gans or GAN_NETWORKS:
        specs = gan_specs(name)
        base = eyeriss.run_network(specs, mode="baseline")
        gx = gannx.run_network(specs)
        asv = asv_backend.run_network(specs, mode="ilar")
        rows.append(
            GANRow(
                gan=name,
                asv_speedup=base.cycles / asv.cycles,
                gannx_speedup=base.cycles / gx.cycles,
                asv_energy_reduction=base.energy_j / asv.energy_j,
                gannx_energy_reduction=base.energy_j / gx.energy_j,
            )
        )
    return rows


def averages(rows: list[GANRow]) -> GANRow:
    n = len(rows)
    return GANRow(
        gan="AVG",
        asv_speedup=sum(r.asv_speedup for r in rows) / n,
        gannx_speedup=sum(r.gannx_speedup for r in rows) / n,
        asv_energy_reduction=sum(r.asv_energy_reduction for r in rows) / n,
        gannx_energy_reduction=sum(r.gannx_energy_reduction for r in rows) / n,
    )


def format_fig14(rows: list[GANRow]) -> str:
    table = [
        [r.gan, r.asv_speedup, r.gannx_speedup,
         r.asv_energy_reduction, r.gannx_energy_reduction]
        for r in rows + [averages(rows)]
    ]
    return render_table(
        "Fig. 14 — GAN acceleration vs Eyeriss: ASV (software) vs GANNX (hw)",
        ["GAN", "ASV x", "GANNX x", "ASV E-red x", "GANNX E-red x"],
        table,
    )
