"""Sec. 7.1 — hardware overhead of the ASV extensions."""

from __future__ import annotations

from repro.evaluation.common import render_table
from repro.hw.area import AreaPowerModel
from repro.hw.config import ASV_BASE, HWConfig

__all__ = ["run_overhead", "format_overhead"]


def run_overhead(hw: HWConfig = ASV_BASE, model: AreaPowerModel | None = None):
    model = model or AreaPowerModel()
    report = model.overhead(hw)
    return model, report


def format_overhead(model: AreaPowerModel, report) -> str:
    rows = [
        ["per-PE abs-diff extension (area)", f"+{model.pe_area_overhead_pct():.1f}%",
         f"{model.pe_ext_area_um2} um^2"],
        ["per-PE abs-diff extension (power)", f"+{model.pe_power_overhead_pct():.1f}%",
         f"{model.pe_ext_power_mw} mW"],
        ["scalar-unit extension (area)", "-", f"{model.scalar_ext_area_um2} um^2"],
        ["scalar-unit extension (power)", "-", f"{model.scalar_ext_power_mw} mW"],
        ["total ASV area overhead", f"{report.area_overhead_pct:.2f}%",
         f"{report.added_area_mm2:.4f} mm^2 of {report.total_area_mm2} mm^2"],
        ["total ASV power overhead", f"{report.power_overhead_pct:.2f}%",
         f"{1e3 * report.added_power_w:.1f} mW of {report.total_power_w} W"],
    ]
    return render_table(
        "Sec. 7.1 — hardware overhead of the ASV extensions",
        ["component", "relative", "absolute"],
        rows,
    )
