"""Fig. 1 — the accuracy/performance frontier.

Places every system on the (error rate, FPS) plane:

* four classic algorithms (BM stands alongside GCSF; SGBN/HH are the
  4-/8-path SGM configurations; ELAS is the support-point matcher),
  with error measured on the synthetic KITTI-like pairs and FPS from
  their arithmetic-operation counts on an embedded-CPU cost model;
* the four stereo DNNs on the baseline accelerator ("-Acc") and the
  mobile GPU ("-GPU"), error from the calibrated proxies;
* ASV: full DCO + ISM at PW-4, whose error is the ISM pipeline's and
  whose FPS comes from the co-designed system model.

The paper's qualitative claim to verify: classic algorithms are fast
but inaccurate, DNNs accurate but slow, and ASV reaches the
upper-left corner (>= 30 FPS at DNN-class accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends import get_backend
from repro.core import ISM, ASVSystem, ISMConfig
from repro.datasets import kitti_pairs
from repro.evaluation.common import ExperimentScale, default_scale, render_table
from repro.models import QHD, STEREO_NETWORKS
from repro.models.proxy import StereoDNNProxy
from repro.parallel import TileExecutor
from repro.stereo import elas, error_rate, gcsf
from repro.stereo.block_matching import block_match_ops
from repro.stereo.sgm import sgm_ops

__all__ = ["FrontierPoint", "run_fig1", "format_fig1"]

#: Sustained arithmetic throughput of the embedded CPU the classic
#: algorithms run on (a big-core mobile CPU with NEON).
CPU_OPS_PER_SEC = 2.0e10


@dataclass(frozen=True)
class FrontierPoint:
    name: str
    kind: str          # classic | dnn-acc | dnn-gpu | asv
    error_pct: float
    fps: float


def _classic_points(scale: ExperimentScale, executor: TileExecutor):
    h, w = scale.accuracy_size
    md = scale.accuracy_max_disp
    # BM / SGM run through the tiled executor (multi-core when the
    # caller asked for workers); GCSF / ELAS have no tiled adapter
    sgm, block_match = executor.kernel("sgm"), executor.kernel("bm")
    algos = {
        "GCSF": (lambda f: gcsf(f.left, f.right, md),
                 0.35 * block_match_ops(*QHD, 160)),
        "SGBN": (lambda f: sgm(f.left, f.right, md, paths=4),
                 sgm_ops(*QHD, 160, paths=4)),
        "HH": (lambda f: sgm(f.left, f.right, md, paths=8),
               sgm_ops(*QHD, 160, paths=8)),
        "ELAS": (lambda f: elas(f.left, f.right, md),
                 0.25 * block_match_ops(*QHD, 160)),
        "BM": (lambda f: block_match(f.left, f.right, md),
               block_match_ops(*QHD, 160)),
    }
    frames = [
        pair[0]
        for pair in kitti_pairs(
            n_scenes=max(2, scale.n_kitti_scenes // 3),
            size=scale.accuracy_size,
            max_disp=md,
            seed=scale.seed,
        )
    ]
    points = []
    for name, (fn, qhd_ops) in algos.items():
        errs = [error_rate(fn(f), f.disparity) for f in frames]
        points.append(
            FrontierPoint(name, "classic", float(np.mean(errs)),
                          CPU_OPS_PER_SEC / qhd_ops)
        )
    return points, frames


def run_fig1(
    scale: ExperimentScale | None = None, workers: int = 1
) -> list[FrontierPoint]:
    """All frontier points (classic, DNN-Acc, DNN-GPU, ASV).

    ``workers > 1`` runs the kernel-backed classic points (BM and the
    SGM configurations) through a tiled multi-core
    :class:`~repro.parallel.TileExecutor` with its autotuned band
    sizes (``tile_rows="auto"``) and shared-memory transport; the
    numbers are bit-identical either way.
    """
    scale = scale or default_scale()
    with TileExecutor(workers=workers) as executor:
        points, frames = _classic_points(scale, executor)
    system = ASVSystem()
    gpu = get_backend("gpu")

    for net in STEREO_NETWORKS:
        errs = [
            error_rate(StereoDNNProxy(net, seed=i)(f), f.disparity)
            for i, f in enumerate(frames)
        ]
        err = float(np.mean(errs))
        acc = system.frame_cost(net, use_ism=False, mode="baseline")
        points.append(
            FrontierPoint(f"{net}-Acc", "dnn-acc", err, acc.fps(system.hw))
        )
        gpu_s = gpu.network_seconds(net, mode="baseline", size=QHD)
        points.append(FrontierPoint(f"{net}-GPU", "dnn-gpu", err, 1.0 / gpu_s))

    # ASV: DispNet under full DCO + ISM at PW-4
    ism_errs = []
    for i, pair in enumerate(
        kitti_pairs(n_scenes=max(2, scale.n_kitti_scenes // 3),
                    size=scale.accuracy_size, max_disp=scale.accuracy_max_disp,
                    seed=scale.seed)
    ):
        ism = ISM(StereoDNNProxy("DispNet", seed=i),
                  config=ISMConfig(propagation_window=2))
        res = ism.run_sequence(pair)
        ism_errs.extend(
            error_rate(d, f.disparity) for d, f in zip(res.disparities, pair)
        )
    asv_cost = system.frame_cost("DispNet", use_ism=True, mode="ilar", pw=4)
    points.append(
        FrontierPoint("ASV", "asv", float(np.mean(ism_errs)),
                      asv_cost.fps(system.hw))
    )
    return points


def format_fig1(points: list[FrontierPoint]) -> str:
    rows = [[p.name, p.kind, p.error_pct, p.fps] for p in points]
    return render_table(
        "Fig. 1 — accuracy/performance frontier (qHD)",
        ["system", "kind", "error (%)", "FPS"],
        rows,
    )
