"""Command-line entry point: regenerate the paper's evaluation figures.

Usage::

    python -m repro.evaluation                 # every figure
    python -m repro.evaluation fig10 fig13     # a subset
    python -m repro.evaluation profile DispNet baseline

Figures print as text tables (the same ones the benchmark harness
writes to ``benchmarks/results/``).
"""

from __future__ import annotations

import sys
import time

from repro.evaluation import (
    format_fig1, format_fig3, format_fig4, format_fig9, format_fig10,
    format_fig11, format_fig12, format_fig13, format_fig14, format_overhead,
    run_fig1, run_fig3, run_fig4, run_fig9, run_fig10, run_fig11, run_fig12,
    run_fig13, run_fig14, run_overhead,
)
from repro.evaluation.ablation import (
    format_bandwidth_sweep, format_pw_sweep, format_scheduler_ablation,
    run_bandwidth_sweep, run_pw_sweep, run_scheduler_ablation,
)
from repro.models.summary import zoo_summary

FIGURES = {
    "fig1": lambda: format_fig1(run_fig1()),
    "fig3": lambda: format_fig3(run_fig3()),
    "fig4": lambda: format_fig4(run_fig4()),
    "fig9": lambda: format_fig9(run_fig9()),
    "fig10": lambda: format_fig10(run_fig10()),
    "fig11": lambda: format_fig11(run_fig11()),
    "fig12": lambda: format_fig12(run_fig12()),
    "fig13": lambda: format_fig13(run_fig13()),
    "fig14": lambda: format_fig14(run_fig14()),
    "overhead": lambda: format_overhead(*run_overhead()),
    "ablation-scheduler": lambda: format_scheduler_ablation(
        run_scheduler_ablation()
    ),
    "ablation-pw": lambda: format_pw_sweep(run_pw_sweep()),
    "ablation-bandwidth": lambda: format_bandwidth_sweep(run_bandwidth_sweep()),
    "zoo": lambda: zoo_summary(),
}


def main(argv: list[str]) -> int:
    if argv and argv[0] == "profile":
        from repro.evaluation.profiling import format_profile, profile_network

        network = argv[1] if len(argv) > 1 else "DispNet"
        mode = argv[2] if len(argv) > 2 else "baseline"
        print(format_profile(network, mode, profile_network(network, mode)))
        return 0

    targets = argv or list(FIGURES)
    unknown = [t for t in targets if t not in FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}; choose from {sorted(FIGURES)}")
        return 2
    for name in targets:
        t0 = time.perf_counter()
        print(FIGURES[name]())
        print(f"[{name} in {time.perf_counter() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
