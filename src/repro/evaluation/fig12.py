"""Fig. 12 — sensitivity of the deconvolution optimizations to hardware
resources.

Sweeps the PE array (8x8 ... 56x56) and the on-chip buffer
(0.5 ... 3 MB) and reports DCO's speedup and energy reduction over the
*same-configuration* baseline (each cell is normalised to its own
hardware, exactly as the paper notes).  FlowNetC, as in the paper.

Expected shape: speedups of roughly 1.2-1.5x and energy reductions of
25-35 % everywhere; gains shrink as PEs grow (memory-bound masking)
and as the buffer grows (reuse comes for free).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deconv.exhaustive import best_static_partition
from repro.deconv.lowering import lower_network
from repro.deconv.optimizer import optimize_layers
from repro.evaluation.common import render_table
from repro.hw.config import ASV_BASE
from repro.hw.systolic import SystolicModel
from repro.models import network_specs

__all__ = ["SensitivityCell", "run_fig12", "format_fig12"]

PE_SIZES = (8, 16, 24, 32, 40, 48, 56)
BUFFER_MB = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)


@dataclass(frozen=True)
class SensitivityCell:
    pe: int
    buffer_mb: float
    speedup: float
    energy_reduction: float  # fraction (paper plots the remaining ratio)


def run_fig12(
    network: str = "FlowNetC",
    pe_sizes=PE_SIZES,
    buffer_mb=BUFFER_MB,
    size=(270, 480),
) -> list[SensitivityCell]:
    """The sweep; default input scale is qHD/2 to keep the 42-cell grid
    affordable (ratios are scale-stable, see tests)."""
    specs = network_specs(network, size)
    cells = []
    for mb in buffer_mb:
        for pe in pe_sizes:
            hw = ASV_BASE.with_resources(
                name=f"pe{pe}-buf{mb}",
                pe_rows=pe,
                pe_cols=pe,
                buffer_bytes=int(mb * 1024 * 1024),
            )
            model = SystolicModel(hw)
            base_layers = lower_network(specs, transform=False)
            _, base_scheds = best_static_partition(base_layers, hw, model)
            base = model.run_schedules(base_scheds, validate=False)
            opt_layers = lower_network(specs, transform=True, ilar=True)
            opt = model.run_schedules(
                optimize_layers(opt_layers, hw, model), validate=False
            )
            cells.append(
                SensitivityCell(
                    pe=pe,
                    buffer_mb=mb,
                    speedup=base.cycles / opt.cycles,
                    energy_reduction=1.0 - opt.energy_j / base.energy_j,
                )
            )
    return cells


def format_fig12(cells: list[SensitivityCell]) -> str:
    pes = sorted({c.pe for c in cells})
    bufs = sorted({c.buffer_mb for c in cells})
    grid = {(c.pe, c.buffer_mb): c for c in cells}
    headers = ["buffer \\ PE"] + [f"{p}x{p}" for p in pes]
    speed_rows = []
    energy_rows = []
    for mb in bufs:
        speed_rows.append(
            [f"{mb} MB"] + [grid[(p, mb)].speedup for p in pes]
        )
        energy_rows.append(
            [f"{mb} MB"] + [grid[(p, mb)].energy_reduction for p in pes]
        )
    a = render_table("Fig. 12a — DCO speedup vs hw resources (FlowNetC)",
                     headers, speed_rows)
    b = render_table("Fig. 12b — DCO energy reduction (fraction)",
                     headers, energy_rows)
    return a + "\n\n" + b
