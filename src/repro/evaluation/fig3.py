"""Fig. 3 — arithmetic-operation distribution over the stereo pipeline.

For each network, the share of dense MACs in Feature Extraction (conv),
Matching Optimization (conv) and Disparity Refinement (deconv), plus
everything else.  The paper's headline numbers: conv+deconv > 99 % of
all operations; deconvolution averages 38.2 % with a 50 % maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.common import render_table
from repro.models import QHD, STEREO_NETWORKS
from repro.nn.workload import Stage, macs_by_stage, total_macs

__all__ = ["StageShare", "run_fig3", "format_fig3"]


@dataclass(frozen=True)
class StageShare:
    network: str
    total_gmacs: float
    fe_pct: float
    mo_pct: float
    dr_pct: float
    other_pct: float


def run_fig3(size=QHD) -> list[StageShare]:
    out = []
    for name, builder in STEREO_NETWORKS.items():
        specs = builder(size)
        dist = macs_by_stage(specs)
        total = total_macs(specs)
        out.append(
            StageShare(
                network=name,
                total_gmacs=total / 1e9,
                fe_pct=100.0 * dist[Stage.FE] / total,
                mo_pct=100.0 * dist[Stage.MO] / total,
                dr_pct=100.0 * dist[Stage.DR] / total,
                other_pct=100.0 * dist[Stage.OTHER] / total,
            )
        )
    return out


def average_dr_share(shares: list[StageShare]) -> float:
    return sum(s.dr_pct for s in shares) / len(shares)


def format_fig3(shares: list[StageShare]) -> str:
    rows = [
        [s.network, s.total_gmacs, s.fe_pct, s.mo_pct, s.dr_pct, s.other_pct]
        for s in shares
    ]
    rows.append(
        ["AVG", sum(s.total_gmacs for s in shares) / len(shares),
         sum(s.fe_pct for s in shares) / len(shares),
         sum(s.mo_pct for s in shares) / len(shares),
         average_dr_share(shares),
         sum(s.other_pct for s in shares) / len(shares)]
    )
    return render_table(
        "Fig. 3 — MAC distribution per pipeline stage (qHD input)",
        ["network", "GMACs", "FE conv %", "MO conv %", "DR deconv %", "other %"],
        rows,
    )
