"""Per-figure experiment drivers (one per paper evaluation figure)."""

from repro.evaluation.common import ExperimentScale, default_scale, render_table
from repro.evaluation.fig1 import format_fig1, run_fig1
from repro.evaluation.fig3 import format_fig3, run_fig3
from repro.evaluation.fig4 import format_fig4, run_fig4
from repro.evaluation.fig9 import format_fig9, run_fig9
from repro.evaluation.fig10 import format_fig10, run_fig10
from repro.evaluation.fig11 import format_fig11, run_fig11
from repro.evaluation.fig12 import format_fig12, run_fig12
from repro.evaluation.fig13 import format_fig13, run_fig13
from repro.evaluation.fig14 import format_fig14, run_fig14
from repro.evaluation.overhead import format_overhead, run_overhead

__all__ = [
    "ExperimentScale",
    "default_scale",
    "format_fig1",
    "format_fig10",
    "format_fig11",
    "format_fig12",
    "format_fig13",
    "format_fig14",
    "format_fig3",
    "format_fig4",
    "format_fig9",
    "format_overhead",
    "render_table",
    "run_fig1",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig3",
    "run_fig4",
    "run_fig9",
    "run_overhead",
]
