"""Shared infrastructure for the per-figure experiment drivers.

Every driver returns plain data (lists of rows) plus a rendered text
table whose rows correspond to the series the paper plots, so the
benchmark harness can both assert on the numbers and print the table.

Scale knobs
-----------
The paper's accuracy experiments use 26 SceneFlow videos and 200 KITTI
pairs at qHD; the procedural equivalents are configurable and default
to a smaller population so the full benchmark suite runs in minutes.
Set ``REPRO_FULL=1`` in the environment to run paper-scale populations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.tables import render_table

__all__ = [
    "ExperimentScale",
    "backend_network_costs",
    "default_scale",
    "render_table",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Population sizes for the statistical experiments."""

    n_sceneflow_videos: int = 4
    n_sceneflow_frames: int = 4
    n_kitti_scenes: int = 6
    accuracy_size: tuple[int, int] = (180, 320)
    accuracy_max_disp: int = 48
    seed: int = 0


def default_scale() -> ExperimentScale:
    """Reduced scale by default; paper scale with ``REPRO_FULL=1``."""
    if os.environ.get("REPRO_FULL"):
        return ExperimentScale(
            n_sceneflow_videos=26,
            n_sceneflow_frames=4,
            n_kitti_scenes=200,
        )
    return ExperimentScale()


def backend_network_costs(backend, networks, size, mode: str = "baseline"):
    """Total (seconds, joules) of one inference per network on a backend.

    Backend-agnostic workhorse of the cross-platform figures: any
    :class:`~repro.backends.ExecutionBackend` composes here, whatever
    its native clock, because results convert through
    ``backend.seconds``.
    """
    secs, joules = 0.0, 0.0
    for net in networks:
        result = backend.network_result(net, mode=mode, size=size)
        secs += backend.seconds(result)
        joules += result.energy_j
    return secs, joules


