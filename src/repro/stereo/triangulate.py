"""Triangulation: disparity to metric depth (paper Sec. 2.2, Fig. 2/4).

Given the camera baseline ``B``, focal length ``f`` and the pixel
pitch, a disparity of ``Z`` *pixels* corresponds to depth

    D = B * f / (Z * pixel_size)          (paper Eq. 1)

The module also provides the closed-form sensitivity the paper plots
in Fig. 4: a disparity error ``dz`` at true depth ``D`` produces a
depth error of approximately ``D^2 * pixel_size * dz / (B * f)``,
growing quadratically with distance — the reason sub-pixel stereo
accuracy matters (Sec. 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StereoCamera", "BUMBLEBEE2"]


@dataclass(frozen=True)
class StereoCamera:
    """Intrinsics of a rectified stereo rig (SI units)."""

    baseline_m: float
    focal_length_m: float
    pixel_size_m: float

    def __post_init__(self):
        if min(self.baseline_m, self.focal_length_m, self.pixel_size_m) <= 0:
            raise ValueError("camera parameters must be positive")

    @property
    def bf_pixels(self) -> float:
        """B*f expressed in metre-pixels (depth = bf_pixels / disparity)."""
        return self.baseline_m * self.focal_length_m / self.pixel_size_m

    def depth_from_disparity(self, disparity_px) -> np.ndarray:
        """Metric depth from disparity in pixels (Eq. 1). Non-positive
        disparities map to +inf (point at infinity)."""
        disparity_px = np.asarray(disparity_px, dtype=np.float64)
        with np.errstate(divide="ignore"):
            return np.where(
                disparity_px > 0, self.bf_pixels / disparity_px, np.inf
            )

    def disparity_from_depth(self, depth_m) -> np.ndarray:
        """Disparity in pixels for a metric depth."""
        depth_m = np.asarray(depth_m, dtype=np.float64)
        with np.errstate(divide="ignore"):
            return np.where(depth_m > 0, self.bf_pixels / depth_m, np.inf)

    def depth_error(self, depth_m, disparity_error_px) -> np.ndarray:
        """Exact depth error for a disparity error at a true depth
        (the Fig. 4 curves)."""
        true_disp = self.disparity_from_depth(depth_m)
        measured = true_disp + np.asarray(disparity_error_px, dtype=np.float64)
        return np.abs(self.depth_from_disparity(measured) - np.asarray(depth_m))


#: The paper's example rig: Bumblebee2 (B = 120 mm, f = 2.5 mm, 7.4 um pixels).
BUMBLEBEE2 = StereoCamera(
    baseline_m=0.120, focal_length_m=2.5e-3, pixel_size_m=7.4e-6
)
