"""Stereo accuracy metrics (paper Sec. 6.1).

The paper uses the standard *three-pixel-error*: a pixel's disparity is
correct when it differs from ground truth by less than 3 pixels, and
networks are compared by the percentage of incorrect pixels (the
"error rate" of Figs. 1 and 9).
"""

from __future__ import annotations

import numpy as np

__all__ = ["three_pixel_error", "error_rate", "end_point_error"]


def _prep(disp, gt, valid):
    disp = np.asarray(disp, dtype=np.float64)
    gt = np.asarray(gt, dtype=np.float64)
    if disp.shape != gt.shape:
        raise ValueError("disparity and ground truth must share a shape")
    if valid is None:
        valid = np.isfinite(gt)
    else:
        valid = np.asarray(valid, dtype=bool) & np.isfinite(gt)
    if not valid.any():
        raise ValueError("no valid ground-truth pixels")
    return disp, gt, valid


def three_pixel_error(disp, gt, valid=None, threshold: float = 3.0) -> float:
    """Fraction of valid pixels whose disparity error is >= threshold."""
    disp, gt, valid = _prep(disp, gt, valid)
    wrong = np.abs(disp - gt) >= threshold
    return float(wrong[valid].mean())


def error_rate(disp, gt, valid=None) -> float:
    """Three-pixel error expressed as a percentage (Fig. 1/9 y-axis)."""
    return 100.0 * three_pixel_error(disp, gt, valid)


def end_point_error(disp, gt, valid=None) -> float:
    """Mean absolute disparity error over valid pixels."""
    disp, gt, valid = _prep(disp, gt, valid)
    return float(np.abs(disp - gt)[valid].mean())
