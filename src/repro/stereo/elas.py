"""ELAS-style stereo matching (Geiger et al., ACCV'10) — Fig. 1 baseline.

Efficient Large-scale Stereo builds a *prior* from a sparse set of
confidently-matched support points, interpolates it piecewise linearly
(the original uses a Delaunay triangulation; we use scipy's), and then
restricts each pixel's disparity search to a narrow band around the
prior.  This reproduces ELAS's defining cost/accuracy trade-off: near
block-matching speed with far better robustness in weakly-textured
regions.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage
from scipy.interpolate import LinearNDInterpolator, NearestNDInterpolator
from scipy.spatial import Delaunay, QhullError

from repro.stereo.block_matching import guided_block_match, sad_cost_volume

__all__ = ["support_points", "interpolate_prior", "elas"]


def support_points(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    grid_step: int = 10,
    block_size: int = 9,
    ratio: float = 0.9,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Confident sparse matches on a regular grid.

    A grid point is kept when its best SAD beats the runner-up (outside
    a +/-1 disparity band) by the uniqueness ``ratio`` — ELAS's support
    point robustness test.  Returns ``(ys, xs, disparities)``.
    """
    cost = sad_cost_volume(left, right, max_disp, block_size)
    d_levels, h, w = cost.shape
    ys = np.arange(grid_step // 2, h, grid_step)
    xs = np.arange(grid_step // 2, w, grid_step)
    gy, gx = np.meshgrid(ys, xs, indexing="ij")
    sub = cost[:, gy, gx]  # (D, ny, nx)
    best_d = sub.argmin(axis=0)
    best = np.take_along_axis(sub, best_d[None], axis=0)[0]
    masked = sub.copy()
    for off in (-1, 0, 1):
        idx = np.clip(best_d + off, 0, d_levels - 1)
        np.put_along_axis(masked, idx[None], np.inf, axis=0)
    second = masked.min(axis=0)
    confident = best < ratio * second
    return gy[confident], gx[confident], best_d[confident].astype(np.float64)


def interpolate_prior(
    ys: np.ndarray, xs: np.ndarray, ds: np.ndarray, shape: tuple[int, int]
) -> np.ndarray:
    """Piecewise-linear disparity prior from support points."""
    h, w = shape
    if ds.size == 0:
        return np.zeros(shape)
    if ds.size < 4:
        return np.full(shape, float(np.median(ds)))
    pts = np.column_stack([ys, xs]).astype(np.float64)
    try:
        tri = Delaunay(pts)
        lin = LinearNDInterpolator(tri, ds)
    except QhullError:
        lin = None
    near = NearestNDInterpolator(pts, ds)
    yy, xx = np.mgrid[0:h, 0:w]
    if lin is not None:
        prior = lin(yy, xx)
        holes = np.isnan(prior)
        if holes.any():
            prior[holes] = near(yy[holes], xx[holes])
    else:
        prior = near(yy, xx)
    return np.asarray(prior, dtype=np.float64)


def elas(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    grid_step: int = 10,
    band: int = 4,
    block_size: int = 9,
) -> np.ndarray:
    """ELAS-style disparity: support points -> prior -> banded search."""
    ys, xs, ds = support_points(left, right, max_disp, grid_step, block_size)
    prior = interpolate_prior(ys, xs, ds, np.asarray(left).shape[:2])
    prior = ndimage.median_filter(prior, size=5, mode="nearest")
    disp = guided_block_match(left, right, prior, radius=band, block_size=block_size)
    return np.clip(disp, 0, max_disp - 1)
