"""ELAS-style stereo matching (Geiger et al., ACCV'10) — Fig. 1 baseline.

Efficient Large-scale Stereo builds a *prior* from a sparse set of
confidently-matched support points, interpolates it piecewise linearly
(the original triangulates; we interpolate along epipolar rows first —
see :func:`interpolate_prior` for why rows lead), and then restricts
each pixel's disparity search to a narrow band around the prior.  This
reproduces ELAS's defining cost/accuracy trade-off: near
block-matching speed with far better robustness in weakly-textured
regions.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.stereo.block_matching import guided_block_match, sad_cost_volume

__all__ = ["support_points", "interpolate_prior", "elas"]


def support_points(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    grid_step: int = 10,
    block_size: int = 9,
    ratio: float = 0.9,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Confident sparse matches on a regular grid.

    A grid point is kept when its best SAD beats the runner-up (outside
    a +/-1 disparity band) by the uniqueness ``ratio`` — ELAS's support
    point robustness test.  Returns ``(ys, xs, disparities)``.
    """
    cost = sad_cost_volume(left, right, max_disp, block_size)
    d_levels, h, w = cost.shape
    ys = np.arange(grid_step // 2, h, grid_step)
    xs = np.arange(grid_step // 2, w, grid_step)
    gy, gx = np.meshgrid(ys, xs, indexing="ij")
    sub = cost[:, gy, gx]  # (D, ny, nx)
    best_d = sub.argmin(axis=0)
    best = np.take_along_axis(sub, best_d[None], axis=0)[0]
    masked = sub.copy()
    for off in (-1, 0, 1):
        idx = np.clip(best_d + off, 0, d_levels - 1)
        np.put_along_axis(masked, idx[None], np.inf, axis=0)
    second = masked.min(axis=0)
    confident = best < ratio * second
    return gy[confident], gx[confident], best_d[confident].astype(np.float64)


def interpolate_prior(
    ys: np.ndarray, xs: np.ndarray, ds: np.ndarray, shape: tuple[int, int]
) -> np.ndarray:
    """Epipolar piecewise-linear disparity prior from support points.

    Interpolation runs *along rows first* (each support row is
    linearly interpolated across its columns, edge-replicated), then
    support-free rows are filled by linear interpolation between the
    nearest support rows above and below.  Rows lead for an epipolar
    reason: disparity evidence lives in horizontal structure, and
    supports that sit on a *horizontal* boundary between two surfaces
    are systematically fattened toward whichever side carries texture
    (the aperture problem — a horizontal edge between flat regions
    says nothing about horizontal disparity).  Row-wise interpolation
    keeps such a poisoned row from bleeding across an entire
    weakly-textured region, which 2-D scattered interpolation
    (the previous Delaunay prior) cannot avoid.
    """
    h, w = shape
    if ds.size == 0:
        return np.zeros(shape, dtype=np.float64)
    rows = np.unique(ys)
    by_row = np.empty((rows.size, w), dtype=np.float64)
    cols = np.arange(w)
    for i, y in enumerate(rows):
        m = ys == y
        order = np.argsort(xs[m])
        by_row[i] = np.interp(cols, xs[m][order], ds[m][order])
    # vertical linear fill between support rows (replicated past the
    # first/last), vectorised over whole rows
    pos = np.arange(h)
    j = np.searchsorted(rows, pos)
    j0 = np.clip(j - 1, 0, rows.size - 1)
    j1 = np.clip(j, 0, rows.size - 1)
    y0, y1 = rows[j0], rows[j1]
    t = np.where(y1 > y0, (pos - y0) / np.maximum(y1 - y0, 1), 0.0)
    t = np.clip(t, 0.0, 1.0)[:, None]
    return by_row[j0] * (1.0 - t) + by_row[j1] * t


def elas(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    grid_step: int = 5,
    band: int = 4,
    block_size: int = 9,
) -> np.ndarray:
    """ELAS-style disparity: support points -> prior -> banded search.

    ``grid_step`` defaults to libelas's 5-pixel candidate spacing: a
    dense support ring around weakly-textured regions is what lets
    the interpolated prior carry them (the translation-invariant cost
    filter resolves exact ties deterministically, so — unlike the old
    rounding-noise behaviour — no spurious "confident" supports
    appear inside flat patches to densify the grid by accident).
    """
    ys, xs, ds = support_points(left, right, max_disp, grid_step, block_size)
    prior = interpolate_prior(ys, xs, ds, np.asarray(left).shape[:2])
    prior = ndimage.median_filter(prior, size=5, mode="nearest")
    disp = guided_block_match(left, right, prior, radius=band, block_size=block_size)
    return np.clip(disp, 0, max_disp - 1)
