"""Disparity post-processing: consistency checking and filtering."""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["left_right_check", "fill_invalid", "median_clean"]


def left_right_check(
    disp_left: np.ndarray, disp_right: np.ndarray, threshold: float = 1.0
) -> np.ndarray:
    """Mask of pixels whose left/right disparities agree.

    With the paper's convention (``x_r = x_l + d``), the right-image
    disparity sampled at ``x + d`` must match ``d``; occlusions and
    mismatches fail the check.
    """
    h, w = disp_left.shape
    yy, xx = np.mgrid[0:h, 0:w]
    target = np.rint(xx + disp_left).astype(int)
    valid = (target >= 0) & (target < w)
    tx = np.clip(target, 0, w - 1)
    agree = np.abs(disp_right[yy, tx] - disp_left) <= threshold
    return valid & agree


def fill_invalid(disp: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Replace invalid pixels with the nearest valid value row-wise
    (the classic background-fill used after occlusion detection)."""
    out = disp.copy()
    for y in range(disp.shape[0]):
        row = out[y]
        good = valid[y]
        if not good.any():
            row[:] = 0.0
            continue
        idx = np.where(good)[0]
        bad = np.where(~good)[0]
        if bad.size:
            row[bad] = np.interp(bad, idx, row[idx])
    return out


def fill_background(disp: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Occlusion-aware fill: invalid pixels take the *smaller* of the
    nearest valid disparities to their left and right.

    Pixels that lose their correspondence (disocclusions, failed
    checks) are almost always *revealed background*, so filling with
    the farther (smaller-disparity) neighbour is the standard choice —
    plain interpolation would bleed the occluding foreground across
    the hole.
    """
    h, w = disp.shape
    idx = np.arange(w)
    out = disp.copy()
    for y in range(h):
        good = valid[y]
        if not good.any():
            out[y] = 0.0
            continue
        if good.all():
            continue
        gi = np.where(good)[0]
        # nearest valid index to the left / right of every column
        left_pos = np.searchsorted(gi, idx, side="right") - 1
        right_pos = np.clip(left_pos + 1, 0, gi.size - 1)
        left_pos = np.clip(left_pos, 0, gi.size - 1)
        left_val = out[y, gi[left_pos]]
        right_val = out[y, gi[right_pos]]
        fill = np.minimum(left_val, right_val)
        out[y, ~good] = fill[~good]
    return out


def median_clean(disp: np.ndarray, size: int = 3) -> np.ndarray:
    """Median filter to remove speckle while preserving edges."""
    return ndimage.median_filter(disp, size=size, mode="nearest")
