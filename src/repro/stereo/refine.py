"""Disparity post-processing: consistency checking and filtering."""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view
from scipy import ndimage

__all__ = ["left_right_check", "fill_invalid", "median2d", "median_clean"]

#: scipy boundary mode -> the ``np.pad`` mode that replicates it
_PAD_MODE = {"reflect": "symmetric", "nearest": "edge"}


def median2d(a: np.ndarray, size: int, mode: str = "reflect") -> np.ndarray:
    """2-D median filter, bit-identical to ``ndimage.median_filter``.

    An odd ``size`` window holds an odd number of samples, so the
    median is an exact order statistic — ``np.partition`` over the
    windowed view selects it directly, without the per-pixel rank
    bookkeeping of scipy's generic rank filter.  For ``size >= 5``
    that is substantially faster on float frames (the non-key flow
    smoothing hot path); small windows stay on scipy, whose moving
    histogram wins there.

    A 3-D input is a stack of planes, each filtered independently in
    its last two axes (one fused call for e.g. the four flow
    components the non-key path smooths per step).
    """
    if size <= 3 or size % 2 == 0:
        full = (1,) * (a.ndim - 2) + (size, size)
        return ndimage.median_filter(a, size=full, mode=mode)
    r = size // 2
    spatial = ((r, r), (r, r))
    pad = np.pad(a, ((0, 0),) * (a.ndim - 2) + spatial, mode=_PAD_MODE[mode])
    win = sliding_window_view(pad, (size, size), axis=(-2, -1))
    # reshaping the strided window view materialises a copy we own,
    # so the partition can run in place instead of copying again
    flat = win.reshape(win.shape[:-2] + (size * size,))
    k = (size * size) // 2
    flat.partition(k, axis=-1)
    return flat[..., k]


def left_right_check(
    disp_left: np.ndarray, disp_right: np.ndarray, threshold: float = 1.0
) -> np.ndarray:
    """Mask of pixels whose left/right disparities agree.

    With the paper's convention (``x_r = x_l + d``), the right-image
    disparity sampled at ``x + d`` must match ``d``; occlusions and
    mismatches fail the check.
    """
    h, w = disp_left.shape
    yy, xx = np.mgrid[0:h, 0:w]
    target = np.rint(xx + disp_left).astype(int)
    valid = (target >= 0) & (target < w)
    tx = np.clip(target, 0, w - 1)
    agree = np.abs(disp_right[yy, tx] - disp_left) <= threshold
    return valid & agree


def fill_invalid(disp: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Replace invalid pixels with the nearest valid value row-wise
    (the classic background-fill used after occlusion detection)."""
    out = disp.copy()
    for y in range(disp.shape[0]):
        row = out[y]
        good = valid[y]
        if not good.any():
            row[:] = 0.0
            continue
        idx = np.where(good)[0]
        bad = np.where(~good)[0]
        if bad.size:
            row[bad] = np.interp(bad, idx, row[idx])
    return out


def fill_background(disp: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Occlusion-aware fill: invalid pixels take the *smaller* of the
    nearest valid disparities to their left and right.

    Pixels that lose their correspondence (disocclusions, failed
    checks) are almost always *revealed background*, so filling with
    the farther (smaller-disparity) neighbour is the standard choice —
    plain interpolation would bleed the occluding foreground across
    the hole.
    """
    h, w = disp.shape
    out = disp.copy()
    good = valid.astype(bool, copy=False)
    any_good = good.any(axis=1)
    out[~any_good] = 0.0
    rows = np.where(any_good & ~good.all(axis=1))[0]
    if rows.size == 0:
        return out
    g = good[rows]
    col = np.arange(w)
    # nearest valid column to the left / right of every pixel, by
    # running max/min scans; pixels outside the valid span take the
    # first/last valid column of the row (both ends then read the
    # same value, so the fill degenerates to plain extension there)
    left = np.where(g, col, -1)
    np.maximum.accumulate(left, axis=1, out=left)
    right = np.where(g, col, w)
    right = np.minimum.accumulate(right[:, ::-1], axis=1)[:, ::-1]
    first = np.argmax(g, axis=1)
    last = w - 1 - np.argmax(g[:, ::-1], axis=1)
    left = np.where(left < 0, first[:, None], left)
    right = np.where(right >= w, last[:, None], right)
    sub = out[rows]
    fill = np.minimum(
        np.take_along_axis(sub, left, axis=1),
        np.take_along_axis(sub, right, axis=1),
    )
    bad = ~g
    sub[bad] = fill[bad]
    out[rows] = sub
    return out


def median_clean(disp: np.ndarray, size: int = 3) -> np.ndarray:
    """Median filter to remove speckle while preserving edges."""
    return ndimage.median_filter(disp, size=size, mode="nearest")
