"""GCSF-style seed-growing stereo (Cech et al.) — Fig. 1 baseline.

Growing Correspondence Seeds starts from a sparse set of reliable
matches and *grows* them: a matched pixel proposes its disparity (and
its +/-1 neighbours) to adjacent pixels, which accept the best proposal
whose matching cost clears a threshold.  The expansion is implemented
here as a best-first flood fill with a cost-ordered heap, which keeps
the defining property of the original — only a small disparity band is
ever evaluated per pixel — without its epipolar-rectification
machinery.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.stereo.block_matching import sad_cost_volume
from repro.stereo.elas import support_points

__all__ = ["grow_seeds", "gcsf"]

_NEIGHBOURS = ((0, 1), (0, -1), (1, 0), (-1, 0))


def grow_seeds(
    cost: np.ndarray,
    seeds: tuple[np.ndarray, np.ndarray, np.ndarray],
    accept_cost: float,
) -> np.ndarray:
    """Best-first expansion of seed disparities over a cost volume.

    ``cost`` is (D, H, W); ``seeds`` is ``(ys, xs, ds)``.  Unreached
    pixels are left at -1 (invalid).
    """
    d_levels, h, w = cost.shape
    disp = np.full((h, w), -1.0, dtype=np.float64)
    heap = []
    for y, x, d in zip(*seeds):
        y, x, d = int(y), int(x), int(d)
        heapq.heappush(heap, (float(cost[d, y, x]), y, x, d))
    while heap:
        c, y, x, d = heapq.heappop(heap)
        if disp[y, x] >= 0:
            continue
        disp[y, x] = d
        for dy, dx in _NEIGHBOURS:
            ny, nx = y + dy, x + dx
            if not (0 <= ny < h and 0 <= nx < w) or disp[ny, nx] >= 0:
                continue
            lo, hi = max(0, d - 1), min(d_levels, d + 2)
            band = cost[lo:hi, ny, nx]
            nd = lo + int(band.argmin())
            nc = float(band.min())
            if nc <= accept_cost:
                heapq.heappush(heap, (nc, ny, nx, nd))
    return disp


def gcsf(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    grid_step: int = 8,
    block_size: int = 5,
    accept_quantile: float = 0.85,
) -> np.ndarray:
    """Seed-growing disparity; unreached pixels filled from neighbours."""
    cost = sad_cost_volume(left, right, max_disp, block_size)
    seeds = support_points(left, right, max_disp, grid_step, block_size)
    accept = float(np.quantile(cost.min(axis=0), accept_quantile))
    disp = grow_seeds(cost, seeds, accept)
    # fill unreached pixels row-wise from the nearest valid disparity
    invalid = disp < 0
    if invalid.any():
        filled = disp.copy()
        for y in range(disp.shape[0]):
            row = filled[y]
            bad = row < 0
            if bad.all():
                row[:] = 0.0
                continue
            idx = np.where(~bad)[0]
            row[bad] = np.interp(np.where(bad)[0], idx, row[idx])
        disp = filled
    return disp
