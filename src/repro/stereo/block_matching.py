"""SAD block matching — the paper's local correspondence search.

Disparity convention (paper Eq. 2): a left-image pixel ``<x, y>`` with
disparity ``d`` corresponds to the right-image pixel ``<x + d, y>``.
The synthetic datasets in :mod:`repro.datasets` render with the same
convention, so all matchers here search in the ``+x`` direction of the
right image.

Two entry points:

* :func:`block_match` — classic full-range search over
  ``[0, max_disp)`` (the Fig. 1 "BM-class" baseline and the building
  block of SGM's cost volume);
* :func:`guided_block_match` — the ISM non-key-frame refinement
  (Sec. 3.3): a *1-D window of +/- radius pixels centred on a per-pixel
  initial estimate*, exactly the "correspondence search initialised
  with the propagated correspondences" the paper describes.  Its cost
  is ``O(2r + 1)`` instead of ``O(max_disp)`` passes.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "shift_right_image",
    "sad_cost_volume",
    "block_match",
    "guided_block_match",
    "block_match_ops",
    "guided_block_match_ops",
]

_BIG = 1e9


def _as_float(img: np.ndarray) -> np.ndarray:
    img = np.asarray(img, dtype=np.float64)
    if img.ndim == 3:  # collapse colour to luminance
        img = img.mean(axis=2)
    if img.ndim != 2:
        raise ValueError(f"expected a (H, W) or (H, W, C) image, got {img.shape}")
    return img


def shift_right_image(right: np.ndarray, d: int) -> np.ndarray:
    """``shifted[y, x] = right[y, x + d]`` with edge replication."""
    if d == 0:
        return right
    out = np.empty_like(right)
    if d > 0:
        out[:, :-d] = right[:, d:]
        out[:, -d:] = right[:, -1:]
    else:
        out[:, -d:] = right[:, :d]
        out[:, : -d] = right[:, :1]
    return out


def sad_cost_volume(
    left: np.ndarray, right: np.ndarray, max_disp: int, block_size: int = 9
) -> np.ndarray:
    """(D, H, W) sum-of-absolute-differences matching cost.

    ``cost[d, y, x]`` is the SAD between the block around ``<x, y>`` in
    the left image and the block around ``<x + d, y>`` in the right
    image, matching the paper's convolution-like formulation of BM.
    """
    left = _as_float(left)
    right = _as_float(right)
    if left.shape != right.shape:
        raise ValueError("left/right images must share a shape")
    if max_disp < 1:
        raise ValueError("max_disp must be >= 1")
    cost = np.empty((max_disp, *left.shape))
    for d in range(max_disp):
        diff = np.abs(left - shift_right_image(right, d))
        cost[d] = ndimage.uniform_filter(diff, size=block_size, mode="nearest")
        if d:
            # blocks that would read past the right edge are invalid
            cost[d, :, left.shape[1] - d :] = _BIG
    return cost


def _subpixel_refine(cost: np.ndarray, disp: np.ndarray) -> np.ndarray:
    """Parabola fit over the winning cost and its two neighbours.

    The fit is only meaningful at a *convex* minimum: the curvature
    ``c0 - 2*c1 + c2`` must be strictly positive.  On a plateau (all
    three costs equal, e.g. saturated ``_BIG`` regions) or a concave
    triple the parabola has no interior minimum, so the integer
    disparity is kept unchanged rather than nudged by a spurious
    +/- 0.5 pixel shift.
    """
    d_max, h, w = cost.shape
    d = disp.astype(int)
    inner = (d > 0) & (d < d_max - 1)
    yy, xx = np.mgrid[0:h, 0:w]
    c0 = cost[np.clip(d - 1, 0, d_max - 1), yy, xx]
    c1 = cost[d, yy, xx]
    c2 = cost[np.clip(d + 1, 0, d_max - 1), yy, xx]
    denom = c0 - 2 * c1 + c2
    convex = inner & (denom > 1e-12)
    offset = np.where(convex, (c0 - c2) / (2 * np.where(convex, denom, 1.0)), 0.0)
    return disp + np.clip(offset, -0.5, 0.5)


def block_match(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    block_size: int = 9,
    subpixel: bool = True,
) -> np.ndarray:
    """Winner-takes-all disparity from a full SAD search."""
    cost = sad_cost_volume(left, right, max_disp, block_size)
    disp = cost.argmin(axis=0).astype(np.float64)
    if subpixel:
        disp = _subpixel_refine(cost, disp)
    return disp


def guided_block_match(
    left: np.ndarray,
    right: np.ndarray,
    init: np.ndarray,
    radius: int = 4,
    block_size: int = 9,
    subpixel: bool = True,
    accept_margin: float = 0.1,
) -> np.ndarray:
    """Local search in a +/- ``radius`` window around ``init``.

    For each candidate offset the right image is *gathered* at the
    per-pixel coordinate ``x + init + offset`` and the SAD is box
    filtered, so the whole refinement is ``2*radius + 1``
    convolution-shaped passes — the property that lets the paper map it
    onto the systolic array.

    ``accept_margin`` makes the search conservative: the winning offset
    replaces the initial estimate only where it beats the initial
    estimate's own cost by the margin, so a good initialisation (the
    common case in ISM — the propagated correspondences) is never
    degraded by matching ambiguity.
    """
    left = _as_float(left)
    right = _as_float(right)
    init = np.asarray(init, dtype=np.float64)
    if init.shape != left.shape:
        raise ValueError("init disparity must match the image shape")
    h, w = left.shape
    yy, xx = np.mgrid[0:h, 0:w]
    base = np.rint(init).astype(int)
    offsets = np.arange(-radius, radius + 1)
    costs = np.empty((offsets.size, h, w))
    for i, off in enumerate(offsets):
        d = base + off
        sample_x = xx + d
        valid = (sample_x >= 0) & (sample_x < w) & (d >= 0)
        sx = np.clip(sample_x, 0, w - 1)
        diff = np.abs(left - right[yy, sx])
        costs[i] = ndimage.uniform_filter(diff, size=block_size, mode="nearest")
        costs[i][~valid] = _BIG
    best = costs.argmin(axis=0)
    if accept_margin > 0:
        init_cost = costs[radius]
        best_cost = np.take_along_axis(costs, best[None], axis=0)[0]
        keep = init_cost <= best_cost + accept_margin
        best = np.where(keep, radius, best)
    disp = (base + offsets[best]).astype(np.float64)
    if subpixel:
        frac = _subpixel_refine(costs, best.astype(np.float64))
        disp = base + offsets[0] + frac  # offset index back to disparity
    return np.maximum(disp, 0.0)


def block_match_ops(h: int, w: int, max_disp: int, block_size: int = 9) -> int:
    """Arithmetic operations of a full BM search (for the cost model)."""
    # per disparity: |a-b| per pixel + box filter (separable: 2*block adds)
    per_disp = h * w * (1 + 2 * block_size)
    return max_disp * per_disp + h * w * max_disp  # + WTA compares


def guided_block_match_ops(h: int, w: int, radius: int = 4, block_size: int = 9) -> int:
    """Arithmetic operations of the guided search (ISM non-key frames)."""
    window = 2 * radius + 1
    per_off = h * w * (1 + 2 * block_size)
    return window * per_off + h * w * window
