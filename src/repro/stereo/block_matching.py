"""SAD block matching — the paper's local correspondence search.

Disparity convention (paper Eq. 2): a left-image pixel ``<x, y>`` with
disparity ``d`` corresponds to the right-image pixel ``<x + d, y>``.
The synthetic datasets in :mod:`repro.datasets` render with the same
convention, so all matchers here search in the ``+x`` direction of the
right image.

Two entry points:

* :func:`block_match` — classic full-range search over
  ``[0, max_disp)`` (the Fig. 1 "BM-class" baseline and the building
  block of SGM's cost volume);
* :func:`guided_block_match` — the ISM non-key-frame refinement
  (Sec. 3.3): a *1-D window of +/- radius pixels centred on a per-pixel
  initial estimate*, exactly the "correspondence search initialised
  with the propagated correspondences" the paper describes.  Its cost
  is ``O(2r + 1)`` instead of ``O(max_disp)`` passes.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.parallel.tiles import Stencil, stencil

__all__ = [
    "BLOCK_STENCIL",
    "shift_right_image",
    "sad_cost_volume",
    "block_match",
    "guided_block_match",
    "block_match_ops",
    "guided_block_match_ops",
    "resolve_precision",
]

_BIG = 1e9

#: vertical data dependence of every SAD-family kernel: the box-filter
#: window (the disparity search itself is horizontal).  Declared once;
#: the tiled executor computes its halos from this and ASV006 checks
#: both the declaration and every call site against it.
BLOCK_STENCIL = Stencil.window("block_size")

#: cost-volume dtypes selectable through the ``precision`` knob; the
#: float32 volumes halve the memory traffic (the resource the paper's
#: accelerators are designed around) at ~1e-7 relative rounding
_PRECISIONS = {"float32": np.float32, "float64": np.float64}


def resolve_precision(precision: str) -> np.dtype:
    """Map a ``precision`` knob value to the cost-volume dtype.

    >>> resolve_precision("float32")
    <class 'numpy.float32'>
    """
    try:
        return _PRECISIONS[precision]
    except KeyError:
        raise ValueError(
            f"precision must be one of {tuple(sorted(_PRECISIONS))}, "
            f"got {precision!r}"
        ) from None


def _as_float(img: np.ndarray, dtype=np.float64) -> np.ndarray:
    img = np.asarray(img, dtype=dtype)
    if img.ndim == 3:  # collapse colour to luminance
        img = img.mean(axis=2, dtype=dtype)
    if img.ndim != 2:
        raise ValueError(f"expected a (H, W) or (H, W, C) image, got {img.shape}")
    return img


def _box_mean(img: np.ndarray, size: int) -> np.ndarray:
    """Edge-replicated box mean with *translation-invariant* rounding.

    Every output value is an independent window sum (two
    :func:`~scipy.ndimage.correlate1d` passes), so the result at a
    pixel depends only on the window contents — unlike
    :func:`~scipy.ndimage.uniform_filter`, whose running-sum
    implementation accumulates rounding from the start of each scan
    line and therefore changes in the last bit when the same rows are
    filtered as part of a band.  This is the property that makes the
    halo-tiled execution in :mod:`repro.parallel` bit-identical to
    whole-frame execution.

    Filters over the last two axes, so a ``(K, H, W)`` stack of
    difference images is one fused pair of sweeps — each slice comes
    back bit-identical to filtering it alone (per-line independence
    again), which is how :func:`guided_block_match` batches its
    per-offset SAD passes.
    """
    weights = np.full(size, 1.0 / size, dtype=np.float64)
    out = ndimage.correlate1d(img, weights, axis=-2, mode="nearest")
    return ndimage.correlate1d(out, weights, axis=-1, mode="nearest")


def shift_right_image(right: np.ndarray, d: int) -> np.ndarray:
    """``shifted[y, x] = right[y, x + d]`` with edge replication.

    Always returns a fresh array the caller may mutate — including
    for ``d == 0``, which historically returned the input aliased
    (writing through the result silently corrupted the caller's
    image; regression-tested in ``tests/test_stereo_matchers.py``).
    """
    right = np.asarray(right)
    if d == 0:
        return right.copy()
    out = np.empty_like(right)
    if d > 0:
        out[:, :-d] = right[:, d:]
        out[:, -d:] = right[:, -1:]
    else:
        out[:, -d:] = right[:, :d]
        out[:, : -d] = right[:, :1]
    return out


@stencil(BLOCK_STENCIL)
def sad_cost_volume(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    block_size: int = 9,
    precision: str = "float64",
) -> np.ndarray:
    """(D, H, W) sum-of-absolute-differences matching cost.

    ``cost[d, y, x]`` is the SAD between the block around ``<x, y>`` in
    the left image and the block around ``<x + d, y>`` in the right
    image, matching the paper's convolution-like formulation of BM.
    ``precision`` selects the volume dtype (``"float32"`` halves the
    memory traffic, ``"float64"`` is the default).
    """
    dtype = resolve_precision(precision)
    left = _as_float(left, dtype)
    right = _as_float(right, dtype)
    if left.shape != right.shape:
        raise ValueError("left/right images must share a shape")
    if max_disp < 1:
        raise ValueError("max_disp must be >= 1")
    cost = np.empty((max_disp, *left.shape), dtype=dtype)
    for d in range(max_disp):
        diff = np.abs(left - shift_right_image(right, d))
        cost[d] = _box_mean(diff, block_size)
        if d:
            # blocks that would read past the right edge are invalid
            cost[d, :, left.shape[1] - d :] = _BIG
    return cost


def _subpixel_refine(cost: np.ndarray, disp: np.ndarray) -> np.ndarray:
    """Parabola fit over the winning cost and its two neighbours.

    The fit is only meaningful at a *convex* minimum: the curvature
    ``c0 - 2*c1 + c2`` must be strictly positive.  On a plateau (all
    three costs equal, e.g. saturated ``_BIG`` regions) or a concave
    triple the parabola has no interior minimum, so the integer
    disparity is kept unchanged rather than nudged by a spurious
    +/- 0.5 pixel shift.
    """
    d_max = cost.shape[0]
    d = disp.astype(int)
    inner = (d > 0) & (d < d_max - 1)
    # take_along_axis gathers the three cost planes without the
    # (2, H, W) index grids a fancy-indexing gather would allocate
    c1 = np.take_along_axis(cost, d[None], axis=0)[0]
    c0 = np.take_along_axis(cost, np.clip(d - 1, 0, d_max - 1)[None], axis=0)[0]
    c2 = np.take_along_axis(cost, np.clip(d + 1, 0, d_max - 1)[None], axis=0)[0]
    denom = c0 - 2 * c1 + c2
    convex = inner & (denom > 1e-12)
    offset = np.where(convex, (c0 - c2) / (2 * np.where(convex, denom, 1.0)), 0.0)
    return disp + np.clip(offset, -0.5, 0.5)


@stencil(BLOCK_STENCIL)
def block_match(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    block_size: int = 9,
    subpixel: bool = True,
    precision: str = "float64",
) -> np.ndarray:
    """Winner-takes-all disparity from a full SAD search."""
    cost = sad_cost_volume(left, right, max_disp, block_size, precision)
    disp = cost.argmin(axis=0).astype(np.float64)
    if subpixel:
        disp = _subpixel_refine(cost, disp)
    return disp


@stencil(BLOCK_STENCIL)
def guided_block_match(
    left: np.ndarray,
    right: np.ndarray,
    init: np.ndarray,
    radius: int = 4,
    block_size: int = 9,
    subpixel: bool = True,
    accept_margin: float = 0.1,
    precision: str = "float64",
) -> np.ndarray:
    """Local search in a +/- ``radius`` window around ``init``.

    For each candidate offset the right image is *gathered* at the
    per-pixel coordinate ``x + init + offset`` and the SAD is box
    filtered, so the whole refinement is ``2*radius + 1``
    convolution-shaped passes — the property that lets the paper map it
    onto the systolic array.

    ``accept_margin`` makes the search conservative: the winning offset
    replaces the initial estimate only where it beats the initial
    estimate's own cost by the margin.  The guarantee holds *at the
    image border too*: where the init-offset candidate itself is out of
    range (``x + init >= w``, or a negative init) its cost cannot be
    measured, so with a positive margin the pixel keeps the initial
    estimate clipped into the geometrically valid range ``[0, w-1-x]``
    instead of letting a nearer offset win against edge-replicated
    texture.  Where *every* candidate is out of range (e.g. a strongly
    negative init) the search has measured nothing, and the clipped
    init is returned regardless of the margin rather than a
    confident-looking argmin over sentinel costs.  A good
    initialisation (the common case in ISM — the propagated
    correspondences) is therefore never degraded by matching
    ambiguity anywhere in the image: a kept estimate moves at most by
    the integer rounding of ``init`` plus the sub-pixel half-step
    (exactly the half-step for an integer init), or is clipped to the
    reachable range where the geometry forces it.
    """
    dtype = resolve_precision(precision)
    left = _as_float(left, dtype)
    right = _as_float(right, dtype)
    init = np.asarray(init, dtype=np.float64)
    if init.shape != left.shape:
        raise ValueError("init disparity must match the image shape")
    if radius < 1:
        raise ValueError("radius must be >= 1")
    h, w = left.shape
    yy = np.arange(h)[:, None]
    xx = np.arange(w)[None, :]
    base = np.rint(init).astype(int)
    offsets = np.arange(-radius, radius + 1)
    # all 2r+1 candidate gathers at once: one (K, H, W) index batch
    # replaces the per-offset np.mgrid/gather setup, and the SAD box
    # filter runs as one fused stack sweep (bit-identical per slice)
    d = base[None] + offsets[:, None, None]
    sample_x = xx[None] + d
    valid = (sample_x >= 0) & (sample_x < w) & (d >= 0)
    diff = np.abs(left[None] - right[yy, np.clip(sample_x, 0, w - 1)])
    costs = _box_mean(diff, block_size)
    costs[~valid] = _BIG
    any_valid = valid.any(axis=0)
    init_valid = valid[radius]
    best = costs.argmin(axis=0)
    if accept_margin > 0:
        init_cost = costs[radius]
        best_cost = np.take_along_axis(costs, best[None], axis=0)[0]
        keep = init_cost <= best_cost + accept_margin
        best = np.where(keep, radius, best)
    disp = (base + offsets[best]).astype(np.float64)
    if subpixel:
        frac = _subpixel_refine(costs, best.astype(np.float64))
        disp = base + offsets[0] + frac  # offset index back to disparity
    # conservatism at the border (see docstring): an unmeasurable init
    # candidate disables the margin test, and an all-invalid window
    # makes the argmin (and its sub-pixel fit) meaningless
    keep_init = ~any_valid
    if accept_margin > 0:
        keep_init |= ~init_valid
    disp = np.where(keep_init, np.clip(init, 0.0, (w - 1 - xx).astype(np.float64)), disp)
    return np.maximum(disp, 0.0)


def block_match_ops(h: int, w: int, max_disp: int, block_size: int = 9) -> int:
    """Arithmetic operations of a full BM search (for the cost model)."""
    # per disparity: |a-b| per pixel + box filter (separable: 2*block adds)
    per_disp = h * w * (1 + 2 * block_size)
    return max_disp * per_disp + h * w * max_disp  # + WTA compares


def guided_block_match_ops(h: int, w: int, radius: int = 4, block_size: int = 9) -> int:
    """Arithmetic operations of the guided search (ISM non-key frames)."""
    window = 2 * radius + 1
    per_off = h * w * (1 + 2 * block_size)
    return window * per_off + h * w * window
