"""Semi-global matching (Hirschmuller) — the paper's SGBN/HH baselines.

Aggregates the SAD matching cost along 1-D paths with the standard
two-penalty smoothness model:

    L_r(p, d) = C(p, d) + min( L_r(p-r, d),
                               L_r(p-r, d±1) + P1,
                               min_k L_r(p-r, k) + P2 ) - min_k L_r(p-r, k)

summed over 2, 4 or 8 path directions, followed by winner-takes-all
and sub-pixel interpolation.  The 8-path variant stands in for the
paper's "HH" (accurate) configuration and the 4-path variant for
"SGBN" (the OpenCV-style semi-global block matcher).

The aggregation is the dominant serial cost of the whole kernel
substrate, so it is written as **contiguous in-place sweeps**: the DP
steps line by line along the path direction, each step operating on a
whole ``(D, N)`` line of independent paths with preallocated scratch
buffers — no per-pixel Python, no per-step allocation, no strided
``moveaxis`` walks.  Lines are sliced so their last axis is contiguous
(the volume is plane-transposed once for the two horizontal
directions), which is where the speedup over the old per-column loop
comes from.  The arithmetic is **bit-identical** to the scalar
reference DP (pinned for all 8 directions in
``tests/test_stereo_matchers.py``): every elementwise term is the same
IEEE operation in the same grouping, and the neighbour trick
``min(a, b) + P1 == min(a + P1, b + P1)`` is exact because float
addition of a shared constant is monotone.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.tiles import Stencil, stencil
from repro.stereo.block_matching import _subpixel_refine, sad_cost_volume

__all__ = [
    "AGGREGATE_STENCIL",
    "aggregate_path",
    "aggregate_volume",
    "sgm",
    "sgm_ops",
    "wta_disparity",
]

#: the path aggregation is a whole-image DP — a vertical path runs top
#: to bottom — so *no finite halo* makes independently aggregated
#: bands exact.  Declared infinite: ASV006 rejects any attempt to
#: row-tile it (the parallel adapter fans out over path directions
#: instead, which is exact).
AGGREGATE_STENCIL = Stencil.infinite()

_DIRECTIONS_8 = [
    (0, 1), (0, -1), (1, 0), (-1, 0),
    (1, 1), (1, -1), (-1, 1), (-1, -1),
]


def _line_step(prev, cost_line, out_line, nm, floor, cap, p1, p2):
    """One DP step for a whole ``(D, n)`` line of independent paths.

    Writes ``cost_line + (best - floor)`` into ``out_line`` where
    ``best = min(prev[d], prev[d-1]+P1, prev[d+1]+P1, floor+P2)``.
    ``nm`` / ``floor`` / ``cap`` are caller-owned scratch buffers
    sliced to the line width, reused across every step of a sweep.
    """
    d = prev.shape[0]
    np.min(prev, axis=0, keepdims=True, out=floor)
    if d > 1:
        # min(prev[d-1], prev[d+1]) + P1 == min(prev[d-1]+P1, prev[d+1]+P1)
        # exactly: rounding a shared-constant add is monotone, so the
        # min commutes with it bit-for-bit.
        nm[0] = prev[1]
        nm[-1] = prev[-2]
        if d > 2:
            np.minimum(prev[:-2], prev[2:], out=nm[1:-1])
        np.add(nm, p1, out=nm)
        np.minimum(nm, prev, out=nm)
    else:
        nm[:] = prev
    np.add(floor, p2, out=cap)
    np.minimum(nm, cap, out=nm)
    np.subtract(nm, floor, out=nm)
    np.add(cost_line, nm, out=out_line)


def _sweep(cost, out, p1, p2, shift=0, reverse=False, accum=None):
    """Aggregate a ``(D, L, N)`` volume along axis 1, into ``out``.

    Line ``i`` takes its predecessor from line ``i-1`` (``i+1`` when
    ``reverse``), displaced ``shift`` positions along the last axis;
    positions whose displaced predecessor falls outside the line
    restart the path (``L_r = C``), as does the first line.  Both
    volumes must be sliced so the last axis is contiguous.

    When ``accum`` is given, each finished line is added into the
    matching line of ``accum`` while it is still cache-hot — one fused
    pass instead of a separate whole-volume ``total += out`` later.
    """
    d_levels, length, n = cost.shape
    nm = np.empty((d_levels, n), dtype=cost.dtype)
    floor = np.empty((1, n), dtype=cost.dtype)
    cap = np.empty((1, n), dtype=cost.dtype)
    order = range(length) if not reverse else range(length - 1, -1, -1)
    first = True
    for i in order:
        line_out = out[:, i, :]
        if first:
            line_out[...] = cost[:, i, :]
            first = False
        else:
            prev = out[:, i + (1 if reverse else -1), :]
            cur_cost = cost[:, i, :]
            cur_out = line_out
            if shift > 0:
                cur_out[:, :shift] = cur_cost[:, :shift]  # path restarts
                prev, cur_cost, cur_out = (
                    prev[:, : n - shift], cur_cost[:, shift:], cur_out[:, shift:]
                )
            elif shift < 0:
                cur_out[:, n + shift:] = cur_cost[:, n + shift:]
                prev, cur_cost, cur_out = (
                    prev[:, -shift:], cur_cost[:, : n + shift], cur_out[:, : n + shift]
                )
            width = cur_cost.shape[1]
            if width:  # |shift| >= line width: every path restarts
                _line_step(
                    prev, cur_cost, cur_out,
                    nm[:, :width], floor[:, :width], cap[:, :width], p1, p2,
                )
        if accum is not None:
            acc = accum[:, i, :]
            np.add(acc, line_out, out=acc)


@stencil(AGGREGATE_STENCIL)
def aggregate_path(cost: np.ndarray, dy: int, dx: int, p1: float, p2: float) -> np.ndarray:
    """Aggregate a (D, H, W) cost volume along one path direction.

    Vertical and diagonal directions sweep the volume in its native
    ``(D, H, W)`` layout (lines are contiguous image rows); the two
    horizontal directions sweep a plane-transposed ``(D, W, H)`` copy
    so their lines are contiguous too, and return a transposed *view*
    of the aggregated volume (same values, non-contiguous strides).
    """
    cost = np.ascontiguousarray(cost)
    if dy == 0:
        cost_t = np.ascontiguousarray(cost.transpose(0, 2, 1))
        out_t = np.empty_like(cost_t)
        _sweep(cost_t, out_t, p1, p2, shift=0, reverse=dx < 0)
        return out_t.transpose(0, 2, 1)
    out = np.empty_like(cost)
    _sweep(cost, out, p1, p2, shift=dx, reverse=dy < 0)
    return out


@stencil(AGGREGATE_STENCIL)
def aggregate_volume(
    cost: np.ndarray, p1: float, p2: float, paths: int = 8
) -> np.ndarray:
    """Sum of :func:`aggregate_path` over the first ``paths`` directions.

    Bit-identical to accumulating the per-direction volumes into a
    zero total in ``_DIRECTIONS_8`` order (what the direction-parallel
    adapter in :mod:`repro.parallel` does), but ~2x faster serially:
    one plane-transposed copy serves both horizontal sweeps, and the
    sweep output buffers are reused across directions instead of
    being freshly allocated (and page-faulted) eight times.
    """
    if paths not in (2, 4, 8):
        raise ValueError("paths must be 2, 4 or 8")
    cost = np.ascontiguousarray(cost)
    d_levels, h, w = cost.shape
    # the two horizontal directions: one (D, W, H) copy; the forward
    # sweep's output doubles as the running total (a volume of
    # non-negative values is bitwise equal to 0 + itself), the
    # backward sweep accumulates into it line by line while hot.
    # .copy() rather than ascontiguousarray: a size-1 plane makes the
    # transpose *view* already contiguous, and the buffer reuse below
    # must never alias the cost volume it is swept against
    cost_t = cost.transpose(0, 2, 1).copy()
    total_t = np.empty_like(cost_t)
    out_t = np.empty_like(cost_t)
    _sweep(cost_t, total_t, p1, p2, shift=0, reverse=False)
    _sweep(cost_t, out_t, p1, p2, shift=0, reverse=True, accum=total_t)
    # transpose the horizontal total back into native layout, reusing
    # out_t's already-faulted pages as the destination
    total = out_t.reshape(d_levels, h, w)
    np.copyto(total, total_t.transpose(0, 2, 1))
    if paths > 2:
        # cost_t's pages become the vertical/diagonal sweep scratch
        out = cost_t.reshape(d_levels, h, w)
        for dy, dx in _DIRECTIONS_8[2:paths]:
            _sweep(cost, out, p1, p2, shift=dx, reverse=dy < 0, accum=total)
    return total


def wta_disparity(total: np.ndarray, subpixel: bool = True) -> np.ndarray:
    """Winner-takes-all (+ sub-pixel fit) over an aggregated volume.

    Shared by :func:`sgm` and the direction-parallel SGM adapter in
    :mod:`repro.parallel`, so both select from the summed volume with
    the exact same arithmetic.
    """
    disp = total.argmin(axis=0).astype(np.float64)
    if subpixel:
        disp = _subpixel_refine(total, disp)
    return disp


@stencil(AGGREGATE_STENCIL)
def sgm(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    block_size: int = 5,
    p1: float = 0.05,
    p2: float = 0.5,
    paths: int = 8,
    subpixel: bool = True,
    precision: str = "float64",
) -> np.ndarray:
    """Semi-global matching disparity for the left image."""
    if paths not in (2, 4, 8):
        raise ValueError("paths must be 2, 4 or 8")
    cost = sad_cost_volume(left, right, max_disp, block_size, precision)
    total = aggregate_volume(cost, p1, p2, paths)
    return wta_disparity(total, subpixel)


def sgm_ops(h: int, w: int, max_disp: int, block_size: int = 5, paths: int = 8) -> int:
    """Arithmetic operation count of SGM (for the Fig. 1 cost model)."""
    cost_ops = max_disp * h * w * (1 + 2 * block_size)
    # per path, per pixel, per disparity: ~5 compares/adds
    aggregate_ops = paths * h * w * max_disp * 5
    wta = h * w * max_disp
    return cost_ops + aggregate_ops + wta
