"""Semi-global matching (Hirschmuller) — the paper's SGBN/HH baselines.

Aggregates the SAD matching cost along 1-D paths with the standard
two-penalty smoothness model:

    L_r(p, d) = C(p, d) + min( L_r(p-r, d),
                               L_r(p-r, d±1) + P1,
                               min_k L_r(p-r, k) + P2 ) - min_k L_r(p-r, k)

summed over 2, 4 or 8 path directions, followed by winner-takes-all
and sub-pixel interpolation.  The 8-path variant stands in for the
paper's "HH" (accurate) configuration and the 4-path variant for
"SGBN" (the OpenCV-style semi-global block matcher).
"""

from __future__ import annotations

import numpy as np

from repro.stereo.block_matching import _subpixel_refine, sad_cost_volume

__all__ = ["aggregate_path", "sgm", "sgm_ops", "wta_disparity"]

_DIRECTIONS_8 = [
    (0, 1), (0, -1), (1, 0), (-1, 0),
    (1, 1), (1, -1), (-1, 1), (-1, -1),
]


def _step_costs(prev: np.ndarray, p1: float, p2: float) -> np.ndarray:
    """One DP step of the SGM recurrence for a whole line of pixels.

    ``prev`` is (N, D): aggregated costs of the previous pixel on each
    of N independent paths.  Returns the (N, D) additive term.
    """
    floor = prev.min(axis=1, keepdims=True)
    up = np.empty_like(prev)
    down = np.empty_like(prev)
    up[:, 1:] = prev[:, :-1] + p1
    up[:, 0] = np.inf
    down[:, :-1] = prev[:, 1:] + p1
    down[:, -1] = np.inf
    best = np.minimum(np.minimum(prev, up), np.minimum(down, floor + p2))
    return best - floor


def aggregate_path(cost: np.ndarray, dy: int, dx: int, p1: float, p2: float) -> np.ndarray:
    """Aggregate a (D, H, W) cost volume along one path direction."""
    d_levels, h, w = cost.shape
    vol = np.moveaxis(cost, 0, -1)  # (H, W, D)
    out = np.empty_like(vol)

    if dy == 0:
        # horizontal sweep: treat each row as an independent path
        cols = range(w) if dx > 0 else range(w - 1, -1, -1)
        prev = None
        for x in cols:
            cur = vol[:, x, :].copy()
            if prev is not None:
                cur += _step_costs(prev, p1, p2)
            out[:, x, :] = cur
            prev = cur
        return np.moveaxis(out, -1, 0)

    # vertical / diagonal sweep: row by row, shifting the previous row
    rows = range(h) if dy > 0 else range(h - 1, -1, -1)
    prev = None
    for y in rows:
        cur = vol[y].copy()
        if prev is not None:
            shifted = np.empty_like(prev)
            if dx == 0:
                shifted = prev
            elif dx > 0:
                shifted[dx:] = prev[:-dx]
                shifted[:dx] = prev[:dx]  # placeholder; term zeroed below
            else:
                shifted[:dx] = prev[-dx:]
                shifted[dx:] = prev[dx:]
            step = _step_costs(shifted, p1, p2)
            # a diagonal path's predecessor of a border-entering pixel
            # lies outside the image; standard SGM restarts the path
            # there (L_r = C), so those pixels take no additive term
            if dx > 0:
                step[:dx] = 0.0
            elif dx < 0:
                step[dx:] = 0.0
            cur += step
        out[y] = cur
        prev = cur
    return np.moveaxis(out, -1, 0)


def wta_disparity(total: np.ndarray, subpixel: bool = True) -> np.ndarray:
    """Winner-takes-all (+ sub-pixel fit) over an aggregated volume.

    Shared by :func:`sgm` and the direction-parallel SGM adapter in
    :mod:`repro.parallel`, so both select from the summed volume with
    the exact same arithmetic.
    """
    disp = total.argmin(axis=0).astype(np.float64)
    if subpixel:
        disp = _subpixel_refine(total, disp)
    return disp


def sgm(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    block_size: int = 5,
    p1: float = 0.05,
    p2: float = 0.5,
    paths: int = 8,
    subpixel: bool = True,
    precision: str = "float64",
) -> np.ndarray:
    """Semi-global matching disparity for the left image."""
    if paths not in (2, 4, 8):
        raise ValueError("paths must be 2, 4 or 8")
    cost = sad_cost_volume(left, right, max_disp, block_size, precision)
    directions = _DIRECTIONS_8[:paths]
    total = np.zeros_like(cost)
    for dy, dx in directions:
        total += aggregate_path(cost, dy, dx, p1, p2)
    return wta_disparity(total, subpixel)


def sgm_ops(h: int, w: int, max_disp: int, block_size: int = 5, paths: int = 8) -> int:
    """Arithmetic operation count of SGM (for the Fig. 1 cost model)."""
    cost_ops = max_disp * h * w * (1 + 2 * block_size)
    # per path, per pixel, per disparity: ~5 compares/adds
    aggregate_ops = paths * h * w * max_disp * 5
    wta = h * w * max_disp
    return cost_ops + aggregate_ops + wta
