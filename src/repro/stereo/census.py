"""Census-transform matching cost.

The census transform encodes each pixel as the bit pattern of
brightness comparisons against its neighbourhood; matching costs are
Hamming distances between the codes.  It is the standard
radiometrically-robust alternative to SAD in production stereo
pipelines (including the semi-global matchers the paper benchmarks
against), so the substrate provides it alongside SAD: it is invariant
to monotonic brightness changes, which the SAD cost is not — a
property the tests verify directly.
"""

from __future__ import annotations

import numpy as np

from repro.stereo.block_matching import (
    _BIG,
    _as_float,
    _subpixel_refine,
    resolve_precision,
    shift_right_image,
)

__all__ = ["census_transform", "hamming_cost_volume", "census_block_match"]


def census_transform(img: np.ndarray, window: int = 5) -> np.ndarray:
    """Per-pixel census code as a uint64 bit pattern.

    Bit ``i`` is set when the i-th neighbour (row-major over the
    ``window x window`` patch, centre excluded) is darker than the
    centre pixel.  Windows must be odd (the code is centred on a
    pixel), so the largest that fits the 64-bit code is 7x7
    (48 comparison bits).
    """
    img = _as_float(img)
    if window % 2 == 0 or window < 3:
        raise ValueError("window must be odd and >= 3")
    if window * window - 1 > 64:
        raise ValueError("window too large for a 64-bit code")
    r = window // 2
    padded = np.pad(img, r, mode="edge")
    h, w = img.shape
    code = np.zeros((h, w), dtype=np.uint64)
    bit = 0
    for dy in range(-r, r + 1):
        for dx in range(-r, r + 1):
            if dy == 0 and dx == 0:
                continue
            neighbour = padded[r + dy : r + dy + h, r + dx : r + dx + w]
            code |= (neighbour < img).astype(np.uint64) << np.uint64(bit)
            bit += 1
    return code


_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def _popcount64(x: np.ndarray) -> np.ndarray:
    """Vectorised population count via a byte lookup table."""
    return _POPCOUNT_TABLE[
        np.ascontiguousarray(x).view(np.uint8).reshape(x.shape + (8,))
    ].sum(axis=-1)


def hamming_cost_volume(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    window: int = 5,
    precision: str = "float64",
) -> np.ndarray:
    """(D, H, W) Hamming-distance cost between census codes.

    Hamming distances are small integers (at most 48 for the largest
    7x7 window), so both ``precision`` dtypes represent them exactly;
    ``"float32"`` simply halves the volume's memory traffic.
    """
    if max_disp < 1:
        raise ValueError("max_disp must be >= 1")
    dtype = resolve_precision(precision)
    cl = census_transform(left, window)
    cr = census_transform(right, window)
    d_levels = max_disp
    h, w = cl.shape
    cost = np.empty((d_levels, h, w), dtype=dtype)
    for d in range(d_levels):
        shifted = shift_right_image(cr, d)
        cost[d] = _popcount64(np.bitwise_xor(cl, shifted))
        if d:
            cost[d, :, w - d :] = _BIG
    return cost


def census_block_match(
    left: np.ndarray,
    right: np.ndarray,
    max_disp: int,
    window: int = 5,
    subpixel: bool = True,
    precision: str = "float64",
) -> np.ndarray:
    """Winner-takes-all disparity from the census/Hamming cost."""
    cost = hamming_cost_volume(left, right, max_disp, window, precision)
    disp = cost.argmin(axis=0).astype(np.float64)
    if subpixel:
        disp = _subpixel_refine(cost, disp)
    return disp
