"""Census-transform matching cost.

The census transform encodes each pixel as the bit pattern of
brightness comparisons against its neighbourhood; matching costs are
Hamming distances between the codes.  It is the standard
radiometrically-robust alternative to SAD in production stereo
pipelines (including the semi-global matchers the paper benchmarks
against), so the substrate provides it alongside SAD: it is invariant
to monotonic brightness changes, which the SAD cost is not — a
property the tests verify directly.

The hot loops are tuned for memory traffic: the transform accumulates
comparison bits into uint8 *byte planes* (the old loop's cast/shift/or
chain ran on full uint64 codes, eight times the traffic per bit), and
the Hamming distance uses the single-instruction
:func:`numpy.bitwise_count` where NumPy provides it.  Both paths are
pinned bit-for-bit against scalar references in
``tests/test_census.py``.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.tiles import Stencil, stencil
from repro.stereo.block_matching import (
    _BIG,
    _as_float,
    _subpixel_refine,
    resolve_precision,
    shift_right_image,
)

__all__ = [
    "CENSUS_STENCIL",
    "census_transform",
    "hamming_cost_volume",
    "census_block_match",
]

#: vertical data dependence of the census kernels: the comparison
#: window (the Hamming matching itself is per-pixel and horizontal)
CENSUS_STENCIL = Stencil.window("window")


@stencil(CENSUS_STENCIL)
def census_transform(img: np.ndarray, window: int = 5) -> np.ndarray:
    """Per-pixel census code as a uint64 bit pattern.

    Bit ``i`` is set when the i-th neighbour (row-major over the
    ``window x window`` patch, centre excluded) is darker than the
    centre pixel.  Windows must be odd (the code is centred on a
    pixel), so the largest that fits the 64-bit code is 7x7
    (48 comparison bits).
    """
    img = _as_float(img)
    if window % 2 == 0 or window < 3:
        raise ValueError("window must be odd and >= 3")
    if window * window - 1 > 64:
        raise ValueError("window too large for a 64-bit code")
    r = window // 2
    h, w = img.shape
    padded = np.pad(img, r, mode="edge")
    # comparison bit i lands in bit (i % 8) of byte plane (i // 8):
    # all shift/or accumulation runs on 1-byte planes instead of the
    # full 8-byte codes, and a plane's first bit is the comparison
    # itself (written straight into the plane viewed as bool)
    n_planes = (window * window - 1 + 7) // 8
    byteplanes = np.zeros((n_planes, h, w), dtype=np.uint8)
    bit_buf = np.empty((h, w), dtype=np.uint8)
    bit_bool = bit_buf.view(bool)
    i = 0
    for dy in range(-r, r + 1):
        for dx in range(-r, r + 1):
            if dy == 0 and dx == 0:
                continue
            j, b = divmod(i, 8)
            neighbour = padded[r + dy : r + dy + h, r + dx : r + dx + w]
            if b == 0:
                np.less(neighbour, img, out=byteplanes[j].view(bool))
            else:
                np.less(neighbour, img, out=bit_bool)
                np.left_shift(bit_buf, b, out=bit_buf)
                np.bitwise_or(byteplanes[j], bit_buf, out=byteplanes[j])
            i += 1
    # merge the byte planes into the uint64 codes
    code = byteplanes[0].astype(np.uint64)
    for j in range(1, n_planes):
        code |= byteplanes[j].astype(np.uint64) << np.uint64(8 * j)
    return code


_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

#: single-pass popcount ufunc (NumPy >= 2.0); the byte-table fallback
#: keeps older NumPy working
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount64(x: np.ndarray) -> np.ndarray:
    """Vectorised population count of a uint64 array."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(x)
    return _POPCOUNT_TABLE[  # pragma: no cover - pre-NumPy 2 fallback
        np.ascontiguousarray(x).view(np.uint8).reshape(x.shape + (8,))
    ].sum(axis=-1)


@stencil(CENSUS_STENCIL)
def hamming_cost_volume(
    left: np.ndarray,
    right: np.ndarray | None,
    max_disp: int,
    window: int = 5,
    precision: str = "float64",
    *,
    right_codes: np.ndarray | None = None,
) -> np.ndarray:
    """(D, H, W) Hamming-distance cost between census codes.

    Hamming distances are small integers (at most 48 for the largest
    7x7 window), so both ``precision`` dtypes represent them exactly;
    ``"float32"`` simply halves the volume's memory traffic.

    ``right_codes`` short-circuits the right image's census transform
    with precomputed codes — the replay paths in :mod:`repro.pipeline`
    and the tiled adapter in :mod:`repro.parallel` match against the
    same right frame repeatedly, and the codes only depend on it.
    When given, ``right`` is ignored (it may be ``None``).
    """
    if max_disp < 1:
        raise ValueError("max_disp must be >= 1")
    dtype = resolve_precision(precision)
    cl = census_transform(left, window)
    if right_codes is not None:
        right_codes = np.asarray(right_codes)
        if right_codes.dtype != np.uint64:
            raise ValueError(
                f"right_codes must be uint64 census codes, got {right_codes.dtype}"
            )
        if right_codes.shape != cl.shape:
            raise ValueError(
                f"right_codes shape {right_codes.shape} does not match "
                f"the left image {cl.shape}"
            )
        cr = right_codes
    else:
        if right is None:
            raise ValueError("either right or right_codes is required")
        cr = census_transform(right, window)
    d_levels = max_disp
    h, w = cl.shape
    cost = np.empty((d_levels, h, w), dtype=dtype)
    for d in range(d_levels):
        shifted = shift_right_image(cr, d)
        cost[d] = _popcount64(np.bitwise_xor(cl, shifted))
        if d:
            cost[d, :, w - d :] = _BIG
    return cost


@stencil(CENSUS_STENCIL)
def census_block_match(
    left: np.ndarray,
    right: np.ndarray | None,
    max_disp: int,
    window: int = 5,
    subpixel: bool = True,
    precision: str = "float64",
    *,
    right_codes: np.ndarray | None = None,
) -> np.ndarray:
    """Winner-takes-all disparity from the census/Hamming cost."""
    cost = hamming_cost_volume(
        left, right, max_disp, window, precision, right_codes=right_codes
    )
    disp = cost.argmin(axis=0).astype(np.float64)
    if subpixel:
        disp = _subpixel_refine(cost, disp)
    return disp
