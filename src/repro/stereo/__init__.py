"""Classic stereo matching substrate (paper Secs. 2.2, 3.3, Fig. 1)."""

from repro.stereo.census import (
    census_block_match,
    census_transform,
    hamming_cost_volume,
)
from repro.stereo.block_matching import (
    block_match,
    block_match_ops,
    guided_block_match,
    guided_block_match_ops,
    resolve_precision,
    sad_cost_volume,
    shift_right_image,
)
from repro.stereo.elas import elas, interpolate_prior, support_points
from repro.stereo.metrics import end_point_error, error_rate, three_pixel_error
from repro.stereo.refine import (
    fill_background,
    fill_invalid,
    left_right_check,
    median2d,
    median_clean,
)
from repro.stereo.seeds import gcsf, grow_seeds
from repro.stereo.sgm import sgm, sgm_ops, wta_disparity
from repro.stereo.triangulate import BUMBLEBEE2, StereoCamera

__all__ = [
    "BUMBLEBEE2",
    "StereoCamera",
    "block_match",
    "census_block_match",
    "census_transform",
    "fill_background",
    "hamming_cost_volume",
    "block_match_ops",
    "elas",
    "end_point_error",
    "error_rate",
    "fill_invalid",
    "gcsf",
    "grow_seeds",
    "guided_block_match",
    "guided_block_match_ops",
    "interpolate_prior",
    "left_right_check",
    "median2d",
    "median_clean",
    "resolve_precision",
    "sad_cost_volume",
    "sgm",
    "sgm_ops",
    "wta_disparity",
    "shift_right_image",
    "support_points",
    "three_pixel_error",
]
