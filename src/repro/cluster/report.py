"""Cluster reports: fleet-level aggregation of per-backend serving runs.

A cluster run produces one :class:`~repro.pipeline.report.EngineReport`
per backend shard (exactly the single-backend report — the degenerate
one-backend cluster is bit-identical to :class:`~repro.pipeline.engine.
StreamEngine`) plus the fleet view this module adds: where every
stream was placed, how hot each backend ran relative to the cluster
makespan, and the cluster-level throughput/tail numbers a capacity
decision needs.

Chaos runs (:mod:`repro.cluster.faults`) attach a
:class:`ResilienceStats` ledger on top: every fault, retry, migration
and scale event that happened, per-stream downtime / failover latency
/ retry counts, and the degraded-window latency envelope.  Ordinary
fault-free runs leave :attr:`ClusterReport.resilience` as ``None``, so
the historical report (and its regression pins) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.report import (
    EngineReport,
    StreamStats,
    _quality_cells,
    _weighted_quality_mean,
)
from repro.tables import render_table

__all__ = [
    "BackendShard",
    "ClusterReport",
    "FaultEvent",
    "ResilienceStats",
    "StreamResilience",
    "format_cluster_report",
    "format_policy_comparison",
    "format_cluster_quality",
    "format_resilience",
]


@dataclass(frozen=True)
class BackendShard:
    """One backend's slice of a cluster run.

    ``label`` distinguishes repeated instances of the same backend
    type (``systolic:0``, ``systolic:1``); ``report`` is the ordinary
    single-backend :class:`~repro.pipeline.report.EngineReport` over
    the streams placed on this shard; ``utilization`` is the shard's
    busy time divided by the *cluster* makespan, so an idle shard
    shows up as head-room rather than vanishing from the ledger.

    >>> from repro.cache import CacheInfo
    >>> report = EngineReport(backend="gpu", streams=[], total_frames=0,
    ...                       makespan_s=0.0, aggregate_fps=0.0,
    ...                       mean_service_s=0.0, cache=CacheInfo(0, 0, 0, 0))
    >>> BackendShard(label="gpu:0", report=report, utilization=0.0).idle
    True
    """

    label: str
    report: EngineReport
    utilization: float

    @property
    def idle(self) -> bool:
        """Whether no stream was placed on this shard."""
        return self.report.total_frames == 0


@dataclass(frozen=True)
class FaultEvent:
    """One timestamped entry in a chaos run's event ledger.

    ``kind`` is one of ``crash`` / ``migrate`` / ``flaky-fail`` /
    ``retry-drop`` / ``slowdown-start`` / ``slowdown-end`` /
    ``scale-up`` / ``scale-down``; ``shard`` the backend label it
    happened on (the *new* shard for a migration), ``stream`` the
    affected stream (empty for fleet-level events), and ``detail`` a
    short human-readable annotation.

    >>> FaultEvent(0.5, "crash", "gpu:0").kind
    'crash'
    """

    time_s: float
    kind: str
    shard: str
    stream: str = ""
    detail: str = ""


@dataclass(frozen=True)
class StreamResilience:
    """One stream's fault bookkeeping over a chaos run.

    ``migrations`` counts shard changes (crash failover and autoscale
    rebalancing alike); ``retries`` counts flaky-fault service
    attempts that failed and were retried; ``downtime_s`` sums the
    gaps between a crash and this stream's first completion on its new
    shard, and ``failover_latency_s`` is the worst single such gap
    (0.0 for a stream that never migrated off a crashed shard).
    """

    stream: str
    migrations: int = 0
    retries: int = 0
    downtime_s: float = 0.0
    failover_latency_s: float = 0.0


@dataclass(frozen=True)
class ResilienceStats:
    """The fleet-level fault ledger a chaos run attaches to its report.

    ``events`` is the full time-ordered event history; ``streams`` the
    per-stream bookkeeping (one entry per served stream, in placement
    order).  ``degraded_windows`` are the ``(start_s, end_s)`` spans
    the fault schedule declared degraded — a slowdown/flaky fault's
    active window, a crash's span from the crash to the last affected
    stream's failover — and the two p99 figures split every served
    frame's completion into inside/outside those windows, so "bounded
    degradation" is a checkable claim rather than a slogan.
    """

    events: tuple[FaultEvent, ...]
    streams: tuple[StreamResilience, ...]
    replicas_added: int = 0
    replicas_removed: int = 0
    degraded_windows: tuple[tuple[float, float], ...] = ()
    #: p99 latency over frames completing inside the degraded windows
    #: (0.0 when no frame completed there)
    degraded_p99_ms: float = 0.0
    #: p99 latency over frames completing outside the degraded windows
    steady_p99_ms: float = 0.0

    @property
    def total_retries(self) -> int:
        """Failed-and-retried service attempts across the fleet."""
        return sum(s.retries for s in self.streams)

    @property
    def total_migrations(self) -> int:
        """Stream migrations across the fleet (failover + rebalance)."""
        return sum(s.migrations for s in self.streams)

    @property
    def worst_failover_latency_s(self) -> float:
        """The slowest crash-to-first-completion gap of any stream."""
        return max((s.failover_latency_s for s in self.streams), default=0.0)

    @property
    def crashes(self) -> int:
        """Backend crashes the schedule injected."""
        return sum(e.kind == "crash" for e in self.events)

    def events_of(self, kind: str) -> tuple[FaultEvent, ...]:
        """The ledger filtered to one event kind, in time order."""
        return tuple(e for e in self.events if e.kind == kind)


@dataclass(frozen=True)
class ClusterReport:
    """Outcome of serving a set of streams on a backend fleet.

    The fleet makespan is the slowest shard's makespan (shards serve
    their queues concurrently); aggregate fps, the per-stream stats,
    and the sustainable-stream capacity aggregate over every shard.

    >>> from repro.cluster import ClusterEngine
    >>> from repro.pipeline import FrameStream
    >>> report = ClusterEngine(["gpu", "gpu"]).run(
    ...     [FrameStream(f"cam{i}", size=(68, 120), n_frames=4)
    ...      for i in range(2)])
    >>> report.placement
    (('cam0', 'gpu:0'), ('cam1', 'gpu:1'))
    >>> report.total_frames
    8
    """

    policy: str
    shards: tuple[BackendShard, ...]
    #: ``(stream name, shard label)`` pairs, in original stream order
    placement: tuple[tuple[str, str], ...]
    total_frames: int
    makespan_s: float
    #: the service discipline every shard ran (``docs/scheduling.md``)
    scheduler: str = "fifo"
    #: fault/failover/autoscale ledger of a chaos run
    #: (``docs/resilience.md``); ``None`` for ordinary fault-free runs
    resilience: ResilienceStats | None = None

    @property
    def aggregate_fps(self) -> float:
        """Frames served per second of cluster makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_frames / self.makespan_s

    @property
    def offered_frames(self) -> int:
        """Frames that arrived fleet-wide: served plus dropped."""
        return self.total_frames + self.dropped_frames

    @property
    def dropped_frames(self) -> int:
        """Frames admission control removed anywhere in the fleet."""
        return sum(shard.report.dropped_frames for shard in self.shards)

    @property
    def missed_deadlines(self) -> int:
        """Fleet-wide deadline misses (drops count as misses)."""
        return sum(shard.report.missed_deadlines for shard in self.shards)

    @property
    def deadline_miss_rate(self) -> float:
        """Missed fraction of offered frames across the fleet."""
        offered = self.offered_frames
        return self.missed_deadlines / offered if offered else 0.0

    @property
    def drop_rate(self) -> float:
        """Dropped fraction of offered frames across the fleet."""
        offered = self.offered_frames
        return self.dropped_frames / offered if offered else 0.0

    @property
    def worst_lateness_ms(self) -> float:
        """The worst completion lateness anywhere in the fleet."""
        return max(
            (s.worst_lateness_ms for s in self.stream_stats), default=0.0
        )

    @property
    def probed_streams(self) -> list[StreamStats]:
        """Fleet-wide streams carrying a depth-quality sample."""
        return [s for s in self.stream_stats if s.quality is not None]

    @property
    def bad_pixel_rate(self) -> float | None:
        """Probed fleet bad-pixel fraction, weighted by scored frames.

        ``None`` when the run carried no quality probe.  Shares the
        engine report's aggregation helper, so the two layers can
        never diverge.
        """
        return _weighted_quality_mean(self.stream_stats, "bad_pixel_rate")

    @property
    def epe_px(self) -> float | None:
        """Probed fleet end-point error, weighted by scored frames."""
        return _weighted_quality_mean(self.stream_stats, "epe_px")

    @property
    def stream_stats(self) -> list[StreamStats]:
        """Every stream's statistics, in original placement order."""
        by_name = {
            s.stream: s for shard in self.shards for s in shard.report.streams
        }
        return [by_name[name] for name, _label in self.placement]

    @property
    def worst_p99_ms(self) -> float:
        """The worst per-stream p99 latency anywhere in the fleet."""
        return max(s.p99_ms for s in self.stream_stats)

    def sustainable_streams(self, target_fps: float = 30.0) -> int:
        """Camera streams the fleet sustains at ``target_fps``.

        The sum of every shard's capacity bound.  Shards that served
        no frames contribute zero — an observed mean service time is
        required; use :func:`~repro.cluster.planner.plan_capacity` for
        model-driven (rather than run-driven) sizing.
        """
        return sum(
            shard.report.sustainable_streams(target_fps)
            for shard in self.shards
        )

    def shard_for(self, stream_name: str) -> str:
        """The shard label a stream was placed on.

        >>> from repro.cluster import ClusterEngine
        >>> from repro.pipeline import FrameStream
        >>> report = ClusterEngine(["gpu"]).run(
        ...     [FrameStream("cam", size=(68, 120), n_frames=2)])
        >>> report.shard_for("cam")
        'gpu:0'
        """
        for name, label in self.placement:
            if name == stream_name:
                return label
        raise KeyError(f"no stream {stream_name!r} in this run")


def format_cluster_report(report: ClusterReport) -> str:
    """Two tables: per-stream latencies (with shard) + shard summary.

    >>> from repro.cluster import ClusterEngine
    >>> from repro.pipeline import FrameStream
    >>> run = ClusterEngine(["gpu"]).run(
    ...     [FrameStream("cam", size=(68, 120), n_frames=2)])
    >>> text = format_cluster_report(run)
    >>> "gpu:0" in text and "util" in text
    True
    """
    placed = dict(report.placement)
    with_quality = bool(report.probed_streams)
    stream_rows = []
    for s in report.stream_stats:
        row = [s.stream, placed[s.stream], s.frames, s.key_frames,
               s.mean_ms, s.p50_ms, s.p95_ms, s.p99_ms,
               s.missed_deadlines, s.dropped_frames]
        if with_quality:
            row += _quality_cells(s)
        stream_rows.append(row)
    headers = ["stream", "shard", "frames", "keys",
               "mean ms", "p50 ms", "p95 ms", "p99 ms", "miss", "drop"]
    if with_quality:
        headers += ["bad px %", "epe px"]
    streams_table = render_table(
        f"Cluster serving ({report.policy}, {report.scheduler}) — "
        f"{report.aggregate_fps:.1f} fps aggregate over "
        f"{len(report.shards)} backends",
        headers,
        stream_rows,
    )
    shard_rows = [
        [shard.label, len(shard.report.streams), shard.report.total_frames,
         shard.report.makespan_s, shard.utilization,
         shard.report.cache.hit_rate]
        for shard in report.shards
    ]
    shards_table = render_table(
        "Backend shards",
        ["shard", "streams", "frames", "makespan s", "util", "cache hit"],
        shard_rows,
    )
    text = f"{streams_table}\n\n{shards_table}"
    if report.resilience is not None:
        text += f"\n\n{format_resilience(report.resilience)}"
    return text


def format_resilience(stats: ResilienceStats | None) -> str:
    """Per-stream fault ledger + the fleet degradation envelope.

    ``None`` (a report from the plain, fault-free engine) renders as
    the empty string so callers can append unconditionally.

    >>> format_resilience(None)
    ''
    >>> stats = ResilienceStats(
    ...     events=(FaultEvent(0.5, "crash", "gpu:0"),),
    ...     streams=(StreamResilience("cam", migrations=1, retries=2,
    ...                               downtime_s=0.1,
    ...                               failover_latency_s=0.1),),
    ...     degraded_p99_ms=12.0, steady_p99_ms=4.0)
    >>> "failover" in format_resilience(stats)
    True
    """
    if stats is None:
        return ""
    rows = [
        [s.stream, s.migrations, s.retries, 1e3 * s.downtime_s,
         1e3 * s.failover_latency_s]
        for s in stats.streams
    ]
    table = render_table(
        f"Resilience — {stats.crashes} crashes, "
        f"{stats.total_migrations} migrations, "
        f"{stats.total_retries} retries, "
        f"+{stats.replicas_added}/-{stats.replicas_removed} replicas",
        ["stream", "migrations", "retries", "downtime ms", "failover ms"],
        rows,
    )
    return (
        f"{table}\n"
        f"degraded-window p99 {stats.degraded_p99_ms:.2f} ms over "
        f"{len(stats.degraded_windows)} windows; "
        f"steady p99 {stats.steady_p99_ms:.2f} ms"
    )


def format_policy_comparison(
    reports: list[ClusterReport], target_fps: float = 30.0
) -> str:
    """One row per placement policy over the same streams and fleet.

    >>> from repro.cluster import ClusterEngine
    >>> from repro.pipeline import FrameStream
    >>> streams = [FrameStream("cam", size=(68, 120), n_frames=2)]
    >>> run = ClusterEngine(["gpu"]).run(streams)
    >>> "policy" in format_policy_comparison([run])
    True
    """
    rows = [
        [r.policy, len(r.shards), r.total_frames, r.aggregate_fps,
         r.worst_p99_ms, max(s.utilization for s in r.shards),
         r.deadline_miss_rate, r.drop_rate,
         r.sustainable_streams(target_fps)]
        for r in reports
    ]
    return render_table(
        f"Placement policies at {target_fps:.0f} fps target",
        ["policy", "backends", "frames", "agg fps",
         "worst p99 ms", "max util", "miss rate", "drop rate",
         f"streams@{target_fps:.0f}fps"],
        rows,
    )


def format_cluster_quality(report: ClusterReport) -> str:
    """Fleet quality-vs-latency summary: accuracy next to the tail.

    One row per probed stream — shard, latency tail, drops, and the
    depth accuracy the placement/scheduling combination delivered —
    so a fleet's p99 win can be judged against its accuracy cost
    (``docs/quality.md``).

    >>> from repro.cluster import ClusterEngine
    >>> from repro.pipeline import QualityProbe, sceneflow_stream
    >>> run = ClusterEngine(["gpu"], quality=QualityProbe(
    ...     matcher="bm", max_disp=16)).run(
    ...     [sceneflow_stream(seed=3, size=(32, 48), n_frames=3,
    ...                       max_disp=16, mode="baseline")])
    >>> "epe px" in format_cluster_quality(run)
    True
    """
    probed = report.probed_streams
    if not probed:
        raise ValueError(
            "cluster report carries no quality samples; run the engine "
            "with quality= (and pixel-carrying streams) first"
        )
    placed = dict(report.placement)
    fmt = lambda v: "-" if v is None else v
    rows = [
        [s.stream, placed[s.stream], s.quality.n_frames, s.key_frames,
         s.dropped_frames, s.p99_ms, 100.0 * s.bad_pixel_rate, s.epe_px,
         fmt(s.quality.stale_epe_px)]
        for s in probed
    ]
    return render_table(
        f"Fleet quality vs latency ({report.policy}, {report.scheduler}, "
        f"matcher {probed[0].quality.matcher!r}) — "
        f"miss rate {report.deadline_miss_rate:.0%}, "
        f"drop rate {report.drop_rate:.0%}",
        ["stream", "shard", "scored", "keys", "drop", "p99 ms",
         "bad px %", "epe px", "stale epe"],
        rows,
    )
