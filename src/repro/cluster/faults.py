"""Deterministic fault injection, replica failover, and chaos serving.

The ordinary :class:`~repro.cluster.engine.ClusterEngine` assumes
every backend stays healthy for the whole run.  This module drops that
assumption: :class:`ChaosClusterEngine` runs the same streams, the
same placement policies, and the same frame schedulers through a
*fleet-level* discrete-event loop into which a seedable
:class:`FaultSchedule` injects three failure classes:

* :class:`CrashFault` — a backend dies at an absolute time; every
  stream with frames left on it migrates to the surviving replicas
  through the engine's placement policy, and each migrated stream is
  forced to re-key (the migration broke its ISM propagation chain —
  the exact :class:`~repro.pipeline.schedulers.RekeyLedger` rule the
  ``shed`` discipline uses for drops);
* :class:`SlowdownFault` — a backend serves ×``factor`` slower inside
  a time window (thermal throttling, a noisy neighbour);
* :class:`FlakyFault` — per-frame service attempts inside a window
  fail with a seeded probability and are retried with timeout and
  backoff (:class:`RetryPolicy`); a non-key frame that exhausts its
  attempts is dropped (and the stream re-keys), while key frames are
  never abandoned — they carry the state the whole chain needs.

Failure decisions are pure functions of ``(seed, shard, stream,
frame, attempt)`` via SHA-256 — not of wall clock, dict order, or
worker-pool scheduling — so identical ``(fault_schedule, seed)``
inputs produce byte-identical :class:`~repro.cluster.report.
ClusterReport`\\ s (regression-pinned, including across process- and
thread-pool quality probes).

An optional :class:`~repro.cluster.autoscale.Autoscaler` closes the
loop: the engine observes fleet deadline pressure every interval and
grows/shrinks the replica set with hysteresis, rebalancing pending
streams through the placement policy on every change.

Every fault, retry, migration, and scale event lands in the report's
:class:`~repro.cluster.report.ResilienceStats` ledger, alongside the
degraded-window latency envelope that ``tests/test_chaos.py`` holds
to declared bounds.  ``docs/resilience.md`` is the guide.

>>> from repro.pipeline import FrameStream
>>> engine = ChaosClusterEngine(
...     ["gpu", "gpu"], policy="round-robin",
...     faults=FaultSchedule(faults=(CrashFault("gpu:1", at_s=0.05),)))
>>> report = engine.run([
...     FrameStream(f"cam{i}", size=(68, 120), n_frames=4,
...                 mode="baseline") for i in range(2)])
>>> report.resilience.crashes, report.shard_for("cam1")
(1, 'gpu:0')
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.backends.base import ExecutionBackend
from repro.backends.registry import get_backend
from repro.cluster.autoscale import Autoscaler, AutoscalerState
from repro.cluster.engine import ClusterEngine
from repro.cluster.policies import PlacementPolicy
from repro.cluster.report import (
    BackendShard,
    ClusterReport,
    FaultEvent,
    ResilienceStats,
    StreamResilience,
)
from repro.pipeline.costing import FrameCoster, ServeOutcome, plan_keys
from repro.pipeline.quality import QualityProbe
from repro.pipeline.report import EngineReport, StreamStats
from repro.pipeline.schedulers import FrameJob, FrameScheduler, RekeyLedger
from repro.pipeline.stream import FrameStream

__all__ = [
    "ChaosClusterEngine",
    "CrashFault",
    "FaultSchedule",
    "FlakyFault",
    "RetryPolicy",
    "SlowdownFault",
]


@dataclass(frozen=True)
class CrashFault:
    """Backend ``shard`` dies permanently at ``at_s`` seconds.

    Any frame in flight on the shard at the crash instant is killed
    (its partial service time is wasted) and re-served after
    migration.  ``shard`` names an initial fleet label
    (``"gpu:0"``-style); the engine validates it before the run.

    >>> CrashFault("gpu:0", at_s=0.5).at_s
    0.5
    """

    shard: str
    at_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("crash time must be >= 0")


@dataclass(frozen=True)
class SlowdownFault:
    """Backend ``shard`` serves ×``factor`` slower in a time window.

    The factor applies to every service attempt *starting* inside
    ``[start_s, start_s + duration_s)``; overlapping windows multiply.

    >>> SlowdownFault("gpu:0", start_s=0.1, duration_s=0.2, factor=3.0).end_s
    0.30000000000000004
    """

    shard: str
    start_s: float
    duration_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("slowdown window must be non-negative and last")
        if self.factor <= 0:
            raise ValueError("slowdown factor must be positive")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class FlakyFault:
    """Per-frame service attempts on ``shard`` fail with probability
    ``failure_rate`` inside a time window.

    Each attempt's outcome is a pure function of ``(schedule seed,
    shard, stream, frame, attempt)``, so runs are deterministic and
    retries of the same frame draw fresh outcomes.  ``failure_rate``
    must stay below 1.0 — key frames are retried until they succeed
    (they are never dropped), which a certain-failure fault would
    turn into an infinite loop.

    >>> FlakyFault("gpu:0", start_s=0.0, duration_s=1.0, failure_rate=1.0)
    Traceback (most recent call last):
        ...
    ValueError: failure rate must be in [0, 1) — key frames retry forever
    """

    shard: str
    start_s: float
    duration_s: float
    failure_rate: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("flaky window must be non-negative and last")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(
                "failure rate must be in [0, 1) — key frames retry forever"
            )

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class RetryPolicy:
    """How flaky service attempts are retried.

    A failed attempt holds the backend for ``timeout_s`` (the watchdog
    budget; ``None`` charges the frame's full service time — the
    attempt ran to completion and failed validation), then the frame
    becomes eligible again after ``backoff_s × attempt`` of linear
    backoff.  After ``max_attempts`` total attempts a *non-key* frame
    is dropped (breaking the ISM chain exactly like a ``shed`` drop);
    key frames ignore the cap and retry until they succeed.

    >>> RetryPolicy().max_attempts
    3
    """

    max_attempts: int = 3
    backoff_s: float = 0.002
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout must be positive (or None)")


@dataclass(frozen=True)
class FaultSchedule:
    """A seedable, immutable set of faults to inject into one run.

    ``seed`` drives every flaky-fault coin toss (crashes and
    slowdowns are already fully determined by their times).  The
    schedule is data, not behaviour: the same schedule can replay
    against different fleets, policies, and schedulers.

    >>> schedule = FaultSchedule(faults=(
    ...     CrashFault("gpu:0", at_s=0.5),
    ...     SlowdownFault("gpu:1", start_s=0.1, duration_s=0.2, factor=2.0),
    ... ), seed=7)
    >>> len(schedule.faults), schedule.seed
    (2, 7)
    """

    faults: tuple[CrashFault | SlowdownFault | FlakyFault, ...] = ()
    seed: int = 0

    def shards(self) -> set[str]:
        """Every shard label the schedule targets."""
        return {f.shard for f in self.faults}

    def crashes(self) -> list[CrashFault]:
        """Crash faults in time order (ties broken by shard label)."""
        crashes = [f for f in self.faults if isinstance(f, CrashFault)]
        return sorted(crashes, key=lambda f: (f.at_s, f.shard))

    def slowdowns_for(self, shard: str) -> list[SlowdownFault]:
        return sorted(
            (f for f in self.faults
             if isinstance(f, SlowdownFault) and f.shard == shard),
            key=lambda f: f.start_s,
        )

    def flaky_for(self, shard: str) -> list[FlakyFault]:
        return sorted(
            (f for f in self.faults
             if isinstance(f, FlakyFault) and f.shard == shard),
            key=lambda f: f.start_s,
        )


def _u01(seed: int, shard: str, stream: str, frame: int, attempt: int) -> float:
    """A uniform draw in [0, 1) that is a pure function of its inputs.

    SHA-256 rather than ``hash()``/``random.Random`` keeps the draw
    independent of ``PYTHONHASHSEED``, interpreter version, and event
    order — the determinism contract the chaos tests pin.

    >>> a = _u01(0, "gpu:0", "cam", 3, 0)
    >>> a == _u01(0, "gpu:0", "cam", 3, 0), 0.0 <= a < 1.0
    (True, True)
    """
    digest = hashlib.sha256(
        f"{seed}|{shard}|{stream}|{frame}|{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


class _Replica:
    """Mutable per-backend server state inside the chaos loop."""

    def __init__(
        self,
        backend: ExecutionBackend,
        coster: FrameCoster,
        label: str,
        spawned_s: float = 0.0,
    ) -> None:
        self.backend = backend
        self.coster = coster
        self.label = label
        self.alive = True
        self.free_s = spawned_s
        self.busy_s = 0.0
        self.served = 0
        self.crash_s: float | None = None
        self.slow: list[SlowdownFault] = []
        self.flaky: list[FlakyFault] = []
        self.end_s: float | None = None  # crash / retirement instant
        self.log: list[tuple[float, float]] = []  # (start, done) busy spans

    def occupy(self, start_s: float, done_s: float) -> None:
        """Charge one service attempt (successful or not)."""
        self.busy_s += done_s - start_s
        self.free_s = done_s
        self.log.append((start_s, done_s))

    def drain_after(self, t: float) -> float:
        """First instant >= ``t`` at which this server sits idle.

        The busy log is a sequence of non-overlapping spans in start
        order (single server), so the drain point is the end of the
        contiguous busy chain covering ``t`` — when the backlog a
        fault built up has actually cleared.
        """
        for start, done in self.log:
            if start > t:
                break
            if done > t:
                t = done
        return t

    def slowdown_factor(self, start_s: float) -> float:
        factor = 1.0
        for f in self.slow:
            if f.start_s <= start_s < f.end_s:
                factor *= f.factor
        return factor

    def failure_rate(self, start_s: float) -> float:
        rate = 0.0
        for f in self.flaky:
            if f.start_s <= start_s < f.end_s:
                rate = max(rate, f.failure_rate)
        return rate

    @property
    def span_s(self) -> float:
        """The shard's own completion span (crash caps it)."""
        return self.end_s if self.end_s is not None else self.free_s


class ChaosClusterEngine(ClusterEngine):
    """:class:`~repro.cluster.engine.ClusterEngine` under injected
    faults, replica failover, and hysteresis autoscaling.

    Construction mirrors the plain engine (``backends``, ``policy``,
    ``scheduler``, ``quality``) plus the chaos knobs: ``faults`` (a
    :class:`FaultSchedule`; ``None`` injects nothing), ``retry`` (the
    flaky-attempt :class:`RetryPolicy`), and ``autoscaler`` (an
    :class:`~repro.cluster.autoscale.Autoscaler`; ``None`` keeps the
    fleet fixed).  With all three at their defaults the chaos loop
    serves every stream exactly like the plain engine — pinned by
    ``tests/test_chaos.py`` — so the fault path is an extension, not
    a fork, of the serving semantics.

    A migrated stream's statistics appear on its *final* shard, and
    :attr:`~repro.cluster.report.ClusterReport.placement` records the
    final assignment; the migration history lives in the report's
    :attr:`~repro.cluster.report.ClusterReport.resilience` ledger.

    >>> from repro.pipeline import FrameStream
    >>> engine = ChaosClusterEngine(["gpu"], retry=RetryPolicy(
    ...     max_attempts=2))
    >>> report = engine.run([FrameStream("cam", size=(68, 120),
    ...                                  n_frames=3, mode="baseline")])
    >>> report.total_frames, report.resilience.total_retries
    (3, 0)
    """

    def __init__(
        self,
        backends: Sequence[str | ExecutionBackend],
        policy: str | PlacementPolicy = "least-loaded",
        scheduler: str | FrameScheduler = "fifo",
        quality: QualityProbe | bool | None = None,
        faults: FaultSchedule | None = None,
        retry: RetryPolicy | None = None,
        autoscaler: Autoscaler | None = None,
    ) -> None:
        super().__init__(backends, policy=policy, scheduler=scheduler,
                         quality=quality)
        self.faults = faults or FaultSchedule()
        self.retry = retry or RetryPolicy()
        self.autoscaler = autoscaler
        unknown = self.faults.shards() - set(self.labels)
        if unknown:
            raise ValueError(
                f"fault schedule targets unknown shards {sorted(unknown)}; "
                f"fleet labels are {self.labels}"
            )

    # ------------------------------------------------------------------
    # the fleet-level discrete-event loop
    # ------------------------------------------------------------------
    def run(self, streams: Sequence[FrameStream]) -> ClusterReport:
        """Serve ``streams`` under the fault schedule; return the
        report with its :class:`~repro.cluster.report.ResilienceStats`
        ledger attached.

        >>> from repro.pipeline import FrameStream
        >>> report = ChaosClusterEngine(["gpu"]).run(
        ...     [FrameStream("cam", size=(68, 120), n_frames=4,
        ...                  mode="baseline")])
        >>> report.total_frames, report.resilience.events
        (4, ())
        """
        streams = list(streams)
        if not streams:
            raise ValueError("need at least one stream")
        names = [s.name for s in streams]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(
                f"stream names must be unique within a cluster run "
                f"(placement and reports are keyed by name); duplicates: "
                f"{dupes}"
            )

        replicas = [
            _Replica(backend, coster, label)
            for backend, coster, label in zip(
                self.backends, self.costers, self.labels
            )
        ]
        by_label = {r.label: r for r in replicas}
        for fault in self.faults.faults:
            r = by_label[fault.shard]
            if isinstance(fault, CrashFault):
                if r.crash_s is not None:
                    raise ValueError(
                        f"shard {fault.shard!r} is scheduled to crash twice"
                    )
                r.crash_s = fault.at_s
            elif isinstance(fault, SlowdownFault):
                r.slow.append(fault)
            elif isinstance(fault, FlakyFault):
                r.flaky.append(fault)

        n = len(streams)
        assigned = self.place(streams)

        # per-stream job queues under the *initial* shard's key plan;
        # ISM support is re-checked at dispatch after any migration
        queues: list[list[FrameJob]] = []
        jobs_flat: list[FrameJob] = []
        for si, stream in enumerate(streams):
            supports = replicas[assigned[si]].coster.backend.capabilities.supports_ism
            queue = [
                FrameJob(
                    seq=0,
                    arrival_s=fi / stream.fps,
                    stream_index=si,
                    frame_index=fi,
                    is_key=is_key,
                    deadline_s=stream.frame_deadline(fi),
                    priority=stream.priority,
                )
                for fi, is_key in enumerate(plan_keys(stream, supports))
            ]
            queues.append(queue)
            jobs_flat.extend(queue)
        jobs_flat.sort(
            key=lambda j: (j.arrival_s, j.stream_index, j.frame_index)
        )
        for seq, job in enumerate(jobs_flat):
            job.seq = seq

        head = [0] * n                  # next unserved frame per stream
        not_before = [0.0] * n          # retry-backoff gate on the head
        attempts = [0] * n              # failed attempts on the head
        rekey = RekeyLedger(n)
        latencies: list[list[float]] = [[] for _ in streams]
        waits: list[list[float]] = [[] for _ in streams]
        services: list[list[float]] = [[] for _ in streams]
        completions: list[list[float]] = [[] for _ in streams]
        key_counts = [0] * n
        missed = [0] * n
        dropped = [0] * n
        worst_late = [0.0] * n
        dispositions: list[list[str]] = [[] for _ in streams]
        retries = [0] * n
        migrations = [0] * n
        downtime = [0.0] * n
        failover = [0.0] * n
        down_since: list[float | None] = [None] * n
        down_crash: list[float | None] = [None] * n  # crash the gap belongs to

        events: list[FaultEvent] = []
        for r in replicas:
            for f in r.slow:
                events.append(FaultEvent(
                    f.start_s, "slowdown-start", r.label,
                    detail=f"x{f.factor:g}"))
                events.append(FaultEvent(f.end_s, "slowdown-end", r.label))
        crash_recovery: dict[float, float] = {}
        crash_dests: dict[float, set[int]] = {}
        pending = sum(len(q) for q in queues)
        crash_queue = self.faults.crashes()
        ci = 0
        scaler_state = (
            AutoscalerState(self.autoscaler) if self.autoscaler else None
        )
        next_tick = (
            self.autoscaler.interval_s if self.autoscaler else math.inf
        )
        added = removed = 0
        pressure_memo: dict[tuple[str, int], float] = {}

        def stream_pressure(si: int) -> float:
            coster = replicas[assigned[si]].coster
            key = (coster.backend.name, si)
            if key not in pressure_memo:
                pressure_memo[key] = coster.deadline_pressure(streams[si])
            return pressure_memo[key]

        def eff_arrival(si: int) -> float:
            return max(queues[si][head[si]].arrival_s, not_before[si])

        def migrate(moving: list[int], destinations: list[int],
                    now: float, kind_detail: str,
                    crash_at: float | None) -> None:
            for si, dest in zip(moving, destinations):
                if dest == assigned[si]:
                    continue
                source = replicas[assigned[si]].label
                assigned[si] = dest
                rekey.chain_broken(si)  # migration broke the ISM chain
                migrations[si] += 1
                if crash_at is not None:
                    down_since[si] = crash_at
                    down_crash[si] = crash_at
                    crash_dests.setdefault(crash_at, set()).add(dest)
                events.append(FaultEvent(
                    now, "migrate", replicas[dest].label,
                    stream=streams[si].name,
                    detail=f"{kind_detail} from {source}"))

        def replace_streams(dead: _Replica, now: float,
                            crash_at: float | None, detail: str) -> None:
            moving = [si for si in range(n)
                      if replicas[assigned[si]] is dead
                      and head[si] < len(queues[si])]
            if not moving:
                return
            survivors = [i for i, r in enumerate(replicas) if r.alive]
            if not survivors:
                raise ValueError(
                    f"fault schedule killed every replica at t={now:g}s "
                    f"with {pending} frames still pending; keep one shard "
                    f"alive or attach an autoscaler with min_replicas >= 1"
                )
            placement = self.policy.assign(
                [streams[si] for si in moving],
                [replicas[i].coster for i in survivors],
            )
            migrate(moving, [survivors[p] for p in placement], now,
                    detail, crash_at)

        while pending > 0:
            # earliest dispatch opportunity across the live fleet
            best: tuple[float, int] | None = None
            for ri, r in enumerate(replicas):
                if not r.alive:
                    continue
                heads = [si for si in range(n)
                         if assigned[si] == ri and head[si] < len(queues[si])]
                if not heads:
                    continue
                t = max(r.free_s, min(eff_arrival(si) for si in heads))
                if best is None or (t, ri) < best:
                    best = (t, ri)
            if best is None:
                raise RuntimeError(
                    "chaos loop stalled with pending frames and no live "
                    "replica holding work"
                )  # pragma: no cover - migrations make this unreachable
            t_disp, ri = best

            t_crash = crash_queue[ci].at_s if ci < len(crash_queue) else math.inf
            if min(t_crash, next_tick) <= t_disp:
                if t_crash <= next_tick:
                    fault = crash_queue[ci]
                    ci += 1
                    r = by_label[fault.shard]
                    events.append(FaultEvent(
                        fault.at_s, "crash", r.label,
                        detail="" if r.alive else "already dead"))
                    if r.alive:
                        r.alive = False
                        r.end_s = fault.at_s
                        crash_recovery.setdefault(fault.at_s, 0.0)
                        replace_streams(r, fault.at_s, fault.at_s,
                                        "failover")
                else:
                    now = next_tick
                    next_tick += self.autoscaler.interval_s
                    total = sum(
                        stream_pressure(si) for si in range(n)
                        if head[si] < len(queues[si])
                    )
                    n_alive = sum(r.alive for r in replicas)
                    decision = scaler_state.observe(total, n_alive)
                    if decision == "up":
                        backend = get_backend(self.autoscaler.backend)
                        count = sum(
                            1 for r in replicas
                            if r.backend.name == backend.name
                        )
                        label = f"{backend.name}:{count}"
                        replicas.append(_Replica(
                            backend, FrameCoster(backend), label,
                            spawned_s=now))
                        added += 1
                        events.append(FaultEvent(
                            now, "scale-up", label,
                            detail=f"pressure {total:.2f}"))
                        # rebalance every pending stream over the fleet
                        moving = [si for si in range(n)
                                  if head[si] < len(queues[si])]
                        alive = [i for i, r in enumerate(replicas)
                                 if r.alive]
                        placement = self.policy.assign(
                            [streams[si] for si in moving],
                            [replicas[i].coster for i in alive],
                        )
                        migrate(moving, [alive[p] for p in placement],
                                now, "rebalance", None)
                    elif decision == "down":
                        alive = [i for i, r in enumerate(replicas)
                                 if r.alive]
                        victim_i = min(
                            alive,
                            key=lambda i: (
                                sum(stream_pressure(si) for si in range(n)
                                    if assigned[si] == i
                                    and head[si] < len(queues[si])),
                                -i,  # drain the newest replica first
                            ),
                        )
                        victim = replicas[victim_i]
                        victim.alive = False
                        victim.end_s = max(now, victim.free_s)
                        removed += 1
                        events.append(FaultEvent(
                            now, "scale-down", victim.label,
                            detail=f"pressure {total:.2f}"))
                        replace_streams(victim, now, None, "scale-down")
                continue

            # dispatch one frame on replica ri at t_disp
            r = replicas[ri]
            ready = sorted(
                (queues[si][head[si]] for si in range(n)
                 if assigned[si] == ri and head[si] < len(queues[si])
                 and eff_arrival(si) <= t_disp),
                key=lambda j: j.seq,
            )
            job = ready[self.scheduler.select(ready, t_disp)]
            si = job.stream_index
            stream = streams[si]
            start = t_disp
            is_key = rekey.effective_key(
                si, job.is_key,
                r.coster.backend.capabilities.supports_ism,
            )

            def finish_frame(disposition: str) -> None:
                dispositions[si].append(disposition)
                head[si] += 1
                not_before[si] = 0.0
                attempts[si] = 0

            if not self.scheduler.admit(job, start, is_key):
                dropped[si] += 1
                missed[si] += 1
                rekey.chain_broken(si)
                finish_frame("drop")
                pending -= 1
                continue

            service = (
                r.coster.frame_seconds(stream, is_key)
                * r.slowdown_factor(start)
            )
            rate = r.failure_rate(start)
            fails = rate > 0.0 and _u01(
                self.faults.seed, r.label, stream.name,
                job.frame_index, attempts[si],
            ) < rate
            if fails:
                cost = (self.retry.timeout_s
                        if self.retry.timeout_s is not None else service)
                done = start + cost
                if r.crash_s is not None and start < r.crash_s < done:
                    # the crash kills the attempt; the frame migrates
                    r.occupy(start, r.crash_s)
                    continue
                r.occupy(start, done)
                attempts[si] += 1
                retries[si] += 1
                events.append(FaultEvent(
                    done, "flaky-fail", r.label, stream=stream.name,
                    detail=f"frame {job.frame_index} "
                           f"attempt {attempts[si]}"))
                if attempts[si] >= self.retry.max_attempts and not is_key:
                    dropped[si] += 1
                    missed[si] += 1
                    rekey.chain_broken(si)
                    events.append(FaultEvent(
                        done, "retry-drop", r.label, stream=stream.name,
                        detail=f"frame {job.frame_index}"))
                    finish_frame("drop")
                    pending -= 1
                else:
                    not_before[si] = done + (
                        self.retry.backoff_s * attempts[si]
                    )
                continue

            done = start + service
            if r.crash_s is not None and start < r.crash_s < done:
                # in-flight kill: partial work is wasted, frame migrates
                r.occupy(start, r.crash_s)
                continue
            r.occupy(start, done)
            r.served += 1
            rekey.served(si, is_key)
            key_counts[si] += is_key
            latency = done - job.arrival_s
            latencies[si].append(latency)
            waits[si].append(start - job.arrival_s)
            services[si].append(service)
            completions[si].append(done)
            if done > job.deadline_s:
                missed[si] += 1
                late = done - job.deadline_s
                if late > worst_late[si]:
                    worst_late[si] = late
            if down_since[si] is not None:
                gap = done - down_since[si]
                downtime[si] += gap
                if gap > failover[si]:
                    failover[si] = gap
                crash_at = down_crash[si]
                if gap > crash_recovery.get(crash_at, 0.0):
                    crash_recovery[crash_at] = gap
                down_since[si] = None
                down_crash[si] = None
            finish_frame("key" if is_key else "nonkey")
            pending -= 1

        return self._assemble_report(
            streams, replicas, assigned, latencies, waits, services,
            completions, key_counts, missed, dropped, worst_late,
            dispositions, retries, migrations, downtime, failover,
            events, crash_recovery, crash_dests, added, removed,
        )

    # ------------------------------------------------------------------
    # report assembly
    # ------------------------------------------------------------------
    def _assemble_report(
        self, streams, replicas, assigned, latencies, waits, services,
        completions, key_counts, missed, dropped, worst_late,
        dispositions, retries, migrations, downtime, failover,
        events, crash_recovery, crash_dests, added, removed,
    ) -> ClusterReport:
        n = len(streams)
        makespan = max((r.free_s for r in replicas), default=0.0)
        total_served = sum(len(lat) for lat in latencies)
        busy_total = sum(r.busy_s for r in replicas)

        outcome = ServeOutcome(
            latencies_s=tuple(tuple(lat) for lat in latencies),
            key_counts=tuple(key_counts),
            total_frames=total_served,
            makespan_s=makespan,
            busy_s=busy_total,
            waits_s=tuple(tuple(w) for w in waits),
            services_s=tuple(tuple(s) for s in services),
            missed_deadlines=tuple(missed),
            dropped_frames=tuple(dropped),
            worst_lateness_s=tuple(worst_late),
            scheduler=self.scheduler.name,
            dispositions=tuple(tuple(d) for d in dispositions),
        )
        quality = (
            self.quality.score_streams(streams, outcome)
            if self.quality is not None else (None,) * n
        )

        for r in replicas:
            if r.served > 0:
                r.backend.occupancy.record_run(
                    busy_s=r.busy_s, span_s=r.span_s, frames=r.served
                )

        stats = [
            StreamStats.from_latencies(
                streams[si].name, latencies[si], key_counts[si],
                waits_s=waits[si], missed_deadlines=missed[si],
                dropped_frames=dropped[si],
                worst_lateness_s=worst_late[si], quality=quality[si],
            )
            for si in range(n)
        ]
        shards = []
        for ri, r in enumerate(replicas):
            final = [si for si in range(n) if assigned[si] == ri]
            span = r.span_s
            report = EngineReport(
                backend=r.backend.name,
                streams=[stats[si] for si in final],
                total_frames=r.served,
                makespan_s=span,
                aggregate_fps=r.served / span if span > 0 else 0.0,
                mean_service_s=r.busy_s / r.served if r.served else 0.0,
                cache=r.backend.cache_info(),
                busy_s=r.busy_s,
                scheduler=self.scheduler.name,
                missed_deadlines=sum(missed[si] for si in final),
                dropped_frames=sum(dropped[si] for si in final),
            )
            shards.append(BackendShard(
                label=r.label,
                report=report,
                utilization=r.busy_s / makespan if makespan > 0 else 0.0,
            ))

        # a fault's degradation outlives its window: the backlog it
        # built drains at normal speed after it ends, so the envelope
        # extends to the afflicted replica's next idle instant
        by_label = {r.label: r for r in replicas}
        windows = sorted(
            [(f.start_s, by_label[f.shard].drain_after(f.end_s))
             for f in self.faults.faults
             if isinstance(f, (SlowdownFault, FlakyFault))]
            + [
                (at, max(
                    [at + gap]
                    + [replicas[ri].drain_after(at)
                       for ri in crash_dests.get(at, ())]
                ))
                for at, gap in crash_recovery.items()
            ]
        )

        def in_window(t: float) -> bool:
            return any(w0 <= t <= w1 for w0, w1 in windows)

        degraded, steady = [], []
        for si in range(n):
            for lat, done in zip(latencies[si], completions[si]):
                (degraded if in_window(done) else steady).append(1e3 * lat)
        p99 = lambda xs: float(np.percentile(xs, 99.0)) if xs else 0.0

        resilience = ResilienceStats(
            events=tuple(sorted(events, key=lambda e: e.time_s)),
            streams=tuple(
                StreamResilience(
                    stream=streams[si].name,
                    migrations=migrations[si],
                    retries=retries[si],
                    downtime_s=downtime[si],
                    failover_latency_s=failover[si],
                )
                for si in range(n)
            ),
            replicas_added=added,
            replicas_removed=removed,
            degraded_windows=tuple(windows),
            degraded_p99_ms=p99(degraded),
            steady_p99_ms=p99(steady),
        )
        return ClusterReport(
            policy=self.policy.name,
            scheduler=self.scheduler.name,
            shards=tuple(shards),
            placement=tuple(
                (streams[si].name, replicas[assigned[si]].label)
                for si in range(n)
            ),
            total_frames=total_served,
            makespan_s=makespan,
            resilience=resilience,
        )
