"""Heterogeneous cluster serving: many streams, a fleet of backends.

The scaling layer above :mod:`repro.pipeline`::

    from repro.cluster import ClusterEngine, plan_capacity
    from repro.pipeline import kitti_stream, sceneflow_stream

    streams = [kitti_stream(seed=i) for i in range(8)]
    engine = ClusterEngine(
        ["systolic", "systolic", "eyeriss", "gpu"],
        policy="capability-aware",
    )
    report = engine.run(streams)
    print(report.aggregate_fps, report.worst_p99_ms)

    plan = plan_capacity(streams, target_fps=30.0)
    print(plan.best.backend, plan.best.instances)

* :class:`ClusterEngine` — shard N camera streams across M
  heterogeneous :class:`~repro.backends.base.ExecutionBackend`
  instances and serve every shard with the shared cost core under a
  pluggable frame scheduler (``scheduler="fifo" | "edf" | "priority"
  | "shed"``, see ``docs/scheduling.md``);
* placement policies (``round-robin`` / ``least-loaded`` /
  ``capability-aware`` / ``deadline-aware``), pluggable via
  :func:`register_placement_policy`;
* :class:`ClusterReport` — per-stream tails, per-shard utilization,
  fleet throughput, fleet-wide deadline-miss / drop accounting, and
  (when the engine carries a ``quality=`` probe, see
  ``docs/quality.md``) fleet depth-accuracy aggregation;
* :func:`plan_capacity` — "how many of which accelerator do I need"
  for a stream set and target rate;
* :class:`ChaosClusterEngine` — the same fleet under a seedable
  :class:`FaultSchedule` (crash / slowdown / flaky), with replica
  failover, retry/backoff, and hysteresis autoscaling
  (:class:`Autoscaler`); resilience accounting lands in the report's
  :class:`ResilienceStats` (see ``docs/resilience.md``).

See ``docs/serving.md`` (usage) and ``docs/architecture.md`` (layer
diagram).
"""

from repro.cluster.autoscale import Autoscaler, AutoscalerState
from repro.cluster.engine import ClusterEngine
from repro.cluster.faults import (
    ChaosClusterEngine,
    CrashFault,
    FaultSchedule,
    FlakyFault,
    RetryPolicy,
    SlowdownFault,
)
from repro.cluster.planner import (
    BackendPlan,
    CapacityPlan,
    format_capacity_plan,
    plan_capacity,
)
from repro.cluster.policies import (
    CapabilityAwarePolicy,
    DeadlineAwarePolicy,
    LeastLoadedPolicy,
    PlacementPolicy,
    RoundRobinPolicy,
    available_policies,
    get_policy,
    register_placement_policy,
)
from repro.cluster.report import (
    BackendShard,
    ClusterReport,
    FaultEvent,
    ResilienceStats,
    StreamResilience,
    format_cluster_quality,
    format_cluster_report,
    format_policy_comparison,
    format_resilience,
)

__all__ = [
    "Autoscaler",
    "AutoscalerState",
    "BackendPlan",
    "BackendShard",
    "CapabilityAwarePolicy",
    "CapacityPlan",
    "ChaosClusterEngine",
    "ClusterEngine",
    "ClusterReport",
    "CrashFault",
    "DeadlineAwarePolicy",
    "FaultEvent",
    "FaultSchedule",
    "FlakyFault",
    "LeastLoadedPolicy",
    "PlacementPolicy",
    "ResilienceStats",
    "RetryPolicy",
    "RoundRobinPolicy",
    "SlowdownFault",
    "StreamResilience",
    "available_policies",
    "format_capacity_plan",
    "format_cluster_quality",
    "format_cluster_report",
    "format_policy_comparison",
    "format_resilience",
    "get_policy",
    "plan_capacity",
    "register_placement_policy",
]
