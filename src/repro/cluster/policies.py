"""Placement policies: which backend serves which camera stream.

A policy maps N streams onto M backends *before* the run — placement
is static for a run, like a camera fleet pinned to accelerator boards.
Policies are deterministic pure functions of the streams and the
backends' cost models: the same inputs always produce the same
placement (regression-tested), so capacity decisions are auditable.

Three built-ins cover the standard trade-offs (``docs/serving.md``
discusses when to pick which):

* ``round-robin`` — ignore costs, deal streams out in order;
* ``least-loaded`` — greedy bin packing by modeled utilization
  (:meth:`~repro.pipeline.costing.FrameCoster.stream_demand`);
* ``capability-aware`` — like least-loaded, but first route streams
  that benefit from the ISM non-key pipeline to ISM-capable backends
  and prefer backends that natively schedule the stream's requested
  execution mode;
* ``deadline-aware`` — like least-loaded, but packing by
  scheduler-aware *deadline pressure*
  (:meth:`~repro.pipeline.costing.FrameCoster.deadline_pressure`):
  a stream whose per-frame deadline is tighter than its frame period
  counts for more than its raw busy time, so tight-deadline traffic
  spreads out instead of piling onto one shard.

New policies plug in with :func:`register_placement_policy`, mirroring
the backend registry.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.pipeline.costing import FrameCoster, plan_keys
from repro.pipeline.stream import FrameStream

__all__ = [
    "PlacementPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "CapabilityAwarePolicy",
    "DeadlineAwarePolicy",
    "available_policies",
    "get_policy",
    "register_placement_policy",
]

#: anything that builds a policy when called (a class or a factory)
PolicyFactory = Callable[[], "PlacementPolicy"]

_REGISTRY: dict[str, PolicyFactory] = {}


def register_placement_policy(
    name: str,
) -> Callable[[PolicyFactory], PolicyFactory]:
    """Class/factory decorator adding a policy to the registry.

    >>> @register_placement_policy("doc-first-backend")
    ... class FirstBackendPolicy:
    ...     name = "doc-first-backend"
    ...     def assign(self, streams, costers):
    ...         return [0] * len(streams)
    >>> "doc-first-backend" in available_policies()
    True
    >>> _ = _REGISTRY.pop("doc-first-backend")  # side-effect-free example
    """

    def decorate(factory: PolicyFactory) -> PolicyFactory:
        _REGISTRY[name] = factory
        return factory

    return decorate


def available_policies() -> tuple[str, ...]:
    """Sorted names of every registered placement policy.

    >>> {"round-robin", "least-loaded", "capability-aware"} <= set(
    ...     available_policies())
    True
    """
    return tuple(sorted(_REGISTRY))


def get_policy(name: str) -> "PlacementPolicy":
    """Construct a placement policy by name.

    >>> get_policy("round-robin").name
    'round-robin'
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; "
            f"available: {available_policies()}"
        ) from None
    return factory()


class PlacementPolicy:
    """The protocol: map streams to backend indices.

    Subclasses implement :meth:`assign`, returning one backend index
    per stream (``placement[i]`` is the backend serving stream ``i``).
    Implementations must be deterministic — break ties by the lowest
    backend index.
    """

    name: str = "abstract"

    def assign(
        self,
        streams: Sequence[FrameStream],
        costers: Sequence[FrameCoster],
    ) -> list[int]:
        """One backend index per stream."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


def _wants_ism(stream: FrameStream) -> bool:
    """Whether the stream's key plan has frames ISM could serve."""
    return not all(plan_keys(stream, supports_ism=True))


def _greedy_least_loaded(
    streams: Sequence[FrameStream],
    costers: Sequence[FrameCoster],
    candidates_for: Callable[[FrameStream], Sequence[int]],
    demand_fn: Callable[[FrameCoster, FrameStream], float] | None = None,
) -> list[int]:
    """Greedy packing: each stream goes to its least-loaded candidate.

    Load is the summed modeled demand already placed on a backend —
    :meth:`~repro.pipeline.costing.FrameCoster.stream_demand` unless
    ``demand_fn`` supplies another metric (the deadline-aware policy
    packs by :meth:`~repro.pipeline.costing.FrameCoster.
    deadline_pressure`); ties break toward the lowest backend index so
    the placement is deterministic.
    """
    if demand_fn is None:
        demand_fn = FrameCoster.stream_demand
    load = [0.0] * len(costers)
    placement: list[int] = []
    for stream in streams:
        candidates = candidates_for(stream)
        demands = {j: demand_fn(costers[j], stream) for j in candidates}
        best = min(candidates, key=lambda j: (load[j] + demands[j], j))
        load[best] += demands[best]
        placement.append(best)
    return placement


@register_placement_policy("round-robin")
class RoundRobinPolicy(PlacementPolicy):
    """Deal streams out in order, ignoring costs and capabilities.

    >>> from repro.backends import get_backend
    >>> from repro.pipeline import FrameCoster, FrameStream
    >>> costers = [FrameCoster(get_backend("gpu")) for _ in range(2)]
    >>> streams = [FrameStream(f"cam{i}", size=(68, 120)) for i in range(3)]
    >>> RoundRobinPolicy().assign(streams, costers)
    [0, 1, 0]
    """

    name = "round-robin"

    def assign(
        self,
        streams: Sequence[FrameStream],
        costers: Sequence[FrameCoster],
    ) -> list[int]:
        return [i % len(costers) for i in range(len(streams))]


@register_placement_policy("least-loaded")
class LeastLoadedPolicy(PlacementPolicy):
    """Greedy packing by modeled utilization.

    Each stream is placed on the backend whose accumulated modeled
    demand (plus this stream's demand *on that backend*) is lowest —
    a heterogeneous fleet therefore shifts work toward its faster
    members instead of dealing frames out blindly.

    >>> from repro.backends import get_backend
    >>> from repro.pipeline import FrameCoster, FrameStream
    >>> costers = [FrameCoster(get_backend("gpu")) for _ in range(2)]
    >>> streams = [FrameStream(f"cam{i}", size=(68, 120)) for i in range(2)]
    >>> LeastLoadedPolicy().assign(streams, costers)  # one stream each
    [0, 1]
    """

    name = "least-loaded"

    def assign(
        self,
        streams: Sequence[FrameStream],
        costers: Sequence[FrameCoster],
    ) -> list[int]:
        indices = tuple(range(len(costers)))
        return _greedy_least_loaded(streams, costers, lambda _s: indices)


@register_placement_policy("capability-aware")
class CapabilityAwarePolicy(PlacementPolicy):
    """Route ISM-heavy streams to ISM-capable backends first.

    Candidate filtering happens in two tiers before the least-loaded
    tie-break: streams whose key plan leaves frames to propagate
    (PW > 1) prefer backends whose capabilities include the ISM
    non-key pipeline; within the surviving candidates, backends that
    natively schedule the stream's requested execution mode (no
    fallback along ``ilar -> convr -> dct -> baseline``) are
    preferred.  Either tier falls back to the full fleet when no
    backend qualifies, so the policy always places every stream.

    >>> from repro.backends import get_backend
    >>> from repro.pipeline import FrameCoster, FrameStream
    >>> costers = [FrameCoster(get_backend("eyeriss")),   # no ISM
    ...            FrameCoster(get_backend("gpu"))]       # ISM-capable
    >>> stream = FrameStream("cam", size=(68, 120), pw=4, mode="baseline")
    >>> CapabilityAwarePolicy().assign([stream], costers)
    [1]
    """

    name = "capability-aware"

    def assign(
        self,
        streams: Sequence[FrameStream],
        costers: Sequence[FrameCoster],
    ) -> list[int]:
        everyone = tuple(range(len(costers)))

        def candidates_for(stream: FrameStream) -> Sequence[int]:
            pool = everyone
            if _wants_ism(stream):
                ism = tuple(
                    j for j in pool
                    if costers[j].backend.capabilities.supports_ism
                )
                pool = ism or pool
            native = tuple(
                j for j in pool
                if costers[j].backend.supports_mode(stream.mode)
            )
            return native or pool

        return _greedy_least_loaded(streams, costers, candidates_for)


@register_placement_policy("deadline-aware")
class DeadlineAwarePolicy(PlacementPolicy):
    """Greedy packing by scheduler-aware deadline pressure.

    Identical to ``least-loaded`` except the load metric: instead of
    raw modeled busy time, each stream charges its
    :meth:`~repro.pipeline.costing.FrameCoster.deadline_pressure` —
    demand scaled up when the per-frame deadline is tighter than the
    frame period.  Two shards with equal busy time are then *not*
    equally loaded if one holds all the tight-deadline traffic, so
    urgent streams spread across the fleet and each shard's
    deadline-aware scheduler (``edf`` / ``shed``) has slack to work
    with.  For streams without deadlines the policy degenerates to
    ``least-loaded`` exactly.

    >>> from repro.backends import get_backend
    >>> from repro.pipeline import FrameCoster, FrameStream
    >>> costers = [FrameCoster(get_backend("gpu")) for _ in range(2)]
    >>> tight = [FrameStream(f"hud{i}", size=(68, 120), fps=30.0,
    ...                      deadline_s=1 / 120.0) for i in range(2)]
    >>> DeadlineAwarePolicy().assign(tight, costers)  # spread, not piled
    [0, 1]
    """

    name = "deadline-aware"

    def assign(
        self,
        streams: Sequence[FrameStream],
        costers: Sequence[FrameCoster],
    ) -> list[int]:
        indices = tuple(range(len(costers)))
        return _greedy_least_loaded(
            streams, costers, lambda _s: indices,
            demand_fn=FrameCoster.deadline_pressure,
        )
