"""Hysteresis-based replica autoscaling for the chaos serving loop.

The capacity planner (:func:`~repro.cluster.planner.plan_capacity`)
sizes a fleet *offline*; this module closes the loop *during* a run.
An :class:`Autoscaler` watches the fleet's deadline pressure — the
summed :meth:`~repro.pipeline.costing.FrameCoster.deadline_pressure`
of every stream that still has frames to serve, divided by the live
replica count — and grows or shrinks the fleet one replica at a time.

Two classic production rules keep it from flapping:

* **watermarks with a dead band** — scale up only above
  ``high_pressure``, down only below ``low_pressure``; between the
  two the fleet holds steady;
* **hold counts (hysteresis)** — the pressure must sit past a
  watermark for ``up_hold`` / ``down_hold`` *consecutive*
  observations before the fleet changes, so a single noisy interval
  (one slow frame, one retry burst) never triggers a scale event.

The per-replica watermark is deliberately the same quantity as the
planner's ``utilization_cap``: :meth:`Autoscaler.desired_replicas`
reproduces the planner's ``ceil(demand / cap)`` sizing, so the
autoscaler converges toward exactly the fleet ``plan_capacity`` would
have bought for the still-pending work (clamped to
``[min_replicas, max_replicas]``).

The observation/decision split is explicit: :class:`Autoscaler` is
frozen configuration, :class:`AutoscalerState` is the per-run mutable
hysteresis counter.  :class:`~repro.cluster.faults.ChaosClusterEngine`
drives one state instance from its discrete-event loop
(``docs/resilience.md``).

>>> scaler = Autoscaler(high_pressure=0.8, low_pressure=0.3, up_hold=2)
>>> state = AutoscalerState(scaler)
>>> state.observe(1.9, n_replicas=2)   # hot, but only once so far
>>> state.observe(1.9, n_replicas=2)   # hot twice in a row: grow
'up'
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Autoscaler", "AutoscalerState"]


@dataclass(frozen=True)
class Autoscaler:
    """Configuration of the hysteresis autoscaler.

    ``backend`` is the registered backend type a scale-up adds (the
    fleet grows homogeneously, like a cloud instance group of one
    machine shape).  ``high_pressure`` / ``low_pressure`` are the
    per-replica deadline-pressure watermarks bounding the dead band;
    ``up_hold`` / ``down_hold`` the consecutive observations required
    past a watermark before the fleet changes; ``interval_s`` how
    often the serving loop observes; ``min_replicas`` /
    ``max_replicas`` the hard fleet bounds (a crash can still drop
    the live count below ``min_replicas`` — the floor binds scaling
    decisions, not faults).

    >>> Autoscaler().high_pressure
    0.85
    >>> Autoscaler(low_pressure=0.9)
    Traceback (most recent call last):
        ...
    ValueError: low_pressure must sit below high_pressure (the dead band)
    """

    backend: str = "gpu"
    high_pressure: float = 0.85
    low_pressure: float = 0.35
    up_hold: int = 2
    down_hold: int = 4
    interval_s: float = 0.25
    min_replicas: int = 1
    max_replicas: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.high_pressure:
            raise ValueError("high_pressure must be positive")
        if not 0.0 <= self.low_pressure < self.high_pressure:
            raise ValueError(
                "low_pressure must sit below high_pressure (the dead band)"
            )
        if self.up_hold < 1 or self.down_hold < 1:
            raise ValueError("hold counts must be >= 1")
        if self.interval_s <= 0:
            raise ValueError("observation interval must be positive")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError(
                "need 1 <= min_replicas <= max_replicas"
            )

    def desired_replicas(self, total_pressure: float) -> int:
        """The planner-consistent fleet size for ``total_pressure``.

        Reproduces :func:`~repro.cluster.planner.plan_capacity`'s
        ``ceil(demand / cap)`` sizing with ``high_pressure`` as the
        cap, clamped to the configured fleet bounds.

        >>> Autoscaler(high_pressure=0.9, max_replicas=8
        ...           ).desired_replicas(2.2)
        3
        >>> Autoscaler().desired_replicas(0.0)
        1
        """
        if total_pressure <= 0:
            return self.min_replicas
        raw = math.ceil(total_pressure / self.high_pressure - 1e-9)
        return max(self.min_replicas, min(self.max_replicas, raw))


class AutoscalerState:
    """Per-run hysteresis counters driving one :class:`Autoscaler`.

    :meth:`observe` feeds one interval's *total* fleet pressure and
    live replica count; the state normalizes to per-replica pressure,
    updates the consecutive above/below counters, and returns the
    decision for this interval: ``"up"``, ``"down"``, or ``None``
    (hold).  A decision resets both counters, so back-to-back scale
    events need the full hold again — the hysteresis half of the
    anti-flapping contract (the dead band is the other half).

    >>> state = AutoscalerState(Autoscaler(up_hold=1, down_hold=2,
    ...                                    low_pressure=0.2))
    >>> state.observe(3.0, n_replicas=2)   # 1.5 per replica: grow now
    'up'
    >>> state.observe(0.1, n_replicas=3)   # cold once...
    >>> state.observe(0.1, n_replicas=3)   # ...twice: shrink
    'down'
    >>> state.observe(0.1, n_replicas=1)   # already at the floor: hold
    """

    def __init__(self, config: Autoscaler) -> None:
        self.config = config
        self.above = 0
        self.below = 0

    def observe(self, total_pressure: float, n_replicas: int) -> str | None:
        """One interval's decision from the fleet's total pressure."""
        if n_replicas < 1:
            raise ValueError("observe needs at least one live replica")
        per_replica = total_pressure / n_replicas
        config = self.config
        if per_replica > config.high_pressure:
            self.above += 1
            self.below = 0
        elif per_replica < config.low_pressure:
            self.below += 1
            self.above = 0
        else:
            self.above = self.below = 0
        if self.above >= config.up_hold and n_replicas < config.max_replicas:
            self.above = self.below = 0
            return "up"
        if self.below >= config.down_hold and n_replicas > config.min_replicas:
            self.above = self.below = 0
            return "down"
        return None
