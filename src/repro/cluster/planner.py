"""Capacity planning: how many of which accelerator do I need?

The cluster engine answers "what happens on *this* fleet"; the planner
answers the sizing question that comes first.  :func:`plan_capacity`
takes the camera streams to serve, the per-camera target rate, and a
catalog of candidate accelerator types, and sizes a homogeneous fleet
of each type using the same modeled per-frame costs the serving
engines charge (:meth:`~repro.pipeline.costing.FrameCoster.
stream_demand`):

* a stream's *demand* on a backend type is the busy seconds per
  wall-clock second it imposes at the target rate (key frames at the
  stream's degraded execution mode, non-key frames through ISM where
  the type supports it);
* the instances needed are the summed demand divided by the per-
  instance utilization cap (below 1.0 keeps head-room for queueing
  tails), rounded up.

The result ranks every catalog entry so the answer reads "3× systolic,
or 9× eyeriss, or 17× gpu — build the systolic fleet".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.backends.base import ExecutionBackend
from repro.backends.registry import get_backend
from repro.pipeline.costing import FrameCoster
from repro.pipeline.stream import FrameStream
from repro.tables import render_table

__all__ = [
    "BackendPlan",
    "CapacityPlan",
    "format_capacity_plan",
    "plan_capacity",
]


@dataclass(frozen=True)
class BackendPlan:
    """Sizing of a homogeneous fleet of one accelerator type.

    >>> plan = BackendPlan(backend="gpu", demand=2.5, instances=3,
    ...                    utilization_cap=1.0, n_streams=6)
    >>> plan.streams_per_instance
    2.0
    >>> round(plan.fleet_utilization, 3)
    0.833
    """

    backend: str
    #: summed modeled utilization of every stream at the target rate
    demand: float
    instances: int
    utilization_cap: float
    n_streams: int

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValueError(
                f"a fleet of {self.backend!r} needs at least one instance "
                f"(got {self.instances}); a zero-replica plan serves nothing"
            )
        if self.n_streams < 1:
            raise ValueError("a fleet plan needs at least one stream")
        if not 0 < self.utilization_cap <= 1.0:
            raise ValueError("utilization cap must be in (0, 1]")

    @property
    def streams_per_instance(self) -> float:
        """Average cameras each instance carries in this fleet."""
        return self.n_streams / self.instances

    @property
    def fleet_utilization(self) -> float:
        """Mean busy fraction across the sized fleet."""
        return self.demand / self.instances


@dataclass(frozen=True)
class CapacityPlan:
    """Ranked fleet options for one stream set and target rate.

    ``options`` is sorted cheapest-fleet-first (fewest instances, then
    lowest demand, then name — fully deterministic); :attr:`best` is
    the front of that ranking.
    """

    target_fps: float
    n_streams: int
    options: tuple[BackendPlan, ...]

    @property
    def best(self) -> BackendPlan:
        """The cheapest option (fewest instances)."""
        return self.options[0]


def plan_capacity(
    streams: Sequence[FrameStream],
    target_fps: float = 30.0,
    catalog: Sequence[str | ExecutionBackend] = ("systolic", "eyeriss", "gpu"),
    utilization_cap: float = 0.9,
) -> CapacityPlan:
    """Size a homogeneous fleet of each catalog type for ``streams``.

    Every stream is planned at ``target_fps`` (its own ``fps`` field is
    ignored — the question is "what do I buy to serve these cameras at
    the target rate").  ``utilization_cap`` is the per-instance load
    ceiling; 0.9 leaves 10% head-room so queueing tails stay bounded.

    Infeasible inputs raise a clear :class:`ValueError` instead of
    sizing a fleet that cannot work: an empty stream set, a stream
    whose per-frame deadline is shorter than a catalog entry's key-
    frame service time (no number of instances fixes a single frame
    that is already too slow), and a stream whose lone demand exceeds
    the per-instance cap (streams cannot split across instances).
    With a multi-entry catalog the infeasible entries are skipped and
    the feasible ones still rank; the error fires only when *every*
    entry is infeasible, and then names each entry's first offender.

    >>> from repro.pipeline import FrameStream
    >>> streams = [FrameStream(f"cam{i}", size=(68, 120)) for i in range(4)]
    >>> plan = plan_capacity(streams, target_fps=30.0, catalog=("gpu",))
    >>> plan.best.backend, plan.best.instances >= 1
    ('gpu', True)
    >>> plan_capacity([], catalog=("gpu",))
    Traceback (most recent call last):
        ...
    ValueError: need at least one stream to plan for
    """
    streams = list(streams)
    if not streams:
        raise ValueError("need at least one stream to plan for")
    if target_fps <= 0:
        raise ValueError("target fps must be positive")
    if not 0 < utilization_cap <= 1.0:
        raise ValueError("utilization cap must be in (0, 1]")
    if not catalog:
        raise ValueError("the catalog must name at least one backend type")

    options = []
    rejections = []
    for entry in catalog:
        backend = get_backend(entry) if isinstance(entry, str) else entry
        coster = FrameCoster(backend)
        why_not = None
        for stream in streams:
            deadline = stream.deadline_s
            key_s = coster.key_frame_seconds(stream)
            if deadline is not None and key_s > deadline:
                why_not = (
                    f"catalog entry {backend.name!r} cannot meet stream "
                    f"{stream.name!r}: a key frame takes {key_s * 1e3:.2f} ms "
                    f"but the per-frame deadline is {deadline * 1e3:.2f} ms; "
                    f"no fleet size fixes a single frame that is already "
                    f"too slow — drop the entry or relax the deadline"
                )
                break
            per_stream = coster.stream_demand(stream, fps=target_fps)
            if per_stream > utilization_cap:
                why_not = (
                    f"stream {stream.name!r} alone demands "
                    f"{per_stream:.2f} of a {backend.name!r} instance, over "
                    f"the {utilization_cap:.0%} cap; streams cannot split "
                    f"across instances, so no {backend.name!r} fleet serves "
                    f"it at {target_fps:g} fps — drop the entry, lower the "
                    f"target rate, or raise the cap"
                )
                break
        if why_not is not None:
            rejections.append(why_not)
            continue
        demand = sum(
            coster.stream_demand(stream, fps=target_fps) for stream in streams
        )
        # the 1e-9 guard keeps an exactly-full instance from rounding up
        instances = max(1, math.ceil(demand / utilization_cap - 1e-9))
        options.append(
            BackendPlan(
                backend=backend.name,
                demand=demand,
                instances=instances,
                utilization_cap=utilization_cap,
                n_streams=len(streams),
            )
        )
    if not options:
        raise ValueError(
            "no catalog entry can serve this workload: "
            + "; ".join(rejections)
        )
    options.sort(key=lambda p: (p.instances, p.demand, p.backend))
    return CapacityPlan(
        target_fps=target_fps,
        n_streams=len(streams),
        options=tuple(options),
    )


def format_capacity_plan(plan: CapacityPlan) -> str:
    """The ranked fleet-sizing table.

    >>> from repro.pipeline import FrameStream
    >>> plan = plan_capacity([FrameStream("cam", size=(68, 120))],
    ...                      catalog=("gpu",))
    >>> "instances" in format_capacity_plan(plan)
    True
    """
    rows = [
        [p.backend, p.demand, p.instances, p.streams_per_instance,
         p.fleet_utilization]
        for p in plan.options
    ]
    return render_table(
        f"Capacity plan — {plan.n_streams} cameras at "
        f"{plan.target_fps:.0f} fps (cap "
        f"{plan.options[0].utilization_cap:.0%}/instance)",
        ["backend", "demand", "instances", "cams/instance", "fleet util"],
        rows,
    )
