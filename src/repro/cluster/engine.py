"""The cluster engine: N camera streams across M heterogeneous backends.

The scaling step past :class:`~repro.pipeline.engine.StreamEngine`:
instead of one shared accelerator, a fleet — e.g. two systolic arrays,
an Eyeriss-class array, and a mobile GPU — where a placement policy
shards the streams and every shard then runs the *same* per-frame
costing and FIFO simulation (:class:`~repro.pipeline.costing.
FrameCoster`) the single-backend engine uses.  A one-backend cluster
therefore reproduces ``StreamEngine`` exactly (regression-tested), and
everything the fleet adds — placement, per-shard utilization,
cluster-level throughput — layers on top in :class:`~repro.cluster.
report.ClusterReport`.

Shards serve their queues concurrently (separate hardware), so the
cluster makespan is the slowest shard's makespan and the aggregate
frame rate is total frames over that.  See ``docs/serving.md`` for
policy selection guidance and ``docs/architecture.md`` for where this
layer sits.
"""

from __future__ import annotations

from typing import Sequence

from repro.backends.base import ExecutionBackend
from repro.backends.registry import get_backend
from repro.cluster.policies import PlacementPolicy, get_policy
from repro.cluster.report import BackendShard, ClusterReport
from repro.pipeline.costing import FrameCoster
from repro.pipeline.quality import QualityProbe
from repro.pipeline.report import EngineReport
from repro.pipeline.schedulers import FrameScheduler, get_scheduler
from repro.pipeline.stream import FrameStream

__all__ = ["ClusterEngine"]


class ClusterEngine:
    """Shards camera streams across a fleet of execution backends.

    ``backends`` mixes names and instances freely — names construct
    fresh instances through the registry, and repeated types get
    distinct shard labels (``systolic:0``, ``systolic:1``).
    ``policy`` is a registered policy name or a
    :class:`~repro.cluster.policies.PlacementPolicy` instance.
    ``scheduler`` — a registered name or a :class:`~repro.pipeline.
    schedulers.FrameScheduler` — is the service discipline every shard
    runs (``fifo`` by default; see ``docs/scheduling.md``).
    ``quality`` — a :class:`~repro.pipeline.quality.QualityProbe`, or
    ``True`` for the default probe — scores every shard's depth
    accuracy by replaying its served decisions through the real
    pipeline (``docs/quality.md``).

    >>> from repro.pipeline import FrameStream
    >>> engine = ClusterEngine(["gpu", "gpu"], policy="round-robin")
    >>> [shard_label for shard_label in engine.labels]
    ['gpu:0', 'gpu:1']
    >>> report = engine.run([FrameStream(f"cam{i}", size=(68, 120),
    ...                                  n_frames=4) for i in range(3)])
    >>> report.placement
    (('cam0', 'gpu:0'), ('cam1', 'gpu:1'), ('cam2', 'gpu:0'))
    >>> ClusterEngine(["gpu"], scheduler="edf").scheduler.name
    'edf'
    """

    def __init__(
        self,
        backends: Sequence[str | ExecutionBackend],
        policy: str | PlacementPolicy = "least-loaded",
        scheduler: str | FrameScheduler = "fifo",
        quality: QualityProbe | bool | None = None,
    ) -> None:
        if not backends:
            raise ValueError("a cluster needs at least one backend")
        self.backends = [
            get_backend(b) if isinstance(b, str) else b for b in backends
        ]
        self.costers = [FrameCoster(b) for b in self.backends]
        self.labels = self._label_backends(self.backends)
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        if isinstance(scheduler, str):
            scheduler = get_scheduler(scheduler)
        self.scheduler = scheduler
        if quality is True:
            quality = QualityProbe()
        self.quality = quality or None

    @staticmethod
    def _label_backends(backends: Sequence[ExecutionBackend]) -> list[str]:
        """Stable per-instance labels: ``name:index-within-name``."""
        counts: dict[str, int] = {}
        labels = []
        for backend in backends:
            n = counts.get(backend.name, 0)
            counts[backend.name] = n + 1
            labels.append(f"{backend.name}:{n}")
        return labels

    def place(self, streams: Sequence[FrameStream]) -> list[int]:
        """The policy's placement: one backend index per stream.

        >>> from repro.pipeline import FrameStream
        >>> engine = ClusterEngine(["gpu", "gpu"], policy="round-robin")
        >>> engine.place([FrameStream(f"cam{i}", size=(68, 120))
        ...               for i in range(4)])
        [0, 1, 0, 1]
        """
        placement = self.policy.assign(streams, self.costers)
        if len(placement) != len(streams):
            raise ValueError(
                f"policy {self.policy.name!r} placed {len(placement)} of "
                f"{len(streams)} streams"
            )
        for index in placement:
            if not 0 <= index < len(self.backends):
                raise ValueError(
                    f"policy {self.policy.name!r} produced backend index "
                    f"{index}, outside the fleet of {len(self.backends)}"
                )
        return placement

    def run(self, streams: Sequence[FrameStream]) -> ClusterReport:
        """Place and serve every stream; return the fleet report.

        >>> from repro.pipeline import FrameStream
        >>> report = ClusterEngine(["gpu"]).run(
        ...     [FrameStream("cam", size=(68, 120), n_frames=4)])
        >>> report.total_frames, len(report.shards)
        (4, 1)
        """
        streams = list(streams)
        if not streams:
            raise ValueError("need at least one stream")
        names = [s.name for s in streams]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(
                f"stream names must be unique within a cluster run "
                f"(placement and reports are keyed by name); duplicates: "
                f"{dupes}"
            )
        placement = self.place(streams)

        groups: list[list[FrameStream]] = [[] for _ in self.backends]
        for stream, index in zip(streams, placement):
            groups[index].append(stream)

        outcomes = [
            coster.serve(group, scheduler=self.scheduler, quality=self.quality)
            for coster, group in zip(self.costers, groups)
        ]
        makespan = max(o.makespan_s for o in outcomes)

        shards = tuple(
            BackendShard(
                label=label,
                report=EngineReport.from_serve(
                    backend.name, group, outcome, backend.cache_info()
                ),
                utilization=outcome.busy_s / makespan if makespan > 0 else 0.0,
            )
            for label, backend, group, outcome in zip(
                self.labels, self.backends, groups, outcomes
            )
        )
        return ClusterReport(
            policy=self.policy.name,
            scheduler=self.scheduler.name,
            shards=shards,
            placement=tuple(
                (stream.name, self.labels[index])
                for stream, index in zip(streams, placement)
            ),
            total_frames=sum(o.total_frames for o in outcomes),
            makespan_s=makespan,
        )
