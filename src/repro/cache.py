"""Small bounded LRU cache for memoized model evaluations.

Scheduling a network on an accelerator model is expensive (the DCO
optimizer searches tiling schedules per layer), so results are
memoized per ``(network, mode, size)``.  A production stream server
touches an open-ended set of such keys — many resolutions, modes and
networks over its lifetime — so the memo must be *bounded*: this LRU
evicts the least-recently-used entry once ``maxsize`` is reached and
reports hit/miss statistics so the serving pipeline can surface its
cache efficiency.

The cache is thread-safe: a stream server fans frame requests out
across worker threads, so every public operation runs under one
re-entrant lock and hit/miss counts stay consistent.
:meth:`LRUCache.get_or_create` additionally guarantees the factory
for a given key runs at most once however many threads race on it —
without serializing unrelated work: the winner computes *outside*
the lock while the losers wait on a per-key event, and misses on
different keys compute concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, NamedTuple

__all__ = ["CacheInfo", "LRUCache"]


class CacheInfo(NamedTuple):
    """Statistics snapshot (same shape as ``functools.lru_cache``'s)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    All operations hold an internal :class:`threading.RLock`; the lock
    is re-entrant so a :meth:`get_or_create` factory may itself read
    from the same cache (nested memoized lookups) without deadlocking.
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.RLock()
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        #: keys whose factory is in flight -> event the losers wait on
        self._pending: dict[Hashable, threading.Event] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits += 1
                return self._data[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, computing and inserting it on a miss.

        Concurrent callers of the same key never compute it twice:
        exactly one thread (the first to miss) runs the factory —
        *outside* the cache lock, so misses on other keys and all
        hits proceed concurrently — while the losers wait on a
        per-key event and then hit the inserted value.  If the
        factory raises, the waiters wake and race to become the next
        owner.
        """
        while True:
            with self._lock:
                if key in self._data:
                    self._data.move_to_end(key)
                    self._hits += 1
                    return self._data[key]
                in_flight = self._pending.get(key)
                if in_flight is None:
                    self._pending[key] = threading.Event()
                    self._misses += 1
                    break  # this thread owns the computation
            in_flight.wait()
            # the owner finished (or failed); re-check from the top
        try:
            value = factory()
        except BaseException:
            with self._lock:
                self._pending.pop(key).set()
            raise
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
            self._pending.pop(key).set()
        return value

    def cache_info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self._hits, self._misses, self.maxsize, len(self._data))

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0
