"""Small bounded LRU cache for memoized model evaluations.

Scheduling a network on an accelerator model is expensive (the DCO
optimizer searches tiling schedules per layer), so results are
memoized per ``(network, mode, size)``.  A production stream server
touches an open-ended set of such keys — many resolutions, modes and
networks over its lifetime — so the memo must be *bounded*: this LRU
evicts the least-recently-used entry once ``maxsize`` is reached and
reports hit/miss statistics so the serving pipeline can surface its
cache efficiency.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, NamedTuple

__all__ = ["CacheInfo", "LRUCache"]


class CacheInfo(NamedTuple):
    """Statistics snapshot (same shape as ``functools.lru_cache``'s)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A bounded mapping with least-recently-used eviction."""

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        if key in self._data:
            self._data.move_to_end(key)
            self._hits += 1
            return self._data[key]
        self._misses += 1
        return default

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, computing and inserting it on a miss."""
        if key in self._data:
            self._data.move_to_end(key)
            self._hits += 1
            return self._data[key]
        self._misses += 1
        value = factory()
        self.put(key, value)
        return value

    def cache_info(self) -> CacheInfo:
        return CacheInfo(self._hits, self._misses, self.maxsize, len(self._data))

    def clear(self) -> None:
        self._data.clear()
        self._hits = 0
        self._misses = 0
