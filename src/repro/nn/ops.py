"""Functional neural-network operations on numpy arrays.

These are the *numeric* building blocks of the reproduction.  They are
deliberately written for clarity and correctness rather than raw speed:
the performance results of the paper come from the analytic hardware
models in :mod:`repro.hw`, while these ops provide ground truth for the
deconvolution-transformation equivalence proofs and power the runnable
examples.

Array conventions
-----------------
* 2-D feature maps are ``(C, H, W)``; 2-D kernels are ``(F, C, KH, KW)``.
* 3-D feature maps are ``(C, D, H, W)``; 3-D kernels are
  ``(F, C, KD, KH, KW)``.
* "Convolution" follows the deep-learning convention, i.e. it is a
  cross-correlation (no kernel flip).  The paper uses the same
  convention (Fig. 6: ``ofmap(1,1) = A*e``).

Deconvolution semantics
-----------------------
``deconv(x, k, stride=s, padding=p)`` is defined exactly as the paper
defines it: the input is zero-stuffed by the stride (``s - 1`` zeros
between neighbouring elements), padded with a border of ``K - 1 - p``
zeros, and then convolved (stride 1, valid).  The output size per
spatial dim is ``(N - 1) * s - 2p + K + output_padding``, matching the
usual transposed-convolution shape formula.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "conv_output_size",
    "deconv_output_size",
    "pad_spatial",
    "conv2d",
    "conv3d",
    "convnd",
    "upsample_zero",
    "deconv2d",
    "deconv3d",
    "deconvnd",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "batchnorm",
    "correlation2d",
    "avg_pool2d",
]


def _tuplify(value, n: int) -> tuple[int, ...]:
    """Broadcast an int (or short sequence) to an ``n``-tuple of ints."""
    if np.isscalar(value):
        return (int(value),) * n
    value = tuple(int(v) for v in value)
    if len(value) != n:
        raise ValueError(f"expected {n} values, got {value!r}")
    return value


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a strided convolution."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def deconv_output_size(
    size: int, kernel: int, stride: int, padding: int, output_padding: int = 0
) -> int:
    """Spatial output size of a transposed convolution."""
    out = (size - 1) * stride - 2 * padding + kernel + output_padding
    if out <= 0:
        raise ValueError(
            f"deconvolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def pad_spatial(x: np.ndarray, pads: tuple[tuple[int, int], ...]) -> np.ndarray:
    """Zero-pad the trailing ``len(pads)`` (spatial) axes of ``x``."""
    n_lead = x.ndim - len(pads)
    full = ((0, 0),) * n_lead + tuple(pads)
    if all(lo == 0 and hi == 0 for lo, hi in pads):
        return x
    return np.pad(x, full)


def convnd(x: np.ndarray, w: np.ndarray, stride=1, padding=0) -> np.ndarray:
    """N-dimensional convolution (cross-correlation).

    ``x`` is ``(C, *spatial)`` and ``w`` is ``(F, C, *kernel)``; the
    number of spatial dims is inferred from ``w``.
    """
    ndim = w.ndim - 2
    if x.ndim != ndim + 1:
        raise ValueError(f"input has {x.ndim - 1} spatial dims, kernel has {ndim}")
    if x.shape[0] != w.shape[1]:
        raise ValueError(f"channel mismatch: input {x.shape[0]}, kernel {w.shape[1]}")
    strides = _tuplify(stride, ndim)
    pads = _tuplify(padding, ndim)

    x = pad_spatial(x, tuple((p, p) for p in pads))
    kshape = w.shape[2:]
    for size, k in zip(x.shape[1:], kshape):
        if size < k:
            raise ValueError(f"kernel {kshape} larger than padded input {x.shape[1:]}")
    # windows: (C, *out_full, *kernel)
    windows = sliding_window_view(x, kshape, axis=tuple(range(1, ndim + 1)))
    slicer = (slice(None),) + tuple(slice(None, None, s) for s in strides)
    windows = windows[slicer]
    # contract channel + kernel dims: out[f, *o] = sum_{c,k} win[c, *o, *k] w[f, c, *k]
    w_axes = [1] + list(range(2, ndim + 2))
    win_axes = [0] + list(range(ndim + 1, 2 * ndim + 1))
    return np.tensordot(w, windows, axes=(w_axes, win_axes))


def conv2d(x: np.ndarray, w: np.ndarray, stride=1, padding=0) -> np.ndarray:
    """2-D convolution of ``(C, H, W)`` with ``(F, C, KH, KW)``."""
    return convnd(x, w, stride=stride, padding=padding)


def conv3d(x: np.ndarray, w: np.ndarray, stride=1, padding=0) -> np.ndarray:
    """3-D convolution of ``(C, D, H, W)`` with ``(F, C, KD, KH, KW)``."""
    return convnd(x, w, stride=stride, padding=padding)


def upsample_zero(x: np.ndarray, stride, border, ndim: int | None = None) -> np.ndarray:
    """Zero-stuff spatial axes by ``stride`` and add a zero ``border``.

    This is the "upsample with zero padding" step of standard
    deconvolution in the paper's Fig. 6: between every two neighbouring
    input elements ``stride - 1`` zeros are inserted, and each spatial
    side is padded with ``border`` zeros.  ``border`` may be an int, a
    per-dim int sequence, or a per-dim ``(lo, hi)`` sequence.
    """
    if ndim is None:
        ndim = x.ndim - 1
    strides = _tuplify(stride, ndim)
    if np.isscalar(border):
        borders = (((int(border),) * 2),) * ndim
    else:
        borders = tuple(
            (int(b), int(b)) if np.isscalar(b) else (int(b[0]), int(b[1]))
            for b in border
        )
    spatial = x.shape[x.ndim - ndim :]
    stuffed_shape = x.shape[: x.ndim - ndim] + tuple(
        (n - 1) * s + 1 for n, s in zip(spatial, strides)
    )
    out = np.zeros(stuffed_shape, dtype=x.dtype)
    slicer = (slice(None),) * (x.ndim - ndim) + tuple(
        slice(None, None, s) for s in strides
    )
    out[slicer] = x
    return pad_spatial(out, borders)


def deconvnd(
    x: np.ndarray, w: np.ndarray, stride=1, padding=0, output_padding=0
) -> np.ndarray:
    """Reference N-D transposed convolution via explicit zero-stuffing.

    This is the *standard deconvolution* path of the paper (Fig. 6,
    left): upsample with zero padding, then run a dense stride-1
    convolution.  It is intentionally naive — the whole point of the
    paper's Sec. 4.1 is that ~75 % (2-D) / ~87.5 % (3-D) of the MACs
    executed here touch a stuffed zero.  The optimized equivalent lives
    in :func:`repro.deconv.transform.deconv_via_subconvolutions`.
    """
    ndim = w.ndim - 2
    strides = _tuplify(stride, ndim)
    pads = _tuplify(padding, ndim)
    out_pads = _tuplify(output_padding, ndim)
    kshape = w.shape[2:]
    for k, p, op, s in zip(kshape, pads, out_pads, strides):
        if k - 1 - p < 0:
            raise ValueError(f"padding {p} exceeds kernel-1 ({k - 1})")
        if op >= s:
            raise ValueError(f"output_padding {op} must be < stride {s}")
    borders = tuple(
        (k - 1 - p, k - 1 - p + op)
        for k, p, op in zip(kshape, pads, out_pads)
    )
    up = upsample_zero(x, strides, borders, ndim=ndim)
    return convnd(up, w, stride=1, padding=0)


def deconv2d(
    x: np.ndarray, w: np.ndarray, stride=1, padding=0, output_padding=0
) -> np.ndarray:
    """2-D transposed convolution of ``(C, H, W)`` with ``(F, C, KH, KW)``."""
    return deconvnd(x, w, stride=stride, padding=padding, output_padding=output_padding)


def deconv3d(
    x: np.ndarray, w: np.ndarray, stride=1, padding=0, output_padding=0
) -> np.ndarray:
    """3-D transposed convolution of ``(C, D, H, W)``."""
    return deconvnd(x, w, stride=stride, padding=padding, output_padding=output_padding)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.1) -> np.ndarray:
    """Leaky ReLU (FlowNet/DispNet use slope 0.1)."""
    return np.where(x >= 0, x, negative_slope * x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid."""
    return 1.0 / (1.0 + np.exp(-x))


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def batchnorm(
    x: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch normalisation over the channel axis."""
    shape = (x.shape[0],) + (1,) * (x.ndim - 1)
    out = (x - mean.reshape(shape)) / np.sqrt(var.reshape(shape) + eps)
    if gamma is not None:
        out = out * gamma.reshape(shape)
    if beta is not None:
        out = out + beta.reshape(shape)
    return out


def correlation2d(
    left: np.ndarray, right: np.ndarray, max_displacement: int, stride: int = 1
) -> np.ndarray:
    """FlowNetC-style correlation layer restricted to horizontal shifts.

    For stereo matching only horizontal displacements matter (epipolar
    geometry), so the output has one channel per displacement
    ``d in [0, max_displacement]``; channel ``d`` holds the mean dot
    product of the two feature vectors at horizontal offset ``d``.
    """
    if left.shape != right.shape:
        raise ValueError("left/right feature maps must share a shape")
    c, h, w = left.shape
    n_disp = max_displacement // stride + 1
    out = np.zeros((n_disp, h, w), dtype=np.result_type(left, right, np.float32))
    for idx in range(n_disp):
        d = idx * stride
        if d == 0:
            out[idx] = (left * right).mean(axis=0)
        else:
            out[idx, :, d:] = (left[:, :, d:] * right[:, :, :-d]).mean(axis=0)
    return out


def avg_pool2d(x: np.ndarray, size: int, stride: int | None = None) -> np.ndarray:
    """Average pooling over a ``(C, H, W)`` map."""
    stride = size if stride is None else stride
    windows = sliding_window_view(x, (size, size), axis=(1, 2))
    return windows[:, ::stride, ::stride].mean(axis=(-1, -2))
