"""Runnable layer objects for small numpy networks.

The model zoo in :mod:`repro.models` describes the four stereo DNNs as
:class:`~repro.nn.workload.ConvSpec` tables (geometry only).  The layer
classes here additionally carry weights and a ``forward`` so that
examples and tests can execute small end-to-end networks — in
particular the numeric verification that a transformed deconvolution
network computes exactly what the original did.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn import ops
from repro.nn.workload import ConvSpec, Stage

__all__ = [
    "Layer",
    "Conv",
    "Deconv",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "BatchNorm",
]


class Layer:
    """Base class: a callable with shape inference."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape of ``forward``'s result for an input of ``input_shape``."""
        return input_shape

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


def _he_init(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    fan_in = math.prod(shape[1:])
    return rng.normal(0.0, math.sqrt(2.0 / fan_in), size=shape).astype(np.float64)


class Conv(Layer):
    """N-D convolution layer with owned weights.

    ``weight`` has shape ``(out_channels, in_channels, *kernel)``.
    """

    deconv = False

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel,
        stride=1,
        padding=0,
        *,
        name: str = "conv",
        stage: str = Stage.FE,
        weight: np.ndarray | None = None,
        bias: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ):
        kernel = (kernel,) * 2 if isinstance(kernel, int) else tuple(kernel)
        ndim = len(kernel)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = (stride,) * ndim if isinstance(stride, int) else tuple(stride)
        self.padding = (padding,) * ndim if isinstance(padding, int) else tuple(padding)
        self.name = name
        self.stage = stage
        if weight is None:
            rng = rng or np.random.default_rng(0)
            weight = _he_init(rng, (out_channels, in_channels) + kernel)
        expected = (out_channels, in_channels) + kernel
        if weight.shape != expected:
            raise ValueError(f"{name}: weight shape {weight.shape} != {expected}")
        self.weight = weight
        self.bias = bias

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = ops.convnd(x, self.weight, stride=self.stride, padding=self.padding)
        if self.bias is not None:
            out += self.bias.reshape((-1,) + (1,) * (out.ndim - 1))
        return out

    def output_shape(self, input_shape):
        c, *spatial = input_shape
        if c != self.in_channels:
            raise ValueError(f"{self.name}: got {c} channels, expected {self.in_channels}")
        out_spatial = tuple(
            ops.conv_output_size(n, k, s, p)
            for n, k, s, p in zip(spatial, self.kernel, self.stride, self.padding)
        )
        return (self.out_channels,) + out_spatial

    def spec(self, input_size) -> ConvSpec:
        """Geometry descriptor for the scheduling/hardware models."""
        return ConvSpec(
            name=self.name,
            in_channels=self.in_channels,
            out_channels=self.out_channels,
            kernel=self.kernel,
            input_size=tuple(input_size),
            stride=self.stride,
            padding=self.padding,
            deconv=self.deconv,
            stage=self.stage,
        )


class Deconv(Conv):
    """N-D transposed-convolution layer (paper semantics, see ops)."""

    deconv = True

    def __init__(self, *args, output_padding=0, **kwargs):
        kwargs.setdefault("stage", Stage.DR)
        super().__init__(*args, **kwargs)
        self.output_padding = (
            (output_padding,) * len(self.kernel)
            if isinstance(output_padding, int)
            else tuple(output_padding)
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = ops.deconvnd(
            x,
            self.weight,
            stride=self.stride,
            padding=self.padding,
            output_padding=self.output_padding,
        )
        if self.bias is not None:
            out += self.bias.reshape((-1,) + (1,) * (out.ndim - 1))
        return out

    def output_shape(self, input_shape):
        c, *spatial = input_shape
        if c != self.in_channels:
            raise ValueError(f"{self.name}: got {c} channels, expected {self.in_channels}")
        out_spatial = tuple(
            ops.deconv_output_size(n, k, s, p, op)
            for n, k, s, p, op in zip(
                spatial, self.kernel, self.stride, self.padding, self.output_padding
            )
        )
        return (self.out_channels,) + out_spatial


class ReLU(Layer):
    """Rectified linear unit."""

    def forward(self, x):
        return ops.relu(x)


class LeakyReLU(Layer):
    """Leaky ReLU with configurable slope."""

    def __init__(self, negative_slope: float = 0.1):
        self.negative_slope = negative_slope

    def forward(self, x):
        return ops.leaky_relu(x, self.negative_slope)


class Sigmoid(Layer):
    """Logistic sigmoid."""

    def forward(self, x):
        return ops.sigmoid(x)


class Tanh(Layer):
    """Hyperbolic tangent."""

    def forward(self, x):
        return ops.tanh(x)


class BatchNorm(Layer):
    """Inference-mode batch normalisation with owned statistics."""

    def __init__(self, channels: int, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.channels = channels
        self.mean = np.zeros(channels)
        self.var = np.ones(channels)
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)

    def forward(self, x):
        if x.shape[0] != self.channels:
            raise ValueError(f"BatchNorm expected {self.channels} channels, got {x.shape[0]}")
        return ops.batchnorm(x, self.mean, self.var, self.gamma, self.beta)
