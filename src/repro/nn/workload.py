"""Layer workload descriptors.

The performance side of the reproduction never executes real networks —
exactly like the paper, which schedules *layer shapes* onto an analytic
accelerator model.  :class:`ConvSpec` is that shape description.  It is
shared by the model zoo (:mod:`repro.models`), the deconvolution
optimizer (:mod:`repro.deconv`) and the hardware models
(:mod:`repro.hw`).

Stage tags follow the paper's Sec. 2.2 pipeline decomposition:

* ``FE`` — feature extraction (convolution),
* ``MO`` — matching optimization (convolution / correlation),
* ``DR`` — disparity refinement (deconvolution),
* ``OTHER`` — everything else (activations, arg-max, …).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.nn.ops import conv_output_size, deconv_output_size

__all__ = ["Stage", "ConvSpec", "total_macs", "macs_by_stage"]


class Stage:
    """Pipeline-stage tags used across the reproduction."""

    FE = "FE"
    MO = "MO"
    DR = "DR"
    OTHER = "OTHER"
    ALL = (FE, MO, DR, OTHER)


def _as_tuple(value, ndim: int) -> tuple[int, ...]:
    if isinstance(value, int):
        return (value,) * ndim
    return tuple(int(v) for v in value)


@dataclass(frozen=True)
class ConvSpec:
    """Geometry of one convolution or deconvolution layer.

    Spatial tuples may be 1-, 2- or 3-dimensional; 3-D entries describe
    the cost-volume layers of GC-Net / PSMNet.
    """

    name: str
    in_channels: int
    out_channels: int
    kernel: tuple[int, ...]
    input_size: tuple[int, ...]
    stride: tuple[int, ...] = (1, 1)
    padding: tuple[int, ...] = (0, 0)
    deconv: bool = False
    stage: str = Stage.FE
    repeat: int = 1

    def __post_init__(self):
        ndim = len(self.kernel)
        object.__setattr__(self, "kernel", _as_tuple(self.kernel, ndim))
        object.__setattr__(self, "input_size", _as_tuple(self.input_size, ndim))
        object.__setattr__(self, "stride", _as_tuple(self.stride, ndim))
        object.__setattr__(self, "padding", _as_tuple(self.padding, ndim))
        if not (len(self.input_size) == len(self.stride) == len(self.padding) == ndim):
            raise ValueError(f"{self.name}: inconsistent spatial ranks")
        if self.stage not in Stage.ALL:
            raise ValueError(f"{self.name}: unknown stage {self.stage!r}")
        if min(self.kernel) < 1 or min(self.stride) < 1:
            raise ValueError(f"{self.name}: kernel/stride must be positive")
        if self.in_channels < 1 or self.out_channels < 1 or self.repeat < 1:
            raise ValueError(f"{self.name}: channels/repeat must be positive")

    # ------------------------------------------------------------------
    # shapes
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of spatial dimensions (2 for images, 3 for cost volumes)."""
        return len(self.kernel)

    @property
    def output_size(self) -> tuple[int, ...]:
        """Spatial output size."""
        if self.deconv:
            return tuple(
                deconv_output_size(n, k, s, p)
                for n, k, s, p in zip(
                    self.input_size, self.kernel, self.stride, self.padding
                )
            )
        return tuple(
            conv_output_size(n, k, s, p)
            for n, k, s, p in zip(self.input_size, self.kernel, self.stride, self.padding)
        )

    @property
    def upsampled_size(self) -> tuple[int, ...]:
        """Size of the zero-stuffed map a naive deconvolution convolves over."""
        if not self.deconv:
            return self.input_size
        return tuple(
            (n - 1) * s + 1 + 2 * (k - 1 - p)
            for n, k, s, p in zip(self.input_size, self.kernel, self.stride, self.padding)
        )

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------
    @property
    def params(self) -> int:
        """Weight count (no bias)."""
        return self.in_channels * self.out_channels * math.prod(self.kernel) * self.repeat

    @property
    def macs(self) -> int:
        """MACs executed by a *dense* mapping of this layer.

        For a deconvolution this is the naive count over the
        zero-stuffed input — the baseline every DNN accelerator without
        deconvolution support pays, and the quantity Fig. 3 plots.
        """
        dense = (
            math.prod(self.output_size)
            * self.out_channels
            * self.in_channels
            * math.prod(self.kernel)
        )
        return dense * self.repeat

    @property
    def macs_effective(self) -> int:
        """MACs that touch at least one non-zero operand.

        Equal to :attr:`macs` for convolutions.  For a stride-``s``
        deconvolution only ~``1/prod(s)`` of the dense MACs are
        non-trivial; this is exactly the count executed after the
        paper's deconvolution-to-convolution transformation.
        """
        if not self.deconv:
            return self.macs
        return self._exact_subconv_macs() * self.repeat

    def _exact_subconv_macs(self) -> int:
        """Exact MAC count of the transformed (dense) sub-convolutions."""
        from itertools import product as iproduct

        out = self.output_size
        total = 0
        for parity in iproduct(*(range(s) for s in self.stride)):
            sub_kernel = []
            n_outputs = []
            for delta, k, s, p, o in zip(
                parity, self.kernel, self.stride, self.padding, out
            ):
                size = len(range(delta, k, s))
                if size == 0:
                    break
                sub_kernel.append(size)
                border = k - 1 - p
                r = (border - delta) % s
                n_outputs.append(math.ceil((o - r) / s) if o > r else 0)
            else:
                total += (
                    math.prod(sub_kernel)
                    * math.prod(n_outputs)
                    * self.in_channels
                    * self.out_channels
                )
        return total

    @property
    def ifmap_elems(self) -> int:
        """Input activation element count."""
        return self.in_channels * math.prod(self.input_size) * self.repeat

    @property
    def ofmap_elems(self) -> int:
        """Output activation element count."""
        return self.out_channels * math.prod(self.output_size) * self.repeat

    def scaled(self, **updates) -> "ConvSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **updates)


def total_macs(specs, effective: bool = False) -> int:
    """Sum dense (or transformed-effective) MACs over a layer table."""
    if effective:
        return sum(s.macs_effective for s in specs)
    return sum(s.macs for s in specs)


def macs_by_stage(specs) -> dict[str, int]:
    """Dense MACs per pipeline stage, for the Fig. 3 distribution."""
    out = {stage: 0 for stage in Stage.ALL}
    for s in specs:
        out[s.stage] += s.macs
    return out
