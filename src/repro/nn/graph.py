"""A small DAG network container with skip connections.

:class:`~repro.nn.network.Sequential` covers the cost-model use cases;
the encoder–decoder stereo networks additionally concatenate encoder
activations into the decoder (skip connections).  :class:`Graph` makes
such networks *runnable*: nodes are named, each consumes one or more
named inputs, and multi-input nodes concatenate along the channel axis
— enough to execute a miniature DispNet end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Conv, Layer

__all__ = ["Node", "Graph"]


@dataclass(frozen=True)
class Node:
    """One graph node: a layer applied to named inputs."""

    name: str
    layer: Layer
    inputs: tuple[str, ...]


class Graph:
    """A feed-forward DAG of named layers.

    Nodes execute in insertion order; every node's inputs must already
    be produced (topological insertion is the caller's contract and is
    validated).  Multi-input nodes concatenate along axis 0 (channels).
    """

    INPUT = "input"

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: list[Node] = []
        self._names = {self.INPUT}

    def add(self, name: str, layer: Layer, inputs=("input",)) -> "Graph":
        """Append a node; ``inputs`` name earlier nodes (or 'input')."""
        if name in self._names:
            raise ValueError(f"duplicate node name {name!r}")
        inputs = (inputs,) if isinstance(inputs, str) else tuple(inputs)
        for src in inputs:
            if src not in self._names:
                raise ValueError(f"node {name!r} consumes unknown input {src!r}")
        self.nodes.append(Node(name, layer, inputs))
        self._names.add(name)
        return self

    def forward(self, x: np.ndarray, return_all: bool = False):
        """Execute the graph; returns the last node's output."""
        values: dict[str, np.ndarray] = {self.INPUT: x}
        for node in self.nodes:
            tensors = [values[src] for src in node.inputs]
            if len(tensors) == 1:
                inp = tensors[0]
            else:
                spatial = tensors[0].shape[1:]
                for t in tensors[1:]:
                    if t.shape[1:] != spatial:
                        raise ValueError(
                            f"{node.name}: cannot concatenate spatial shapes "
                            f"{[t.shape for t in tensors]}"
                        )
                inp = np.concatenate(tensors, axis=0)
            values[node.name] = node.layer.forward(inp)
        if return_all:
            return values
        return values[self.nodes[-1].name]

    __call__ = forward

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Propagate shapes through the DAG."""
        shapes = {self.INPUT: tuple(input_shape)}
        for node in self.nodes:
            ins = [shapes[src] for src in node.inputs]
            if len(ins) == 1:
                shape = ins[0]
            else:
                spatial = ins[0][1:]
                for s in ins[1:]:
                    if s[1:] != spatial:
                        raise ValueError(f"{node.name}: spatial mismatch {ins}")
                shape = (sum(s[0] for s in ins),) + spatial
            shapes[node.name] = node.layer.output_shape(shape)
        return shapes[self.nodes[-1].name]

    def conv_specs(self, input_shape: tuple[int, ...]):
        """ConvSpec geometry of every (de)convolution node."""
        shapes = {self.INPUT: tuple(input_shape)}
        specs = []
        for node in self.nodes:
            ins = [shapes[src] for src in node.inputs]
            if len(ins) == 1:
                shape = ins[0]
            else:
                shape = (sum(s[0] for s in ins),) + ins[0][1:]
            if isinstance(node.layer, Conv):
                specs.append(node.layer.spec(shape[1:]))
            shapes[node.name] = node.layer.output_shape(shape)
        return specs
