"""A small sequential network container with shape and MAC accounting."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv, Layer
from repro.nn.workload import ConvSpec

__all__ = ["Sequential"]


class Sequential:
    """Ordered list of layers executed one after another.

    Skip connections in the real stereo networks are irrelevant to the
    reproduction's cost models (they only define layer *input shapes*,
    which the model zoo pins explicitly), so a sequential container is
    all the runnable examples need.
    """

    def __init__(self, layers: list[Layer], name: str = "net"):
        self.layers = list(layers)
        self.name = name

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run all layers in order."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    __call__ = forward

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Propagate a ``(C, *spatial)`` shape through every layer."""
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def conv_specs(self, input_shape: tuple[int, ...]) -> list[ConvSpec]:
        """Geometry of every (de)convolution layer, for the cost models."""
        shape = tuple(input_shape)
        specs = []
        for layer in self.layers:
            if isinstance(layer, Conv):
                specs.append(layer.spec(shape[1:]))
            shape = layer.output_shape(shape)
        return specs

    def summary(self, input_shape: tuple[int, ...]) -> str:
        """Human-readable per-layer table."""
        shape = tuple(input_shape)
        rows = [f"{self.name}: input {shape}"]
        for layer in self.layers:
            out = layer.output_shape(shape)
            label = getattr(layer, "name", type(layer).__name__)
            if isinstance(layer, Conv):
                spec = layer.spec(shape[1:])
                rows.append(
                    f"  {label:<16} {shape!s:>20} -> {out!s:<20} "
                    f"k={spec.kernel} s={spec.stride} MACs={spec.macs:,}"
                )
            else:
                rows.append(f"  {label:<16} {shape!s:>20} -> {out!s:<20}")
            shape = out
        return "\n".join(rows)
