"""Minimal numpy neural-network framework.

Provides the numeric (de)convolution ops used to verify the paper's
deconvolution transformation, runnable layer/network containers for the
examples, and the :class:`~repro.nn.workload.ConvSpec` geometry
descriptor consumed by the scheduling and hardware models.
"""

from repro.nn.layers import (
    BatchNorm,
    Conv,
    Deconv,
    Layer,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.graph import Graph, Node
from repro.nn.network import Sequential
from repro.nn.ops import (
    avg_pool2d,
    batchnorm,
    conv2d,
    conv3d,
    conv_output_size,
    convnd,
    correlation2d,
    deconv2d,
    deconv3d,
    deconv_output_size,
    deconvnd,
    leaky_relu,
    relu,
    sigmoid,
    tanh,
    upsample_zero,
)
from repro.nn.workload import ConvSpec, Stage, macs_by_stage, total_macs

__all__ = [
    "BatchNorm",
    "Conv",
    "ConvSpec",
    "Deconv",
    "Graph",
    "Node",
    "Layer",
    "LeakyReLU",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Stage",
    "Tanh",
    "avg_pool2d",
    "batchnorm",
    "conv2d",
    "conv3d",
    "conv_output_size",
    "convnd",
    "correlation2d",
    "deconv2d",
    "deconv3d",
    "deconv_output_size",
    "deconvnd",
    "leaky_relu",
    "macs_by_stage",
    "relu",
    "sigmoid",
    "tanh",
    "total_macs",
    "upsample_zero",
]
