"""Streaming multi-camera frame pipeline.

Production-shaped serving on top of the execution-backend layer::

    from repro.pipeline import StreamEngine, kitti_stream, sceneflow_stream

    engine = StreamEngine("systolic", scheduler="edf")
    report = engine.run([
        kitti_stream(seed=1, network="DispNet", deadline_s=1 / 30.0),
        sceneflow_stream(seed=2, network="FlowNetC", deadline_s=1 / 30.0),
    ])
    print(report.aggregate_fps, report.worst_p99_ms,
          report.deadline_miss_rate)

* :class:`FrameStream` — one camera stream (geometry, rate, network,
  mode, key-frame policy, per-frame deadline, priority), with
  factories over every procedural dataset;
* :class:`FrameCoster` / :func:`plan_keys` — the per-frame cost model
  and key-frame planning shared by the single-backend engine and the
  multi-accelerator cluster layer (:mod:`repro.cluster`);
* :class:`FrameScheduler` and the scheduler registry
  (:func:`get_scheduler` / :func:`register_scheduler`) — pluggable
  service disciplines: ``fifo`` (default), ``edf``, ``priority``,
  and the load-shedding ``shed``;
* :class:`StreamEngine` — discrete-event scheduling of key and
  non-key frames across N concurrent streams on one backend;
* :class:`QualityProbe` / :class:`StreamQuality` — depth accuracy of
  a served run, scored by replaying the engine's per-frame decisions
  (key / non-key / drop) through the *real* stereo pipeline on the
  procedural datasets' exact ground truth;
* :class:`EngineReport` / :class:`StreamStats` — p50/p95/p99 frame
  latency per stream, queue-wait attribution, deadline-miss / drop
  rates, worst-case lateness, aggregate fps, backend utilization,
  streams sustainable at a target rate, result-cache hit statistics,
  and (on probed runs) bad-pixel rate / end-point error.

The serving guide lives in ``docs/serving.md``; the scheduler guide
in ``docs/scheduling.md``; the quality guide in ``docs/quality.md``.
"""

from repro.pipeline.costing import (
    MODE_FALLBACK,
    FrameCoster,
    ServeOutcome,
    plan_keys,
)
from repro.pipeline.engine import StreamEngine
from repro.pipeline.quality import (
    FrameQuality,
    QualityProbe,
    StreamQuality,
    available_matchers,
)
from repro.pipeline.report import (
    EngineReport,
    StreamStats,
    format_backend_comparison,
    format_quality_report,
    format_report,
)
from repro.pipeline.schedulers import (
    EdfScheduler,
    FifoScheduler,
    FrameJob,
    FrameScheduler,
    PriorityScheduler,
    ShedScheduler,
    available_schedulers,
    get_scheduler,
    register_scheduler,
)
from repro.pipeline.stream import (
    FrameStream,
    kitti_stream,
    sceneflow_stream,
    stress_stream,
)

__all__ = [
    "EdfScheduler",
    "EngineReport",
    "FifoScheduler",
    "FrameCoster",
    "FrameJob",
    "FrameQuality",
    "FrameScheduler",
    "FrameStream",
    "MODE_FALLBACK",
    "PriorityScheduler",
    "QualityProbe",
    "ServeOutcome",
    "ShedScheduler",
    "StreamEngine",
    "StreamQuality",
    "StreamStats",
    "available_matchers",
    "available_schedulers",
    "format_backend_comparison",
    "format_quality_report",
    "format_report",
    "get_scheduler",
    "kitti_stream",
    "plan_keys",
    "register_scheduler",
    "sceneflow_stream",
    "stress_stream",
]
