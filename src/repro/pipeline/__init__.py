"""Streaming multi-camera frame pipeline.

Production-shaped serving on top of the execution-backend layer::

    from repro.pipeline import StreamEngine, kitti_stream, sceneflow_stream

    engine = StreamEngine("systolic")
    report = engine.run([
        kitti_stream(seed=1, network="DispNet"),
        sceneflow_stream(seed=2, network="FlowNetC"),
    ])
    print(report.aggregate_fps, report.worst_p99_ms)

* :class:`FrameStream` — one camera stream (geometry, rate, network,
  mode, key-frame policy), with factories over every procedural
  dataset;
* :class:`FrameCoster` / :func:`plan_keys` — the per-frame cost model
  and key-frame planning shared by the single-backend engine and the
  multi-accelerator cluster layer (:mod:`repro.cluster`);
* :class:`StreamEngine` — FIFO discrete-event scheduling of key and
  non-key frames across N concurrent streams on one backend;
* :class:`EngineReport` / :class:`StreamStats` — p50/p95/p99 frame
  latency per stream, aggregate fps, backend utilization, streams
  sustainable at a target rate, and result-cache hit statistics.

The full serving guide lives in ``docs/serving.md``.
"""

from repro.pipeline.costing import (
    MODE_FALLBACK,
    FrameCoster,
    ServeOutcome,
    plan_keys,
)
from repro.pipeline.engine import StreamEngine
from repro.pipeline.report import (
    EngineReport,
    StreamStats,
    format_backend_comparison,
    format_report,
)
from repro.pipeline.stream import (
    FrameStream,
    kitti_stream,
    sceneflow_stream,
    stress_stream,
)

__all__ = [
    "EngineReport",
    "FrameCoster",
    "FrameStream",
    "MODE_FALLBACK",
    "ServeOutcome",
    "StreamEngine",
    "StreamStats",
    "format_backend_comparison",
    "format_report",
    "kitti_stream",
    "plan_keys",
    "sceneflow_stream",
    "stress_stream",
]
