"""Reusable per-frame costing and the service-simulation entry point.

This module is the cost core that :class:`~repro.pipeline.engine.
StreamEngine` (one backend) and :class:`~repro.cluster.engine.
ClusterEngine` (a fleet of backends) share.  It answers three
questions about a :class:`~repro.pipeline.stream.FrameStream` on one
:class:`~repro.backends.base.ExecutionBackend`:

* *which frames are key frames?* — :func:`plan_keys` replays the
  stream's key-frame policy (see ``docs/serving.md``);
* *what does one frame cost?* — :meth:`FrameCoster.key_frame_seconds`
  and :meth:`FrameCoster.nonkey_frame_seconds`, with execution modes
  degraded along :data:`MODE_FALLBACK` to what the backend supports;
* *what happens when frames queue?* — :meth:`FrameCoster.serve`, the
  analytic discrete-event simulation, returning a
  :class:`ServeOutcome`.

The service discipline itself is pluggable: :meth:`FrameCoster.serve`
delegates the event loop to a :class:`~repro.pipeline.schedulers.
FrameScheduler` (``fifo`` by default, bit-exact with the historical
FIFO-only simulation; ``edf`` / ``priority`` / ``shed`` for
deadline-aware serving — see ``docs/scheduling.md``).

Because both engines route every frame through the same
:class:`FrameCoster`, a one-backend cluster reproduces the
single-backend engine *exactly* (this is regression-tested).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.backends.base import ExecutionBackend
from repro.pipeline.stream import FrameStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.pipeline.quality import QualityProbe, StreamQuality
    from repro.pipeline.schedulers import FrameScheduler

__all__ = ["MODE_FALLBACK", "FrameCoster", "ServeOutcome", "plan_keys"]

#: Mode degradation order: each entry falls back to the ones after it.
MODE_FALLBACK = ("ilar", "convr", "dct", "baseline")


def plan_keys(stream: FrameStream, supports_ism: bool = True) -> list[bool]:
    """Key/non-key decision for every frame of ``stream``.

    Replays a fresh instance of the stream's key-frame policy over the
    frame indices (policies are stateful, so the policy sees every
    frame even when frame 0 is forced key).  On a backend without ISM
    support every frame is a key frame.

    When a stateful policy says *non-key* for frame 0, the frame is
    still forced key (there is nothing to propagate from) and the
    policy is told through its optional ``sync_forced_key(index)``
    hook, so its internal last-key state matches the plan actually
    served.

    >>> from repro.pipeline import FrameStream
    >>> plan_keys(FrameStream("cam", n_frames=6, pw=3))
    [True, False, False, True, False, False]
    >>> plan_keys(FrameStream("cam", n_frames=3, pw=3), supports_ism=False)
    [True, True, True]
    """
    if not supports_ism:
        return [True] * stream.n_frames
    policy = stream.make_policy()
    context: dict = {}
    keys: list[bool] = []
    # always consult the policy so stateful (adaptive) policies see
    # every frame; frame 0 is forced key
    for i in range(stream.n_frames):
        is_key = bool(policy.is_key(i, context))
        if i == 0 and not is_key:
            is_key = True
            sync = getattr(policy, "sync_forced_key", None)
            if sync is not None:
                sync(0)
        keys.append(is_key)
    return keys


@dataclass(frozen=True)
class ServeOutcome:
    """Raw result of one service simulation.

    Engine layers wrap this into their user-facing reports
    (:class:`~repro.pipeline.report.EngineReport`,
    :class:`~repro.cluster.report.ClusterReport`).

    Counting conventions: ``total_frames`` counts frames actually
    *served*; frames removed by admission control appear only in
    ``dropped_frames``.  A dropped frame also counts as a deadline
    miss (it never completed), so ``missed_deadlines`` covers both
    late completions and drops.  ``worst_lateness_s`` tracks served
    frames only (a dropped frame has no completion time).  Every
    served frame satisfies ``latency == wait + service`` against the
    ``waits_s`` / ``services_s`` breakdown, up to float rounding
    (latencies keep the historical ``completion - arrival``
    arithmetic, bit-exact with the pre-scheduler FIFO simulation).

    >>> out = ServeOutcome(latencies_s=((0.01, 0.02),), key_counts=(1,),
    ...                    total_frames=2, makespan_s=0.5, busy_s=0.03)
    >>> out.aggregate_fps
    4.0
    >>> out.mean_service_s
    0.015
    >>> out.drop_rate, out.deadline_miss_rate
    (0.0, 0.0)
    """

    #: per-stream frame latencies (seconds), in stream order
    latencies_s: tuple[tuple[float, ...], ...]
    #: per-stream key-frame counts, in stream order
    key_counts: tuple[int, ...]
    total_frames: int
    makespan_s: float
    #: summed service time — the backend's busy time during the run
    busy_s: float
    #: per-stream per-frame queueing waits (seconds); latency = wait + service
    waits_s: tuple[tuple[float, ...], ...] = ()
    #: per-stream per-frame service times (seconds)
    services_s: tuple[tuple[float, ...], ...] = ()
    #: per-stream deadline misses (late completions + dropped frames)
    missed_deadlines: tuple[int, ...] = ()
    #: per-stream frames removed by admission control (never served)
    dropped_frames: tuple[int, ...] = ()
    #: per-stream worst completion lateness (seconds) over served frames
    worst_lateness_s: tuple[float, ...] = ()
    #: the discipline that produced this outcome
    scheduler: str = "fifo"
    #: per-stream frame-order record of what actually happened to each
    #: offered frame: ``"key"`` / ``"nonkey"`` (served) or ``"drop"``
    dispositions: tuple[tuple[str, ...], ...] = ()
    #: per-stream depth-quality samples (``None`` for unprobed
    #: streams); populated only when ``serve`` ran a ``quality=`` probe
    quality: "tuple[StreamQuality | None, ...]" = ()

    @property
    def aggregate_fps(self) -> float:
        """Frames served per second of makespan."""
        return self.total_frames / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def mean_service_s(self) -> float:
        """Mean per-frame service time (0.0 for an empty run)."""
        return self.busy_s / self.total_frames if self.total_frames else 0.0

    @property
    def offered_frames(self) -> int:
        """Frames that arrived: served plus dropped."""
        return self.total_frames + sum(self.dropped_frames)

    @property
    def drop_rate(self) -> float:
        """Dropped fraction of offered frames (0.0 for an empty run)."""
        offered = self.offered_frames
        return sum(self.dropped_frames) / offered if offered else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        """Missed fraction of offered frames (drops count as misses)."""
        offered = self.offered_frames
        return sum(self.missed_deadlines) / offered if offered else 0.0


class FrameCoster:
    """Per-frame service costs of camera streams on one backend.

    The cost model behind both serving engines: key frames pay the
    backend's memoized network schedule, non-key frames pay the ISM
    propagation pipeline, and requested execution modes degrade along
    :data:`MODE_FALLBACK` to the best mode the backend supports.

    >>> from repro.backends import get_backend
    >>> coster = FrameCoster(get_backend("gpu"))
    >>> coster.effective_mode("ilar")   # the GPU runs dense deconvs
    'baseline'
    """

    def __init__(self, backend: ExecutionBackend) -> None:
        self.backend = backend
        # non-key costs depend only on (size, ism config); memoize so
        # a long stream pays the analytic model once, like key frames
        self._nonkey_memo: dict = {}

    def effective_mode(self, requested: str) -> str:
        """Best supported mode at or below the requested level.

        >>> from repro.backends import get_backend
        >>> FrameCoster(get_backend("gpu")).effective_mode("dct")
        'baseline'
        """
        if requested not in MODE_FALLBACK:
            raise ValueError(
                f"unknown mode {requested!r}; choose from {MODE_FALLBACK}"
            )
        for mode in MODE_FALLBACK[MODE_FALLBACK.index(requested):]:
            if self.backend.supports_mode(mode):
                return mode
        return "baseline"

    def key_frame_seconds(self, stream: FrameStream) -> float:
        """Service time of one key frame (full DNN inference).

        >>> from repro.backends import get_backend
        >>> from repro.pipeline import FrameStream
        >>> coster = FrameCoster(get_backend("gpu"))
        >>> coster.key_frame_seconds(FrameStream("cam", size=(68, 120))) > 0
        True
        """
        result = self.backend.network_result(
            stream.network, self.effective_mode(stream.mode), stream.size
        )
        return self.backend.seconds(result)

    def nonkey_frame_seconds(self, stream: FrameStream) -> float:
        """Service time of one ISM non-key frame (propagation).

        >>> from repro.backends import get_backend
        >>> from repro.pipeline import FrameStream
        >>> coster = FrameCoster(get_backend("gpu"))
        >>> stream = FrameStream("cam", size=(68, 120))
        >>> 0 < coster.nonkey_frame_seconds(stream)
        True
        >>> coster.nonkey_frame_seconds(stream) < coster.key_frame_seconds(stream)
        True
        """
        key = (tuple(stream.size), stream.ism)
        if key not in self._nonkey_memo:
            result = self.backend.nonkey_frame(stream.size, stream.ism)
            self._nonkey_memo[key] = self.backend.seconds(result)
        return self._nonkey_memo[key]

    def frame_seconds(self, stream: FrameStream, is_key: bool) -> float:
        """Service time of one frame of ``stream``."""
        if is_key:
            return self.key_frame_seconds(stream)
        return self.nonkey_frame_seconds(stream)

    def stream_demand(
        self, stream: FrameStream, fps: float | None = None
    ) -> float:
        """Modeled utilization ``stream`` imposes on this backend.

        The expected busy seconds per wall-clock second: the stream's
        frame rate times the mean per-frame service time under its
        planned key/non-key schedule.  A demand of 1.0 saturates the
        backend on its own.  ``fps`` overrides the stream's own rate
        (the capacity planner plans at a target rate).

        >>> from repro.backends import get_backend
        >>> from repro.pipeline import FrameStream
        >>> coster = FrameCoster(get_backend("gpu"))
        >>> stream = FrameStream("cam", size=(68, 120), fps=30.0)
        >>> coster.stream_demand(stream, fps=60.0) == (
        ...     2 * coster.stream_demand(stream))
        True
        """
        keys = plan_keys(stream, self.backend.capabilities.supports_ism)
        total = sum(self.frame_seconds(stream, k) for k in keys)
        rate = stream.fps if fps is None else fps
        return rate * total / len(keys)

    def deadline_pressure(
        self, stream: FrameStream, fps: float | None = None
    ) -> float:
        """Scheduler-aware load: modeled demand scaled by urgency.

        :meth:`stream_demand` weights every stream the same second of
        busy time equally, but a stream whose per-frame deadline is
        tighter than its frame period leaves the scheduler no slack to
        absorb queueing — its load is harder to place.  The pressure
        is the demand times ``max(1, frame period / deadline)``; a
        stream without a deadline exerts plain demand.  Cluster
        placement can pack by this instead of raw busy time (the
        ``deadline-aware`` policy does).

        >>> from repro.backends import get_backend
        >>> from repro.pipeline import FrameStream
        >>> coster = FrameCoster(get_backend("gpu"))
        >>> loose = FrameStream("a", size=(68, 120), fps=30.0)
        >>> tight = FrameStream("b", size=(68, 120), fps=30.0,
        ...                     deadline_s=1 / 120.0)
        >>> coster.deadline_pressure(loose) == coster.stream_demand(loose)
        True
        >>> coster.deadline_pressure(tight) == (
        ...     4 * coster.stream_demand(tight))
        True
        """
        demand = self.stream_demand(stream, fps)
        if stream.deadline_s is None:
            return demand
        rate = stream.fps if fps is None else fps
        urgency = max(1.0, (1.0 / rate) / stream.deadline_s)
        return demand * urgency

    # ------------------------------------------------------------------
    # the service simulation
    # ------------------------------------------------------------------
    def serve(
        self,
        streams: list[FrameStream],
        scheduler: "str | FrameScheduler | None" = None,
        quality: "QualityProbe | None" = None,
    ) -> ServeOutcome:
        """Serve ``streams`` to completion on the backend.

        Every stream delivers frames at its camera rate; the backend
        is a single shared resource and ``scheduler`` — a registered
        name or a :class:`~repro.pipeline.schedulers.FrameScheduler`
        instance, ``fifo`` when omitted — decides which stream's frame
        it services next (see ``docs/scheduling.md``).  The simulation
        is analytic (arrival, queueing wait, service) — no wall clock,
        so runs are deterministic.  The run is recorded in the
        backend's lifetime :class:`~repro.backends.base.
        BackendOccupancy`.

        ``quality`` — a :class:`~repro.pipeline.quality.QualityProbe`
        — additionally runs the *real* stereo pipeline over (a sample
        of) the pixel-carrying streams, replaying the exact per-frame
        decisions this simulation made, and attaches the per-stream
        depth-accuracy scores to :attr:`ServeOutcome.quality` (see
        ``docs/quality.md``).

        >>> from repro.backends import get_backend
        >>> from repro.pipeline import FrameStream
        >>> coster = FrameCoster(get_backend("gpu"))
        >>> out = coster.serve([FrameStream("cam", size=(68, 120),
        ...                                 n_frames=4, mode="baseline")])
        >>> out.total_frames, len(out.latencies_s[0])
        (4, 4)
        >>> coster.serve([FrameStream("cam", size=(68, 120), n_frames=4,
        ...                           mode="baseline")], scheduler="edf"
        ...              ).scheduler
        'edf'
        """
        # local import: schedulers builds on plan_keys/ServeOutcome above
        from repro.pipeline.schedulers import get_scheduler

        if scheduler is None:
            scheduler = "fifo"
        if isinstance(scheduler, str):
            scheduler = get_scheduler(scheduler)
        outcome = scheduler.serve(streams, self)
        if streams:  # an idle shard's empty serve is not a run
            self.backend.occupancy.record_run(
                busy_s=outcome.busy_s,
                span_s=outcome.makespan_s,
                frames=outcome.total_frames,
            )
        if quality is not None:
            outcome = dataclasses.replace(
                outcome, quality=quality.score_streams(streams, outcome)
            )
        return outcome
