"""Camera frame streams: the unit of work the serving engine schedules.

A :class:`FrameStream` describes one camera feeding the system: frame
geometry and rate, which stereo DNN serves its key frames, the
requested execution mode, and the key-frame policy.  Pixel data is
optional and lazy — the cost model only needs the stream's geometry,
but factories over every procedural dataset (KITTI street scenes,
SceneFlow-style flying objects, the stress generators) attach a real
frame source so the same stream object can also drive accuracy
experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.core.ism import ISMConfig
from repro.core.keyframe import StaticKeyFramePolicy
from repro.datasets.kitti import kitti_pairs
from repro.datasets.sceneflow import sceneflow_scene
from repro.datasets.scenes import StereoFrame
from repro.datasets.stress import repetitive_scene, textureless_scene

__all__ = [
    "FrameStream",
    "kitti_stream",
    "sceneflow_stream",
    "stress_stream",
]


@dataclass
class FrameStream:
    """One camera stream to be served.

    ``policy_factory`` builds a fresh key-frame policy per engine run
    (policies are stateful); when omitted, the static PW-``pw`` policy
    is used.  ``frame_source`` is a zero-argument callable returning
    an iterable of :class:`StereoFrame`; cost-only streams leave it
    ``None``.

    Two attributes describe the stream's quality of service for
    deadline-aware schedulers (``docs/scheduling.md``):
    ``deadline_s`` is the per-frame latency budget relative to the
    frame's arrival (``None`` means no deadline), and ``priority``
    ranks the stream for the ``priority`` scheduler (higher is more
    important; the default 0 is neutral).

    >>> stream = FrameStream("cam", network="DispNet", pw=4, fps=30.0)
    >>> stream.has_pixels       # cost-only: geometry without pixels
    False
    >>> stream.make_policy()
    PW-4
    >>> stream.frame_deadline(3)  # no deadline_s set: never late
    inf
    >>> FrameStream("hud", fps=30.0, deadline_s=0.1).frame_deadline(3)
    0.2
    """

    name: str
    network: str = "DispNet"
    size: tuple[int, int] = (135, 240)
    n_frames: int = 30
    fps: float = 30.0
    mode: str = "ilar"
    pw: int = 4
    ism: ISMConfig | None = None
    policy_factory: Callable[[], object] | None = None
    deadline_s: float | None = None
    priority: int = 0
    frame_source: Callable[[], Iterable[StereoFrame]] | None = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.n_frames < 1:
            raise ValueError("a stream must carry at least one frame")
        if self.fps <= 0:
            raise ValueError("camera rate must be positive")
        if self.pw < 1:
            raise ValueError("propagation window must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("frame deadline must be positive (or None)")

    def frame_deadline(self, index: int) -> float:
        """Absolute deadline of frame ``index`` (``inf`` without one).

        Frame ``index`` arrives at ``index / fps``; its deadline is
        that arrival plus the stream's relative :attr:`deadline_s`.

        >>> FrameStream("cam", fps=10.0, deadline_s=0.05).frame_deadline(2)
        0.25
        """
        if self.deadline_s is None:
            return math.inf
        return index / self.fps + self.deadline_s

    def make_policy(self) -> object:
        """A fresh key-frame policy instance for one engine run.

        >>> from repro.core.keyframe import MotionAdaptivePolicy
        >>> stream = FrameStream("cam", policy_factory=MotionAdaptivePolicy)
        >>> stream.make_policy()
        Adaptive(max=8, thr=4.0)
        """
        if self.policy_factory is not None:
            return self.policy_factory()
        return StaticKeyFramePolicy(self.pw)

    @property
    def has_pixels(self) -> bool:
        """Whether a pixel :attr:`frame_source` is attached.

        >>> FrameStream("cam").has_pixels
        False
        """
        return self.frame_source is not None

    def frames(self) -> Iterator[StereoFrame]:
        """Yield the stream's pixel data (requires a frame source).

        >>> frame = next(sceneflow_stream(seed=0, size=(32, 48)).frames())
        >>> frame.left.shape
        (32, 48)
        """
        if self.frame_source is None:
            raise ValueError(
                f"stream {self.name!r} is cost-only; attach a frame_source"
            )
        yield from self.frame_source()


def sceneflow_stream(
    seed: int = 0,
    name: str | None = None,
    size: tuple[int, int] = (135, 240),
    n_frames: int = 30,
    max_disp: int = 48,
    **kwargs,
) -> FrameStream:
    """A stream over one SceneFlow-style flying-objects scene.

    >>> stream = sceneflow_stream(seed=1, size=(32, 48), n_frames=2)
    >>> stream.name, len(list(stream.frames()))
    ('sceneflow-1', 2)
    """
    def source() -> Iterator[StereoFrame]:
        scene = sceneflow_scene(seed, size=size, max_disp=max_disp)
        for t in range(n_frames):
            yield scene.render(float(t))

    return FrameStream(
        name=name or f"sceneflow-{seed}",
        size=size,
        n_frames=n_frames,
        frame_source=source,
        **kwargs,
    )


def kitti_stream(
    seed: int = 0,
    name: str | None = None,
    size: tuple[int, int] = (96, 320),
    n_frames: int = 30,
    max_disp: int = 48,
    **kwargs,
) -> FrameStream:
    """A stream of KITTI-like street scenes.

    KITTI's structure is two consecutive frames per scene, so a longer
    stream chains scene pairs — matching how the paper's KITTI
    evaluation only exercises PW-2 propagation.

    >>> stream = kitti_stream(seed=0, size=(32, 48), n_frames=3)
    >>> stream.name, len(list(stream.frames()))
    ('kitti-0', 3)
    """
    def source() -> Iterator[StereoFrame]:
        produced = 0
        for pair in kitti_pairs(
            n_scenes=math.ceil(n_frames / 2), size=size,
            max_disp=max_disp, seed=seed,
        ):
            for frame in pair:
                if produced == n_frames:
                    return
                yield frame
                produced += 1

    return FrameStream(
        name=name or f"kitti-{seed}",
        size=size,
        n_frames=n_frames,
        frame_source=source,
        **kwargs,
    )


def stress_stream(
    kind: str = "textureless",
    seed: int = 0,
    name: str | None = None,
    size: tuple[int, int] = (120, 200),
    n_frames: int = 30,
    max_disp: int = 32,
    **kwargs,
) -> FrameStream:
    """A stream over one of the stereo-matching stress scenes.

    >>> stress_stream(kind="repetitive", seed=2, size=(32, 48)).name
    'repetitive-2'
    >>> stress_stream(kind="foggy")
    Traceback (most recent call last):
        ...
    ValueError: unknown stress kind 'foggy'; choose from \
['repetitive', 'textureless']
    """
    makers = {"textureless": textureless_scene, "repetitive": repetitive_scene}
    try:
        maker = makers[kind]
    except KeyError:
        raise ValueError(
            f"unknown stress kind {kind!r}; choose from {sorted(makers)}"
        ) from None

    def source() -> Iterator[StereoFrame]:
        scene = maker(seed=seed, size=size, max_disp=max_disp)
        for t in range(n_frames):
            yield scene.render(float(t))

    return FrameStream(
        name=name or f"{kind}-{seed}",
        size=size,
        n_frames=n_frames,
        frame_source=source,
        **kwargs,
    )
