"""The stream engine: N concurrent camera streams on one accelerator.

Models a production serving deployment: every stream delivers frames
at its camera rate; the execution backend is a single shared resource
and a pluggable :class:`~repro.pipeline.schedulers.FrameScheduler`
(``fifo`` by default; ``edf`` / ``priority`` / ``shed`` for
deadline-aware QoS — see ``docs/scheduling.md``) decides which
stream's frame it services next.  Per frame, the stream's key-frame
policy decides between full DNN inference and the cheap ISM non-key
pipeline — on backends whose capabilities lack ISM support, every
frame pays full inference, and requested execution modes degrade
gracefully to the best mode the backend schedules
(``ilar -> convr -> dct -> baseline``; see ``docs/serving.md``).

Key-frame costs come from the backend's bounded per-``(network, mode,
size)`` result cache, so a many-stream run schedules each distinct
workload once and the report can state its cache hit rate.

The simulation is an analytic discrete-event model (arrival, queueing
wait, service), which is exactly what the underlying latency models
support — no wall-clock measurement, so runs are deterministic.  The
costing and FIFO core live in :mod:`repro.pipeline.costing` and are
shared with the multi-accelerator :class:`~repro.cluster.engine.
ClusterEngine`.

Key-frame policies receive a per-stream context dict that persists
across the stream's frames, but the engine is cost-only: it does not
run optical flow, so pixel-derived signals (``last_flow``) are never
populated and a :class:`~repro.core.keyframe.MotionAdaptivePolicy`
degrades to its static PW-``max_window`` behaviour here — the
"Key-frame policies" section of ``docs/serving.md`` explains the
cost-only contract and how to run true adaptive keying with
:class:`repro.core.ISM` over the stream's pixel data instead.

The latency simulation stays analytic even when a ``quality=``
:class:`~repro.pipeline.quality.QualityProbe` is attached: the probe
runs the real pipeline *after* the simulation, replaying the exact
decisions it made, so quality scoring never perturbs the reported
latencies (``docs/quality.md``).
"""

from __future__ import annotations

from repro.backends.base import ExecutionBackend
from repro.backends.registry import get_backend
from repro.pipeline.costing import MODE_FALLBACK, FrameCoster
from repro.pipeline.quality import QualityProbe
from repro.pipeline.report import EngineReport
from repro.pipeline.schedulers import FrameScheduler, get_scheduler
from repro.pipeline.stream import FrameStream

__all__ = ["StreamEngine"]

#: Backwards-compatible alias; the canonical order lives in costing.
_MODE_FALLBACK = MODE_FALLBACK


class StreamEngine:
    """Schedules key/non-key frames of many streams on one backend.

    ``scheduler`` selects the service discipline — a registered name
    (``fifo`` / ``edf`` / ``priority`` / ``shed``) or a
    :class:`~repro.pipeline.schedulers.FrameScheduler` instance.
    ``quality`` — a :class:`~repro.pipeline.quality.QualityProbe`, or
    ``True`` for the default probe — scores the run's depth accuracy
    by replaying the served decisions through the real pipeline on
    pixel-carrying streams (``docs/quality.md``).

    >>> from repro.pipeline import FrameStream, StreamEngine
    >>> engine = StreamEngine("gpu")
    >>> report = engine.run([FrameStream("cam", size=(68, 120), n_frames=6)])
    >>> report.backend, report.total_frames
    ('gpu', 6)
    >>> StreamEngine("gpu", scheduler="edf").scheduler.name
    'edf'
    >>> StreamEngine("gpu", quality=True).quality
    QualityProbe(matcher='bm', max_disp=48, sample=1.0, workers=1)
    """

    def __init__(
        self,
        backend: str | ExecutionBackend,
        scheduler: str | FrameScheduler = "fifo",
        quality: QualityProbe | bool | None = None,
        **backend_kwargs,
    ) -> None:
        if isinstance(backend, str):
            backend = get_backend(backend, **backend_kwargs)
        elif backend_kwargs:
            raise ValueError("backend_kwargs only apply to named backends")
        self.backend = backend
        self.coster = FrameCoster(backend)
        if isinstance(scheduler, str):
            scheduler = get_scheduler(scheduler)
        self.scheduler = scheduler
        if quality is True:
            quality = QualityProbe()
        self.quality = quality or None

    # ------------------------------------------------------------------
    # per-frame costs (delegated to the shared coster)
    # ------------------------------------------------------------------
    def effective_mode(self, requested: str) -> str:
        """Best supported mode at or below the requested level.

        >>> StreamEngine("gpu").effective_mode("ilar")
        'baseline'
        """
        return self.coster.effective_mode(requested)

    def key_frame_seconds(self, stream: FrameStream) -> float:
        """Service time of one of ``stream``'s key frames.

        >>> from repro.pipeline import FrameStream
        >>> stream = FrameStream("cam", size=(68, 120))
        >>> StreamEngine("gpu").key_frame_seconds(stream) > 0
        True
        """
        return self.coster.key_frame_seconds(stream)

    def nonkey_frame_seconds(self, stream: FrameStream) -> float:
        """Service time of one of ``stream``'s ISM non-key frames.

        >>> from repro.pipeline import FrameStream
        >>> stream = FrameStream("cam", size=(68, 120))
        >>> StreamEngine("gpu").nonkey_frame_seconds(stream) > 0
        True
        """
        return self.coster.nonkey_frame_seconds(stream)

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self, streams: list[FrameStream]) -> EngineReport:
        """Serve every stream to completion; return the latency report.

        >>> from repro.pipeline import FrameStream
        >>> report = StreamEngine("gpu").run(
        ...     [FrameStream("cam", size=(68, 120), n_frames=4, pw=2)])
        >>> report.streams[0].key_frames
        2
        >>> StreamEngine("gpu", scheduler="shed").run(
        ...     [FrameStream("cam", size=(68, 120), n_frames=4)]).scheduler
        'shed'
        """
        if not streams:
            raise ValueError("need at least one stream")
        outcome = self.coster.serve(
            streams, scheduler=self.scheduler, quality=self.quality
        )
        return EngineReport.from_serve(
            self.backend.name, streams, outcome, self.backend.cache_info()
        )
