"""The stream engine: N concurrent camera streams on one accelerator.

Models a production serving deployment: every stream delivers frames
at its camera rate; the execution backend is a single shared resource
servicing frames in arrival order (FIFO).  Per frame, the stream's
key-frame policy decides between full DNN inference and the cheap ISM
non-key pipeline — on backends whose capabilities lack ISM support,
every frame pays full inference, and requested execution modes
degrade gracefully to the best mode the backend schedules
(``ilar -> convr -> dct -> baseline``).

Key-frame costs come from the backend's bounded per-``(network, mode,
size)`` result cache, so a many-stream run schedules each distinct
workload once and the report can state its cache hit rate.

The simulation is an analytic discrete-event model (arrival, queueing
wait, service), which is exactly what the underlying latency models
support — no wall-clock measurement, so runs are deterministic.

Key-frame policies receive a per-stream context dict that persists
across the stream's frames, but the engine is cost-only: it does not
run optical flow, so pixel-derived signals (``last_flow``) are never
populated and a :class:`MotionAdaptivePolicy` degrades to its static
PW-``max_window`` behaviour here.  Accuracy-side experiments that
want true adaptive keying should run :class:`repro.core.ISM` over the
stream's pixel data instead.
"""

from __future__ import annotations

from repro.backends.base import ExecutionBackend
from repro.backends.registry import get_backend
from repro.pipeline.report import EngineReport, StreamStats
from repro.pipeline.stream import FrameStream

__all__ = ["StreamEngine"]

#: Mode degradation order: each entry falls back to the ones after it.
_MODE_FALLBACK = ("ilar", "convr", "dct", "baseline")


class StreamEngine:
    """Schedules key/non-key frames of many streams on one backend."""

    def __init__(self, backend: str | ExecutionBackend, **backend_kwargs):
        if isinstance(backend, str):
            backend = get_backend(backend, **backend_kwargs)
        elif backend_kwargs:
            raise ValueError("backend_kwargs only apply to named backends")
        self.backend = backend
        # non-key costs depend only on (size, ism config); memoize so
        # a long stream pays the analytic model once, like key frames
        self._nonkey_memo: dict = {}

    # ------------------------------------------------------------------
    # per-frame costs
    # ------------------------------------------------------------------
    def effective_mode(self, requested: str) -> str:
        """Best supported mode at or below the requested level."""
        if requested not in _MODE_FALLBACK:
            raise ValueError(
                f"unknown mode {requested!r}; choose from {_MODE_FALLBACK}"
            )
        for mode in _MODE_FALLBACK[_MODE_FALLBACK.index(requested):]:
            if self.backend.supports_mode(mode):
                return mode
        return "baseline"

    def key_frame_seconds(self, stream: FrameStream) -> float:
        result = self.backend.network_result(
            stream.network, self.effective_mode(stream.mode), stream.size
        )
        return self.backend.seconds(result)

    def nonkey_frame_seconds(self, stream: FrameStream) -> float:
        key = (tuple(stream.size), stream.ism)
        if key not in self._nonkey_memo:
            result = self.backend.nonkey_frame(stream.size, stream.ism)
            self._nonkey_memo[key] = self.backend.seconds(result)
        return self._nonkey_memo[key]

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self, streams: list[FrameStream]) -> EngineReport:
        """Serve every stream to completion; return the latency report."""
        if not streams:
            raise ValueError("need at least one stream")
        supports_ism = self.backend.capabilities.supports_ism

        # arrival plan: (time, stream index, frame index, is_key)
        arrivals = []
        key_counts = [0] * len(streams)
        for si, stream in enumerate(streams):
            policy = stream.make_policy()
            context: dict = {}
            for i in range(stream.n_frames):
                if supports_ism:
                    # always consult the policy so stateful (adaptive)
                    # policies see every frame; frame 0 is forced key
                    is_key = policy.is_key(i, context) or i == 0
                else:
                    is_key = True
                key_counts[si] += is_key
                arrivals.append((i / stream.fps, si, i, is_key))
        arrivals.sort(key=lambda a: (a[0], a[1], a[2]))

        latencies: list[list[float]] = [[] for _ in streams]
        server_free = 0.0
        busy = 0.0
        for t, si, _i, is_key in arrivals:
            stream = streams[si]
            service = (
                self.key_frame_seconds(stream)
                if is_key
                else self.nonkey_frame_seconds(stream)
            )
            start = max(t, server_free)
            done = start + service
            server_free = done
            busy += service
            latencies[si].append(done - t)

        total_frames = len(arrivals)
        makespan = server_free
        return EngineReport(
            backend=self.backend.name,
            streams=[
                StreamStats.from_latencies(s.name, lat, keys)
                for s, lat, keys in zip(streams, latencies, key_counts)
            ],
            total_frames=total_frames,
            makespan_s=makespan,
            aggregate_fps=total_frames / makespan if makespan > 0 else 0.0,
            mean_service_s=busy / total_frames,
            cache=self.backend.cache_info(),
        )
