"""Depth-quality probing: real disparities behind the analytic serving stack.

The serving layers (:class:`~repro.pipeline.engine.StreamEngine`, the
cluster engine) are analytic — they simulate *latency* without ever
computing a disparity map.  That is exactly right for capacity and
QoS questions, but the paper's whole argument is a quality/speed
trade: ISM propagates correspondences to cut compute *with minimal
accuracy loss* (Sec. 3), and a scheduler that drops or re-keys frames
(``shed``) changes which frames get full inference.  A latency win
reported without its accuracy cost is only half the story.

:class:`QualityProbe` closes that gap.  For (a sample of) the served
streams that carry pixel data, it replays the *exact* per-frame
decisions the discrete-event simulation made — the
:attr:`~repro.pipeline.costing.ServeOutcome.dispositions` record —
through the real pipeline:

* ``key`` frames run the full matcher (``bm`` / ``census`` / ``sgm``)
  standing in for the stereo DNN;
* ``nonkey`` frames run the ISM propagation path — optical flow from
  the key frame plus :func:`~repro.stereo.block_matching.
  guided_block_match` refinement;
* ``drop``-ped frames produce no new disparity, so they are scored
  against the **last served map** — the stale depth a downstream
  consumer would actually be holding when the scheduler shed the
  frame.

Each frame is scored against the procedural dataset's exact ground
truth with the paper's metrics (bad-pixel rate and mean end-point
error, :mod:`repro.stereo.metrics`), and the scores flow up through
:class:`~repro.pipeline.costing.ServeOutcome` into the engine and
cluster reports.  ``docs/quality.md`` is the guide.

>>> from repro.pipeline import QualityProbe, sceneflow_stream
>>> probe = QualityProbe(matcher="bm", max_disp=16)
>>> quality = probe.score_plan(
...     sceneflow_stream(seed=3, size=(32, 48), n_frames=3,
...                      max_disp=16, pw=3))
>>> [f.disposition for f in quality.frames]
['key', 'nonkey', 'nonkey']
>>> 0.0 <= quality.bad_pixel_rate <= 1.0
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.ism import ISM, ISMConfig
from repro.parallel import TileExecutor
from repro.pipeline.costing import ServeOutcome, plan_keys
from repro.pipeline.stream import FrameStream
from repro.stereo.metrics import end_point_error, three_pixel_error

__all__ = [
    "FrameQuality",
    "StreamQuality",
    "QualityProbe",
    "available_matchers",
]

#: key-frame matchers the probe can stand in for the stereo DNN; the
#: names dispatch through :meth:`repro.parallel.TileExecutor.kernel`
#: (the "guided" kernel is the non-key refinement, not a key matcher)
_MATCHER_NAMES = ("bm", "census", "sgm")


def available_matchers() -> tuple[str, ...]:
    """Sorted names of the key-frame matchers the probe supports.

    >>> available_matchers()
    ('bm', 'census', 'sgm')
    """
    return _MATCHER_NAMES


@dataclass(frozen=True)
class FrameQuality:
    """Depth accuracy of one offered frame.

    ``disposition`` is what the scheduler did with the frame (``key``
    / ``nonkey`` / ``drop``); a dropped frame's scores measure the
    *staleness* of the last served disparity map against this frame's
    ground truth.  ``bad_pixel_rate`` is the paper's three-pixel-error
    fraction in ``[0, 1]``; ``epe_px`` the mean absolute disparity
    error in pixels.
    """

    index: int
    disposition: str
    bad_pixel_rate: float
    epe_px: float


@dataclass(frozen=True)
class StreamQuality:
    """Depth-accuracy samples of one probed stream.

    The aggregate properties average over every scored frame —
    including dropped frames scored stale, because that is the depth
    the deployment actually delivered.  The per-disposition
    breakdowns (:attr:`key_epe_px` / :attr:`nonkey_epe_px` /
    :attr:`stale_epe_px`) attribute the loss: key frames bound the
    matcher's own accuracy, non-key frames add the ISM propagation
    cost, stale frames the scheduler's shedding cost.
    """

    stream: str
    matcher: str
    frames: tuple[FrameQuality, ...]

    def _over(
        self, attr: str, dispositions: tuple[str, ...] | None = None
    ) -> float | None:
        vals = [
            getattr(f, attr)
            for f in self.frames
            if dispositions is None or f.disposition in dispositions
        ]
        return float(np.mean(vals)) if vals else None

    @property
    def n_frames(self) -> int:
        """Frames scored (served and stale)."""
        return len(self.frames)

    @property
    def n_stale(self) -> int:
        """Dropped frames, scored against the last served map."""
        return sum(f.disposition == "drop" for f in self.frames)

    @property
    def bad_pixel_rate(self) -> float:
        """Mean three-pixel-error fraction over every scored frame."""
        return self._over("bad_pixel_rate") or 0.0

    @property
    def epe_px(self) -> float:
        """Mean end-point error (pixels) over every scored frame."""
        return self._over("epe_px") or 0.0

    @property
    def key_epe_px(self) -> float | None:
        """Mean EPE of key frames (``None`` if none scored)."""
        return self._over("epe_px", ("key",))

    @property
    def nonkey_epe_px(self) -> float | None:
        """Mean EPE of ISM non-key frames (``None`` if none scored)."""
        return self._over("epe_px", ("nonkey",))

    @property
    def stale_epe_px(self) -> float | None:
        """Mean EPE of dropped frames (``None`` if nothing dropped)."""
        return self._over("epe_px", ("drop",))


class QualityProbe:
    """Scores served streams by running the real stereo pipeline.

    Parameters
    ----------
    matcher:
        Key-frame matcher standing in for the stereo DNN — one of
        :func:`available_matchers` (``bm`` SAD block matching,
        ``census`` Hamming matching, ``sgm`` semi-global matching).
    max_disp:
        Disparity search range of the key-frame matcher; match it to
        the stream's dataset (the factories default to 48).
    ism:
        :class:`~repro.core.ism.ISMConfig` for the non-key propagation
        path; a stream's own :attr:`~repro.pipeline.stream.FrameStream.
        ism` config takes precedence.  The propagation *window* plays
        no role here — key decisions are replayed, never planned.
    max_frames:
        Score only the first ``max_frames`` offered frames of each
        probed stream (``None`` scores the whole stream).
    sample:
        Fraction of the pixel-carrying streams to probe, in
        ``(0, 1]``; sub-sampling picks streams deterministically from
        ``seed``.  Cost-only streams are never probed.
    workers:
        Worker-pool size for the kernels the probe executes.  ``1``
        (the default) runs single-core; larger values run every key
        matcher and every non-key guided search through a
        :class:`~repro.parallel.TileExecutor`, which splits frames
        into halo-padded row bands and fans them across a pool.  The
        scores are bit-identical either way (pinned by tests) — only
        the wall-clock changes.
    precision:
        Cost-volume dtype for the executed kernels (``"float64"``
        default, ``"float32"`` halves kernel memory traffic).
    pool:
        ``"process"`` (default) or ``"thread"`` worker pool, when
        ``workers > 1``.
    tile_rows:
        Band height for the tiled kernels; the default ``"auto"``
        consumes the design-space-explored table in
        :mod:`repro.parallel.autotune` for this worker count and
        frame size (see :class:`~repro.parallel.TileExecutor`).
    transport:
        How arrays reach process-pool workers — ``"auto"`` (default,
        shared memory when a process pool is in play), ``"pickle"``
        or ``"shm"``.

    >>> QualityProbe(matcher="sgm").matcher_name
    'sgm'
    >>> QualityProbe(matcher="bm", workers=4).executor.workers
    4
    >>> QualityProbe(matcher="orb")
    Traceback (most recent call last):
        ...
    ValueError: unknown matcher 'orb'; choose from ('bm', 'census', 'sgm')
    """

    def __init__(
        self,
        matcher: str = "bm",
        max_disp: int = 48,
        ism: ISMConfig | None = None,
        max_frames: int | None = None,
        sample: float = 1.0,
        seed: int = 0,
        workers: int = 1,
        precision: str = "float64",
        pool: str = "process",
        tile_rows: int | str | None = "auto",
        transport: str = "auto",
    ) -> None:
        if matcher not in _MATCHER_NAMES:
            raise ValueError(
                f"unknown matcher {matcher!r}; choose from {available_matchers()}"
            )
        if max_disp < 1:
            raise ValueError("max_disp must be >= 1")
        if max_frames is not None and max_frames < 1:
            raise ValueError("max_frames must be >= 1 (or None)")
        if not 0.0 < sample <= 1.0:
            raise ValueError("sample must be in (0, 1]")
        self.matcher_name = matcher
        #: tiled kernel executor every probed frame runs through;
        #: :meth:`close` (or using the probe as a context manager)
        #: releases its worker processes
        self.executor = TileExecutor(
            workers=workers,
            pool=pool,
            tile_rows=tile_rows,
            precision=precision,
            transport=transport,
        )
        self.matcher = self.executor.kernel(matcher)
        self.max_disp = max_disp
        self.ism = ism or ISMConfig()
        self.max_frames = max_frames
        self.sample = sample
        self.seed = seed

    def __repr__(self) -> str:
        return (
            f"QualityProbe(matcher={self.matcher_name!r}, "
            f"max_disp={self.max_disp}, sample={self.sample}, "
            f"workers={self.executor.workers})"
        )

    def close(self) -> None:
        """Release the executor's worker processes (idempotent).

        Only relevant for ``workers > 1`` with a process pool; the
        pool is spawned lazily on the first multi-band kernel call
        and would otherwise live until interpreter exit.
        """
        self.executor.close()

    def __enter__(self) -> "QualityProbe":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # scoring one stream
    # ------------------------------------------------------------------
    def score_stream(
        self, stream: FrameStream, dispositions: Sequence[str]
    ) -> StreamQuality:
        """Replay ``dispositions`` over ``stream``'s pixels and score.

        ``dispositions`` is the per-frame record a scheduler produced
        (:attr:`~repro.pipeline.costing.ServeOutcome.dispositions`):
        ``key`` runs the full matcher, ``nonkey`` the ISM propagation
        path, ``drop`` scores the last served map against this frame's
        ground truth.  Two serve-loop invariants are enforced rather
        than silently mis-scored: the first entry must be ``key``
        (there is nothing to propagate or hold before the first key
        frame), and the first served frame after a ``drop`` must be
        ``key`` (the drop broke the ISM chain — propagating across
        the gap would score flow the pipeline never ran).

        >>> from repro.pipeline import sceneflow_stream
        >>> probe = QualityProbe(matcher="bm", max_disp=16)
        >>> q = probe.score_stream(
        ...     sceneflow_stream(seed=3, size=(32, 48), n_frames=3,
        ...                      max_disp=16),
        ...     ["key", "nonkey", "drop"])
        >>> q.n_frames, q.n_stale
        (3, 1)
        """
        config = stream.ism or self.ism
        # the whole non-key path runs through the executor: tiled
        # guided refinement and tiled Farneback flow (bit-identical to
        # the single-core path, so scores replay byte-identically
        # across worker/transport configurations)
        ism = ISM(
            lambda f: self.matcher(f.left, f.right, self.max_disp),
            config=config,
            refiner=self.executor.kernel("guided"),
            flow=self.executor,
        )
        records: list[FrameQuality] = []
        last_disp: np.ndarray | None = None
        chain_broken = False
        for index, (frame, what) in enumerate(zip(stream.frames(), dispositions)):
            if self.max_frames is not None and index >= self.max_frames:
                break
            if what == "drop":
                if last_disp is None:
                    raise ValueError(
                        f"stream {stream.name!r} dropped frame {index} "
                        "before any served frame; dispositions must "
                        "start with a key frame"
                    )
                chain_broken = True
                disp = last_disp
            else:
                if chain_broken and what != "key":
                    raise ValueError(
                        f"stream {stream.name!r} serves a non-key frame "
                        f"{index} right after a drop; a drop breaks the "
                        "ISM chain, so the next served frame must be key"
                    )
                chain_broken = False
                disp, _ = ism.step(frame, is_key=(what == "key"))
                last_disp = disp
            records.append(
                FrameQuality(
                    index=index,
                    disposition=what,
                    bad_pixel_rate=three_pixel_error(disp, frame.disparity),
                    epe_px=end_point_error(disp, frame.disparity),
                )
            )
        return StreamQuality(
            stream=stream.name,
            matcher=self.matcher_name,
            frames=tuple(records),
        )

    def score_plan(
        self, stream: FrameStream, supports_ism: bool = True
    ) -> StreamQuality:
        """Score a stream under its *planned* key schedule (no engine).

        Builds the dispositions from :func:`~repro.pipeline.costing.
        plan_keys` — every frame served, keys where the stream's
        policy puts them — which is what any non-shedding scheduler
        serves on a backend that keeps up.  This is the entry point
        for key-frame-policy (PW) sensitivity studies.
        """
        dispositions = [
            "key" if k else "nonkey" for k in plan_keys(stream, supports_ism)
        ]
        return self.score_stream(stream, dispositions)

    # ------------------------------------------------------------------
    # scoring a serve outcome
    # ------------------------------------------------------------------
    def select_streams(self, streams: Sequence[FrameStream]) -> list[int]:
        """Indices of the streams this probe will score.

        Only pixel-carrying streams are eligible; ``sample`` then
        sub-samples them deterministically (seeded, at least one).
        """
        eligible = [i for i, s in enumerate(streams) if s.has_pixels]
        if self.sample >= 1.0 or len(eligible) <= 1:
            return eligible
        k = max(1, round(self.sample * len(eligible)))
        rng = np.random.default_rng(self.seed)
        chosen = rng.choice(len(eligible), size=k, replace=False)
        return sorted(eligible[i] for i in chosen)

    def score_streams(
        self, streams: Sequence[FrameStream], outcome: ServeOutcome
    ) -> tuple[StreamQuality | None, ...]:
        """Per-stream quality for one serve outcome (``None`` = unprobed).

        The result aligns with ``streams``; entries are ``None`` for
        cost-only streams and streams the sampler skipped.
        """
        if len(outcome.dispositions) != len(streams):
            raise ValueError(
                "outcome carries no per-frame dispositions for these "
                "streams; serve them with a registered scheduler first"
            )
        chosen = set(self.select_streams(streams))
        return tuple(
            self.score_stream(s, outcome.dispositions[i])
            if i in chosen
            else None
            for i, s in enumerate(streams)
        )
