"""Serving reports: per-stream latency percentiles + aggregate throughput.

A stream deployment is judged by its tail, not its mean — SceneScan-
class stereo systems advertise sustained frames per second and bounded
worst-case latency.  :class:`EngineReport` therefore carries p50/p95/
p99 per stream, the aggregate frame rate over the run's makespan, the
backend's busy fraction (utilization), and the number of camera
streams the backend could sustain at a target rate given the observed
mean service time.  The cluster layer aggregates these per-backend
reports into a :class:`~repro.cluster.report.ClusterReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache import CacheInfo
from repro.tables import render_table

__all__ = [
    "StreamStats",
    "EngineReport",
    "format_report",
    "format_backend_comparison",
]


@dataclass(frozen=True)
class StreamStats:
    """Latency statistics of one camera stream over a run.

    >>> stats = StreamStats.from_latencies("cam", [0.010, 0.020], 1)
    >>> stats.frames, stats.key_frames, round(stats.mean_ms, 1)
    (2, 1, 15.0)
    """

    stream: str
    frames: int
    key_frames: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_latencies(
        cls, stream: str, latencies_s, key_frames: int
    ) -> "StreamStats":
        """Summarize raw per-frame latencies (seconds) into statistics.

        >>> StreamStats.from_latencies("cam", [0.004] * 10, 2).p99_ms
        4.0
        """
        lat_ms = 1e3 * np.asarray(latencies_s, dtype=np.float64)
        p50, p95, p99 = np.percentile(lat_ms, [50.0, 95.0, 99.0])
        return cls(
            stream=stream,
            frames=len(lat_ms),
            key_frames=key_frames,
            mean_ms=float(lat_ms.mean()),
            p50_ms=float(p50),
            p95_ms=float(p95),
            p99_ms=float(p99),
            max_ms=float(lat_ms.max()),
        )


@dataclass(frozen=True)
class EngineReport:
    """Outcome of serving a set of streams on one backend.

    >>> from repro.cache import CacheInfo
    >>> report = EngineReport(backend="toy", streams=[], total_frames=60,
    ...                       makespan_s=2.0, aggregate_fps=30.0,
    ...                       mean_service_s=0.001,
    ...                       cache=CacheInfo(0, 0, 0, 0), busy_s=0.06)
    >>> report.utilization
    0.03
    """

    backend: str
    streams: list[StreamStats]
    total_frames: int
    makespan_s: float
    aggregate_fps: float
    mean_service_s: float
    cache: CacheInfo
    busy_s: float = 0.0

    @classmethod
    def from_serve(
        cls, backend: str, streams, outcome, cache: CacheInfo
    ) -> "EngineReport":
        """Build the report from a :class:`~repro.pipeline.costing.
        ServeOutcome` (the raw FIFO-simulation result).

        >>> from repro.backends import get_backend
        >>> from repro.pipeline import FrameStream
        >>> from repro.pipeline.costing import FrameCoster
        >>> backend = get_backend("gpu")
        >>> coster = FrameCoster(backend)
        >>> streams = [FrameStream("cam", size=(68, 120), n_frames=4)]
        >>> report = EngineReport.from_serve(
        ...     "gpu", streams, coster.serve(streams), backend.cache_info())
        >>> report.total_frames
        4
        """
        return cls(
            backend=backend,
            streams=[
                StreamStats.from_latencies(s.name, lat, keys)
                for s, lat, keys in zip(
                    streams, outcome.latencies_s, outcome.key_counts
                )
            ],
            total_frames=outcome.total_frames,
            makespan_s=outcome.makespan_s,
            aggregate_fps=outcome.aggregate_fps,
            mean_service_s=outcome.mean_service_s,
            cache=cache,
            busy_s=outcome.busy_s,
        )

    def sustainable_streams(self, target_fps: float = 30.0) -> int:
        """Camera streams the backend sustains at ``target_fps`` given
        the observed mean per-frame service time (capacity bound).

        >>> from repro.cache import CacheInfo
        >>> report = EngineReport(backend="toy", streams=[], total_frames=1,
        ...                       makespan_s=1.0, aggregate_fps=1.0,
        ...                       mean_service_s=0.001,
        ...                       cache=CacheInfo(0, 0, 0, 0))
        >>> report.sustainable_streams(30.0)
        33
        """
        if target_fps <= 0:
            raise ValueError("target fps must be positive")
        if self.mean_service_s <= 0:
            return 0
        return int(1.0 / (target_fps * self.mean_service_s))

    @property
    def utilization(self) -> float:
        """Busy fraction of the run's makespan (0.0 for an empty run)."""
        if self.makespan_s <= 0:
            return 0.0
        return self.busy_s / self.makespan_s

    @property
    def worst_p99_ms(self) -> float:
        """The worst per-stream p99 latency — the deployment's tail.

        0.0 for a report with no streams (an idle cluster shard).
        """
        if not self.streams:
            return 0.0
        return max(s.p99_ms for s in self.streams)


def format_report(report: EngineReport) -> str:
    """Per-stream latency table for one backend run.

    >>> from repro.pipeline import FrameStream, StreamEngine
    >>> report = StreamEngine("gpu").run(
    ...     [FrameStream("cam", size=(68, 120), n_frames=4)])
    >>> "p99 ms" in format_report(report)
    True
    """
    rows = [
        [s.stream, s.frames, s.key_frames, s.mean_ms,
         s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms]
        for s in report.streams
    ]
    table = render_table(
        f"Stream serving on {report.backend!r} — "
        f"{report.aggregate_fps:.1f} fps aggregate, "
        f"cache hit rate {report.cache.hit_rate:.0%}",
        ["stream", "frames", "keys", "mean ms",
         "p50 ms", "p95 ms", "p99 ms", "max ms"],
        rows,
    )
    return table


def format_backend_comparison(
    reports: list[EngineReport], target_fps: float = 30.0
) -> str:
    """Streams-vs-backend throughput table across engine runs.

    >>> from repro.pipeline import FrameStream, StreamEngine
    >>> report = StreamEngine("gpu").run(
    ...     [FrameStream("cam", size=(68, 120), n_frames=4)])
    >>> "streams@30fps" in format_backend_comparison([report])
    True
    """
    rows = [
        [r.backend, len(r.streams), r.total_frames, r.aggregate_fps,
         r.worst_p99_ms, r.sustainable_streams(target_fps)]
        for r in reports
    ]
    return render_table(
        f"Multi-stream serving — backends at {target_fps:.0f} fps target",
        ["backend", "streams", "frames", "agg fps",
         "worst p99 ms", f"streams@{target_fps:.0f}fps"],
        rows,
    )
