"""Serving reports: per-stream latency percentiles + aggregate throughput.

A stream deployment is judged by its tail, not its mean — SceneScan-
class stereo systems advertise sustained frames per second and bounded
worst-case latency.  :class:`EngineReport` therefore carries p50/p95/
p99 per stream, the aggregate frame rate over the run's makespan, the
backend's busy fraction (utilization), and the number of camera
streams the backend could sustain at a target rate given the observed
mean service time.  The cluster layer aggregates these per-backend
reports into a :class:`~repro.cluster.report.ClusterReport`.

Deadline-aware serving (``docs/scheduling.md``) adds quality-of-
service accounting on top: each :class:`StreamStats` carries the mean
queueing wait (so tail latency can be attributed to waiting vs
service), the stream's deadline misses, dropped frames, and worst-
case completion lateness; the report aggregates these into
:attr:`EngineReport.deadline_miss_rate` / :attr:`EngineReport.
drop_rate` over *offered* frames (a dropped frame counts as a miss).

Depth accuracy rides along when the run was served with a
``quality=`` probe (``docs/quality.md``): probed streams carry a
:class:`~repro.pipeline.quality.StreamQuality` sample (bad-pixel rate
and end-point error from the *real* pipeline), the report aggregates
them into :attr:`EngineReport.bad_pixel_rate` / :attr:`EngineReport.
epe_px`, and :func:`format_quality_report` renders the quality-vs-
latency summary the scheduler trade-offs are judged by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.cache import CacheInfo
from repro.pipeline.quality import StreamQuality
from repro.tables import render_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.pipeline.costing import ServeOutcome
    from repro.pipeline.stream import FrameStream

__all__ = [
    "StreamStats",
    "EngineReport",
    "format_report",
    "format_backend_comparison",
    "format_quality_report",
]


def _weighted_quality_mean(
    stream_stats: Sequence["StreamStats"], attr: str
) -> float | None:
    """Frame-weighted mean of a quality attribute over probed streams.

    Shared by the engine and cluster reports so the two aggregation
    semantics can never diverge.  ``None`` when nothing was probed.
    """
    probed = [s for s in stream_stats if s.quality is not None]
    total = sum(s.quality.n_frames for s in probed)
    if not total:
        return None
    return (
        sum(getattr(s.quality, attr) * s.quality.n_frames for s in probed)
        / total
    )


def _quality_cells(stats: "StreamStats") -> list:
    """The two accuracy cells of a stream row (``-`` when unprobed)."""
    if stats.quality is None:
        return ["-", "-"]
    return [100.0 * stats.bad_pixel_rate, stats.epe_px]


@dataclass(frozen=True)
class StreamStats:
    """Latency statistics of one camera stream over a run.

    ``frames`` counts frames actually served; ``dropped_frames``
    counts frames admission control removed.  ``missed_deadlines``
    covers late completions *and* drops, and ``worst_lateness_ms`` is
    the worst completion lateness over served frames.  ``mean_wait_ms``
    attributes the mean latency to queueing (the rest is service).

    >>> stats = StreamStats.from_latencies("cam", [0.010, 0.020], 1)
    >>> stats.frames, stats.key_frames, round(stats.mean_ms, 1)
    (2, 1, 15.0)
    """

    stream: str
    frames: int
    key_frames: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    mean_wait_ms: float = 0.0
    missed_deadlines: int = 0
    dropped_frames: int = 0
    worst_lateness_ms: float = 0.0
    #: depth-accuracy sample when the run carried a quality probe
    quality: StreamQuality | None = None

    @classmethod
    def from_latencies(
        cls,
        stream: str,
        latencies_s: Sequence[float],
        key_frames: int,
        waits_s: Sequence[float] = (),
        missed_deadlines: int = 0,
        dropped_frames: int = 0,
        worst_lateness_s: float = 0.0,
        quality: StreamQuality | None = None,
    ) -> "StreamStats":
        """Summarize raw per-frame latencies (seconds) into statistics.

        A stream whose every frame was dropped reports zero latency
        statistics (there are no completions to summarize) but keeps
        its drop and miss counts.

        >>> StreamStats.from_latencies("cam", [0.004] * 10, 2).p99_ms
        4.0
        >>> StreamStats.from_latencies("cam", [0.004], 1,
        ...                            waits_s=[0.001]).mean_wait_ms
        1.0
        """
        lat_ms = 1e3 * np.asarray(latencies_s, dtype=np.float64)
        if lat_ms.size:
            p50, p95, p99 = np.percentile(lat_ms, [50.0, 95.0, 99.0])
            mean, peak = float(lat_ms.mean()), float(lat_ms.max())
        else:
            p50 = p95 = p99 = mean = peak = 0.0
        waits_ms = 1e3 * np.asarray(waits_s, dtype=np.float64)
        return cls(
            stream=stream,
            frames=int(lat_ms.size),
            key_frames=key_frames,
            mean_ms=mean,
            p50_ms=float(p50),
            p95_ms=float(p95),
            p99_ms=float(p99),
            max_ms=peak,
            mean_wait_ms=float(waits_ms.mean()) if waits_ms.size else 0.0,
            missed_deadlines=missed_deadlines,
            dropped_frames=dropped_frames,
            worst_lateness_ms=1e3 * worst_lateness_s,
            quality=quality,
        )

    @property
    def offered_frames(self) -> int:
        """Frames that arrived for this stream: served plus dropped."""
        return self.frames + self.dropped_frames

    @property
    def bad_pixel_rate(self) -> float | None:
        """Probed bad-pixel fraction (``None`` without a quality sample)."""
        return self.quality.bad_pixel_rate if self.quality else None

    @property
    def epe_px(self) -> float | None:
        """Probed mean end-point error (``None`` without a sample)."""
        return self.quality.epe_px if self.quality else None


@dataclass(frozen=True)
class EngineReport:
    """Outcome of serving a set of streams on one backend.

    >>> from repro.cache import CacheInfo
    >>> report = EngineReport(backend="toy", streams=[], total_frames=60,
    ...                       makespan_s=2.0, aggregate_fps=30.0,
    ...                       mean_service_s=0.001,
    ...                       cache=CacheInfo(0, 0, 0, 0), busy_s=0.06)
    >>> report.utilization
    0.03
    """

    backend: str
    streams: list[StreamStats]
    total_frames: int
    makespan_s: float
    aggregate_fps: float
    mean_service_s: float
    cache: CacheInfo
    busy_s: float = 0.0
    scheduler: str = "fifo"
    missed_deadlines: int = 0
    dropped_frames: int = 0

    @classmethod
    def from_serve(
        cls,
        backend: str,
        streams: Sequence["FrameStream"],
        outcome: "ServeOutcome",
        cache: CacheInfo,
    ) -> "EngineReport":
        """Build the report from a :class:`~repro.pipeline.costing.
        ServeOutcome` (the raw simulation result).

        >>> from repro.backends import get_backend
        >>> from repro.pipeline import FrameStream
        >>> from repro.pipeline.costing import FrameCoster
        >>> backend = get_backend("gpu")
        >>> coster = FrameCoster(backend)
        >>> streams = [FrameStream("cam", size=(68, 120), n_frames=4)]
        >>> report = EngineReport.from_serve(
        ...     "gpu", streams, coster.serve(streams), backend.cache_info())
        >>> report.total_frames
        4
        """
        n = len(streams)
        waits = outcome.waits_s or ((),) * n
        missed = outcome.missed_deadlines or (0,) * n
        dropped = outcome.dropped_frames or (0,) * n
        lateness = outcome.worst_lateness_s or (0.0,) * n
        quality = outcome.quality or (None,) * n
        return cls(
            backend=backend,
            streams=[
                StreamStats.from_latencies(
                    s.name, lat, keys,
                    waits_s=wait, missed_deadlines=miss,
                    dropped_frames=drop, worst_lateness_s=late,
                    quality=qual,
                )
                for s, lat, keys, wait, miss, drop, late, qual in zip(
                    streams, outcome.latencies_s, outcome.key_counts,
                    waits, missed, dropped, lateness, quality,
                )
            ],
            total_frames=outcome.total_frames,
            makespan_s=outcome.makespan_s,
            aggregate_fps=outcome.aggregate_fps,
            mean_service_s=outcome.mean_service_s,
            cache=cache,
            busy_s=outcome.busy_s,
            scheduler=outcome.scheduler,
            missed_deadlines=sum(missed),
            dropped_frames=sum(dropped),
        )

    def sustainable_streams(self, target_fps: float = 30.0) -> int:
        """Camera streams the backend sustains at ``target_fps`` given
        the observed mean per-frame service time (capacity bound).

        >>> from repro.cache import CacheInfo
        >>> report = EngineReport(backend="toy", streams=[], total_frames=1,
        ...                       makespan_s=1.0, aggregate_fps=1.0,
        ...                       mean_service_s=0.001,
        ...                       cache=CacheInfo(0, 0, 0, 0))
        >>> report.sustainable_streams(30.0)
        33
        """
        if target_fps <= 0:
            raise ValueError("target fps must be positive")
        if self.mean_service_s <= 0:
            return 0
        return int(1.0 / (target_fps * self.mean_service_s))

    @property
    def utilization(self) -> float:
        """Busy fraction of the run's makespan (0.0 for an empty run)."""
        if self.makespan_s <= 0:
            return 0.0
        return self.busy_s / self.makespan_s

    @property
    def worst_p99_ms(self) -> float:
        """The worst per-stream p99 latency — the deployment's tail.

        0.0 for a report with no streams (an idle cluster shard).
        """
        if not self.streams:
            return 0.0
        return max(s.p99_ms for s in self.streams)

    @property
    def offered_frames(self) -> int:
        """Frames that arrived during the run: served plus dropped."""
        return self.total_frames + self.dropped_frames

    @property
    def deadline_miss_rate(self) -> float:
        """Missed fraction of offered frames (drops count as misses).

        0.0 when the streams carry no deadlines (nothing can miss).
        """
        offered = self.offered_frames
        return self.missed_deadlines / offered if offered else 0.0

    @property
    def drop_rate(self) -> float:
        """Dropped fraction of offered frames (0.0 for an empty run)."""
        offered = self.offered_frames
        return self.dropped_frames / offered if offered else 0.0

    @property
    def worst_lateness_ms(self) -> float:
        """The worst completion lateness anywhere in the run."""
        if not self.streams:
            return 0.0
        return max(s.worst_lateness_ms for s in self.streams)

    @property
    def probed_streams(self) -> list[StreamStats]:
        """Streams that carry a depth-quality sample."""
        return [s for s in self.streams if s.quality is not None]

    @property
    def bad_pixel_rate(self) -> float | None:
        """Probed bad-pixel fraction, weighted by scored frames.

        ``None`` when the run carried no quality probe (the analytic
        reports stay purely latency-shaped).
        """
        return _weighted_quality_mean(self.streams, "bad_pixel_rate")

    @property
    def epe_px(self) -> float | None:
        """Probed mean end-point error, weighted by scored frames."""
        return _weighted_quality_mean(self.streams, "epe_px")


def format_report(report: EngineReport) -> str:
    """Per-stream latency table for one backend run.

    When the run carried a quality probe, two accuracy columns (bad-
    pixel percentage and end-point error) join the latency columns;
    cost-only runs render the historical latency-only table.

    >>> from repro.pipeline import FrameStream, StreamEngine
    >>> report = StreamEngine("gpu").run(
    ...     [FrameStream("cam", size=(68, 120), n_frames=4)])
    >>> "p99 ms" in format_report(report)
    True
    """
    with_quality = bool(report.probed_streams)
    rows = []
    for s in report.streams:
        row = [s.stream, s.frames, s.key_frames, s.mean_ms, s.mean_wait_ms,
               s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms,
               s.missed_deadlines, s.dropped_frames]
        if with_quality:
            row += _quality_cells(s)
        rows.append(row)
    headers = ["stream", "frames", "keys", "mean ms", "wait ms",
               "p50 ms", "p95 ms", "p99 ms", "max ms", "miss", "drop"]
    if with_quality:
        headers += ["bad px %", "epe px"]
    table = render_table(
        f"Stream serving on {report.backend!r} ({report.scheduler}) — "
        f"{report.aggregate_fps:.1f} fps aggregate, "
        f"cache hit rate {report.cache.hit_rate:.0%}",
        headers,
        rows,
    )
    return table


def format_backend_comparison(
    reports: list[EngineReport], target_fps: float = 30.0
) -> str:
    """Streams-vs-backend throughput table across engine runs.

    >>> from repro.pipeline import FrameStream, StreamEngine
    >>> report = StreamEngine("gpu").run(
    ...     [FrameStream("cam", size=(68, 120), n_frames=4)])
    >>> "streams@30fps" in format_backend_comparison([report])
    True
    """
    rows = [
        [r.backend, len(r.streams), r.total_frames, r.aggregate_fps,
         r.worst_p99_ms, r.sustainable_streams(target_fps)]
        for r in reports
    ]
    return render_table(
        f"Multi-stream serving — backends at {target_fps:.0f} fps target",
        ["backend", "streams", "frames", "agg fps",
         "worst p99 ms", f"streams@{target_fps:.0f}fps"],
        rows,
    )


def format_quality_report(report: EngineReport) -> str:
    """Quality-vs-latency summary of a probed run.

    One row per probed stream: the latency tail and QoS outcome next
    to the depth accuracy it bought, with the EPE attributed to key /
    non-key / stale frames.  This is the table the scheduler
    trade-offs are judged by — a ``shed`` p99 win means nothing until
    it sits next to the staleness it cost (``docs/quality.md``).

    >>> from repro.pipeline import (QualityProbe, StreamEngine,
    ...                             sceneflow_stream)
    >>> report = StreamEngine("gpu", quality=QualityProbe(
    ...     matcher="bm", max_disp=16)).run(
    ...     [sceneflow_stream(seed=3, size=(32, 48), n_frames=3,
    ...                       max_disp=16, mode="baseline")])
    >>> "epe px" in format_quality_report(report)
    True
    """
    probed = report.probed_streams
    if not probed:
        raise ValueError(
            "report carries no quality samples; serve with quality= "
            "(and pixel-carrying streams) first"
        )
    fmt = lambda v: "-" if v is None else v
    rows = [
        [s.stream, s.quality.n_frames, s.key_frames, s.dropped_frames,
         s.p99_ms, 100.0 * s.bad_pixel_rate, s.epe_px,
         fmt(s.quality.key_epe_px), fmt(s.quality.nonkey_epe_px),
         fmt(s.quality.stale_epe_px)]
        for s in probed
    ]
    return render_table(
        f"Quality vs latency on {report.backend!r} ({report.scheduler}, "
        f"matcher {probed[0].quality.matcher!r}) — "
        f"miss rate {report.deadline_miss_rate:.0%}, "
        f"drop rate {report.drop_rate:.0%}",
        ["stream", "scored", "keys", "drop", "p99 ms", "bad px %",
         "epe px", "key epe", "nonkey epe", "stale epe"],
        rows,
    )
