"""Serving reports: per-stream latency percentiles + aggregate throughput.

A stream deployment is judged by its tail, not its mean — SceneScan-
class stereo systems advertise sustained frames per second and bounded
worst-case latency.  :class:`EngineReport` therefore carries p50/p95/
p99 per stream, the aggregate frame rate over the run's makespan, and
the number of camera streams the backend could sustain at a target
rate given the observed mean service time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache import CacheInfo
from repro.tables import render_table

__all__ = [
    "StreamStats",
    "EngineReport",
    "format_report",
    "format_backend_comparison",
]


@dataclass(frozen=True)
class StreamStats:
    """Latency statistics of one camera stream over a run."""

    stream: str
    frames: int
    key_frames: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_latencies(
        cls, stream: str, latencies_s, key_frames: int
    ) -> "StreamStats":
        lat_ms = 1e3 * np.asarray(latencies_s, dtype=np.float64)
        p50, p95, p99 = np.percentile(lat_ms, [50.0, 95.0, 99.0])
        return cls(
            stream=stream,
            frames=len(lat_ms),
            key_frames=key_frames,
            mean_ms=float(lat_ms.mean()),
            p50_ms=float(p50),
            p95_ms=float(p95),
            p99_ms=float(p99),
            max_ms=float(lat_ms.max()),
        )


@dataclass(frozen=True)
class EngineReport:
    """Outcome of serving a set of streams on one backend."""

    backend: str
    streams: list[StreamStats]
    total_frames: int
    makespan_s: float
    aggregate_fps: float
    mean_service_s: float
    cache: CacheInfo

    def sustainable_streams(self, target_fps: float = 30.0) -> int:
        """Camera streams the backend sustains at ``target_fps`` given
        the observed mean per-frame service time (capacity bound)."""
        if target_fps <= 0:
            raise ValueError("target fps must be positive")
        if self.mean_service_s <= 0:
            return 0
        return int(1.0 / (target_fps * self.mean_service_s))

    @property
    def worst_p99_ms(self) -> float:
        return max(s.p99_ms for s in self.streams)


def format_report(report: EngineReport) -> str:
    """Per-stream latency table for one backend run."""
    rows = [
        [s.stream, s.frames, s.key_frames, s.mean_ms,
         s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms]
        for s in report.streams
    ]
    table = render_table(
        f"Stream serving on {report.backend!r} — "
        f"{report.aggregate_fps:.1f} fps aggregate, "
        f"cache hit rate {report.cache.hit_rate:.0%}",
        ["stream", "frames", "keys", "mean ms",
         "p50 ms", "p95 ms", "p99 ms", "max ms"],
        rows,
    )
    return table


def format_backend_comparison(
    reports: list[EngineReport], target_fps: float = 30.0
) -> str:
    """Streams-vs-backend throughput table across engine runs."""
    rows = [
        [r.backend, len(r.streams), r.total_frames, r.aggregate_fps,
         r.worst_p99_ms, r.sustainable_streams(target_fps)]
        for r in reports
    ]
    return render_table(
        f"Multi-stream serving — backends at {target_fps:.0f} fps target",
        ["backend", "streams", "frames", "agg fps",
         "worst p99 ms", f"streams@{target_fps:.0f}fps"],
        rows,
    )
