"""Serving reports: per-stream latency percentiles + aggregate throughput.

A stream deployment is judged by its tail, not its mean — SceneScan-
class stereo systems advertise sustained frames per second and bounded
worst-case latency.  :class:`EngineReport` therefore carries p50/p95/
p99 per stream, the aggregate frame rate over the run's makespan, the
backend's busy fraction (utilization), and the number of camera
streams the backend could sustain at a target rate given the observed
mean service time.  The cluster layer aggregates these per-backend
reports into a :class:`~repro.cluster.report.ClusterReport`.

Deadline-aware serving (``docs/scheduling.md``) adds quality-of-
service accounting on top: each :class:`StreamStats` carries the mean
queueing wait (so tail latency can be attributed to waiting vs
service), the stream's deadline misses, dropped frames, and worst-
case completion lateness; the report aggregates these into
:attr:`EngineReport.deadline_miss_rate` / :attr:`EngineReport.
drop_rate` over *offered* frames (a dropped frame counts as a miss).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache import CacheInfo
from repro.tables import render_table

__all__ = [
    "StreamStats",
    "EngineReport",
    "format_report",
    "format_backend_comparison",
]


@dataclass(frozen=True)
class StreamStats:
    """Latency statistics of one camera stream over a run.

    ``frames`` counts frames actually served; ``dropped_frames``
    counts frames admission control removed.  ``missed_deadlines``
    covers late completions *and* drops, and ``worst_lateness_ms`` is
    the worst completion lateness over served frames.  ``mean_wait_ms``
    attributes the mean latency to queueing (the rest is service).

    >>> stats = StreamStats.from_latencies("cam", [0.010, 0.020], 1)
    >>> stats.frames, stats.key_frames, round(stats.mean_ms, 1)
    (2, 1, 15.0)
    """

    stream: str
    frames: int
    key_frames: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    mean_wait_ms: float = 0.0
    missed_deadlines: int = 0
    dropped_frames: int = 0
    worst_lateness_ms: float = 0.0

    @classmethod
    def from_latencies(
        cls,
        stream: str,
        latencies_s,
        key_frames: int,
        waits_s=(),
        missed_deadlines: int = 0,
        dropped_frames: int = 0,
        worst_lateness_s: float = 0.0,
    ) -> "StreamStats":
        """Summarize raw per-frame latencies (seconds) into statistics.

        A stream whose every frame was dropped reports zero latency
        statistics (there are no completions to summarize) but keeps
        its drop and miss counts.

        >>> StreamStats.from_latencies("cam", [0.004] * 10, 2).p99_ms
        4.0
        >>> StreamStats.from_latencies("cam", [0.004], 1,
        ...                            waits_s=[0.001]).mean_wait_ms
        1.0
        """
        lat_ms = 1e3 * np.asarray(latencies_s, dtype=np.float64)
        if lat_ms.size:
            p50, p95, p99 = np.percentile(lat_ms, [50.0, 95.0, 99.0])
            mean, peak = float(lat_ms.mean()), float(lat_ms.max())
        else:
            p50 = p95 = p99 = mean = peak = 0.0
        waits_ms = 1e3 * np.asarray(waits_s, dtype=np.float64)
        return cls(
            stream=stream,
            frames=int(lat_ms.size),
            key_frames=key_frames,
            mean_ms=mean,
            p50_ms=float(p50),
            p95_ms=float(p95),
            p99_ms=float(p99),
            max_ms=peak,
            mean_wait_ms=float(waits_ms.mean()) if waits_ms.size else 0.0,
            missed_deadlines=missed_deadlines,
            dropped_frames=dropped_frames,
            worst_lateness_ms=1e3 * worst_lateness_s,
        )

    @property
    def offered_frames(self) -> int:
        """Frames that arrived for this stream: served plus dropped."""
        return self.frames + self.dropped_frames


@dataclass(frozen=True)
class EngineReport:
    """Outcome of serving a set of streams on one backend.

    >>> from repro.cache import CacheInfo
    >>> report = EngineReport(backend="toy", streams=[], total_frames=60,
    ...                       makespan_s=2.0, aggregate_fps=30.0,
    ...                       mean_service_s=0.001,
    ...                       cache=CacheInfo(0, 0, 0, 0), busy_s=0.06)
    >>> report.utilization
    0.03
    """

    backend: str
    streams: list[StreamStats]
    total_frames: int
    makespan_s: float
    aggregate_fps: float
    mean_service_s: float
    cache: CacheInfo
    busy_s: float = 0.0
    scheduler: str = "fifo"
    missed_deadlines: int = 0
    dropped_frames: int = 0

    @classmethod
    def from_serve(
        cls, backend: str, streams, outcome, cache: CacheInfo
    ) -> "EngineReport":
        """Build the report from a :class:`~repro.pipeline.costing.
        ServeOutcome` (the raw simulation result).

        >>> from repro.backends import get_backend
        >>> from repro.pipeline import FrameStream
        >>> from repro.pipeline.costing import FrameCoster
        >>> backend = get_backend("gpu")
        >>> coster = FrameCoster(backend)
        >>> streams = [FrameStream("cam", size=(68, 120), n_frames=4)]
        >>> report = EngineReport.from_serve(
        ...     "gpu", streams, coster.serve(streams), backend.cache_info())
        >>> report.total_frames
        4
        """
        n = len(streams)
        waits = outcome.waits_s or ((),) * n
        missed = outcome.missed_deadlines or (0,) * n
        dropped = outcome.dropped_frames or (0,) * n
        lateness = outcome.worst_lateness_s or (0.0,) * n
        return cls(
            backend=backend,
            streams=[
                StreamStats.from_latencies(
                    s.name, lat, keys,
                    waits_s=wait, missed_deadlines=miss,
                    dropped_frames=drop, worst_lateness_s=late,
                )
                for s, lat, keys, wait, miss, drop, late in zip(
                    streams, outcome.latencies_s, outcome.key_counts,
                    waits, missed, dropped, lateness,
                )
            ],
            total_frames=outcome.total_frames,
            makespan_s=outcome.makespan_s,
            aggregate_fps=outcome.aggregate_fps,
            mean_service_s=outcome.mean_service_s,
            cache=cache,
            busy_s=outcome.busy_s,
            scheduler=outcome.scheduler,
            missed_deadlines=sum(missed),
            dropped_frames=sum(dropped),
        )

    def sustainable_streams(self, target_fps: float = 30.0) -> int:
        """Camera streams the backend sustains at ``target_fps`` given
        the observed mean per-frame service time (capacity bound).

        >>> from repro.cache import CacheInfo
        >>> report = EngineReport(backend="toy", streams=[], total_frames=1,
        ...                       makespan_s=1.0, aggregate_fps=1.0,
        ...                       mean_service_s=0.001,
        ...                       cache=CacheInfo(0, 0, 0, 0))
        >>> report.sustainable_streams(30.0)
        33
        """
        if target_fps <= 0:
            raise ValueError("target fps must be positive")
        if self.mean_service_s <= 0:
            return 0
        return int(1.0 / (target_fps * self.mean_service_s))

    @property
    def utilization(self) -> float:
        """Busy fraction of the run's makespan (0.0 for an empty run)."""
        if self.makespan_s <= 0:
            return 0.0
        return self.busy_s / self.makespan_s

    @property
    def worst_p99_ms(self) -> float:
        """The worst per-stream p99 latency — the deployment's tail.

        0.0 for a report with no streams (an idle cluster shard).
        """
        if not self.streams:
            return 0.0
        return max(s.p99_ms for s in self.streams)

    @property
    def offered_frames(self) -> int:
        """Frames that arrived during the run: served plus dropped."""
        return self.total_frames + self.dropped_frames

    @property
    def deadline_miss_rate(self) -> float:
        """Missed fraction of offered frames (drops count as misses).

        0.0 when the streams carry no deadlines (nothing can miss).
        """
        offered = self.offered_frames
        return self.missed_deadlines / offered if offered else 0.0

    @property
    def drop_rate(self) -> float:
        """Dropped fraction of offered frames (0.0 for an empty run)."""
        offered = self.offered_frames
        return self.dropped_frames / offered if offered else 0.0

    @property
    def worst_lateness_ms(self) -> float:
        """The worst completion lateness anywhere in the run."""
        if not self.streams:
            return 0.0
        return max(s.worst_lateness_ms for s in self.streams)


def format_report(report: EngineReport) -> str:
    """Per-stream latency table for one backend run.

    >>> from repro.pipeline import FrameStream, StreamEngine
    >>> report = StreamEngine("gpu").run(
    ...     [FrameStream("cam", size=(68, 120), n_frames=4)])
    >>> "p99 ms" in format_report(report)
    True
    """
    rows = [
        [s.stream, s.frames, s.key_frames, s.mean_ms, s.mean_wait_ms,
         s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms,
         s.missed_deadlines, s.dropped_frames]
        for s in report.streams
    ]
    table = render_table(
        f"Stream serving on {report.backend!r} ({report.scheduler}) — "
        f"{report.aggregate_fps:.1f} fps aggregate, "
        f"cache hit rate {report.cache.hit_rate:.0%}",
        ["stream", "frames", "keys", "mean ms", "wait ms",
         "p50 ms", "p95 ms", "p99 ms", "max ms", "miss", "drop"],
        rows,
    )
    return table


def format_backend_comparison(
    reports: list[EngineReport], target_fps: float = 30.0
) -> str:
    """Streams-vs-backend throughput table across engine runs.

    >>> from repro.pipeline import FrameStream, StreamEngine
    >>> report = StreamEngine("gpu").run(
    ...     [FrameStream("cam", size=(68, 120), n_frames=4)])
    >>> "streams@30fps" in format_backend_comparison([report])
    True
    """
    rows = [
        [r.backend, len(r.streams), r.total_frames, r.aggregate_fps,
         r.worst_p99_ms, r.sustainable_streams(target_fps)]
        for r in reports
    ]
    return render_table(
        f"Multi-stream serving — backends at {target_fps:.0f} fps target",
        ["backend", "streams", "frames", "agg fps",
         "worst p99 ms", f"streams@{target_fps:.0f}fps"],
        rows,
    )
