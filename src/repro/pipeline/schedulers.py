"""Pluggable frame schedulers: the QoS discipline of the serving core.

Real stereo deployments (AR headsets, driving stacks, 100 fps FPGA
stereo cameras) are judged by deadline misses and overload behaviour,
not just mean latency.  This module turns the serving layer's single
hard-wired FIFO simulation into a policy point: a
:class:`FrameScheduler` decides, whenever the accelerator goes free,
which stream's next frame to dispatch — and, for admission-controlled
policies, whether to dispatch it at all.

Four built-ins cover the standard disciplines (``docs/scheduling.md``
discusses when to pick which):

* ``fifo`` — arrival order; bit-exact with the historical simulation
  (regression-pinned);
* ``edf`` — earliest deadline first among the queued streams;
* ``priority`` — highest stream priority first, key frames breaking
  ties;
* ``shed`` — FIFO with drop-on-late admission control: a non-key
  frame that would *start* past its deadline is dropped, and the
  stream's next served frame is forced to be a key frame (the dropped
  frame broke the ISM propagation chain).

Two invariants hold for every scheduler:

* **frames of one stream never reorder** — the ISM chain is
  sequential, so scheduling chooses *which stream goes next*, never
  which frame within a stream;
* **key frames are never dropped** — only the cheap non-key
  propagation frames are sheddable; dropping a key frame would strand
  the whole chain behind it.

New disciplines plug in with :func:`register_scheduler`, mirroring
:func:`repro.backends.register_backend` and
:func:`repro.cluster.register_placement_policy`.

>>> available_schedulers()
('edf', 'fifo', 'priority', 'shed')
>>> get_scheduler("edf").name
'edf'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.pipeline.costing import ServeOutcome, plan_keys
from repro.pipeline.stream import FrameStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.pipeline.costing import FrameCoster

__all__ = [
    "FrameJob",
    "FrameScheduler",
    "FifoScheduler",
    "EdfScheduler",
    "PriorityScheduler",
    "RekeyLedger",
    "ShedScheduler",
    "available_schedulers",
    "get_scheduler",
    "register_scheduler",
]

#: anything that builds a scheduler when called (a class or a factory)
SchedulerFactory = Callable[[], "FrameScheduler"]

_REGISTRY: dict[str, SchedulerFactory] = {}


def register_scheduler(
    name: str,
) -> Callable[[SchedulerFactory], SchedulerFactory]:
    """Class/factory decorator adding a scheduler to the registry.

    >>> @register_scheduler("doc-lifo")
    ... class LifoScheduler(FrameScheduler):
    ...     name = "doc-lifo"
    ...     def select(self, ready, now_s):
    ...         return self.stream_heads(ready)[-1]
    >>> "doc-lifo" in available_schedulers()
    True
    >>> _ = _REGISTRY.pop("doc-lifo")  # keep the example side-effect-free
    """

    def decorate(factory: SchedulerFactory) -> SchedulerFactory:
        _REGISTRY[name] = factory
        return factory

    return decorate


def available_schedulers() -> tuple[str, ...]:
    """Sorted names of every registered frame scheduler.

    >>> {"fifo", "edf", "priority", "shed"} <= set(available_schedulers())
    True
    """
    return tuple(sorted(_REGISTRY))


def get_scheduler(name: str) -> "FrameScheduler":
    """Construct a frame scheduler by name.

    >>> get_scheduler("fifo").name
    'fifo'
    >>> get_scheduler("lottery")
    Traceback (most recent call last):
        ...
    ValueError: unknown scheduler 'lottery'; available: \
('edf', 'fifo', 'priority', 'shed')
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None
    return factory()


class RekeyLedger:
    """Per-stream ISM re-key flags shared by every serve loop.

    A stream's ISM propagation chain breaks whenever a frame it
    depends on never produced a disparity map: admission control
    dropped it (the ``shed`` discipline), a retry budget ran out, or
    the stream migrated to another backend after a crash
    (:mod:`repro.cluster.faults`).  The ledger records the break and
    forces the stream's *next served* frame to be a key frame; serving
    that key frame clears the flag.  Keeping the rule in one place
    means the single-backend loop and the fleet-level chaos loop can
    never disagree about re-key semantics.

    >>> ledger = RekeyLedger(2)
    >>> ledger.effective_key(0, planned_key=False)
    False
    >>> ledger.chain_broken(0)          # e.g. a dropped frame
    >>> ledger.effective_key(0, planned_key=False)
    True
    >>> ledger.served(0, is_key=True)   # the forced key frame healed it
    >>> ledger.effective_key(0, planned_key=False)
    False
    >>> ledger.effective_key(1, planned_key=False, supports_ism=False)
    True
    """

    def __init__(self, n_streams: int) -> None:
        self.flags = [False] * n_streams

    def effective_key(
        self, stream_index: int, planned_key: bool, supports_ism: bool = True
    ) -> bool:
        """The key/non-key status actually served for the next frame."""
        return planned_key or self.flags[stream_index] or not supports_ism

    def chain_broken(self, stream_index: int) -> None:
        """Record a broken ISM chain (drop, retry exhaustion, migration)."""
        self.flags[stream_index] = True

    def served(self, stream_index: int, is_key: bool) -> None:
        """Record a served frame; a key frame re-anchors the chain."""
        if is_key:
            self.flags[stream_index] = False


@dataclass
class FrameJob:
    """One frame awaiting service in the discrete-event simulation.

    ``deadline_s`` is *absolute* (arrival plus the stream's relative
    :attr:`~repro.pipeline.stream.FrameStream.deadline_s`); streams
    without a deadline carry ``math.inf``.  ``is_key`` is the planned
    key/non-key decision — admission-control re-keying happens at
    dispatch time and never mutates the plan.
    """

    seq: int
    arrival_s: float
    stream_index: int
    frame_index: int
    is_key: bool
    deadline_s: float
    priority: int


class FrameScheduler:
    """The protocol: pick which ready frame the backend serves next.

    Subclasses implement :meth:`select` (an index into the ready
    queue, restricted to :meth:`stream_heads` candidates so streams
    never internally reorder) and may override :meth:`admit` for
    drop-on-late admission control.  The shared discrete-event loop in
    :meth:`serve` does everything else: arrivals at camera rate, a
    single non-preemptive server, queue-wait vs service-time
    accounting, deadline bookkeeping, and ISM re-keying after drops.

    Schedulers are stateless across runs — the registry hands out
    fresh instances, and :meth:`serve` keeps all per-run state local —
    so one instance may be shared by many engines.
    """

    name: str = "abstract"

    # ------------------------------------------------------------------
    # the policy points
    # ------------------------------------------------------------------
    def select(self, ready: Sequence[FrameJob], now_s: float) -> int:
        """Index (into ``ready``) of the job to dispatch at ``now_s``.

        ``ready`` is ordered by arrival (``seq``); implementations
        must pick one of :meth:`stream_heads` so frames of one stream
        never reorder.
        """
        raise NotImplementedError

    def admit(self, job: FrameJob, start_s: float, is_key: bool) -> bool:
        """Whether to serve ``job`` at ``start_s`` (``False`` drops it).

        ``is_key`` is the *effective* key status after re-keying; the
        event loop never drops a frame it reports as key.
        """
        return True

    @staticmethod
    def stream_heads(ready: Sequence[FrameJob]) -> list[int]:
        """Indices of each stream's earliest ready frame, by arrival.

        The only legal candidates for :meth:`select`: dispatching any
        later frame of a stream would reorder its ISM chain.
        """
        seen: set[int] = set()
        heads = []
        for idx, job in enumerate(ready):
            if job.stream_index not in seen:
                seen.add(job.stream_index)
                heads.append(idx)
        return heads

    # ------------------------------------------------------------------
    # the shared discrete-event loop
    # ------------------------------------------------------------------
    def serve(
        self, streams: Sequence[FrameStream], coster: "FrameCoster"
    ) -> ServeOutcome:
        """Run the discrete-event simulation under this discipline.

        Engines call :meth:`FrameCoster.serve
        <repro.pipeline.costing.FrameCoster.serve>` (which delegates
        here and records backend occupancy) rather than this method
        directly.

        >>> from repro.backends import get_backend
        >>> from repro.pipeline import FrameCoster, FrameStream
        >>> coster = FrameCoster(get_backend("gpu"))
        >>> out = get_scheduler("fifo").serve(
        ...     [FrameStream("cam", size=(68, 120), n_frames=4)], coster)
        >>> out.total_frames, out.scheduler
        (4, 'fifo')
        """
        supports_ism = coster.backend.capabilities.supports_ism

        jobs: list[FrameJob] = []
        for si, stream in enumerate(streams):
            for fi, is_key in enumerate(plan_keys(stream, supports_ism)):
                jobs.append(FrameJob(
                    seq=0,
                    arrival_s=fi / stream.fps,
                    stream_index=si,
                    frame_index=fi,
                    is_key=is_key,
                    deadline_s=stream.frame_deadline(fi),
                    priority=stream.priority,
                ))
        jobs.sort(key=lambda j: (j.arrival_s, j.stream_index, j.frame_index))
        for seq, job in enumerate(jobs):
            job.seq = seq

        n = len(streams)
        latencies: list[list[float]] = [[] for _ in streams]
        waits: list[list[float]] = [[] for _ in streams]
        services: list[list[float]] = [[] for _ in streams]
        key_counts = [0] * n
        missed = [0] * n
        dropped = [0] * n
        worst_late = [0.0] * n
        rekey = RekeyLedger(n)
        # per-stream frame-order record of what actually happened:
        # "key" / "nonkey" (served) or "drop" — the quality probe
        # replays the real pipeline from exactly this record
        dispositions: list[list[str]] = [[] for _ in streams]

        server_free = 0.0
        busy = 0.0
        ready: list[FrameJob] = []
        i = 0
        while i < len(jobs) or ready:
            # everything that has arrived by the time the server frees
            while i < len(jobs) and jobs[i].arrival_s <= server_free:
                ready.append(jobs[i])
                i += 1
            now = server_free
            if not ready:
                # idle server: jump to the next arrival instant — the
                # dispatch decision then happens at that instant
                now = jobs[i].arrival_s
                while i < len(jobs) and jobs[i].arrival_s <= now:
                    ready.append(jobs[i])
                    i += 1
            job = ready.pop(self.select(ready, now))
            si = job.stream_index
            start = max(job.arrival_s, server_free)
            is_key = rekey.effective_key(si, job.is_key)
            if not self.admit(job, start, is_key):
                dropped[si] += 1
                missed[si] += 1  # a dropped frame never met its deadline
                rekey.chain_broken(si)  # re-key the stream after the drop
                dispositions[si].append("drop")
                continue
            rekey.served(si, is_key)
            service = coster.frame_seconds(streams[si], is_key)
            done = start + service
            server_free = done
            busy += service
            key_counts[si] += is_key
            dispositions[si].append("key" if is_key else "nonkey")
            latencies[si].append(done - job.arrival_s)
            waits[si].append(start - job.arrival_s)
            services[si].append(service)
            if done > job.deadline_s:
                missed[si] += 1
                late = done - job.deadline_s
                if late > worst_late[si]:
                    worst_late[si] = late

        return ServeOutcome(
            latencies_s=tuple(tuple(lat) for lat in latencies),
            key_counts=tuple(key_counts),
            total_frames=sum(len(lat) for lat in latencies),
            makespan_s=server_free,
            busy_s=busy,
            waits_s=tuple(tuple(w) for w in waits),
            services_s=tuple(tuple(s) for s in services),
            missed_deadlines=tuple(missed),
            dropped_frames=tuple(dropped),
            worst_lateness_s=tuple(worst_late),
            scheduler=self.name,
            dispositions=tuple(tuple(d) for d in dispositions),
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


@register_scheduler("fifo")
class FifoScheduler(FrameScheduler):
    """Arrival order — the historical discipline, bit-exact with the
    pre-scheduler FIFO simulation (regression-pinned).

    >>> from repro.backends import get_backend
    >>> from repro.pipeline import FrameCoster, FrameStream
    >>> coster = FrameCoster(get_backend("gpu"))
    >>> streams = [FrameStream("cam", size=(68, 120), n_frames=3)]
    >>> coster.serve(streams) == FifoScheduler().serve(streams, coster)
    True
    """

    name = "fifo"

    def select(self, ready: Sequence[FrameJob], now_s: float) -> int:
        return 0  # ready is kept in arrival order


@register_scheduler("edf")
class EdfScheduler(FrameScheduler):
    """Earliest deadline first among the queued streams.

    Under overload EDF serves urgent frames (tight ``deadline_s``)
    before patient ones, trading FIFO's arrival fairness for fewer
    deadline misses.  Streams without a deadline sort last (infinite
    deadline); ties break toward arrival order, so with no deadlines
    at all EDF degenerates to FIFO.
    """

    name = "edf"

    def select(self, ready: Sequence[FrameJob], now_s: float) -> int:
        return min(
            self.stream_heads(ready),
            key=lambda idx: (ready[idx].deadline_s, ready[idx].seq),
        )


@register_scheduler("priority")
class PriorityScheduler(FrameScheduler):
    """Highest stream priority first; key frames break ties.

    Priorities come from :attr:`FrameStream.priority` (higher is more
    important).  Within one priority level key frames dispatch before
    non-key frames — a late key frame stalls its whole ISM chain, a
    late non-key frame only itself — and remaining ties fall back to
    arrival order.
    """

    name = "priority"

    def select(self, ready: Sequence[FrameJob], now_s: float) -> int:
        return min(
            self.stream_heads(ready),
            key=lambda idx: (
                -ready[idx].priority,
                not ready[idx].is_key,
                ready[idx].seq,
            ),
        )


@register_scheduler("shed")
class ShedScheduler(FrameScheduler):
    """FIFO with drop-on-late admission control (load shedding).

    A non-key frame that would *start* service past its absolute
    deadline is dropped instead of served: under overload this spends
    the backend on frames that can still be useful, bounding the queue
    instead of letting it grow without limit.  Every drop breaks the
    stream's ISM propagation chain, so the event loop forces the
    stream's next served frame to be a key frame (and key frames are
    never dropped — they carry the state everything after them needs).

    Dropped frames are reported as both dropped *and* missed in the
    :class:`~repro.pipeline.costing.ServeOutcome`.
    """

    name = "shed"

    def select(self, ready: Sequence[FrameJob], now_s: float) -> int:
        return 0  # FIFO order; shedding happens at admission

    def admit(self, job: FrameJob, start_s: float, is_key: bool) -> bool:
        return is_key or start_s <= job.deadline_s
