"""Backend registry: name -> :class:`ExecutionBackend` factory.

System code requests execution targets by name::

    from repro.backends import get_backend
    eyeriss = get_backend("eyeriss", hw=my_config)

New targets plug in with the decorator::

    @register_backend("my-npu")
    class MyNPUBackend(ExecutionBackend):
        ...

The built-in backends (``systolic``, ``eyeriss``, ``gpu``) register
themselves on import — normally when :mod:`repro.backends` re-exports
them.  :func:`get_backend` additionally imports them on a lookup miss
as a fallback, so the registry also works for code that imports this
module directly without going through the package.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.backends.base import ExecutionBackend

__all__ = ["register_backend", "get_backend", "available_backends"]

#: anything that builds a backend when called (a class or a factory)
BackendFactory = Callable[..., ExecutionBackend]

_REGISTRY: dict[str, BackendFactory] = {}

#: Modules that self-register the built-in backends when imported.
_BUILTIN_MODULES = (
    "repro.backends.systolic",
    "repro.backends.eyeriss",
    "repro.backends.gpu",
)


def register_backend(name: str) -> Callable[[BackendFactory], BackendFactory]:
    """Class/factory decorator adding an entry to the registry.

    >>> from repro.backends import available_backends
    >>> @register_backend("doc-noop")
    ... class NoopBackend(ExecutionBackend):
    ...     name = "doc-noop"
    ...     def run_network(self, specs, mode="baseline"): ...
    ...     def nonkey_frame(self, size=(1080, 1920), config=None): ...
    >>> "doc-noop" in available_backends()
    True
    >>> _ = _REGISTRY.pop("doc-noop")  # keep the example side-effect-free
    """

    def decorate(factory: BackendFactory) -> BackendFactory:
        _REGISTRY[name] = factory
        return factory

    return decorate


def _load_builtins() -> None:
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def available_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend.

    >>> {"eyeriss", "gpu", "systolic"} <= set(available_backends())
    True
    """
    _load_builtins()
    return tuple(sorted(_REGISTRY))


def get_backend(name: str, **kwargs) -> ExecutionBackend:
    """Construct a backend by name.

    Keyword arguments are forwarded to the backend factory; all
    built-ins accept ``hw``, ``energy`` and ``cache_size`` (the GPU
    backend, a fixed product, accepts and ignores ``hw``/``energy``).

    >>> get_backend("gpu").name
    'gpu'
    >>> get_backend("tpu-v9")  # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    ValueError: unknown backend 'tpu-v9'; available: ...
    """
    if name not in _REGISTRY:
        _load_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None
    return factory(**kwargs)
