"""The Eyeriss-class row-stationary array as an execution backend.

Wraps :class:`~repro.hw.eyeriss.EyerissModel`.  Eyeriss supports the
deconvolution *transformation* (the paper extends the simulator for
the Fig. 13 "+DCT" bar) but cannot exploit ILAR — its spatial mapping
would need a different reuse formulation (Sec. 7.5) — and it has no
scalar unit, so the ISM non-key pipeline cannot run on it: a stream
served by this backend pays full DNN inference every frame.
"""

from __future__ import annotations

from repro.backends.base import (
    BackendCapabilities,
    ExecutionBackend,
    UnsupportedModeError,
)
from repro.backends.registry import register_backend
from repro.core.ism import ISMConfig
from repro.hw.config import ASV_BASE, HWConfig
from repro.hw.energy import ENERGY_16NM, EnergyModel
from repro.hw.eyeriss import EyerissModel
from typing import Sequence
from repro.hw.systolic import LayerResult, RunResult
from repro.models.stereo_networks import QHD
from repro.nn.workload import ConvSpec

__all__ = ["EyerissBackend"]


@register_backend("eyeriss")
class EyerissBackend(ExecutionBackend):
    """Row-stationary spatial array: DCT yes, ILAR no, ISM no.

    >>> backend = EyerissBackend()
    >>> backend.capabilities.modes
    ('baseline', 'dct')
    >>> backend.nonkey_frame((68, 120))
    Traceback (most recent call last):
        ...
    repro.backends.base.UnsupportedModeError: the Eyeriss-class array \
has no scalar unit for the ISM point-wise stages; run full inference \
every frame instead
    """

    name = "eyeriss"
    capabilities = BackendCapabilities(
        supports_dct=True, supports_ilar=False, supports_ism=False
    )

    def __init__(
        self,
        hw: HWConfig = ASV_BASE,
        energy: EnergyModel = ENERGY_16NM,
        cache_size: int = 32,
    ) -> None:
        super().__init__(cache_size=cache_size)
        self.hw = hw
        self.energy = energy
        self.frequency_hz = hw.frequency_hz
        self.model = EyerissModel(hw, energy)

    def run_network(
        self, specs: Sequence[ConvSpec], mode: str = "baseline"
    ) -> RunResult:
        self.require_mode(mode)
        return self.model.run_network(specs, transform=(mode == "dct"))

    def nonkey_frame(
        self, size: tuple[int, int] = QHD, config: ISMConfig | None = None
    ) -> LayerResult:
        raise UnsupportedModeError(
            "the Eyeriss-class array has no scalar unit for the ISM "
            "point-wise stages; run full inference every frame instead"
        )
