"""Unified execution-backend layer.

One protocol (:class:`ExecutionBackend`) over every hardware target
the paper evaluates, plus a registry so targets are requested by
name::

    from repro.backends import get_backend
    backend = get_backend("systolic")          # | "eyeriss" | "gpu"
    result = backend.network_result("DispNet", mode="ilar")
    print(backend.seconds(result), result.energy_j)

Adding a new target is a plug-in, not a rewrite: subclass
:class:`ExecutionBackend`, declare :class:`BackendCapabilities`, and
decorate with :func:`register_backend`.
"""

from repro.backends.base import (
    MODES,
    BackendCapabilities,
    BackendOccupancy,
    ExecutionBackend,
    UnsupportedModeError,
)
from repro.backends.registry import (
    available_backends,
    get_backend,
    register_backend,
)

# importing the built-in modules registers them
from repro.backends.systolic import SystolicBackend
from repro.backends.eyeriss import EyerissBackend
from repro.backends.gpu import GPUBackend

__all__ = [
    "MODES",
    "BackendCapabilities",
    "BackendOccupancy",
    "ExecutionBackend",
    "EyerissBackend",
    "GPUBackend",
    "SystolicBackend",
    "UnsupportedModeError",
    "available_backends",
    "get_backend",
    "register_backend",
]
