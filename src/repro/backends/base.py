"""The execution-backend protocol every hardware target implements.

The paper evaluates identical stereo workloads on three very different
execution targets — the systolic ASV accelerator, an Eyeriss-class
row-stationary array, and a mobile GPU.  This module defines the one
interface they all speak so system-level code (:class:`ASVSystem`, the
figure drivers, the streaming pipeline) never touches a concrete model
class:

* :meth:`ExecutionBackend.run_network` — schedule and execute a layer
  table under one of the paper's execution modes, returning a
  :class:`~repro.hw.systolic.RunResult`;
* :meth:`ExecutionBackend.nonkey_frame` — cost of one ISM non-key
  frame (optical flow + guided block matching) on the target;
* :class:`BackendCapabilities` — which optimizations the target can
  exploit (the deconvolution transformation, ILAR, the ISM non-key
  pipeline), so callers can degrade gracefully instead of guessing.

Results are expressed in cycles of the backend's clock
(:attr:`ExecutionBackend.frequency_hz`); :meth:`ExecutionBackend.seconds`
converts, so heterogeneous backends compose in one report.

Per-network results are memoized in a bounded LRU keyed by
``(network, mode, size)`` — see :meth:`ExecutionBackend.network_result`
and :meth:`ExecutionBackend.cache_info`.

Serving engines additionally record every run into the backend's
lifetime :class:`BackendOccupancy` (busy seconds, served frames,
utilization), so a cluster report can state how hot each accelerator
ran.  See ``docs/backends.md`` for the full authoring guide.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

# NOTE: this module must not import anything under ``repro.core`` —
# ``repro.core.asv`` imports the backend layer, and the protocol has
# to stay importable from either direction.
from repro.cache import CacheInfo, LRUCache
from repro.hw.systolic import LayerResult, RunResult
from repro.models.stereo_networks import QHD, network_specs
from repro.nn.workload import ConvSpec

if TYPE_CHECKING:  # typing only: ``repro.core`` imports the backend layer
    from repro.core.ism import ISMConfig

__all__ = [
    "MODES",
    "BackendCapabilities",
    "BackendOccupancy",
    "ExecutionBackend",
    "UnsupportedModeError",
]

#: The paper's execution modes, in increasing optimization order:
#: naive deconvolutions on the static-partition baseline; the
#: deconvolution-to-convolution transformation; DCT + per-layer reuse
#: scheduling; the full DCO with inter-layer activation reuse.
MODES = ("baseline", "dct", "convr", "ilar")


class UnsupportedModeError(ValueError):
    """A backend was asked for an execution mode it cannot provide.

    >>> from repro.backends import UnsupportedModeError, get_backend
    >>> try:
    ...     get_backend("gpu").require_mode("ilar")
    ... except UnsupportedModeError as err:
    ...     print("rejected")
    rejected
    """


@dataclass
class BackendOccupancy:
    """Lifetime busy-time accounting of one backend instance.

    Serving engines call :meth:`record_run` after every simulated run;
    ``busy_s`` accumulates service time, ``span_s`` accumulates run
    makespans, and :attr:`utilization` is their ratio — how hot this
    accelerator ran over everything it has served.  Like the result
    cache this is lifetime state: :meth:`reset` starts a fresh ledger.

    >>> occ = BackendOccupancy()
    >>> occ.record_run(busy_s=0.5, span_s=2.0, frames=30)
    >>> occ.record_run(busy_s=0.5, span_s=2.0, frames=30)
    >>> occ.frames, occ.utilization
    (60, 0.25)
    >>> occ.reset(); occ.utilization
    0.0
    """

    busy_s: float = 0.0
    span_s: float = 0.0
    frames: int = 0
    runs: int = 0

    def record_run(self, busy_s: float, span_s: float, frames: int) -> None:
        """Fold one simulated run into the ledger."""
        if busy_s < 0 or span_s < 0 or frames < 0:
            raise ValueError("occupancy contributions must be non-negative")
        self.busy_s += busy_s
        self.span_s += span_s
        self.frames += frames
        self.runs += 1

    @property
    def utilization(self) -> float:
        """Busy fraction of the total served span (0.0 when idle)."""
        return self.busy_s / self.span_s if self.span_s > 0 else 0.0

    def reset(self) -> None:
        """Clear the ledger."""
        self.busy_s = 0.0
        self.span_s = 0.0
        self.frames = 0
        self.runs = 0


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can exploit beyond naive layer-by-layer conv.

    >>> caps = BackendCapabilities(supports_dct=True, supports_ilar=False,
    ...                            supports_ism=False)
    >>> caps.modes
    ('baseline', 'dct')
    """

    supports_dct: bool = True   # deconvolution-to-convolution transform
    supports_ilar: bool = True  # inter-layer activation reuse scheduling
    supports_ism: bool = True   # OF + guided-BM non-key frame pipeline

    @property
    def modes(self) -> tuple[str, ...]:
        """The subset of :data:`MODES` this backend accepts."""
        modes = ["baseline"]
        if self.supports_dct:
            modes.append("dct")
        if self.supports_ilar:
            modes.extend(["convr", "ilar"])
        return tuple(modes)


class ExecutionBackend(abc.ABC):
    """One hardware target executing stereo workloads.

    Subclasses set :attr:`name`, :attr:`capabilities` and
    :attr:`frequency_hz` and implement the two abstract methods; the
    base class provides mode validation, second conversion, the
    bounded per-``(network, mode, size)`` result cache, and the
    lifetime :class:`BackendOccupancy` ledger serving engines fill.

    >>> from repro.backends import get_backend
    >>> backend = get_backend("gpu")
    >>> backend.name, backend.capabilities.supports_ism
    ('gpu', True)
    """

    name: str = "abstract"
    capabilities: BackendCapabilities = BackendCapabilities()
    frequency_hz: float = 1.0e9

    def __init__(self, cache_size: int = 32) -> None:
        self._result_cache = LRUCache(maxsize=cache_size)
        self.occupancy = BackendOccupancy()

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run_network(
        self, specs: Sequence[ConvSpec], mode: str = "baseline"
    ) -> RunResult:
        """Schedule and execute a :class:`ConvSpec` layer table."""

    @abc.abstractmethod
    def nonkey_frame(
        self, size: tuple[int, int] = QHD, config: ISMConfig | None = None
    ) -> LayerResult:
        """Cost of one ISM non-key frame (``config`` is an
        :class:`~repro.core.ism.ISMConfig`), or raise
        :class:`UnsupportedModeError` if the target cannot run it."""

    # ------------------------------------------------------------------
    # shared behaviour
    # ------------------------------------------------------------------
    def supports_mode(self, mode: str) -> bool:
        """Whether the capabilities admit ``mode``.

        >>> from repro.backends import get_backend
        >>> get_backend("eyeriss").supports_mode("ilar")
        False
        """
        return mode in self.capabilities.modes

    def require_mode(self, mode: str) -> None:
        """Validate ``mode`` against :data:`MODES` and the capabilities.

        >>> from repro.backends import get_backend
        >>> get_backend("gpu").require_mode("baseline")  # accepted: no raise
        """
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
        if not self.supports_mode(mode):
            raise UnsupportedModeError(
                f"backend {self.name!r} does not support mode {mode!r} "
                f"(supported: {self.capabilities.modes})"
            )

    def seconds(self, result: RunResult | LayerResult) -> float:
        """Wall-clock time of a :class:`RunResult`/:class:`LayerResult`.

        >>> from repro.backends import get_backend
        >>> backend = get_backend("gpu")
        >>> result = backend.network_result("DispNet", size=(68, 120))
        >>> backend.seconds(result) > 0
        True
        """
        return result.cycles / self.frequency_hz

    def network_result(
        self, network: str, mode: str = "baseline", size: tuple[int, int] = QHD
    ) -> RunResult:
        """Memoized :meth:`run_network` for a named stereo network.

        >>> from repro.backends import get_backend
        >>> backend = get_backend("gpu")
        >>> first = backend.network_result("DispNet", size=(68, 120))
        >>> backend.network_result("DispNet", size=(68, 120)) is first
        True
        """
        key = (network, mode, tuple(size))
        return self._result_cache.get_or_create(
            key, lambda: self.run_network(network_specs(network, size), mode=mode)
        )

    def network_seconds(
        self, network: str, mode: str = "baseline", size: tuple[int, int] = QHD
    ) -> float:
        """Memoized wall-clock seconds of one named-network inference.

        >>> from repro.backends import get_backend
        >>> get_backend("gpu").network_seconds("DispNet", size=(68, 120)) > 0
        True
        """
        return self.seconds(self.network_result(network, mode, size))

    def cache_info(self) -> CacheInfo:
        """Hit/miss statistics of the bounded result cache.

        >>> from repro.backends import get_backend
        >>> get_backend("gpu").cache_info().misses
        0
        """
        return self._result_cache.cache_info()

    def clear_cache(self) -> None:
        """Drop every memoized result and reset the hit/miss counters.

        >>> from repro.backends import get_backend
        >>> backend = get_backend("gpu")
        >>> _ = backend.network_result("DispNet", size=(68, 120))
        >>> backend.clear_cache(); backend.cache_info().currsize
        0
        """
        self._result_cache.clear()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
