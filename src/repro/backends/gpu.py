"""The mobile-GPU roofline as an execution backend.

Wraps :class:`~repro.hw.gpu.GPUModel` (the Jetson TX2 Pascal
characterisation).  Deconvolutions run dense (cuDNN-style
``conv_transpose``), so neither DCT nor ILAR applies — the only
execution mode is ``baseline``.  The ISM non-key frame *is*
supported: dense optical flow and block matching are classic GPU
workloads, modelled with the same roofline (ops against derated peak
throughput, streamed bytes against LPDDR4 bandwidth).

The GPU has no accelerator clock; results are expressed in cycles of
a 1 GHz virtual tick so they compose with the cycle-based backends
through :meth:`ExecutionBackend.seconds`.  Energy is the sustained
board-rail power times execution time, reported as static energy.
"""

from __future__ import annotations

from typing import Sequence

from repro.backends.base import BackendCapabilities, ExecutionBackend
from repro.backends.registry import register_backend
from repro.core.ism import ISMConfig, nonkey_op_counts
from repro.hw.energy import EnergyBreakdown
from repro.hw.gpu import JETSON_TX2, GPUModel
from repro.hw.systolic import LayerResult, RunResult
from repro.models.stereo_networks import QHD
from repro.nn.workload import ConvSpec

__all__ = ["GPUBackend"]


@register_backend("gpu")
class GPUBackend(ExecutionBackend):
    """Roofline GPU: baseline mode only, but ISM-capable.

    >>> backend = GPUBackend()
    >>> backend.capabilities.modes
    ('baseline',)
    >>> nonkey = backend.nonkey_frame((68, 120))
    >>> key = backend.network_result("DispNet", size=(68, 120))
    >>> backend.seconds(nonkey) < backend.seconds(key)
    True
    """

    name = "gpu"
    capabilities = BackendCapabilities(
        supports_dct=False, supports_ilar=False, supports_ism=True
    )
    frequency_hz = 1.0e9  # virtual tick; the roofline is time-native

    def __init__(
        self,
        hw: object = None,
        energy: object = None,
        model: GPUModel = JETSON_TX2,
        cache_size: int = 32,
    ) -> None:
        # ``hw``/``energy`` are accepted for factory uniformity and
        # ignored: the GPU is a fixed product, not a configurable
        # accelerator envelope.
        super().__init__(cache_size=cache_size)
        self.model = model

    def _layer_result(self, name: str, seconds: float, macs: int,
                      dram_bytes: int) -> LayerResult:
        cycles = seconds * self.frequency_hz  # float: keeps time exact
        return LayerResult(
            name=name,
            cycles=cycles,
            compute_cycles=cycles,
            memory_cycles=cycles,
            macs=macs,
            dram_bytes=dram_bytes,
            sram_bytes=0,
            energy=EnergyBreakdown(static_j=seconds * self.model.power_w),
        )

    def run_network(
        self, specs: Sequence[ConvSpec], mode: str = "baseline"
    ) -> RunResult:
        self.require_mode(mode)
        layers = []
        for spec in specs:
            seconds = self.model.layer_seconds(spec)
            moved = (
                spec.ifmap_elems + spec.ofmap_elems + spec.params
            ) * self.model.bytes_per_elem
            layers.append(
                self._layer_result(
                    f"{spec.name}[gpu]", seconds, spec.macs, moved
                )
            )
        return RunResult(layers)

    def nonkey_frame(
        self, size: tuple[int, int] = QHD, config: ISMConfig | None = None
    ) -> LayerResult:
        """Roofline cost of one ISM non-key frame on the GPU."""
        h, w = size
        ops = nonkey_op_counts(h, w, config)
        total_ops = ops.array_ops + ops.pixel_updates + ops.bookkeeping
        compute_s = total_ops / (
            self.model.peak_macs_per_sec * self.model.kernel_efficiency
        )
        moved_bytes = ops.streamed_elems * self.model.bytes_per_elem
        memory_s = moved_bytes / self.model.dram_bytes_per_sec
        seconds = max(compute_s, memory_s)
        return self._layer_result(
            "ism-nonkey[gpu]", seconds, ops.array_ops, moved_bytes
        )
