"""The ASV systolic accelerator as an execution backend.

Wraps :class:`~repro.hw.systolic.SystolicModel` plus the DCO
scheduling stack: lowering (with or without the deconvolution
transformation), static-partition search for the baseline/DCT modes,
and the full tiling optimizer for the reuse-aware modes.  The ISM
non-key frame maps onto the same hardware per Sec. 5.1: the
convolution-shaped work (Gaussian/moment filters, SAD passes) runs on
the PE array, the point-wise "Matrix Update" / "Compute Flow" stages
run on the scalar unit, and frame pixels and maps stream through DRAM.
"""

from __future__ import annotations

import math

from typing import Sequence

from repro.backends.base import BackendCapabilities, ExecutionBackend
from repro.backends.registry import register_backend
from repro.core.ism import ISMConfig, nonkey_op_counts
from repro.deconv.exhaustive import best_static_partition
from repro.deconv.lowering import lower_network
from repro.deconv.optimizer import optimize_layers
from repro.hw.config import ASV_BASE, HWConfig
from repro.hw.energy import ENERGY_16NM, EnergyBreakdown, EnergyModel
from repro.hw.systolic import LayerResult, RunResult, SystolicModel
from repro.models.stereo_networks import QHD
from repro.nn.workload import ConvSpec

__all__ = ["SystolicBackend"]


@register_backend("systolic")
class SystolicBackend(ExecutionBackend):
    """ASV's systolic array: supports every optimization level.

    >>> backend = SystolicBackend()
    >>> backend.capabilities.modes
    ('baseline', 'dct', 'convr', 'ilar')
    >>> backend.nonkey_frame((68, 120)).cycles > 0   # ISM runs on-chip
    True
    """

    name = "systolic"
    capabilities = BackendCapabilities(
        supports_dct=True, supports_ilar=True, supports_ism=True
    )

    def __init__(
        self,
        hw: HWConfig = ASV_BASE,
        energy: EnergyModel = ENERGY_16NM,
        cache_size: int = 32,
    ) -> None:
        super().__init__(cache_size=cache_size)
        self.hw = hw
        self.energy = energy
        self.frequency_hz = hw.frequency_hz
        self.model = SystolicModel(hw, energy)

    def run_network(
        self, specs: Sequence[ConvSpec], mode: str = "baseline"
    ) -> RunResult:
        """Lower, schedule and execute a layer table under ``mode``."""
        self.require_mode(mode)
        if mode == "baseline":
            layers = lower_network(specs, transform=False)
            _, schedules = best_static_partition(layers, self.hw, self.model)
        elif mode == "dct":
            layers = lower_network(specs, transform=True, ilar=False)
            _, schedules = best_static_partition(layers, self.hw, self.model)
        else:
            layers = lower_network(specs, transform=True, ilar=(mode == "ilar"))
            schedules = optimize_layers(layers, self.hw, self.model)
        return self.model.run_schedules(schedules, validate=False)

    def nonkey_frame(
        self, size: tuple[int, int] = QHD, config: ISMConfig | None = None
    ) -> LayerResult:
        """Latency/energy of one ISM non-key frame (Sec. 5.1 mapping)."""
        config = config or ISMConfig()
        h, w = size
        hw = self.hw
        ops = nonkey_op_counts(h, w, config)
        # convolution-shaped work on the PE array: both flow streams'
        # moment/window filters + the SAD passes of the guided search
        pe_cycles = math.ceil(ops.array_ops / hw.pe_count)

        # point-wise pixel updates on the scalar unit
        scalar = self.model.scalar_op_result(
            "ism-pointwise", ops=ops.pixel_updates, elems_touched=ops.pixel_updates
        )

        moved_bytes = ops.streamed_elems * hw.bytes_per_elem
        mem_cycles = math.ceil(moved_bytes / hw.dram_bytes_per_cycle)

        cycles = max(pe_cycles, mem_cycles) + scalar.cycles
        seconds = cycles / hw.frequency_hz
        energy = EnergyBreakdown(
            mac_j=self.energy.compute(ops.array_ops) + scalar.energy.mac_j,
            sram_j=self.energy.sram(2 * moved_bytes),
            rf_j=self.energy.rf(2 * ops.array_ops * hw.bytes_per_elem),
            dram_j=self.energy.dram(moved_bytes),
            static_j=self.energy.static(seconds),
        )
        return LayerResult(
            name="ism-nonkey",
            cycles=cycles,
            compute_cycles=pe_cycles + scalar.cycles,
            memory_cycles=mem_cycles,
            macs=ops.array_ops,
            dram_bytes=moved_bytes,
            sram_bytes=2 * moved_bytes,
            energy=energy,
        )
