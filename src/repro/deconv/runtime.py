"""Runnable transformed layers: execute a network with DCT applied.

:func:`repro.deconv.transform.deconv_via_subconvolutions` proves the
transformation on raw arrays; this module packages it as a drop-in
:class:`~repro.nn.layers.Layer`, so a whole runnable
:class:`~repro.nn.network.Sequential` can be rewritten with
:func:`transform_network` and executed — useful for end-to-end numeric
verification and for the examples.
"""

from __future__ import annotations

import numpy as np

from repro.deconv.transform import deconv_via_subconvolutions
from repro.nn.layers import Deconv, Layer
from repro.nn.network import Sequential

__all__ = ["TransformedDeconv", "transform_network"]


class TransformedDeconv(Layer):
    """A deconvolution executed as dense sub-convolutions + gather.

    Numerically identical to the wrapped :class:`Deconv` (same weights,
    same output), but every MAC it performs touches real data — the
    runnable counterpart of the scheduling-level transformation.
    """

    def __init__(self, original: Deconv):
        if not isinstance(original, Deconv):
            raise TypeError("TransformedDeconv wraps a Deconv layer")
        self.original = original
        self.name = f"{original.name}[dct]"

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = deconv_via_subconvolutions(
            x,
            self.original.weight,
            stride=self.original.stride,
            padding=self.original.padding,
            output_padding=self.original.output_padding,
        )
        if self.original.bias is not None:
            out += self.original.bias.reshape((-1,) + (1,) * (out.ndim - 1))
        return out

    def output_shape(self, input_shape):
        return self.original.output_shape(input_shape)


def transform_network(net: Sequential) -> Sequential:
    """Copy of a network with every deconvolution transformed."""
    layers = [
        TransformedDeconv(l) if isinstance(l, Deconv) else l for l in net.layers
    ]
    return Sequential(layers, name=f"{net.name}[dct]")
