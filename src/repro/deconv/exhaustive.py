"""Baseline scheduler: exhaustively-searched *static* buffer partition.

The paper's baseline accelerator (Sec. 6.1/6.2) statically splits the
on-chip buffer between ifmap, weights and ofmap, chooses the partition
by exhaustive offline search over the whole network, and then uses the
*same* partition for every layer.  Deconvolutions run naively (dense
over the zero-stuffed map) unless the caller lowers them transformed
(the paper's DCT-only ablation runs the transformed network on this
same static-partition baseline scheduler).

Contrast with :mod:`repro.deconv.optimizer`, which re-solves the tiling
per layer and additionally exploits inter-layer activation reuse.
"""

from __future__ import annotations

from repro.deconv.optimizer import (
    _geometric_candidates,
    _resolve_tiles,
    balanced_split,
    build_schedule,
)
from repro.hw.config import HWConfig
from repro.hw.schedule import LayerWork, Schedule
from repro.hw.systolic import SystolicModel

__all__ = ["Partition", "schedule_with_partition", "best_static_partition"]


class Partition:
    """A static (ifmap, weight, ofmap) byte split of the usable buffer."""

    def __init__(self, ifmap_bytes: int, weight_bytes: int, ofmap_bytes: int):
        if min(ifmap_bytes, weight_bytes, ofmap_bytes) <= 0:
            raise ValueError("every partition section needs capacity")
        self.ifmap_bytes = ifmap_bytes
        self.weight_bytes = weight_bytes
        self.ofmap_bytes = ofmap_bytes

    @property
    def total(self) -> int:
        return self.ifmap_bytes + self.weight_bytes + self.ofmap_bytes

    def __repr__(self):
        mb = 1024 * 1024
        return (
            f"Partition(if={self.ifmap_bytes / mb:.2f}MB, "
            f"w={self.weight_bytes / mb:.2f}MB, of={self.ofmap_bytes / mb:.2f}MB)"
        )


def _first_fit_grid(layer: LayerWork, hw: HWConfig, part: Partition):
    """Smallest tile grid whose ifmap chunk fits the ifmap section."""
    bpe = hw.bytes_per_elem
    max_rows = max(s.out_rows for s in layer.subconvs)
    max_cols = max(s.out_cols for s in layer.subconvs)
    for n_col in [c for c in _geometric_candidates(max_cols) if c <= 16]:
        for n_ic in _geometric_candidates(layer.in_channels):
            for n_row in _geometric_candidates(max_rows):
                geom = _resolve_tiles(layer, n_row, n_col, n_ic)
                chunk = geom.max_tile_elems_per_channel * max(geom.ic_chunks) * bpe
                if chunk <= part.ifmap_bytes:
                    return n_row, n_col, n_ic, geom
    return None


def _greedy_groups(layer, geom, hw, part: Partition):
    """Fill filter groups against the static weight/ofmap sections."""
    bpe = hw.bytes_per_elem
    n_subs = len(layer.subconvs)
    max_r = [geom.max_share("rows", k) for k in range(n_subs)]
    max_c = [geom.max_share("cols", k) for k in range(n_subs)]
    w_cost = [s.taps * layer.in_channels * bpe for s in layer.subconvs]
    p_cost = [max_r[k] * max_c[k] * bpe for k in range(n_subs)]
    remaining = [s.filters for s in layer.subconvs]
    groups = []
    # large sub-kernels first, as many filters per group as both the
    # weight and ofmap sections allow
    order = sorted(range(n_subs), key=lambda k: -w_cost[k])
    while any(remaining):
        w_room, p_room = part.weight_bytes, part.ofmap_bytes
        group = [0] * n_subs
        for k in order:
            if not remaining[k]:
                continue
            fit = min(
                remaining[k],
                w_room // w_cost[k] if w_cost[k] else remaining[k],
                p_room // p_cost[k] if p_cost[k] else remaining[k],
            )
            group[k] = fit
            w_room -= fit * w_cost[k]
            p_room -= fit * p_cost[k]
        if not any(group):
            return None  # not even one filter fits this partition
        groups.append(tuple(group))
        for k in range(n_subs):
            remaining[k] -= group[k]
    return groups


def schedule_with_partition(
    layer: LayerWork,
    hw: HWConfig,
    part: Partition,
    model: SystolicModel | None = None,
) -> Schedule | None:
    """Schedule one layer under a fixed buffer partition, or ``None``
    if the partition cannot host the layer at all."""
    model = model or SystolicModel(hw)
    grid = _first_fit_grid(layer, hw, part)
    if grid is None:
        return None
    n_row, n_col, n_ic, geom = grid
    groups = _greedy_groups(layer, geom, hw, part)
    if groups is None:
        return None
    best = None
    best_cycles = None
    for weight_resident in (False, True):
        # resident full-I weights only fit the weight section when not chunked
        try:
            sched = build_schedule(
                layer, hw, n_row, n_col, n_ic, groups, weight_resident,
                label=f"static:{part!r}",
            )
            sched.validate(hw)
        except ValueError:
            continue
        cycles = model.run_schedule(sched, validate=False).cycles
        if best_cycles is None or cycles < best_cycles:
            best, best_cycles = sched, cycles
    return best


def best_static_partition(
    layers,
    hw: HWConfig,
    model: SystolicModel | None = None,
    granularity: int | None = None,
) -> tuple[Partition, list[Schedule]]:
    """Exhaustive offline partition search (the paper's strong baseline).

    Enumerates every (ifmap, weight, ofmap) split of the usable buffer
    at bank/2 granularity, schedules the *whole network* under each,
    and returns the partition minimising total latency together with
    its per-layer schedules.
    """
    model = model or SystolicModel(hw)
    # partition granularity tracks the buffer so the search always sees
    # ~12 allocation units, whatever the SRAM capacity
    gran = granularity or max(
        min(hw.bank_bytes // 2, hw.usable_buffer_bytes // 12), 4096
    )
    units = hw.usable_buffer_bytes // gran
    if units < 3:
        raise ValueError("buffer too small for a three-way partition")
    best = None
    best_cycles = None
    for i in range(1, units - 1):
        for w in range(1, units - i):
            o = units - i - w
            part = Partition(i * gran, w * gran, o * gran)
            schedules = []
            for layer in layers:
                sched = schedule_with_partition(layer, hw, part, model)
                if sched is None:
                    schedules = None
                    break
                schedules.append(sched)
            if schedules is None:
                continue
            cycles = sum(
                model.run_schedule(s, validate=False).cycles for s in schedules
            )
            if best_cycles is None or cycles < best_cycles:
                best, best_cycles = (part, schedules), cycles
    if best is None:
        raise ValueError(f"no static partition can host this network on {hw.name}")
    return best
