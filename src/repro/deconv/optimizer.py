"""Constrained-optimization tiling scheduler (paper Sec. 4.2).

Minimises per-layer latency (Eq. 3) subject to the hardware resource
constraints (Eq. 4/10): PE array size, usable on-chip buffer, and DRAM
bandwidth.  The optimization variables are the ifmap tile shape, the
input-channel chunking, the per-sub-kernel filter allocation of every
round (the vector C of Eq. 11), and the reuse order β (Eq. 7).

Following the paper, the filter allocation is solved as a Knapsack:
each filter of each sub-kernel is an item whose *weight* is its buffer
footprint and whose *value* is the MACs it retires.  A greedy solver
that prioritises filters from large sub-kernels runs standard dynamic
programming over the (discretised) capacity, and is applied iteratively
until every filter is scheduled — unlike 0/1 Knapsack, all items must
eventually be consumed.  Tile-shape and β candidates are enumerated
(the space is small once filter packing is delegated to the knapsack)
and each complete schedule is evaluated on the systolic latency model;
the fastest feasible schedule wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.config import HWConfig
from repro.hw.schedule import LayerWork, RoundPlan, Schedule, SubAllocation
from repro.hw.systolic import SystolicModel

__all__ = [
    "balanced_split",
    "pack_filter_groups",
    "build_schedule",
    "optimize_layer",
    "optimize_layers",
]


def balanced_split(total: int, parts: int) -> list[int]:
    """Split ``total`` into ``parts`` non-negative chunks differing by <= 1."""
    if parts < 1:
        raise ValueError("parts must be positive")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def _geometric_candidates(limit: int) -> list[int]:
    """1, 2, 4, ... up to and including ``limit``."""
    out = []
    v = 1
    while v < limit:
        out.append(v)
        v *= 2
    out.append(limit)
    return sorted(set(out))


@dataclass(frozen=True)
class _TileGeometry:
    """Resolved tile extents for one (row, col, ic) grid choice.

    Tiles are stored as equivalence classes: a balanced split yields at
    most two distinct shares per sub-convolution, so a grid of any size
    collapses to a handful of ``(per-sub shares, resident extent,
    multiplicity)`` classes.  The first class always contains tile 0.
    """

    n_row_tiles: int
    n_col_tiles: int
    n_ic_chunks: int
    # (per-sub out extent tuple, resident ifmap extent, count), in tile order
    row_classes: tuple[tuple[tuple[int, ...], int, int], ...]
    col_classes: tuple[tuple[tuple[int, ...], int, int], ...]
    ic_chunks: tuple[int, ...]

    @property
    def max_tile_rows(self) -> int:
        return max(c[1] for c in self.row_classes)

    @property
    def max_tile_cols(self) -> int:
        return max(c[1] for c in self.col_classes)

    @property
    def max_tile_elems_per_channel(self) -> int:
        return self.max_tile_rows * self.max_tile_cols

    def max_share(self, axis: str, k: int) -> int:
        classes = self.row_classes if axis == "rows" else self.col_classes
        return max(c[0][k] for c in classes)


def _axis_classes(layer: LayerWork, n_tiles: int, axis: str):
    """Equivalence classes of a balanced split along one axis."""
    if axis == "rows":
        totals = [s.out_rows for s in layer.subconvs]
        need = [s.rows_for for s in layer.subconvs]
        cap = layer.ifmap_rows
    else:
        totals = [s.out_cols for s in layer.subconvs]
        need = [s.cols_for for s in layer.subconvs]
        cap = layer.ifmap_cols
    bases = [t // n_tiles for t in totals]
    extras = [t % n_tiles for t in totals]
    # class boundaries: tiles j < extra_k get base_k + 1
    bounds = sorted({0, n_tiles, *extras})
    classes = []
    for lo, hi in zip(bounds, bounds[1:]):
        shares = tuple(
            bases[k] + (1 if lo < extras[k] else 0) for k in range(len(totals))
        )
        resident = min(cap, max(f(s) for f, s in zip(need, shares)))
        classes.append((shares, resident, hi - lo))
    return tuple(classes)


def _resolve_tiles(layer: LayerWork, n_row: int, n_col: int, n_ic: int) -> _TileGeometry:
    return _TileGeometry(
        n_row_tiles=n_row,
        n_col_tiles=n_col,
        n_ic_chunks=n_ic,
        row_classes=_axis_classes(layer, n_row, "rows"),
        col_classes=_axis_classes(layer, n_col, "cols"),
        ic_chunks=tuple(balanced_split(layer.in_channels, n_ic)),
    )


def pack_filter_groups(
    layer: LayerWork,
    capacity_bytes: int,
    weight_cost_per_filter: list[int],
    psum_cost_per_filter: list[int],
    value_per_filter: list[int],
) -> list[tuple[int, ...]]:
    """Iterated greedy-DP knapsack over filters (paper's solver).

    Returns a list of *groups*; each group is a per-sub-conv filter
    count tuple.  Every filter appears in exactly one group.  Within a
    group, the total footprint (weights + partial sums) fits
    ``capacity_bytes``.
    """
    n_subs = len(layer.subconvs)
    remaining = [s.filters for s in layer.subconvs]
    cost = [weight_cost_per_filter[k] + psum_cost_per_filter[k] for k in range(n_subs)]
    if capacity_bytes < min(cost):
        raise ValueError(
            f"{layer.name}: no single filter fits the remaining buffer "
            f"({capacity_bytes} B < {min(cost)} B)"
        )

    # discretise capacity so the DP stays small; ceil keeps it safe
    scale = max(1, capacity_bytes // 2048)
    cap = capacity_bytes // scale
    scaled = [max(1, math.ceil(c / scale)) for c in cost]

    groups: list[tuple[int, ...]] = []
    while any(remaining):
        take = _bounded_knapsack(cap, scaled, value_per_filter, remaining)
        if not any(take):
            # capacity fits some filter type but DP chose nothing only if
            # every remaining type is too large — force smallest
            k = min(
                (k for k in range(n_subs) if remaining[k]),
                key=lambda k: scaled[k],
            )
            if scaled[k] > cap:
                raise ValueError(f"{layer.name}: filter of sub {k} cannot fit")
            take = [0] * n_subs
            take[k] = 1
        groups.append(tuple(take))
        for k in range(n_subs):
            remaining[k] -= take[k]
    return groups


def _bounded_knapsack(cap, weights, values, counts):
    """Maximise value under ``cap`` with per-type counts.

    Greedy pre-pass in decreasing item size (the paper's 'prioritise
    filters from large sub-kernels'), then a DP refinement over the
    residual capacity using binary-split bounded items.
    """
    n = len(weights)
    take = [0] * n
    # greedy: large sub-kernels (heavier filters) first
    order = sorted(range(n), key=lambda k: -weights[k])
    room = cap
    for k in order:
        if counts[k] == 0 or weights[k] == 0:
            continue
        fit = min(counts[k], room // weights[k])
        take[k] = fit
        room -= fit * weights[k]
    if room == 0:
        return take
    # DP refinement on what is still unscheduled, over the residual room
    items = []
    for k in range(n):
        rem = counts[k] - take[k]
        mult = 1
        while rem > 0:
            use = min(mult, rem)
            items.append((k, use, weights[k] * use, values[k] * use))
            rem -= use
            mult *= 2
    best = [0] * (room + 1)
    choice = [dict() for _ in range(room + 1)]
    for k, use, w, v in items:
        if w > room:
            continue
        for r in range(room, w - 1, -1):
            cand = best[r - w] + v
            if cand > best[r]:
                best[r] = cand
                picked = dict(choice[r - w])
                picked[k] = picked.get(k, 0) + use
                choice[r] = picked
    for k, cnt in choice[room].items():
        take[k] += cnt
    return take


def _runs(values) -> list[tuple[object, int]]:
    """Run-length encode a sequence (order preserved)."""
    out = []
    for v in values:
        if out and out[-1][0] == v:
            out[-1][1] += 1
        else:
            out.append([v, 1])
    return [(v, n) for v, n in out]


def build_schedule(
    layer: LayerWork,
    hw: HWConfig,
    n_row_tiles: int,
    n_col_tiles: int,
    n_ic_chunks: int,
    groups: list[tuple[int, ...]],
    weight_resident: bool,
    label: str = "",
) -> Schedule:
    """Materialise the round sequence for one tiling choice.

    ``weight_resident`` is the β of Eq. 7: when True, each filter
    group's weights stay in the buffer while ifmap tiles stream past
    (loop order group → tile → ic-chunk); when False the ifmap tile is
    the resident operand and weights stream (tile → group → ic-chunk).

    Rounds are aggregated combinatorially: the balanced splits produce
    at most two distinct row shares, two column shares, two ic-chunk
    widths and a handful of distinct filter groups, so the schedule is
    emitted as O(classes) :class:`RoundPlan` entries with
    multiplicities rather than one object per round.
    """
    geom = _resolve_tiles(layer, n_row_tiles, n_col_tiles, n_ic_chunks)
    subs = layer.subconvs
    n_subs = len(subs)

    # equivalence classes along each loop axis: ((shares, resident), count)
    row_classes = [((sh, res), n) for sh, res, n in geom.row_classes]
    col_classes = [((sh, res), n) for sh, res, n in geom.col_classes]
    # ic chunks: all but the last are interchangeable; the last stores
    ic_body = _runs(geom.ic_chunks[:-1])
    ic_last = geom.ic_chunks[-1]
    group_classes = _runs(groups)

    def weights_elems(group, ic):
        return sum(subs[k].taps * ic * group[k] for k in range(n_subs))

    def make_plan(rk, ck, group, ic, is_last_chunk, ifmap_loaded, w_load, w_res):
        (r_shares, t_rows), (c_shares, t_cols) = rk, ck
        allocs = tuple(
            SubAllocation(
                sub_index=k,
                filters=group[k],
                out_rows=r_shares[k],
                out_cols=c_shares[k],
                in_channels=ic,
            )
            for k in range(n_subs)
        )
        psum = sum(
            group[k] * r_shares[k] * c_shares[k] for k in range(n_subs)
        )
        ifmap_elems = t_rows * t_cols * ic
        return RoundPlan(
            allocations=allocs,
            ifmap_resident_elems=ifmap_elems,
            ifmap_loads_elems=ifmap_elems if ifmap_loaded else 0,
            weight_resident_elems=w_res,
            weight_loads_elems=w_load,
            psum_resident_elems=psum,
            output_store_elems=psum if is_last_chunk else 0,
        )

    sched = Schedule(layer=layer, rounds=[], counts=[], label=label)

    def ic_iter():
        """(ic, count, is_last) classes of the chunk loop."""
        for ic, n in ic_body:
            yield ic, n, False
        yield ic_last, 1, True

    if weight_resident:
        # loop order: group -> tile -> chunk; weights loaded at first tile
        first_rk, first_ck = row_classes[0][0], col_classes[0][0]
        for group, g_count in group_classes:
            w_res = weights_elems(group, layer.in_channels)
            for ic, q_count, is_last in ic_iter():
                w_load = weights_elems(group, ic)
                # the first tile of each group instance loads this chunk's
                # weights; every other tile re-streams the ifmap only
                sched.add(
                    make_plan(first_rk, first_ck, group, ic, is_last,
                              True, w_load, w_res),
                    g_count * q_count,
                )
                for i_r, (rk, r_count) in enumerate(row_classes):
                    for i_c, (ck, c_count) in enumerate(col_classes):
                        tiles = r_count * c_count
                        if i_r == 0 and i_c == 0:
                            tiles -= 1  # first tile emitted above
                        if tiles <= 0:
                            continue
                        sched.add(
                            make_plan(rk, ck, group, ic, is_last,
                                      True, 0, w_res),
                            g_count * q_count * tiles,
                        )
    else:
        # loop order: tile -> group -> chunk; ifmap chunk resident across
        # groups only when not swapped out by ic-chunking
        for rk, r_count in row_classes:
            for ck, c_count in col_classes:
                tiles = r_count * c_count
                for gi, (group, g_count) in enumerate(_runs(groups)):
                    for ic, q_count, is_last in ic_iter():
                        w = weights_elems(group, ic)
                        if n_ic_chunks > 1:
                            sched.add(
                                make_plan(rk, ck, group, ic, is_last,
                                          True, w, w),
                                tiles * g_count * q_count,
                            )
                        elif gi == 0:
                            # first group instance loads the tile once
                            sched.add(
                                make_plan(rk, ck, group, ic, is_last,
                                          True, w, w),
                                tiles,
                            )
                            if g_count > 1:
                                sched.add(
                                    make_plan(rk, ck, group, ic, is_last,
                                              False, w, w),
                                    tiles * (g_count - 1),
                                )
                        else:
                            sched.add(
                                make_plan(rk, ck, group, ic, is_last,
                                          False, w, w),
                                tiles * g_count,
                            )
    return sched


def _candidate_grids(layer: LayerWork, hw: HWConfig):
    """Enumerate (n_row, n_col, n_ic) grids worth evaluating."""
    max_rows = max(s.out_rows for s in layer.subconvs)
    max_cols = max(s.out_cols for s in layer.subconvs)
    rows = _geometric_candidates(max_rows)
    cols = [c for c in _geometric_candidates(max_cols) if c <= 16]
    ics = _geometric_candidates(layer.in_channels)
    cap = hw.usable_buffer_bytes
    bpe = hw.bytes_per_elem
    for n_col in cols:
        for n_ic in ics:
            for n_row in rows:
                geom = _resolve_tiles(layer, n_row, n_col, n_ic)
                chunk = (
                    geom.max_tile_elems_per_channel * max(geom.ic_chunks) * bpe
                )
                if chunk < cap:  # leave room for >= one filter
                    yield n_row, n_col, n_ic


def optimize_layer(
    layer: LayerWork,
    hw: HWConfig,
    model: SystolicModel | None = None,
    max_candidates: int = 64,
    beta_choices: tuple[bool, ...] = (False, True),
) -> Schedule:
    """Best-latency schedule for one layer group (ties broken by DRAM
    traffic, mirroring the paper's latency-first objective).

    ``beta_choices`` restricts the reuse-order variable of Eq. 7 — the
    default explores both orders; passing a single value ablates the
    choice (used by the scheduler-ablation study).
    """
    model = model or SystolicModel(hw)
    bpe = hw.bytes_per_elem
    cap = hw.usable_buffer_bytes
    best = None
    best_key = None
    seen = 0
    for n_row, n_col, n_ic in _candidate_grids(layer, hw):
        geom = _resolve_tiles(layer, n_row, n_col, n_ic)
        ifmap_bytes = geom.max_tile_elems_per_channel * max(geom.ic_chunks) * bpe
        budget = cap - ifmap_bytes
        if budget <= 0:
            continue
        max_r = [geom.max_share("rows", k) for k in range(len(layer.subconvs))]
        max_c = [geom.max_share("cols", k) for k in range(len(layer.subconvs))]
        for weight_resident in beta_choices:
            ic_for_cost = (
                layer.in_channels if weight_resident else max(geom.ic_chunks)
            )
            w_cost = [s.taps * ic_for_cost * bpe for s in layer.subconvs]
            p_cost = [
                max_r[k] * max_c[k] * bpe for k in range(len(layer.subconvs))
            ]
            value = [
                s.taps * layer.in_channels * s.out_rows * s.out_cols
                for s in layer.subconvs
            ]
            try:
                groups = pack_filter_groups(layer, budget, w_cost, p_cost, value)
                sched = build_schedule(
                    layer, hw, n_row, n_col, n_ic, groups, weight_resident,
                    label=f"r{n_row}c{n_col}i{n_ic}b{int(weight_resident)}",
                )
                sched.validate(hw)
            except ValueError:
                continue
            result = model.run_schedule(sched, validate=False)
            key = (result.cycles, result.dram_bytes)
            if best_key is None or key < best_key:
                best, best_key = sched, key
        seen += 1
        if seen >= max_candidates and best is not None:
            break
    if best is None:
        raise ValueError(f"{layer.name}: no feasible schedule on {hw.name}")
    return best


def optimize_layers(
    layers, hw: HWConfig, model: SystolicModel | None = None
) -> list[Schedule]:
    """Optimize a lowered network layer by layer (layer-wise execution)."""
    model = model or SystolicModel(hw)
    return [optimize_layer(l, hw, model) for l in layers]
