"""Deconvolution optimizations (paper Sec. 4).

* :mod:`repro.deconv.transform` — the deconvolution-to-convolution
  rewriting (DCT) and its numeric gather path.
* :mod:`repro.deconv.lowering` — layer geometry to schedulable work.
* :mod:`repro.deconv.optimizer` — the constrained-optimization tiling
  scheduler with the greedy-DP knapsack filter packer (ConvR/ILAR).
* :mod:`repro.deconv.exhaustive` — the baseline static-partition
  scheduler with exhaustive offline partition search.
"""

from repro.deconv.exhaustive import (
    Partition,
    best_static_partition,
    schedule_with_partition,
)
from repro.deconv.lowering import (
    lower_conv,
    lower_naive_deconv,
    lower_network,
    lower_spec,
    lower_transformed,
)
from repro.deconv.optimizer import (
    balanced_split,
    build_schedule,
    optimize_layer,
    optimize_layers,
    pack_filter_groups,
)
from repro.deconv.runtime import TransformedDeconv, transform_network
from repro.deconv.transform import (
    SubConvGeometry,
    decompose_geometry,
    decompose_kernel,
    deconv_via_subconvolutions,
    transformed_specs,
)

__all__ = [
    "Partition",
    "SubConvGeometry",
    "TransformedDeconv",
    "transform_network",
    "balanced_split",
    "best_static_partition",
    "build_schedule",
    "decompose_geometry",
    "decompose_kernel",
    "deconv_via_subconvolutions",
    "lower_conv",
    "lower_naive_deconv",
    "lower_network",
    "lower_spec",
    "lower_transformed",
    "optimize_layer",
    "optimize_layers",
    "pack_filter_groups",
    "schedule_with_partition",
    "transformed_specs",
]
