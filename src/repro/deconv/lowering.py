"""Lowering layer geometry (:class:`ConvSpec`) to schedulable work.

Three lowering modes correspond to the paper's execution strategies:

* ``lower_conv`` / ``lower_naive_deconv`` — the baseline accelerator's
  view.  A deconvolution is executed *naively*: the zero-stuffed,
  border-padded ifmap is materialised and a dense stride-1 convolution
  runs over it, paying both the redundant MACs and the redundant
  memory traffic for the structural zeros (Sec. 4.1's motivation).
* ``lower_transformed`` — after the deconvolution-to-convolution
  transformation: one :class:`LayerWork` *group* whose sub-convolutions
  share the original (small) ifmap.  With ``ilar=True`` the group is
  scheduled jointly so each ifmap fetch serves every sub-kernel; with
  ``ilar=False`` each sub-convolution becomes its own group (ConvR in
  the paper's ablation — conventional reuse only).

Spatial flattening
------------------
``LayerWork`` tiles a (rows x cols) view of the feature map: ``cols``
is the innermost spatial axis and ``rows`` flattens all outer spatial
axes.  For 3-D cost volumes the kernel reach along the flattened row
axis is ``(KD - 1) * H + KH`` — the exact span of one output's
receptive field in flattened coordinates — and the per-output-row input
advance is ``SD * SH`` (exact in aggregate).  Tiles large relative to
one ``H`` run make the flattening approximation negligible.
"""

from __future__ import annotations

import math

from repro.deconv.transform import decompose_geometry
from repro.hw.schedule import LayerWork, SubConvWork
from repro.nn.workload import ConvSpec

__all__ = [
    "lower_conv",
    "lower_naive_deconv",
    "lower_transformed",
    "lower_spec",
    "lower_network",
]


def _row_geometry(kernel, stride, input_size):
    """Flattened (extent, stride) along the row axis for any rank."""
    if len(kernel) == 1:
        return 1, 1
    if len(kernel) == 2:
        return kernel[0], stride[0]
    # 3-D: rows flatten (D, H); one output needs KD slices of H plus KH
    extent = (kernel[0] - 1) * input_size[1] + kernel[1]
    return extent, stride[0] * stride[1]


def _split_spatial(size):
    """(rows, cols) view of a spatial shape: cols = innermost axis."""
    if len(size) == 1:
        return 1, size[0]
    return math.prod(size[:-1]), size[-1]


def lower_conv(spec: ConvSpec) -> LayerWork:
    """A convolution layer as a single-sub-convolution group."""
    if spec.deconv:
        raise ValueError(f"{spec.name} is a deconvolution; use a deconv lowering")
    in_rows, in_cols = _split_spatial(spec.input_size)
    out_rows, out_cols = _split_spatial(spec.output_size)
    extent, stride = _row_geometry(spec.kernel, spec.stride, spec.input_size)
    sub = SubConvWork(
        name=spec.name,
        taps=math.prod(spec.kernel),
        filters=spec.out_channels,
        out_rows=out_rows,
        out_cols=out_cols,
        tile_kernel_extent=min(extent, in_rows),
        tile_stride=stride,
        col_kernel_extent=min(spec.kernel[-1], in_cols),
        col_stride=spec.stride[-1],
    )
    return LayerWork(
        name=spec.name,
        in_channels=spec.in_channels,
        ifmap_rows=in_rows,
        ifmap_cols=in_cols,
        subconvs=(sub,),
        share_ifmap=True,
        repeat=spec.repeat,
    )


def lower_naive_deconv(spec: ConvSpec) -> LayerWork:
    """A deconvolution executed the baseline way: dense over the
    zero-stuffed map (redundant zeros included in compute *and*
    traffic)."""
    if not spec.deconv:
        raise ValueError(f"{spec.name} is not a deconvolution")
    up = spec.upsampled_size
    in_rows, in_cols = _split_spatial(up)
    out_rows, out_cols = _split_spatial(spec.output_size)
    ones = (1,) * spec.ndim
    extent, stride = _row_geometry(spec.kernel, ones, up)
    sub = SubConvWork(
        name=spec.name,
        taps=math.prod(spec.kernel),
        filters=spec.out_channels,
        out_rows=out_rows,
        out_cols=out_cols,
        tile_kernel_extent=min(extent, in_rows),
        tile_stride=stride,
        col_kernel_extent=min(spec.kernel[-1], in_cols),
        col_stride=1,
    )
    return LayerWork(
        name=f"{spec.name}[naive]",
        in_channels=spec.in_channels,
        ifmap_rows=in_rows,
        ifmap_cols=in_cols,
        subconvs=(sub,),
        share_ifmap=True,
        repeat=spec.repeat,
    )


def lower_transformed(spec: ConvSpec, ilar: bool = True) -> list[LayerWork]:
    """A deconvolution after the transformation of Sec. 4.1.

    Returns one shared-ifmap group when ``ilar`` is set, otherwise one
    independent group per sub-convolution (each re-fetching the ifmap).
    """
    if not spec.deconv:
        raise ValueError(f"{spec.name} is not a deconvolution")
    in_rows, in_cols = _split_spatial(spec.input_size)
    geoms = decompose_geometry(
        spec.kernel, spec.stride, spec.padding, spec.input_size
    )
    ones = (1,) * spec.ndim
    subs = []
    for i, g in enumerate(geoms):
        out_rows, out_cols = _split_spatial(g.out_size)
        extent, _ = _row_geometry(g.kernel, ones, spec.input_size)
        subs.append(
            SubConvWork(
                name=f"{spec.name}/sub{i}",
                taps=g.taps,
                filters=spec.out_channels,
                out_rows=out_rows,
                out_cols=out_cols,
                tile_kernel_extent=min(extent, in_rows),
                tile_stride=1,
                col_kernel_extent=min(g.kernel[-1], in_cols),
                col_stride=1,
            )
        )
    if ilar:
        return [
            LayerWork(
                name=f"{spec.name}[dct+ilar]",
                in_channels=spec.in_channels,
                ifmap_rows=in_rows,
                ifmap_cols=in_cols,
                subconvs=tuple(subs),
                share_ifmap=True,
                repeat=spec.repeat,
            )
        ]
    return [
        LayerWork(
            name=f"{spec.name}[dct]/sub{i}",
            in_channels=spec.in_channels,
            ifmap_rows=in_rows,
            ifmap_cols=in_cols,
            subconvs=(sub,),
            share_ifmap=True,
            repeat=spec.repeat,
        )
        for i, sub in enumerate(subs)
    ]


def lower_spec(
    spec: ConvSpec, transform: bool = True, ilar: bool = True
) -> list[LayerWork]:
    """Lower any layer under the chosen execution strategy."""
    if not spec.deconv:
        return [lower_conv(spec)]
    if not transform:
        return [lower_naive_deconv(spec)]
    return lower_transformed(spec, ilar=ilar)


def lower_network(
    specs, transform: bool = True, ilar: bool = True
) -> list[LayerWork]:
    """Lower a full layer table in order."""
    out = []
    for spec in specs:
        out.extend(lower_spec(spec, transform=transform, ilar=ilar))
    return out
