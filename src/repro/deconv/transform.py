"""Deconvolution-to-convolution transformation (paper Sec. 4.1, App. A).

A stride-``s`` deconvolution is inherently sparse: the input is
zero-stuffed before the dense convolution, so for ``s = 2`` roughly 75 %
(2-D) or 87.5 % (3-D) of the MACs touch a structural zero.  The paper's
key transformation rewrites the deconvolution as ``prod(s)`` *dense*
convolutions of the **original** (un-stuffed) ifmap with sub-kernels
drawn from the stride-parity classes of the original kernel, followed by
a gather that interleaves the sub-outputs.

Derivation used throughout this module
--------------------------------------
Let ``b = K - 1 - p`` be the zero border added by the standard path and
``up`` the stuffed map (``up[b + s*t] = x[t]``).  For output position
``o``::

    out[o] = sum_k up[o + k] * K[k]

Only taps with ``(o + k - b) % s == 0`` hit a real input element.  For
fixed ``o`` these taps share the parity ``delta = (b - o) % s``, so

    out[o] = sum_kappa x[m + kappa] * K[s*kappa + delta],
    m = (o + delta - b) / s

which is a stride-1 convolution of ``x`` with the sub-kernel
``S_delta = K[delta::s]``.  Outputs of parity class ``delta`` occupy
positions ``o ≡ r (mod s)`` with ``r = (b - delta) % s``, and the
sub-convolution needs a left pad of ``q = floor((b - delta) / s)``.

The same algebra holds per spatial dimension, which yields App. A's
general N-dimensional decomposition into ``prod(stride)`` sub-kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product as iproduct

import numpy as np

from repro.nn.ops import convnd, deconv_output_size, pad_spatial
from repro.nn.workload import ConvSpec

__all__ = [
    "SubConvGeometry",
    "decompose_geometry",
    "decompose_kernel",
    "deconv_via_subconvolutions",
    "transformed_specs",
]


@dataclass(frozen=True)
class SubConvGeometry:
    """Geometry of one sub-convolution produced by the transformation.

    All tuples are per-spatial-dimension.  The sub-convolution is a
    stride-1 dense convolution of the original ifmap (padded by
    ``pad_lo``/``pad_hi``) with a ``kernel``-shaped sub-kernel; its
    outputs land at positions ``offset + stride * j`` of the gathered
    deconvolution output.
    """

    delta: tuple[int, ...]
    kernel: tuple[int, ...]
    offset: tuple[int, ...]
    out_size: tuple[int, ...]
    pad_lo: tuple[int, ...]  # negative means the ifmap is cropped instead
    pad_hi: tuple[int, ...]

    @property
    def taps(self) -> int:
        """Kernel taps per output element (per in/out channel pair)."""
        return math.prod(self.kernel)

    @property
    def outputs(self) -> int:
        """Spatial output element count."""
        return math.prod(self.out_size)


def _per_dim_geometry(delta, k, s, p, op, in_size):
    """Solve the single-dimension gather geometry for one parity class."""
    b = k - 1 - p
    sub_size = len(range(delta, k, s))
    if sub_size == 0:
        return None
    out = deconv_output_size(in_size, k, s, p, op)
    r = (b - delta) % s
    n = math.ceil((out - r) / s) if out > r else 0
    if n == 0:
        return None
    q = (b - delta) // s
    # rightmost window start is (n-1) - q; it must reach index m + sub-1
    right_need = (n - 1) - q + sub_size - 1
    pad_hi = max(0, right_need - (in_size - 1))
    return sub_size, r, n, q, pad_hi


def decompose_geometry(
    kernel, stride, padding, input_size, output_padding=0
) -> list[SubConvGeometry]:
    """Enumerate the sub-convolutions for a deconvolution's geometry.

    Returns one :class:`SubConvGeometry` per non-empty parity class
    (``prod(stride)`` classes at most; classes whose sub-kernel or
    output range is empty are dropped, which can happen for kernels
    smaller than the stride).
    """
    ndim = len(kernel)
    stride = (stride,) * ndim if isinstance(stride, int) else tuple(stride)
    padding = (padding,) * ndim if isinstance(padding, int) else tuple(padding)
    output_padding = (
        (output_padding,) * ndim
        if isinstance(output_padding, int)
        else tuple(output_padding)
    )
    input_size = tuple(input_size)
    subs = []
    for delta in iproduct(*(range(s) for s in stride)):
        dims = [
            _per_dim_geometry(d, k, s, p, op, n)
            for d, k, s, p, op, n in zip(
                delta, kernel, stride, padding, output_padding, input_size
            )
        ]
        if any(dim is None for dim in dims):
            continue
        subs.append(
            SubConvGeometry(
                delta=delta,
                kernel=tuple(d[0] for d in dims),
                offset=tuple(d[1] for d in dims),
                out_size=tuple(d[2] for d in dims),
                pad_lo=tuple(d[3] for d in dims),
                pad_hi=tuple(d[4] for d in dims),
            )
        )
    return subs


def decompose_kernel(w: np.ndarray, stride) -> dict[tuple[int, ...], np.ndarray]:
    """Split a dense deconvolution kernel into its parity sub-kernels.

    ``w`` is ``(F, C, *K)``; the result maps each parity ``delta`` to
    the sub-kernel ``w[..., delta_0::s_0, delta_1::s_1, ...]``.  The
    sub-kernels exactly partition the elements of ``w``.
    """
    ndim = w.ndim - 2
    stride = (stride,) * ndim if isinstance(stride, int) else tuple(stride)
    out = {}
    for delta in iproduct(*(range(s) for s in stride)):
        slicer = (slice(None), slice(None)) + tuple(
            slice(d, None, s) for d, s in zip(delta, stride)
        )
        sub = w[slicer]
        if 0 in sub.shape:
            continue
        out[delta] = sub
    return out


def deconv_via_subconvolutions(
    x: np.ndarray, w: np.ndarray, stride=1, padding=0, output_padding=0
) -> np.ndarray:
    """Numerically execute a deconvolution as dense sub-convolutions.

    This is the paper's Fig. 6 "Our Algorithm" path: decompose, run each
    sub-convolution over the *original* ifmap, and gather.  Bit-exact
    with :func:`repro.nn.ops.deconvnd` (tested by property tests).
    """
    ndim = w.ndim - 2
    stride_t = (stride,) * ndim if isinstance(stride, int) else tuple(stride)
    padding_t = (padding,) * ndim if isinstance(padding, int) else tuple(padding)
    op_t = (
        (output_padding,) * ndim
        if isinstance(output_padding, int)
        else tuple(output_padding)
    )
    kernel = w.shape[2:]
    in_size = x.shape[1:]
    out_size = tuple(
        deconv_output_size(n, k, s, p, op)
        for n, k, s, p, op in zip(in_size, kernel, stride_t, padding_t, op_t)
    )
    subs = decompose_geometry(kernel, stride_t, padding_t, in_size, op_t)
    sub_kernels = decompose_kernel(w, stride_t)
    out = np.zeros((w.shape[0],) + out_size, dtype=np.result_type(x, w))
    for geom in subs:
        sub_w = sub_kernels[geom.delta]
        # a negative pad_lo is a crop: those leading ifmap elements never
        # contribute to this parity class
        crop = tuple(max(0, -lo) for lo in geom.pad_lo)
        x_window = x[(slice(None),) + tuple(slice(c, None) for c in crop)]
        pads = tuple(
            (max(0, lo), hi) for lo, hi in zip(geom.pad_lo, geom.pad_hi)
        )
        padded = pad_spatial(x_window, pads)
        y = convnd(padded, sub_w, stride=1, padding=0)
        # the input may extend past the last needed window; keep exactly
        # the out_size outputs the gather consumes
        y = y[(slice(None),) + tuple(slice(0, n) for n in geom.out_size)]
        slicer = (slice(None),) + tuple(
            slice(r, r + n * s, s)
            for r, n, s in zip(geom.offset, geom.out_size, stride_t)
        )
        out[slicer] = y
    return out


def transformed_specs(spec: ConvSpec) -> list[ConvSpec]:
    """Rewrite a deconvolution :class:`ConvSpec` as sub-convolution specs.

    Each returned spec is a stride-1 *convolution* over the original
    ifmap, named ``<layer>/sub<i>``.  Convolution specs pass through
    unchanged (returned as a single-element list) so callers can map any
    layer table uniformly.
    """
    if not spec.deconv:
        return [spec]
    subs = decompose_geometry(spec.kernel, spec.stride, spec.padding, spec.input_size)
    out = []
    for i, geom in enumerate(subs):
        # Express the sub-convolution exactly: a stride-1 valid conv
        # whose input is the (padded) window the gather actually reads.
        # A valid conv producing out_size outputs with a sub-kernel of
        # size k reads exactly out_size + k - 1 input elements per dim,
        # so the output size and MAC count stay exact.
        padded_size = tuple(
            n + k - 1 for n, k in zip(geom.out_size, geom.kernel)
        )
        out.append(
            ConvSpec(
                name=f"{spec.name}/sub{i}",
                in_channels=spec.in_channels,
                out_channels=spec.out_channels,
                kernel=geom.kernel,
                input_size=padded_size,
                stride=(1,) * spec.ndim,
                padding=(0,) * spec.ndim,
                deconv=False,
                stage=spec.stage,
                repeat=spec.repeat,
            )
        )
    return out
