"""Hardware configuration for the ASV accelerator model.

The defaults mirror the paper's Sec. 6.1 prototype: a 24x24 systolic PE
array at 1 GHz, a 1.5 MB unified on-chip SRAM banked at 128 KB and split
in half for double buffering, an 8-lane scalar unit at 250 MHz, and four
Micron 16 Gb LPDDR3-1600 channels of off-chip memory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["HWConfig", "ASV_BASE", "BYTES_PER_ELEM"]

BYTES_PER_ELEM = 2  # 16-bit fixed point activations and weights


@dataclass(frozen=True)
class HWConfig:
    """Resource description of a systolic DNN accelerator (Θ, R* in Eq. 4)."""

    name: str = "asv-base"
    pe_rows: int = 24
    pe_cols: int = 24
    frequency_hz: float = 1.0e9
    buffer_bytes: int = int(1.5 * 1024 * 1024)
    bank_bytes: int = 128 * 1024
    dram_bytes_per_sec: float = 25.6e9  # 4x LPDDR3-1600 channels
    scalar_lanes: int = 8
    scalar_frequency_hz: float = 250.0e6
    bytes_per_elem: int = BYTES_PER_ELEM

    def __post_init__(self):
        if self.pe_rows < 1 or self.pe_cols < 1:
            raise ValueError("PE array dimensions must be positive")
        if self.buffer_bytes < 2 * self.bank_bytes:
            raise ValueError("buffer must hold at least two banks (double buffering)")
        if self.frequency_hz <= 0 or self.dram_bytes_per_sec <= 0:
            raise ValueError("frequency and bandwidth must be positive")

    @property
    def pe_count(self) -> int:
        """A* of Eq. 6 — MACs the array retires per cycle."""
        return self.pe_rows * self.pe_cols

    @property
    def usable_buffer_bytes(self) -> int:
        """Per-round working-set capacity (Buf*): half the SRAM,
        because the other half is the double-buffer filling section."""
        return self.buffer_bytes // 2

    @property
    def dram_bytes_per_cycle(self) -> float:
        """B* of Eq. 8/9 expressed in bytes per accelerator cycle."""
        return self.dram_bytes_per_sec / self.frequency_hz

    @property
    def peak_macs_per_sec(self) -> float:
        """Raw throughput; 24x24 @ 1 GHz gives the paper's 1.152 Top/s
        (counting each MAC as two operations)."""
        return self.pe_count * self.frequency_hz

    def with_resources(self, **updates) -> "HWConfig":
        """Copy with replaced fields (used by the Fig. 12 sweeps)."""
        return replace(self, **updates)


ASV_BASE = HWConfig()
