"""Mobile-GPU roofline model (the paper's Jetson TX2 Pascal baseline).

The paper characterises the four stereo DNNs on the Pascal GPU of the
16 nm Nvidia Parker SoC (Jetson TX2) and measures power with the
board's sensing circuitry.  Offline we model the GPU as a roofline:

* peak FP16 throughput 1.33 Tops/s (256 CUDA cores @ 1.30 GHz, 2-wide
  FP16 MAD) derated by a DNN kernel efficiency factor — convolution
  kernels on mobile Pascal typically sustain 25-45 % of peak;
* LPDDR4 memory at 58.3 GB/s (shared with the CPU complex);
* a board-level GPU-rail power draw of ~9.5 W under sustained load.

Deconvolutions run dense (cuDNN-style ``conv_transpose``), i.e. the GPU
pays the zero-stuffed cost like any accelerator without the
transformation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.workload import ConvSpec

__all__ = ["GPUModel", "JETSON_TX2"]


@dataclass(frozen=True)
class GPUModel:
    """Roofline execution model of a mobile GPU."""

    name: str = "jetson-tx2-pascal"
    peak_macs_per_sec: float = 0.665e12   # 1.33 Tops/s = 0.665 TMAC/s
    kernel_efficiency: float = 0.33
    dram_bytes_per_sec: float = 58.3e9
    power_w: float = 5.0                  # sustained GPU-rail draw
    bytes_per_elem: int = 2  # FP16

    def layer_seconds(self, spec: ConvSpec) -> float:
        """Roofline time of one layer: max(compute, memory)."""
        compute = spec.macs / (self.peak_macs_per_sec * self.kernel_efficiency)
        moved = (
            spec.ifmap_elems + spec.ofmap_elems + spec.params
        ) * self.bytes_per_elem
        memory = moved / self.dram_bytes_per_sec
        return max(compute, memory)

    def network_seconds(self, specs) -> float:
        """Layer-wise execution time of a layer table."""
        return sum(self.layer_seconds(s) for s in specs)

    def network_energy_j(self, specs) -> float:
        """Energy = sustained rail power x execution time."""
        return self.network_seconds(specs) * self.power_w

    def fps(self, specs) -> float:
        """Frames per second for one inference per frame."""
        return 1.0 / self.network_seconds(specs)


JETSON_TX2 = GPUModel()
