"""Analytic latency/energy model of the systolic-array accelerator.

Implements the paper's per-round latency formulation:

* Eq. 6 — compute time: each sub-kernel occupies the PE array in turn,
  so the round's compute latency is the sum of per-sub-kernel ceilings
  ``ceil(macs_k / A*)``.
* Eq. 7–9 — memory time: the round's DRAM traffic (ifmap/weight loads
  chosen by the schedule's reuse order, plus ofmap stores) divided by
  the available bandwidth ``B*``.
* Eq. 5 — with double buffering, a round takes ``max(compute, memory)``
  and a layer is the sum of its rounds.

Energy is accounted per event (see :mod:`repro.hw.energy`): MACs,
register-file operand traffic, SRAM traffic (fills + array reads +
output drains), DRAM traffic, and leakage over the execution window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hw.config import HWConfig
from repro.hw.energy import ENERGY_16NM, EnergyBreakdown, EnergyModel
from repro.hw.schedule import Schedule

__all__ = ["LayerResult", "RunResult", "SystolicModel"]


@dataclass(frozen=True)
class LayerResult:
    """Latency/energy of one scheduled layer."""

    name: str
    cycles: int
    compute_cycles: int
    memory_cycles: int
    macs: int
    dram_bytes: int
    sram_bytes: int
    energy: EnergyBreakdown

    @property
    def energy_j(self) -> float:
        return self.energy.total_j


@dataclass
class RunResult:
    """Aggregate of a sequence of layers (layer-wise execution model)."""

    layers: list[LayerResult] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return sum(l.cycles for l in self.layers)

    @property
    def macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def dram_bytes(self) -> int:
        return sum(l.dram_bytes for l in self.layers)

    @property
    def energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for l in self.layers:
            total = total + l.energy
        return total

    @property
    def energy_j(self) -> float:
        return self.energy.total_j

    def seconds(self, hw: HWConfig) -> float:
        return self.cycles / hw.frequency_hz

    def __add__(self, other: "RunResult") -> "RunResult":
        return RunResult(self.layers + other.layers)


class SystolicModel:
    """Evaluates execution schedules on a :class:`HWConfig`."""

    def __init__(self, hw: HWConfig, energy: EnergyModel = ENERGY_16NM):
        self.hw = hw
        self.energy = energy

    def run_schedule(self, sched: Schedule, validate: bool = True) -> LayerResult:
        """Latency and energy of one layer's round sequence."""
        if validate:
            sched.validate(self.hw)
        hw = self.hw
        layer = sched.layer
        bpe = hw.bytes_per_elem
        bw = hw.dram_bytes_per_cycle

        cycles = 0
        compute_cycles = 0
        memory_cycles = 0
        macs_total = 0
        dram_bytes = 0
        sram_bytes = 0

        for rnd, n in zip(sched.rounds, sched.counts):
            per_sub = rnd.macs_per_sub(layer)
            l_c = sum(math.ceil(m / hw.pe_count) for m in per_sub if m)
            moved = (
                rnd.ifmap_loads_elems + rnd.weight_loads_elems + rnd.output_store_elems
            ) * bpe
            l_m = math.ceil(moved / bw)
            cycles += n * max(l_c, l_m)
            compute_cycles += n * l_c
            memory_cycles += n * l_m
            macs_total += n * sum(per_sub)
            dram_bytes += n * moved

            # SRAM traffic: DRAM fills are written once; the array reads
            # the resident ifmap tile once per active sub-kernel, reads
            # each active weight once per round, accumulates partial
            # sums (read-modify-write) and drains stored outputs.
            fills = (rnd.ifmap_loads_elems + rnd.weight_loads_elems) * bpe
            active = sum(1 for a in rnd.allocations if a.active)
            tile_reads = active * rnd.ifmap_resident_elems * bpe
            weight_reads = rnd.weight_resident_elems * bpe
            psum_traffic = 2 * rnd.computed_out_elems * bpe
            drains = rnd.output_store_elems * bpe
            sram_bytes += n * (
                fills + tile_reads + weight_reads + psum_traffic + drains
            )

        # a layer instantiated `repeat` times runs the same schedule
        # back-to-back (e.g. GC-Net's residual tower)
        rep = layer.repeat
        cycles *= rep
        compute_cycles *= rep
        memory_cycles *= rep
        macs_total *= rep
        dram_bytes *= rep
        sram_bytes *= rep

        rf_bytes = 2 * macs_total * bpe
        seconds = cycles / hw.frequency_hz
        energy = EnergyBreakdown(
            mac_j=self.energy.compute(macs_total),
            sram_j=self.energy.sram(sram_bytes),
            rf_j=self.energy.rf(rf_bytes),
            dram_j=self.energy.dram(dram_bytes),
            static_j=self.energy.static(seconds),
        )
        return LayerResult(
            name=sched.layer.name,
            cycles=cycles,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            macs=macs_total,
            dram_bytes=dram_bytes,
            sram_bytes=sram_bytes,
            energy=energy,
        )

    def run_schedules(self, schedules, validate: bool = True) -> RunResult:
        """Layer-wise execution: a layer starts when the previous ends."""
        return RunResult([self.run_schedule(s, validate=validate) for s in schedules])

    def scalar_op_result(
        self, name: str, ops: int, elems_touched: int
    ) -> LayerResult:
        """Cost of point-wise work on the scalar unit (OF/BM support ops).

        ``ops`` point operations run on ``scalar_lanes`` lanes at the
        scalar clock; the touched elements move through the SRAM once.
        Cycles are expressed in *accelerator* cycles so results compose.
        """
        hw = self.hw
        lane_cycles = math.ceil(ops / hw.scalar_lanes)
        seconds = lane_cycles / hw.scalar_frequency_hz
        cycles = math.ceil(seconds * hw.frequency_hz)
        sram_bytes = elems_touched * hw.bytes_per_elem
        energy = EnergyBreakdown(
            mac_j=self.energy.compute(ops),
            sram_j=self.energy.sram(sram_bytes),
            rf_j=0.0,
            dram_j=0.0,
            static_j=self.energy.static(seconds),
        )
        return LayerResult(
            name=name,
            cycles=cycles,
            compute_cycles=cycles,
            memory_cycles=0,
            macs=ops,
            dram_bytes=0,
            sram_bytes=sram_bytes,
            energy=energy,
        )
