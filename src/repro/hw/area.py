"""Area/power accounting for the ASV hardware extensions (Sec. 7.1).

ASV extends a conventional systolic DNN accelerator with

1. an absolute-difference accumulate mode in every PE (for block
   matching): ``a <- a + |b - c|``;
2. two extra point-wise operations in the scalar unit ("Compute Flow"
   and "Matrix Update" for optical flow);
3. a sliver of comparison/control logic.

The paper's 16 nm implementation reports +6.3 % area (15.3 um^2) and
+2.3 % power (0.02 mW) per PE, a scalar-unit extension of ~2000 um^2 /
2.2 mW, and a total overhead below 0.5 % of the 3.0 mm^2 / multi-watt
accelerator.  This module reproduces that arithmetic so the overhead
claim is checkable against any PE-array configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import HWConfig

__all__ = ["AreaPowerModel", "OverheadReport"]

UM2_PER_MM2 = 1e6


@dataclass(frozen=True)
class OverheadReport:
    """Absolute and relative overhead of the ASV extensions."""

    pe_area_um2: float
    pe_power_mw: float
    scalar_area_um2: float
    scalar_power_mw: float
    total_area_mm2: float
    total_power_w: float

    @property
    def added_area_mm2(self) -> float:
        return (self.pe_area_um2 + self.scalar_area_um2) / UM2_PER_MM2

    @property
    def added_power_w(self) -> float:
        return (self.pe_power_mw + self.scalar_power_mw) / 1e3

    @property
    def area_overhead_pct(self) -> float:
        return 100.0 * self.added_area_mm2 / self.total_area_mm2

    @property
    def power_overhead_pct(self) -> float:
        return 100.0 * self.added_power_w / self.total_power_w


@dataclass(frozen=True)
class AreaPowerModel:
    """Per-unit 16 nm area/power figures from the paper's implementation."""

    pe_base_area_um2: float = 243.0      # 15.3 um^2 is +6.3 % of this
    pe_ext_area_um2: float = 15.3
    pe_base_power_mw: float = 0.87       # 0.02 mW is +2.3 % of this
    pe_ext_power_mw: float = 0.02
    scalar_ext_area_um2: float = 2000.0
    scalar_ext_power_mw: float = 2.2
    total_area_mm2: float = 3.0          # paper's accelerator layout
    total_power_w: float = 2.8           # sustained power of the design

    def pe_area_overhead_pct(self) -> float:
        return 100.0 * self.pe_ext_area_um2 / self.pe_base_area_um2

    def pe_power_overhead_pct(self) -> float:
        return 100.0 * self.pe_ext_power_mw / self.pe_base_power_mw

    def overhead(self, hw: HWConfig) -> OverheadReport:
        """Total ASV overhead for a PE-array configuration."""
        n = hw.pe_count
        return OverheadReport(
            pe_area_um2=n * self.pe_ext_area_um2,
            pe_power_mw=n * self.pe_ext_power_mw,
            scalar_area_um2=self.scalar_ext_area_um2,
            scalar_power_mw=self.scalar_ext_power_mw,
            total_area_mm2=self.total_area_mm2,
            total_power_w=self.total_power_w,
        )
