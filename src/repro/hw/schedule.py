"""Execution-schedule IR shared by the software optimizers and the
hardware models.

The paper's software stack emits, per layer, an *execution schedule*
(Fig. 8) that the accelerator consumes at runtime: a sequence of
double-buffered **rounds**, each describing which ifmap tile, which
filters and which partial sums are resident, what is fetched from DRAM,
and what is written back.  The structures here are that schedule, plus
the feasibility checks of the constrained-optimization formulation:

* Eq. 10 — the round's working set fits the usable (half) buffer;
* Eq. 11 — across rounds, every filter of every sub-kernel is used and
  every output element is produced exactly once.

Tiling model
------------
Feature maps are tiled along three axes:

* **rows** — the flattened outer spatial axes (``H`` for 2-D maps,
  ``D*H`` for 3-D cost volumes).  A sub-convolution's reach along this
  axis is ``tile_kernel_extent`` and its advance per output row is
  ``tile_stride`` (both flattened the same way).
* **cols** — the innermost spatial axis (``W``), split into strips.
* **input channels** — chunked with partial sums accumulated in the
  on-chip buffer; the ofmap tile is written to DRAM once, when the
  last chunk finishes.

A round's ifmap tile always spans one (row-tile, col-strip, IC-chunk)
block; halo rows/cols between neighbouring tiles are re-fetched, as in
conventional DNN tiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.config import HWConfig

__all__ = ["SubConvWork", "LayerWork", "SubAllocation", "RoundPlan", "Schedule"]


@dataclass(frozen=True)
class SubConvWork:
    """Total work of one dense (sub-)convolution within a layer group."""

    name: str
    taps: int              # kernel elements per (in-channel, filter) pair
    filters: int           # output channels (C of Eq. 11)
    out_rows: int          # output extent along the flattened row axis
    out_cols: int          # output extent along the innermost axis
    tile_kernel_extent: int = 1  # kernel reach along the row axis (flattened)
    tile_stride: int = 1         # input advance per output row (flattened)
    col_kernel_extent: int = 1   # kernel reach along the column axis
    col_stride: int = 1          # input advance per output column

    def __post_init__(self):
        if min(self.taps, self.filters, self.out_rows, self.out_cols) < 1:
            raise ValueError(f"{self.name}: work quantities must be positive")
        if (
            min(
                self.tile_kernel_extent,
                self.tile_stride,
                self.col_kernel_extent,
                self.col_stride,
            )
            < 1
        ):
            raise ValueError(f"{self.name}: tile geometry must be positive")

    @property
    def total_out_elems(self) -> int:
        return self.filters * self.out_rows * self.out_cols

    def rows_for(self, out_rows: int) -> int:
        """Ifmap rows (incl. halo) needed for ``out_rows`` output rows."""
        if out_rows <= 0:
            return 0
        return (out_rows - 1) * self.tile_stride + self.tile_kernel_extent

    def cols_for(self, out_cols: int) -> int:
        """Ifmap columns (incl. halo) needed for ``out_cols`` columns."""
        if out_cols <= 0:
            return 0
        return (out_cols - 1) * self.col_stride + self.col_kernel_extent

    def macs_for(self, in_channels: int, filters: int, out_rows: int, out_cols: int) -> int:
        """MACs for a (filters, rows, cols) block over ``in_channels``."""
        return self.taps * in_channels * filters * out_rows * out_cols


@dataclass(frozen=True)
class LayerWork:
    """A schedulable unit: one (transformed) layer sharing a single ifmap.

    A conventional convolution is a group with one sub-convolution.  A
    transformed deconvolution is a group of up to ``prod(stride)``
    sub-convolutions; when ``share_ifmap`` is set, one ifmap fetch
    serves every sub-convolution in the round — the paper's inter-layer
    activation reuse (ILAR).
    """

    name: str
    in_channels: int
    ifmap_rows: int   # flattened outer spatial extent of the ifmap
    ifmap_cols: int   # innermost spatial extent of the ifmap
    subconvs: tuple[SubConvWork, ...]
    share_ifmap: bool = True
    repeat: int = 1

    def __post_init__(self):
        if not self.subconvs:
            raise ValueError(f"{self.name}: a layer group needs >= 1 sub-convolution")
        if self.ifmap_rows < 1 or self.ifmap_cols < 1 or self.in_channels < 1:
            raise ValueError(f"{self.name}: ifmap extent must be positive")
        if self.repeat < 1:
            raise ValueError(f"{self.name}: repeat must be positive")

    @property
    def total_macs(self) -> int:
        """MACs of one instance (``repeat`` applied by the hw model)."""
        return sum(
            s.macs_for(self.in_channels, s.filters, s.out_rows, s.out_cols)
            for s in self.subconvs
        )

    @property
    def ifmap_elems(self) -> int:
        return self.in_channels * self.ifmap_rows * self.ifmap_cols

    @property
    def weight_elems(self) -> int:
        return sum(s.taps * self.in_channels * s.filters for s in self.subconvs)

    @property
    def ofmap_elems(self) -> int:
        return sum(s.total_out_elems for s in self.subconvs)


@dataclass(frozen=True)
class SubAllocation:
    """One sub-convolution's share of a round."""

    sub_index: int
    filters: int
    out_rows: int
    out_cols: int
    in_channels: int

    def __post_init__(self):
        if min(self.filters, self.out_rows, self.out_cols, self.in_channels) < 0:
            raise ValueError("allocations must be non-negative")

    @property
    def active(self) -> bool:
        return (
            self.filters > 0
            and self.out_rows > 0
            and self.out_cols > 0
            and self.in_channels > 0
        )


@dataclass(frozen=True)
class RoundPlan:
    """One double-buffered round (the ``i`` index of Eq. 5)."""

    allocations: tuple[SubAllocation, ...]
    ifmap_resident_elems: int
    ifmap_loads_elems: int     # ΔIF — fetched from DRAM this round
    weight_resident_elems: int
    weight_loads_elems: int    # ΣΔW
    psum_resident_elems: int   # partial-sum (ofmap tile) held in buffer
    output_store_elems: int    # ΣΔOF — written to DRAM this round

    def macs_per_sub(self, layer: LayerWork) -> tuple[int, ...]:
        """The per-sub-kernel MAC terms of Eq. 6 for this round."""
        out = []
        for alloc in self.allocations:
            sub = layer.subconvs[alloc.sub_index]
            out.append(
                sub.macs_for(
                    alloc.in_channels, alloc.filters, alloc.out_rows, alloc.out_cols
                )
            )
        return tuple(out)

    @property
    def computed_out_elems(self) -> int:
        """Output elements touched (accumulated) this round."""
        return sum(
            a.filters * a.out_rows * a.out_cols for a in self.allocations if a.active
        )

    def buffer_elems(self, layer: LayerWork) -> int:
        """Working-set size (Eq. 10 left-hand side), in elements."""
        return (
            self.ifmap_resident_elems
            + self.weight_resident_elems
            + self.psum_resident_elems
        )


@dataclass
class Schedule:
    """A layer's complete round sequence plus provenance metadata.

    Identical consecutive rounds are stored once with a multiplicity in
    ``counts`` (same length as ``rounds``); every aggregate below and
    every consumer honours the multiplicities.  Latency composition is
    order-independent (Eq. 5 is a plain sum of per-round maxima), so
    aggregation loses nothing.
    """

    layer: LayerWork
    rounds: list[RoundPlan] = field(default_factory=list)
    counts: list[int] = field(default_factory=list)
    label: str = ""

    def __post_init__(self):
        if not self.counts:
            self.counts = [1] * len(self.rounds)
        if len(self.counts) != len(self.rounds):
            raise ValueError("counts must parallel rounds")

    @property
    def n_rounds(self) -> int:
        return sum(self.counts)

    def add(self, plan: RoundPlan, count: int = 1) -> None:
        """Append ``count`` copies of a round."""
        if count < 1:
            return
        self.rounds.append(plan)
        self.counts.append(count)

    @property
    def total_macs(self) -> int:
        return sum(
            n * sum(r.macs_per_sub(self.layer))
            for r, n in zip(self.rounds, self.counts)
        )

    @property
    def dram_load_elems(self) -> int:
        return sum(
            n * (r.ifmap_loads_elems + r.weight_loads_elems)
            for r, n in zip(self.rounds, self.counts)
        )

    @property
    def dram_store_elems(self) -> int:
        return sum(n * r.output_store_elems for r, n in zip(self.rounds, self.counts))

    @property
    def dram_traffic_elems(self) -> int:
        return self.dram_load_elems + self.dram_store_elems

    def check_feasible(self, hw: HWConfig) -> None:
        """Raise if any round violates the Eq. 10 buffer constraint."""
        cap = hw.usable_buffer_bytes
        for i, rnd in enumerate(self.rounds):
            used = rnd.buffer_elems(self.layer) * hw.bytes_per_elem
            if used > cap:
                raise ValueError(
                    f"{self.layer.name} round {i}: working set {used} B "
                    f"exceeds usable buffer {cap} B"
                )

    def check_complete(self) -> None:
        """Raise unless the rounds cover the layer exactly (Eq. 11).

        Coverage is validated in aggregate: the scheduled MACs and the
        stored output elements must equal the layer totals.
        """
        macs = self.total_macs
        if macs != self.layer.total_macs:
            raise ValueError(
                f"{self.layer.name}: scheduled {macs} MACs, "
                f"layer requires {self.layer.total_macs}"
            )
        stored = self.dram_store_elems
        if stored != self.layer.ofmap_elems:
            raise ValueError(
                f"{self.layer.name}: stored {stored} output elements, "
                f"layer produces {self.layer.ofmap_elems}"
            )

    def validate(self, hw: HWConfig) -> "Schedule":
        """Run all invariant checks and return self (builder epilogue)."""
        self.check_feasible(hw)
        self.check_complete()
        return self

    # ------------------------------------------------------------------
    # serialization: the schedule is the artifact the software stack
    # hands to the hardware (paper Fig. 8), so it must round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form of the schedule (JSON-serialisable)."""
        return {
            "label": self.label,
            "layer": {
                "name": self.layer.name,
                "in_channels": self.layer.in_channels,
                "ifmap_rows": self.layer.ifmap_rows,
                "ifmap_cols": self.layer.ifmap_cols,
                "share_ifmap": self.layer.share_ifmap,
                "repeat": self.layer.repeat,
                "subconvs": [
                    {
                        "name": s.name,
                        "taps": s.taps,
                        "filters": s.filters,
                        "out_rows": s.out_rows,
                        "out_cols": s.out_cols,
                        "tile_kernel_extent": s.tile_kernel_extent,
                        "tile_stride": s.tile_stride,
                        "col_kernel_extent": s.col_kernel_extent,
                        "col_stride": s.col_stride,
                    }
                    for s in self.layer.subconvs
                ],
            },
            "rounds": [
                {
                    "count": n,
                    "ifmap_resident_elems": r.ifmap_resident_elems,
                    "ifmap_loads_elems": r.ifmap_loads_elems,
                    "weight_resident_elems": r.weight_resident_elems,
                    "weight_loads_elems": r.weight_loads_elems,
                    "psum_resident_elems": r.psum_resident_elems,
                    "output_store_elems": r.output_store_elems,
                    "allocations": [
                        {
                            "sub_index": a.sub_index,
                            "filters": a.filters,
                            "out_rows": a.out_rows,
                            "out_cols": a.out_cols,
                            "in_channels": a.in_channels,
                        }
                        for a in r.allocations
                    ],
                }
                for r, n in zip(self.rounds, self.counts)
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Schedule":
        """Inverse of :meth:`to_dict`."""
        lw = data["layer"]
        layer = LayerWork(
            name=lw["name"],
            in_channels=lw["in_channels"],
            ifmap_rows=lw["ifmap_rows"],
            ifmap_cols=lw["ifmap_cols"],
            share_ifmap=lw["share_ifmap"],
            repeat=lw["repeat"],
            subconvs=tuple(SubConvWork(**s) for s in lw["subconvs"]),
        )
        rounds = []
        counts = []
        for r in data["rounds"]:
            counts.append(r["count"])
            rounds.append(
                RoundPlan(
                    allocations=tuple(
                        SubAllocation(**a) for a in r["allocations"]
                    ),
                    ifmap_resident_elems=r["ifmap_resident_elems"],
                    ifmap_loads_elems=r["ifmap_loads_elems"],
                    weight_resident_elems=r["weight_resident_elems"],
                    weight_loads_elems=r["weight_loads_elems"],
                    psum_resident_elems=r["psum_resident_elems"],
                    output_store_elems=r["output_store_elems"],
                )
            )
        return cls(layer=layer, rounds=rounds, counts=counts,
                   label=data.get("label", ""))
