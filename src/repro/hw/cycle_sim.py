"""Cycle-level systolic-array simulator (validation for the analytic model).

The paper's methodology builds on SCALE-Sim-style simulation of a
weight-stationary systolic array.  The analytic model in
:mod:`repro.hw.systolic` uses the idealised ``ceil(MACs / PEs)`` compute
time of the paper's Eq. 6; this module provides an actual step-by-step
simulation of the dataflow so that idealisation can be *checked* rather
than assumed:

* weights for up to ``rows x cols`` (kernel-window x filter) pairs are
  pre-loaded into the array (one column drain per loaded row);
* ifmap windows stream through the array column by column with the
  classic skewed wavefront (pipeline fill of ``rows + cols - 1``);
* every pass produces up to ``cols`` output pixels per filter column
  per cycle in steady state.

The simulator is deliberately small — it tracks cycle counts, not
values (numeric correctness is covered by :mod:`repro.nn`), and is
meant for validation tests and utilization studies on single layers,
not whole networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.config import HWConfig
from repro.nn.workload import ConvSpec

__all__ = ["CycleSimResult", "simulate_conv_cycles", "utilization"]


@dataclass(frozen=True)
class CycleSimResult:
    """Outcome of a cycle-level simulation of one convolution layer."""

    cycles: int
    macs: int
    passes: int            # array reconfigurations (weight reloads)
    fill_cycles: int       # wavefront fill/drain overhead
    load_cycles: int       # weight pre-load time

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0


def simulate_conv_cycles(spec: ConvSpec, hw: HWConfig) -> CycleSimResult:
    """Step a weight-stationary mapping of one convolution layer.

    Mapping (per pass): each PE row holds one tap of the flattened
    kernel-window x input-channel axis (``R = taps * C_in`` values,
    split into ``ceil(R / pe_rows)`` row groups); each PE column holds
    one filter (``ceil(C_out / pe_cols)`` column groups).  Each pass
    streams every output pixel through the array; partial sums across
    row groups accumulate in the output buffer.
    """
    if spec.deconv:
        raise ValueError("simulate_conv_cycles expects a dense convolution")
    rows_total = math.prod(spec.kernel) * spec.in_channels
    cols_total = spec.out_channels
    out_pixels = math.prod(spec.output_size)

    row_groups = math.ceil(rows_total / hw.pe_rows)
    col_groups = math.ceil(cols_total / hw.pe_cols)
    passes = row_groups * col_groups

    cycles = 0
    load_cycles = 0
    fill_cycles = 0
    for rg in range(row_groups):
        rows_here = min(hw.pe_rows, rows_total - rg * hw.pe_rows)
        for cg in range(col_groups):
            cols_here = min(hw.pe_cols, cols_total - cg * hw.pe_cols)
            # weight pre-load: one row per cycle, all columns in parallel
            load = rows_here
            # streaming: one ifmap vector per cycle; the skewed
            # wavefront needs rows+cols-1 cycles to fill and drain
            stream = out_pixels
            fill = rows_here + cols_here - 1
            cycles += load + stream + fill
            load_cycles += load
            fill_cycles += fill
    macs = rows_total * cols_total * out_pixels * spec.repeat
    return CycleSimResult(
        cycles=cycles * spec.repeat,
        macs=macs,
        passes=passes,
        fill_cycles=fill_cycles * spec.repeat,
        load_cycles=load_cycles * spec.repeat,
    )


def utilization(spec: ConvSpec, hw: HWConfig) -> float:
    """Fraction of the Eq. 6 ideal the simulated dataflow achieves.

    The analytic model's compute time is ``ceil(MACs / PEs)``; the
    simulation adds weight loads and wavefront fills.  For layers with
    thousands of output pixels per pass the ratio approaches 1, which
    is the property the analytic model relies on (validated in
    ``tests/test_cycle_sim.py``).
    """
    sim = simulate_conv_cycles(spec, hw)
    ideal = math.ceil(sim.macs / hw.pe_count)
    return ideal / sim.cycles
