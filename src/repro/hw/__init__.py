"""Analytic hardware models (paper Sec. 5.2/6.1).

* :mod:`repro.hw.config` — accelerator resource descriptions.
* :mod:`repro.hw.schedule` — the execution-schedule IR + feasibility checks.
* :mod:`repro.hw.systolic` — the systolic-array latency/energy model (Eq. 5-9).
* :mod:`repro.hw.energy` — the 16 nm per-event energy table.
"""

from repro.hw.area import AreaPowerModel, OverheadReport
from repro.hw.cycle_sim import CycleSimResult, simulate_conv_cycles, utilization
from repro.hw.config import ASV_BASE, BYTES_PER_ELEM, HWConfig
from repro.hw.energy import ENERGY_16NM, EnergyBreakdown, EnergyModel
from repro.hw.eyeriss import EyerissModel
from repro.hw.gannx import GannxModel
from repro.hw.gpu import JETSON_TX2, GPUModel
from repro.hw.schedule import (
    LayerWork,
    RoundPlan,
    Schedule,
    SubAllocation,
    SubConvWork,
)
from repro.hw.systolic import LayerResult, RunResult, SystolicModel

__all__ = [
    "ASV_BASE",
    "AreaPowerModel",
    "EyerissModel",
    "GPUModel",
    "GannxModel",
    "JETSON_TX2",
    "OverheadReport",
    "BYTES_PER_ELEM",
    "CycleSimResult",
    "simulate_conv_cycles",
    "utilization",
    "ENERGY_16NM",
    "EnergyBreakdown",
    "EnergyModel",
    "HWConfig",
    "LayerResult",
    "LayerWork",
    "RoundPlan",
    "RunResult",
    "Schedule",
    "SubAllocation",
    "SubConvWork",
    "SystolicModel",
]
