"""Energy model for the accelerator comparisons.

The paper reports energy from post-layout power simulation of a 16 nm
implementation; that toolchain is unavailable here, so we use a
per-event energy table in the style of accelerator-architecture
literature (Horowitz, ISSCC'14, scaled from 45 nm to 16 nm; Eyeriss's
energy hierarchy).  Absolute joules therefore differ from the paper,
but the *ratios* the evaluation figures report are governed by the
relative costs below — a DRAM access costs ~two orders of magnitude
more than an SRAM access, which costs ~an order of magnitude more than
a MAC — and those relationships are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyModel", "EnergyBreakdown", "ENERGY_16NM"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in joules."""

    mac_j: float = 0.3e-12            # 16-bit fixed-point MAC @ 16 nm
    sram_j_per_byte: float = 1.5e-12  # 128 KB-banked scratchpad access
    rf_j_per_byte: float = 0.15e-12   # PE-local register file access
    dram_j_per_byte: float = 100e-12  # LPDDR3 access incl. I/O
    static_w: float = 0.05            # leakage + clock tree of the array

    def compute(self, macs: float) -> float:
        """Dynamic energy of the MAC datapath."""
        return macs * self.mac_j

    def sram(self, bytes_: float) -> float:
        """Dynamic energy of on-chip buffer traffic."""
        return bytes_ * self.sram_j_per_byte

    def rf(self, bytes_: float) -> float:
        """Dynamic energy of PE register-file traffic."""
        return bytes_ * self.rf_j_per_byte

    def dram(self, bytes_: float) -> float:
        """Dynamic energy of off-chip traffic."""
        return bytes_ * self.dram_j_per_byte

    def static(self, seconds: float) -> float:
        """Leakage over the execution window."""
        return self.static_w * seconds


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy split by source, in joules."""

    mac_j: float = 0.0
    sram_j: float = 0.0
    rf_j: float = 0.0
    dram_j: float = 0.0
    static_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.mac_j + self.sram_j + self.rf_j + self.dram_j + self.static_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.mac_j + other.mac_j,
            self.sram_j + other.sram_j,
            self.rf_j + other.rf_j,
            self.dram_j + other.dram_j,
            self.static_j + other.static_j,
        )


ENERGY_16NM = EnergyModel()
