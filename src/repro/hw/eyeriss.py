"""Eyeriss-style row-stationary spatial-array model (Sec. 7.5 baseline).

The paper compares against Eyeriss via the public ``nn_dataflow``
simulator, configured with the same PE count, on-chip capacity and
memory bandwidth as ASV.  That simulator is unavailable offline, so we
model Eyeriss as a spatial array with:

* the same resource envelope as the systolic baseline (PEs, buffer,
  bandwidth) — matching the paper's fair-comparison setup;
* a row-stationary mapping efficiency below the systolic array's
  near-perfect utilization on large dense convolutions: the RS dataflow
  maps (filter row x ofmap row) pairs onto the physical array and loses
  utilization to fragmentation when kernel heights do not divide the
  array, an effect Chen et al. report as a 60-90 % active-PE ratio;
* a *cheaper on-chip hierarchy*: the RF-level reuse of row-stationary
  reduces scratchpad traffic relative to our systolic accounting, but
  adds inter-PE network energy per MAC.

Eyeriss supports the deconvolution *transformation* (the paper extends
the simulator for the Fig. 13 "+DCT" bar) but cannot exploit ILAR — its
spatial mapping would need a different reuse formulation (Sec. 7.5) —
so transformed deconvolutions are scheduled as independent
sub-convolutions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.config import HWConfig
from repro.hw.energy import ENERGY_16NM, EnergyBreakdown, EnergyModel
from repro.hw.systolic import LayerResult, RunResult, SystolicModel

__all__ = ["EyerissModel"]


@dataclass(frozen=True)
class _RSEfficiency:
    """Row-stationary mapping efficiency knobs."""

    base_utilization: float = 0.62   # active-PE ratio on typical conv shapes
    sram_discount: float = 0.70     # RF hierarchy absorbs scratchpad traffic
    noc_j_per_mac: float = 0.08e-12  # inter-PE network energy


class EyerissModel:
    """Latency/energy model of an Eyeriss-class accelerator.

    Reuses the schedule machinery (Eyeriss also tiles layer by layer
    against a fixed on-chip partition) and then applies the
    row-stationary efficiency model to compute time and energy.
    """

    def __init__(
        self,
        hw: HWConfig,
        energy: EnergyModel = ENERGY_16NM,
        efficiency: _RSEfficiency = _RSEfficiency(),
    ):
        self.hw = hw
        self.energy = energy
        self.eff = efficiency
        self._inner = SystolicModel(hw, energy)

    def _utilization(self, kernel_rows: int) -> float:
        """Fragmentation: kernel rows that do not divide the physical
        array height strand PEs at the mapping boundary."""
        rows = self.hw.pe_rows
        fit = (rows // max(1, kernel_rows)) * kernel_rows / rows
        return self.eff.base_utilization * max(fit, 0.5)

    def run_network(self, specs, transform: bool = False) -> RunResult:
        """Schedule and run a layer table (optionally with DCT applied)."""
        # imported here: repro.deconv itself builds on repro.hw
        from repro.deconv.exhaustive import best_static_partition
        from repro.deconv.lowering import lower_network

        layers = lower_network(specs, transform=transform, ilar=False)
        _, schedules = best_static_partition(layers, self.hw, self._inner)
        results = []
        for sched in schedules:
            base = self._inner.run_schedule(sched, validate=False)
            # the innermost kernel extent is the filter width the RS
            # mapping lays along a PE row
            kernel_rows = min(s.col_kernel_extent for s in sched.layer.subconvs)
            util = self._utilization(kernel_rows)
            compute = math.ceil(base.compute_cycles / util)
            cycles = max(compute, base.memory_cycles)
            seconds = cycles / self.hw.frequency_hz
            energy = EnergyBreakdown(
                mac_j=base.energy.mac_j + base.macs * self.eff.noc_j_per_mac,
                sram_j=base.energy.sram_j * self.eff.sram_discount,
                rf_j=base.energy.rf_j,
                dram_j=base.energy.dram_j,
                static_j=self.energy.static(seconds),
            )
            results.append(
                LayerResult(
                    name=f"{base.name}[eyeriss]",
                    cycles=cycles,
                    compute_cycles=compute,
                    memory_cycles=base.memory_cycles,
                    macs=base.macs,
                    dram_bytes=base.dram_bytes,
                    sram_bytes=base.sram_bytes,
                    energy=energy,
                )
            )
        return RunResult(results)
