"""GANNX-style dedicated deconvolution accelerator model (Sec. 7.6).

GANNX (Yazdanbakhsh et al., ISCA'18) is a unified MIMD-SIMD
accelerator that reorganises deconvolution into the same four (2-D)
computation patterns the ASV transformation exposes, but realises them
with *specialised hardware*: a MIMD controller steers per-pattern SIMD
lanes.  Functionally its compute count matches the transformed
deconvolution (structural zeros skipped).  Two differences against ASV
drive the Fig. 14 comparison:

* **No inter-layer activation reuse** — GANNX schedules each pattern's
  engine with conventional per-layer tiling, so the shared ifmap is
  re-fetched per pattern, exactly like the paper's ConvR ablation.
* **MIMD flexibility tax** — the distributed control and the
  per-pattern lane partitioning leave some lanes idle on ragged
  shapes; we model this as a fixed utilization derate plus a small
  per-MAC control-energy adder.

Configured with the same PE count and buffer as ASV (the paper's
setup), normalised to the same Eyeriss baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.config import HWConfig
from repro.hw.energy import ENERGY_16NM, EnergyBreakdown, EnergyModel
from repro.hw.systolic import LayerResult, RunResult, SystolicModel

__all__ = ["GannxModel"]


@dataclass(frozen=True)
class _MIMDEfficiency:
    utilization: float = 0.85        # lane idling on ragged patterns
    control_j_per_mac: float = 0.05e-12  # MIMD sequencing overhead


class GannxModel:
    """Latency/energy model of a GANNX-class deconvolution accelerator."""

    def __init__(
        self,
        hw: HWConfig,
        energy: EnergyModel = ENERGY_16NM,
        efficiency: _MIMDEfficiency = _MIMDEfficiency(),
    ):
        self.hw = hw
        self.energy = energy
        self.eff = efficiency
        self._inner = SystolicModel(hw, energy)

    def run_network(self, specs) -> RunResult:
        """Run a layer table with zero-skipping but without ILAR."""
        # imported here: repro.deconv itself builds on repro.hw
        from repro.deconv.lowering import lower_network
        from repro.deconv.optimizer import optimize_layers

        layers = lower_network(specs, transform=True, ilar=False)
        schedules = optimize_layers(layers, self.hw, self._inner)
        results = []
        for sched in schedules:
            base = self._inner.run_schedule(sched, validate=False)
            compute = math.ceil(base.compute_cycles / self.eff.utilization)
            cycles = max(compute, base.memory_cycles)
            seconds = cycles / self.hw.frequency_hz
            energy = EnergyBreakdown(
                mac_j=base.energy.mac_j + base.macs * self.eff.control_j_per_mac,
                sram_j=base.energy.sram_j,
                rf_j=base.energy.rf_j,
                dram_j=base.energy.dram_j,
                static_j=self.energy.static(seconds),
            )
            results.append(
                LayerResult(
                    name=f"{base.name}[gannx]",
                    cycles=cycles,
                    compute_cycles=compute,
                    memory_cycles=base.memory_cycles,
                    macs=base.macs,
                    dram_bytes=base.dram_bytes,
                    sram_bytes=base.sram_bytes,
                    energy=energy,
                )
            )
        return RunResult(results)
