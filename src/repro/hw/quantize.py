"""Fixed-point quantization model for the 16-bit datapath.

The accelerator computes in 16-bit fixed point (Sec. 5.2: "two 16-bit
input registers, a 16-bit fixed-point MAC unit with a 32-bit
accumulator").  This module models that datapath so the accuracy
impact of the precision choice is *checkable*: quantizing images,
weights and disparity maps to Q-format and measuring the three-pixel
error shows the 16-bit choice is accuracy-neutral for stereo (the
tests pin this down).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointFormat", "Q8_8", "Q2_13", "quantize", "quantization_error"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``int_bits``.``frac_bits``."""

    int_bits: int
    frac_bits: int

    def __post_init__(self):
        if self.int_bits < 1 or self.frac_bits < 0:
            raise ValueError("need >= 1 integer bit and >= 0 fraction bits")
        if self.total_bits > 32:
            raise ValueError("formats beyond 32 bits are not modelled")

    @property
    def total_bits(self) -> int:
        return self.int_bits + self.frac_bits + 1  # + sign

    @property
    def scale(self) -> float:
        return float(1 << self.frac_bits)

    @property
    def max_value(self) -> float:
        return ((1 << (self.int_bits + self.frac_bits)) - 1) / self.scale

    @property
    def min_value(self) -> float:
        return -float(1 << (self.int_bits + self.frac_bits)) / self.scale

    @property
    def resolution(self) -> float:
        return 1.0 / self.scale


#: disparity maps: up to 255 px with 1/256 px resolution
Q8_8 = FixedPointFormat(int_bits=8, frac_bits=7)
#: normalised activations/weights: +/-4 range, fine resolution
Q2_13 = FixedPointFormat(int_bits=2, frac_bits=13)


def quantize(x: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Round-to-nearest quantization with saturation."""
    x = np.asarray(x, dtype=np.float64)
    q = np.rint(x * fmt.scale) / fmt.scale
    return np.clip(q, fmt.min_value, fmt.max_value)


def quantization_error(x: np.ndarray, fmt: FixedPointFormat) -> float:
    """Max absolute quantization error over in-range values."""
    x = np.asarray(x, dtype=np.float64)
    in_range = (x >= fmt.min_value) & (x <= fmt.max_value)
    if not in_range.any():
        return float("inf")
    return float(np.abs(quantize(x, fmt) - x)[in_range].max())
