"""Ablation: the tiling scheduler's design choices (DESIGN.md).

Shape assertions: the full optimizer (free β + knapsack packing) is at
least as fast as every ablated variant; the knapsack packer beats
one-filter-per-round scheduling; per-layer optimization beats the
static partition.
"""

from benchmarks.conftest import once
from repro.evaluation.ablation import (
    format_scheduler_ablation,
    run_scheduler_ablation,
)


def test_scheduler_ablation(benchmark, save_table):
    rows = once(benchmark, run_scheduler_ablation)
    save_table("ablation_scheduler", format_scheduler_ablation(rows))
    by_name = {r.strategy: r for r in rows}
    full = by_name["optimizer, full (paper)"]

    for r in rows:
        assert full.cycles <= r.cycles, r.strategy

    if "one filter per round (no knapsack)" in by_name:
        assert full.cycles < by_name["one filter per round (no knapsack)"].cycles

    if "static partition (even thirds)" in by_name:
        assert full.cycles <= by_name["static partition (even thirds)"].cycles

    # β must at least match the better of the two forced orders
    best_forced = min(
        by_name["optimizer, beta=ifmap-resident"].cycles,
        by_name["optimizer, beta=weight-resident"].cycles,
    )
    assert full.cycles <= best_forced
