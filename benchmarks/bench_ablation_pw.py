"""Ablation: the propagation-window length (paper Sec. 7.2).

Shape assertions: speedup grows monotonically with PW but with
diminishing returns (the non-key cost floor), and PW-4 — the paper's
operating point — already reaches ~30 FPS on DispNet.
"""

from benchmarks.conftest import once
from repro.evaluation.ablation import format_pw_sweep, run_pw_sweep


def test_pw_sweep(benchmark, save_table):
    rows = once(benchmark, run_pw_sweep)
    save_table("ablation_pw_sweep", format_pw_sweep(rows))
    by_pw = {r.pw: r for r in rows}

    speeds = [by_pw[pw].speedup for pw in (1, 2, 4, 8)]
    assert speeds == sorted(speeds)

    # diminishing returns: the per-window efficiency (speedup / PW)
    # falls as the non-key-frame cost floor asserts itself
    eff = [by_pw[pw].speedup / pw for pw in (1, 2, 4, 8)]
    assert eff == sorted(eff, reverse=True)

    # the paper's operating point reaches real time on DispNet
    assert by_pw[4].fps > 28.0
    assert by_pw[4].energy_reduction_pct > 75.0
