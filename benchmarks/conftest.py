"""Shared helpers for the per-figure benchmark harness.

Each benchmark (a) regenerates one of the paper's evaluation figures as
a text table, (b) asserts the paper's qualitative claims about that
figure, and (c) writes the table to ``benchmarks/results/`` so the full
set of reproduced figures survives the run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_table():
    """Persist a rendered figure table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, table: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(table + "\n")
        print(f"\n{table}\n[saved to {path}]")

    return _save


def once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The experiments are deterministic end-to-end model evaluations;
    repeating them would only re-measure identical work, so every
    figure bench uses a single round.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
