"""Quality vs latency under load — what scheduling decisions cost in depth.

The scheduler bench (``bench_schedulers.py``) shows ``shed`` buying a
strictly lower p99 than ``fifo`` on an overloaded mix; this bench
prices that win in *depth accuracy*.  The same overloaded eight-stream
mix is served under ``fifo`` / ``edf`` / ``shed`` with a
:class:`~repro.pipeline.quality.QualityProbe` attached, which replays
each run's real key/non-key/drop record through the full stereo
pipeline (matcher key frames, flow-propagated ISM non-key frames,
stale scoring for drops) against ground truth.

Shape assertions (the quality contract, pinned small-scale in
``tests/test_quality.py``):

* ``shed`` keeps its strictly lower p99 **and** pays a strictly worse
  end-point error than ``fifo`` — the drop rate is not free;
* ``edf`` reorders between streams but serves the same frames, so its
  depth quality is *identical* to ``fifo``'s — reordering is free;
* a wider propagation window (PW) degrades accuracy monotonically in
  exchange for throughput (the paper's Fig. 9/10 trade, serving-
  facing).

``ASV_BENCH_FRAMES`` overrides the per-stream frame count so CI can
smoke-run the bench with a tiny budget (see ``.github/workflows/
ci.yml``).
"""

import os

from benchmarks.conftest import once
from repro.pipeline import (
    FrameStream,
    QualityProbe,
    StreamEngine,
    format_quality_report,
    sceneflow_stream,
)
from repro.tables import render_table

SIZE = (68, 120)
MAX_DISP = 32
N_FRAMES = int(os.environ.get("ASV_BENCH_FRAMES", "36"))
FPS = 60.0
SCHEDULERS = ("fifo", "edf", "shed")


def _streams():
    """The bench_schedulers overload mix (~1.1x systolic capacity),
    with pixels attached to the tight-deadline streams so the probe
    can score what each discipline actually delivered."""
    tight = [
        sceneflow_stream(seed=i, name=f"hud-{i}", size=SIZE,
                         n_frames=N_FRAMES, max_disp=MAX_DISP, fps=FPS,
                         mode="baseline", pw=2, deadline_s=0.008, priority=1)
        for i in range(4)
    ]
    loose = [
        FrameStream(f"log-{i}", size=SIZE, n_frames=N_FRAMES, fps=FPS,
                    mode="baseline", pw=2, deadline_s=0.6)
        for i in range(4)
    ]
    return tight + loose


def _probe():
    return QualityProbe(matcher="bm", max_disp=MAX_DISP)


def _run_all():
    return {
        name: StreamEngine("systolic", scheduler=name,
                           quality=_probe()).run(_streams())
        for name in SCHEDULERS
    }


def _p99_ms(report) -> float:
    return max(s.p99_ms for s in report.streams if s.frames)


def _comparison_table(reports) -> str:
    rows = []
    for name, r in reports.items():
        stale = [
            s.quality.stale_epe_px
            for s in r.probed_streams
            if s.quality.stale_epe_px is not None
        ]
        rows.append([
            name, r.total_frames, r.dropped_frames, _p99_ms(r),
            r.deadline_miss_rate, r.drop_rate,
            100.0 * r.bad_pixel_rate, r.epe_px,
            max(stale) if stale else "-",
        ])
    return render_table(
        f"Depth quality vs latency on an overloaded 8-stream mix "
        f"({N_FRAMES} frames/stream at {FPS:.0f} fps)",
        ["scheduler", "served", "dropped", "p99 ms", "miss rate",
         "drop rate", "bad px %", "epe px", "worst stale epe"],
        rows,
    )


def _pw_table(probe) -> str:
    rows = []
    for pw in (1, 2, 4, 8):
        stream = sceneflow_stream(seed=9, size=SIZE, max_disp=MAX_DISP,
                                  n_frames=min(N_FRAMES, 16), pw=pw)
        q = probe.score_plan(stream)
        rows.append([
            f"PW-{pw}", q.n_frames, sum(f.disposition == "key"
                                        for f in q.frames),
            100.0 * q.bad_pixel_rate, q.epe_px,
            "-" if q.nonkey_epe_px is None else q.nonkey_epe_px,
        ])
    return render_table(
        "Key-frame policy (PW) sensitivity — planned schedule, no load",
        ["policy", "frames", "keys", "bad px %", "epe px", "nonkey epe"],
        rows,
    )


def test_quality_vs_latency(benchmark, save_table):
    reports = once(benchmark, _run_all)

    save_table("quality_schedulers", _comparison_table(reports))
    save_table("quality_shed_streams",
               format_quality_report(reports["shed"]))

    fifo, edf, shed = (reports[n] for n in SCHEDULERS)
    for report in reports.values():
        assert len(report.probed_streams) == 4  # the HUD streams
        assert report.bad_pixel_rate is not None

    # shed's tail win is real — and so is its accuracy bill
    assert _p99_ms(shed) < _p99_ms(fifo)
    assert shed.drop_rate > 0.0 and fifo.drop_rate == 0.0
    assert shed.epe_px > fifo.epe_px
    assert shed.bad_pixel_rate > fifo.bad_pixel_rate

    # edf reorders between streams but serves every planned frame, so
    # its depth quality is bit-identical to fifo's
    assert edf.drop_rate == 0.0
    assert edf.epe_px == fifo.epe_px
    assert edf.bad_pixel_rate == fifo.bad_pixel_rate

    # within each shed stream, the stale depth a drop leaves behind is
    # worse than the fresh key-frame depth the same scene gets
    assert any(s.quality.stale_epe_px is not None
               for s in shed.probed_streams)
    for s in shed.probed_streams:
        if s.quality.stale_epe_px is not None:
            assert s.quality.stale_epe_px > s.quality.key_epe_px


def test_pw_sensitivity(benchmark, save_table):
    table = once(benchmark, _pw_table, _probe())
    save_table("quality_pw_sensitivity", table)

    probe = _probe()
    qualities = {
        pw: probe.score_plan(sceneflow_stream(
            seed=9, size=SIZE, max_disp=MAX_DISP,
            n_frames=min(N_FRAMES, 16), pw=pw))
        for pw in (1, 2, 8)
    }
    # all-key (PW-1) bounds the matcher's own accuracy; wider windows
    # propagate further and degrade (paper Fig. 9/10, serving-facing)
    assert qualities[1].epe_px < qualities[2].epe_px
    assert qualities[2].epe_px < qualities[8].epe_px
    assert qualities[8].nonkey_epe_px > qualities[8].key_epe_px
