"""Fig. 4 — triangulation sensitivity.

Shape assertions: the paper's "two tenths of a pixel cost 0.5-5 m"
claim, monotonic growth with both disparity error and distance, and
the quadratic distance scaling of the closed form.
"""

from benchmarks.conftest import once
from repro.evaluation import format_fig4, run_fig4


def test_fig4_sensitivity(benchmark, save_table):
    curves = once(benchmark, run_fig4)
    save_table("fig04_depth_sensitivity", format_fig4(curves))

    by_dist = {c.distance_m: c for c in curves}
    err10 = by_dist[10.0].depth_errors_m[-1]   # at 0.2 px
    err30 = by_dist[30.0].depth_errors_m[-1]
    assert 0.3 < err10 < 1.0, f"10 m error at 0.2 px: {err10:.2f} m"
    assert 2.5 < err30 < 5.5, f"30 m error at 0.2 px: {err30:.2f} m"

    for c in curves:
        diffs = c.depth_errors_m[1:] - c.depth_errors_m[:-1]
        assert (diffs > 0).all(), "depth error must grow with disparity error"

    # first-order model: error ~ distance^2
    ratio = err30 / err10
    assert 6.0 < ratio < 12.0, f"distance scaling {ratio:.1f}, expected ~9"
