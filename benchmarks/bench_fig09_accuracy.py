"""Fig. 9 — ISM accuracy versus per-frame DNN inference.

Shape assertions: PW-2 stays close to the DNN on both datasets (the
paper reports identical accuracy; the procedural scenes are harder per
pixel, see EXPERIMENTS.md), PW-4 degrades only modestly, and at least
one network *improves* under ISM somewhere (the paper observed
FlowNetC doing so).
"""

import numpy as np

from benchmarks.conftest import once
from repro.evaluation import format_fig9, run_fig9


def test_fig9_accuracy(benchmark, save_table):
    rows = once(benchmark, run_fig9)
    save_table("fig09_accuracy", format_fig9(rows))

    sf = [r for r in rows if r.dataset == "SceneFlow"]
    kt = [r for r in rows if r.dataset == "KITTI"]
    assert len(sf) == 4 and len(kt) == 4

    # PW-2 tracks the DNN on every network and dataset
    for r in rows:
        delta = r.pw2_error_pct - r.dnn_error_pct
        assert delta < 1.5, f"{r.dataset}/{r.network}: PW-2 loses {delta:.2f}%"

    # PW-4 exists only on SceneFlow (KITTI has 2-frame scenes)
    assert all(r.pw4_error_pct is None for r in kt)
    for r in sf:
        delta4 = r.pw4_error_pct - r.dnn_error_pct
        assert delta4 < 4.0, f"{r.network}: PW-4 loses {delta4:.2f}%"
        # PW-4 cannot beat PW-2 systematically
        assert r.pw4_error_pct >= r.pw2_error_pct - 0.5

    # the accuracy ordering of the networks survives ISM
    order = lambda vals: list(np.argsort(vals))
    assert order([r.dnn_error_pct for r in sf]) == order(
        [r.pw2_error_pct for r in sf]
    )

    # somewhere, ISM beats its own DNN (temporal filtering effect)
    assert any(r.pw2_error_pct < r.dnn_error_pct + 0.05 for r in rows)
