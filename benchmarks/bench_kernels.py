"""Library kernel microbenchmarks (real repeated timing).

Unlike the figure benches (single-shot model evaluations), these time
the numeric kernels the reproduction actually executes — the classic
matchers, the optical flow, and the transformation — so performance
regressions in the substrate are visible.  The relative ordering also
mirrors the algorithmic story: guided search beats full search, the
transformed deconvolution beats the zero-stuffed one.
"""

import numpy as np
import pytest

from repro.datasets import sceneflow_scene
from repro.deconv import deconv_via_subconvolutions
from repro.flow import farneback_flow
from repro.nn.ops import deconvnd
from repro.stereo import block_match, guided_block_match, sgm

SIZE = (96, 160)
MAX_DISP = 32


@pytest.fixture(scope="module")
def frame():
    return sceneflow_scene(5, size=SIZE, max_disp=MAX_DISP).render(0)


@pytest.fixture(scope="module")
def pair():
    scene = sceneflow_scene(5, size=SIZE, max_disp=MAX_DISP, max_speed=1.5)
    return scene.render(0), scene.render(1)


def test_block_match_kernel(benchmark, frame):
    disp = benchmark(block_match, frame.left, frame.right, MAX_DISP)
    assert disp.shape == SIZE


def test_guided_search_kernel(benchmark, frame):
    disp = benchmark(
        guided_block_match, frame.left, frame.right, frame.disparity, 4
    )
    assert disp.shape == SIZE


def test_guided_search_faster_than_full(frame):
    """The algorithmic point of ISM's refinement: a +/-4 window costs
    a fraction of the full 32-level search."""
    import time

    def clock(fn, reps=3):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    full = clock(lambda: block_match(frame.left, frame.right, MAX_DISP))
    guided = clock(
        lambda: guided_block_match(frame.left, frame.right, frame.disparity, 4)
    )
    assert guided < full


def test_sgm_kernel(benchmark, frame):
    disp = benchmark(sgm, frame.left, frame.right, MAX_DISP)
    assert disp.shape == SIZE


def test_farneback_kernel(benchmark, pair):
    f0, f1 = pair
    flow = benchmark(farneback_flow, f0.left, f1.left)
    assert flow.shape == SIZE + (2,)


def test_deconv_transformation_kernel(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 24, 40))
    w = rng.normal(size=(16, 32, 4, 4))
    out = benchmark(deconv_via_subconvolutions, x, w, 2, 1)
    assert out.shape == (16, 48, 80)


def test_transformed_deconv_faster_than_naive():
    """The MAC reduction shows up in wall-clock too."""
    import time

    rng = np.random.default_rng(1)
    x = rng.normal(size=(32, 24, 40))
    w = rng.normal(size=(16, 32, 4, 4))

    def clock(fn, reps=3):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    naive = clock(lambda: deconvnd(x, w, stride=2, padding=1))
    ours = clock(lambda: deconv_via_subconvolutions(x, w, 2, 1))
    assert ours < naive
