"""Library kernel microbenchmarks + tiled multi-core measurements.

Two layers:

* the **microbenchmarks** (real repeated timing of the single-core
  kernels) keep substrate performance regressions visible, and pin the
  algorithmic ordering — guided search beats full search, the
  transformed deconvolution beats the zero-stuffed one;
* the **tiled execution bench** measures what
  :class:`repro.parallel.TileExecutor` buys on this machine, in
  before/after form: each matcher runs whole-frame (*serial*), tiled
  with the legacy pickled transport and one band per worker
  (*pickle*, the "before"), and with the autotuned band size plus the
  shared-memory transport (*tuned*, the "after").  The
  seam-equivalence contract is asserted for both tiled configs
  (bit-identical output — this is the part CI smoke-runs), every
  latency lands in ``benchmarks/results/BENCH_kernels.json``, and the
  run must leave no stray ``/dev/shm/asv_*`` segments behind.

Wall-clock *speedup* is machine-dependent (worker count, core count,
thermal state), so it is printed and recorded but only asserted when
``ASV_BENCH_ASSERT_SPEEDUP=1`` is set — run that locally on a
multi-core box, never in CI.  Knobs:

* ``ASV_BENCH_SIZE``  — ``HxW`` cap for every frame in this file
  (CI smoke uses a tiny one);
* ``ASV_BENCH_WORKERS`` — pool size for the tiled runs (default: all
  cores, at least 2 so tiling is always exercised);
* ``ASV_BENCH_ASSERT_SPEEDUP`` — opt-in ``>= 2x`` speedup gate.
"""

import glob
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.datasets import sceneflow_scene
from repro.deconv import deconv_via_subconvolutions
from repro.flow import farneback_flow
from repro.nn.ops import deconvnd
from repro.parallel import TileExecutor, shm_available
from repro.parallel.autotune import tuned_tile_rows
from repro.stereo import block_match, guided_block_match, sgm
from repro.stereo.sgm import _DIRECTIONS_8, aggregate_path, aggregate_volume
from repro.tables import render_table


def _size_cap(default):
    """Apply the ``ASV_BENCH_SIZE`` ``HxW`` cap to a default size."""
    txt = os.environ.get("ASV_BENCH_SIZE")
    if not txt:
        return default
    h, w = (int(v) for v in txt.lower().split("x"))
    return (min(h, default[0]), min(w, default[1]))


SIZE = _size_cap((96, 160))
MAX_DISP = min(32, SIZE[1] // 2)

#: the paper's serving resolution (qHD) for the tiled measurements;
#: SGM — whose aggregation is a Python-level DP sweep — runs at half
#: that so the whole bench stays minutes, not hours
FULL_SIZE = _size_cap((540, 960))
SGM_SIZE = _size_cap((270, 480))
FULL_MAX_DISP = min(64, FULL_SIZE[1] // 2)
WORKERS = int(
    os.environ.get("ASV_BENCH_WORKERS", str(max(2, os.cpu_count() or 2)))
)


@pytest.fixture(scope="module")
def frame():
    return sceneflow_scene(5, size=SIZE, max_disp=MAX_DISP).render(0)


@pytest.fixture(scope="module")
def pair():
    scene = sceneflow_scene(5, size=SIZE, max_disp=MAX_DISP, max_speed=1.5)
    return scene.render(0), scene.render(1)


def _clock(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# single-core microbenchmarks
# ----------------------------------------------------------------------
def test_block_match_kernel(benchmark, frame):
    disp = benchmark(block_match, frame.left, frame.right, MAX_DISP)
    assert disp.shape == SIZE


def test_guided_search_kernel(benchmark, frame):
    disp = benchmark(
        guided_block_match, frame.left, frame.right, frame.disparity, 4
    )
    assert disp.shape == SIZE


def test_guided_search_faster_than_full(frame):
    """The algorithmic point of ISM's refinement: a +/-4 window costs
    a fraction of the full search."""
    full = _clock(lambda: block_match(frame.left, frame.right, MAX_DISP))
    guided = _clock(
        lambda: guided_block_match(frame.left, frame.right, frame.disparity, 4)
    )
    assert guided < full


def test_float32_cost_volume_not_slower_by_much(frame):
    """The precision knob trades memory traffic for rounding; it must
    never cost meaningful extra time.  A 1.5x relative bound on a
    millisecond-scale call is noise-sensitive, so like the speedup
    gate it is printed always but asserted only opt-in (never in the
    CI smoke run)."""
    f64 = _clock(lambda: block_match(frame.left, frame.right, MAX_DISP))
    f32 = _clock(
        lambda: block_match(
            frame.left, frame.right, MAX_DISP, precision="float32"
        )
    )
    print(f"float32/float64 block_match: {f32 / f64:.2f}x")
    if os.environ.get("ASV_BENCH_ASSERT_SPEEDUP"):
        assert f32 < 1.5 * f64


def test_sgm_kernel(benchmark, frame):
    disp = benchmark(sgm, frame.left, frame.right, MAX_DISP)
    assert disp.shape == SIZE


def test_farneback_kernel(benchmark, pair):
    f0, f1 = pair
    flow = benchmark(farneback_flow, f0.left, f1.left)
    assert flow.shape == SIZE + (2,)


def test_deconv_transformation_kernel(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 24, 40))
    w = rng.normal(size=(16, 32, 4, 4))
    out = benchmark(deconv_via_subconvolutions, x, w, 2, 1)
    assert out.shape == (16, 48, 80)


def test_transformed_deconv_faster_than_naive():
    """The MAC reduction shows up in wall-clock too."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(32, 24, 40))
    w = rng.normal(size=(16, 32, 4, 4))

    naive = _clock(lambda: deconvnd(x, w, stride=2, padding=1))
    ours = _clock(lambda: deconv_via_subconvolutions(x, w, 2, 1))
    assert ours < naive


# ----------------------------------------------------------------------
# tiled multi-core execution: seams + speedup -> BENCH_kernels.json
# ----------------------------------------------------------------------
def _tiled_cases():
    """(name, size, serial call, tiled call) per matcher."""
    big = sceneflow_scene(
        7, size=FULL_SIZE, max_disp=min(FULL_MAX_DISP, 48)
    ).render(0)
    small = sceneflow_scene(
        7, size=SGM_SIZE, max_disp=min(FULL_MAX_DISP, 48)
    ).render(0)
    md = FULL_MAX_DISP
    return [
        ("bm", FULL_SIZE, big,
         lambda ex: ex.block_match(big.left, big.right, md)),
        ("census", FULL_SIZE, big,
         lambda ex: ex.census_block_match(big.left, big.right, md)),
        ("guided", FULL_SIZE, big,
         lambda ex: ex.guided_block_match(
             big.left, big.right, big.disparity, radius=4)),
        ("sgm", SGM_SIZE, small,
         lambda ex: ex.sgm(
             small.left, small.right, min(64, SGM_SIZE[1] // 2), paths=8)),
    ]


def _shm_segments():
    """Names of this package's live shm segments (None off-Linux)."""
    if not Path("/dev/shm").exists():
        return None
    return set(glob.glob("/dev/shm/asv_*"))


def _scalar_aggregate(cost, dy, dx, p1, p2):
    """Per-cell Python DP — the pre-vectorization shape of
    ``aggregate_path`` (same recurrence the pinned scalar reference in
    ``tests/test_stereo_matchers.py`` uses), kept here as the honest
    "before" baseline for the sweep vectorization."""
    d, h, w = cost.shape
    out = np.empty_like(cost)
    ys = range(h) if dy >= 0 else range(h - 1, -1, -1)
    xs = range(w) if dx >= 0 else range(w - 1, -1, -1)
    for y in ys:
        for x in xs:
            py, px = y - dy, x - dx
            if not (0 <= py < h and 0 <= px < w):
                out[:, y, x] = cost[:, y, x]
                continue
            prev = out[:, py, px]
            floor = prev.min()
            best = np.minimum(prev, floor + p2)
            best[1:] = np.minimum(best[1:], prev[:-1] + p1)
            best[:-1] = np.minimum(best[:-1], prev[1:] + p1)
            out[:, y, x] = cost[:, y, x] + (best - floor)
    return out


def _bench_aggregation():
    """Before/after for the SGM hot loop.

    Two measurements: the *vectorization* win (scalar per-cell DP vs
    the line-vectorized ``aggregate_path``, one diagonal direction on
    a small volume — the scalar loop would take minutes at qHD), and
    the fused 8-direction :func:`aggregate_volume` vs its
    per-direction composition (bit-identical by
    ``tests/test_stereo_matchers.py``; the fused form saves result
    allocations and shares the plane transpose)."""
    h, w = _size_cap((64, 96))
    small = np.random.default_rng(2).random((16, h, w))
    assert np.array_equal(  # apples to apples: same DP, same bits
        _scalar_aggregate(small, 1, 1, 1.0, 8.0),
        aggregate_path(small, 1, 1, 1.0, 8.0),
    )
    t_scalar = _clock(lambda: _scalar_aggregate(small, 1, 1, 1.0, 8.0),
                      reps=1)
    t_vector = _clock(lambda: aggregate_path(small, 1, 1, 1.0, 8.0),
                      reps=3)

    h, w = _size_cap((270, 480))
    cost = np.random.default_rng(3).random((min(32, FULL_MAX_DISP), h, w))

    def per_direction():
        total = np.zeros_like(cost)
        for dy, dx in _DIRECTIONS_8:
            total += aggregate_path(cost, dy, dx, 1.0, 8.0)
        return total

    per_direction()  # warm allocator + pages before timing either form
    t_fused = _clock(lambda: aggregate_volume(cost, 1.0, 8.0, paths=8),
                     reps=3)
    t_composed = _clock(per_direction, reps=3)
    return {
        "scalar_shape": [16, *_size_cap((64, 96))],
        "scalar_s": t_scalar,
        "vectorized_s": t_vector,
        "vectorization_speedup": t_scalar / t_vector,
        "volume_shape": list(cost.shape),
        "fused_s": t_fused,
        "per_direction_s": t_composed,
        "fused_vs_composed": t_composed / t_fused,
    }


def test_tiled_execution_speedup_and_seams(save_table):
    segments_before = _shm_segments()
    serial = TileExecutor(workers=1)
    rows, records = [], {}
    # before: legacy transport (pickled band arrays), one band per
    # worker; after: autotuned band size + shared-memory transport
    with TileExecutor(workers=WORKERS, pool="process", tile_rows=None,
                      transport="pickle") as pickled, \
         TileExecutor(workers=WORKERS, pool="process") as tuned:
        for name, size, _frame_obj, call in _tiled_cases():
            want = call(serial)
            for label, ex in (("pickle", pickled), ("tuned", tuned)):
                got = call(ex)
                # seam equivalence is the part that gates CI — tile
                # seams must be bit-identical to whole-frame execution
                assert np.array_equal(want, got), (
                    f"{name}/{label}: tiled output differs from whole-frame"
                )
            t_serial = _clock(lambda: call(serial), reps=2)
            t_pickle = _clock(lambda: call(pickled), reps=2)
            t_tuned = _clock(lambda: call(tuned), reps=2)
            records[name] = {
                "size": list(size),
                "tuned_tile_rows": tuned_tile_rows(name, size, WORKERS),
                "serial_s": t_serial,
                "pickle_s": t_pickle,
                "tuned_s": t_tuned,
                "speedup_pickle": t_serial / t_pickle,
                "speedup": t_serial / t_tuned,
                "seam_identical": True,
            }
            rows.append(
                [name, f"{size[0]}x{size[1]}",
                 1e3 * t_serial, 1e3 * t_pickle, 1e3 * t_tuned,
                 t_serial / t_tuned, "yes"]
            )

    aggregation = _bench_aggregation()
    report = {
        "bench": "kernels",
        "workers": WORKERS,
        "pool": "process",
        "transport": "shm" if shm_available() else "pickle",
        "cpu_count": os.cpu_count(),
        "max_disp": FULL_MAX_DISP,
        "smoke_size_cap": os.environ.get("ASV_BENCH_SIZE"),
        "kernels": records,
        "sgm_aggregation": aggregation,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_kernels.json"
    path.write_text(json.dumps(report, indent=2) + "\n")

    save_table(
        "kernels_tiled",
        render_table(
            f"Tiled kernel execution — {WORKERS} process workers on "
            f"{os.cpu_count()} cores (speedup = serial/tuned; "
            f"machine-dependent, asserted only with "
            f"ASV_BENCH_ASSERT_SPEEDUP=1)",
            ["kernel", "frame", "serial ms", "pickle ms", "tuned ms",
             "speedup", "seam-identical"],
            rows,
        ),
    )
    print(f"[saved to {path}]")
    print(f"aggregation vectorization: "
          f"{aggregation['vectorization_speedup']:.1f}x over scalar DP; "
          f"fused vs composed: {aggregation['fused_vs_composed']:.2f}x")

    # the shm transport must leave /dev/shm exactly as it found it
    segments_after = _shm_segments()
    if segments_before is not None:
        leaked = segments_after - segments_before
        assert not leaked, f"leaked shm segments: {sorted(leaked)}"

    if os.environ.get("ASV_BENCH_ASSERT_SPEEDUP"):
        # opt-in, multi-core-host-only gates (see module docstring)
        assert aggregation["vectorization_speedup"] >= 5.0, (
            "vectorized aggregate_path must beat the scalar DP >= 5x, "
            f"got {aggregation['vectorization_speedup']:.1f}x"
        )
        for name in ("sgm", "census"):
            assert records[name]["speedup"] > 1.0, (
                f"{name}: tuned tiled run slower than serial "
                f"({records[name]['speedup']:.2f}x)"
            )
        best = max(r["speedup"] for r in records.values())
        assert best >= 2.0, (
            f"expected >= 2x multi-worker speedup, best was {best:.2f}x "
            f"({os.cpu_count()} cores, {WORKERS} workers)"
        )
