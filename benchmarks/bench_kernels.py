"""Library kernel microbenchmarks + tiled multi-core measurements.

Two layers:

* the **microbenchmarks** (real repeated timing of the single-core
  kernels) keep substrate performance regressions visible, and pin the
  algorithmic ordering — guided search beats full search, the
  transformed deconvolution beats the zero-stuffed one;
* the **tiled execution bench** measures what
  :class:`repro.parallel.TileExecutor` buys on this machine, in
  before/after form: each matcher runs whole-frame (*serial*), tiled
  with the legacy pickled transport and one band per worker
  (*pickle*, the "before"), and with the autotuned band size plus the
  shared-memory transport (*tuned*, the "after").  The
  seam-equivalence contract is asserted for both tiled configs
  (bit-identical output — this is the part CI smoke-runs), every
  latency lands in ``benchmarks/results/BENCH_kernels.json``, and the
  run must leave no stray ``/dev/shm/asv_*`` segments behind.

Wall-clock *speedup* is machine-dependent (worker count, core count,
thermal state), so it is printed and recorded but only asserted when
``ASV_BENCH_ASSERT_SPEEDUP=1`` is set — run that locally on a
multi-core box, never in CI.  Knobs:

* ``ASV_BENCH_SIZE``  — ``HxW`` cap for every frame in this file
  (CI smoke uses a tiny one);
* ``ASV_BENCH_WORKERS`` — pool size for the tiled runs (default: all
  cores, at least 2 so tiling is always exercised);
* ``ASV_BENCH_ASSERT_SPEEDUP`` — opt-in ``>= 2x`` speedup gate.
"""

import glob
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest
from scipy import ndimage

from benchmarks.conftest import RESULTS_DIR
from repro.core import ISM, ISMConfig, correspondence
from repro.datasets import sceneflow_scene
from repro.deconv import deconv_via_subconvolutions
from repro.flow import (
    FrameExpansion,
    bilinear_sample,
    blur_kernel1d,
    downsample2,
    farneback_flow,
    flow_from_expansions,
    flow_iteration,
    gaussian_blur,
    gaussian_kernel1d,
    poly_expansion,
)
from repro.nn.ops import deconvnd
from repro.parallel import TileExecutor, shm_available
from repro.parallel.autotune import tuned_tile_rows
from repro.stereo import block_match, guided_block_match, sgm
from repro.stereo import block_matching as bm_mod
from repro.stereo.sgm import _DIRECTIONS_8, aggregate_path, aggregate_volume
from repro.tables import render_table


def _size_cap(default):
    """Apply the ``ASV_BENCH_SIZE`` ``HxW`` cap to a default size."""
    txt = os.environ.get("ASV_BENCH_SIZE")
    if not txt:
        return default
    h, w = (int(v) for v in txt.lower().split("x"))
    return (min(h, default[0]), min(w, default[1]))


SIZE = _size_cap((96, 160))
MAX_DISP = min(32, SIZE[1] // 2)

#: the paper's serving resolution (qHD) for the tiled measurements;
#: SGM — whose aggregation is a Python-level DP sweep — runs at half
#: that so the whole bench stays minutes, not hours
FULL_SIZE = _size_cap((540, 960))
SGM_SIZE = _size_cap((270, 480))
FULL_MAX_DISP = min(64, FULL_SIZE[1] // 2)
WORKERS = int(
    os.environ.get("ASV_BENCH_WORKERS", str(max(2, os.cpu_count() or 2)))
)


@pytest.fixture(scope="module")
def frame():
    return sceneflow_scene(5, size=SIZE, max_disp=MAX_DISP).render(0)


@pytest.fixture(scope="module")
def pair():
    scene = sceneflow_scene(5, size=SIZE, max_disp=MAX_DISP, max_speed=1.5)
    return scene.render(0), scene.render(1)


def _clock(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# single-core microbenchmarks
# ----------------------------------------------------------------------
def test_block_match_kernel(benchmark, frame):
    disp = benchmark(block_match, frame.left, frame.right, MAX_DISP)
    assert disp.shape == SIZE


def test_guided_search_kernel(benchmark, frame):
    disp = benchmark(
        guided_block_match, frame.left, frame.right, frame.disparity, 4
    )
    assert disp.shape == SIZE


def test_guided_search_faster_than_full(frame):
    """The algorithmic point of ISM's refinement: a +/-4 window costs
    a fraction of the full search."""
    full = _clock(lambda: block_match(frame.left, frame.right, MAX_DISP))
    guided = _clock(
        lambda: guided_block_match(frame.left, frame.right, frame.disparity, 4)
    )
    assert guided < full


def test_float32_cost_volume_not_slower_by_much(frame):
    """The precision knob trades memory traffic for rounding; it must
    never cost meaningful extra time.  A 1.5x relative bound on a
    millisecond-scale call is noise-sensitive, so like the speedup
    gate it is printed always but asserted only opt-in (never in the
    CI smoke run)."""
    f64 = _clock(lambda: block_match(frame.left, frame.right, MAX_DISP))
    f32 = _clock(
        lambda: block_match(
            frame.left, frame.right, MAX_DISP, precision="float32"
        )
    )
    print(f"float32/float64 block_match: {f32 / f64:.2f}x")
    if os.environ.get("ASV_BENCH_ASSERT_SPEEDUP"):
        assert f32 < 1.5 * f64


def test_sgm_kernel(benchmark, frame):
    disp = benchmark(sgm, frame.left, frame.right, MAX_DISP)
    assert disp.shape == SIZE


def test_farneback_kernel(benchmark, pair):
    f0, f1 = pair
    flow = benchmark(farneback_flow, f0.left, f1.left)
    assert flow.shape == SIZE + (2,)


def test_deconv_transformation_kernel(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 24, 40))
    w = rng.normal(size=(16, 32, 4, 4))
    out = benchmark(deconv_via_subconvolutions, x, w, 2, 1)
    assert out.shape == (16, 48, 80)


def test_transformed_deconv_faster_than_naive():
    """The MAC reduction shows up in wall-clock too."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(32, 24, 40))
    w = rng.normal(size=(16, 32, 4, 4))

    naive = _clock(lambda: deconvnd(x, w, stride=2, padding=1))
    ours = _clock(lambda: deconv_via_subconvolutions(x, w, 2, 1))
    assert ours < naive


# ----------------------------------------------------------------------
# tiled multi-core execution: seams + speedup -> BENCH_kernels.json
# ----------------------------------------------------------------------
def _tiled_cases():
    """(name, size, serial call, tiled call) per matcher."""
    big = sceneflow_scene(
        7, size=FULL_SIZE, max_disp=min(FULL_MAX_DISP, 48)
    ).render(0)
    small = sceneflow_scene(
        7, size=SGM_SIZE, max_disp=min(FULL_MAX_DISP, 48)
    ).render(0)
    md = FULL_MAX_DISP
    return [
        ("bm", FULL_SIZE, big,
         lambda ex: ex.block_match(big.left, big.right, md)),
        ("census", FULL_SIZE, big,
         lambda ex: ex.census_block_match(big.left, big.right, md)),
        ("guided", FULL_SIZE, big,
         lambda ex: ex.guided_block_match(
             big.left, big.right, big.disparity, radius=4)),
        ("sgm", SGM_SIZE, small,
         lambda ex: ex.sgm(
             small.left, small.right, min(64, SGM_SIZE[1] // 2), paths=8)),
    ]


def _shm_segments():
    """Names of this package's live shm segments (None off-Linux)."""
    if not Path("/dev/shm").exists():
        return None
    return set(glob.glob("/dev/shm/asv_*"))


def _scalar_aggregate(cost, dy, dx, p1, p2):
    """Per-cell Python DP — the pre-vectorization shape of
    ``aggregate_path`` (same recurrence the pinned scalar reference in
    ``tests/test_stereo_matchers.py`` uses), kept here as the honest
    "before" baseline for the sweep vectorization."""
    d, h, w = cost.shape
    out = np.empty_like(cost)
    ys = range(h) if dy >= 0 else range(h - 1, -1, -1)
    xs = range(w) if dx >= 0 else range(w - 1, -1, -1)
    for y in ys:
        for x in xs:
            py, px = y - dy, x - dx
            if not (0 <= py < h and 0 <= px < w):
                out[:, y, x] = cost[:, y, x]
                continue
            prev = out[:, py, px]
            floor = prev.min()
            best = np.minimum(prev, floor + p2)
            best[1:] = np.minimum(best[1:], prev[:-1] + p1)
            best[:-1] = np.minimum(best[:-1], prev[1:] + p1)
            out[:, y, x] = cost[:, y, x] + (best - floor)
    return out


def _bench_aggregation():
    """Before/after for the SGM hot loop.

    Two measurements: the *vectorization* win (scalar per-cell DP vs
    the line-vectorized ``aggregate_path``, one diagonal direction on
    a small volume — the scalar loop would take minutes at qHD), and
    the fused 8-direction :func:`aggregate_volume` vs its
    per-direction composition (bit-identical by
    ``tests/test_stereo_matchers.py``; the fused form saves result
    allocations and shares the plane transpose)."""
    h, w = _size_cap((64, 96))
    small = np.random.default_rng(2).random((16, h, w))
    assert np.array_equal(  # apples to apples: same DP, same bits
        _scalar_aggregate(small, 1, 1, 1.0, 8.0),
        aggregate_path(small, 1, 1, 1.0, 8.0),
    )
    t_scalar = _clock(lambda: _scalar_aggregate(small, 1, 1, 1.0, 8.0),
                      reps=1)
    t_vector = _clock(lambda: aggregate_path(small, 1, 1, 1.0, 8.0),
                      reps=3)

    h, w = _size_cap((270, 480))
    cost = np.random.default_rng(3).random((min(32, FULL_MAX_DISP), h, w))

    def per_direction():
        total = np.zeros_like(cost)
        for dy, dx in _DIRECTIONS_8:
            total += aggregate_path(cost, dy, dx, 1.0, 8.0)
        return total

    per_direction()  # warm allocator + pages before timing either form
    t_fused = _clock(lambda: aggregate_volume(cost, 1.0, 8.0, paths=8),
                     reps=3)
    t_composed = _clock(per_direction, reps=3)
    return {
        "scalar_shape": [16, *_size_cap((64, 96))],
        "scalar_s": t_scalar,
        "vectorized_s": t_vector,
        "vectorization_speedup": t_scalar / t_vector,
        "volume_shape": list(cost.shape),
        "fused_s": t_fused,
        "per_direction_s": t_composed,
        "fused_vs_composed": t_composed / t_fused,
    }


def test_tiled_execution_speedup_and_seams(save_table):
    segments_before = _shm_segments()
    serial = TileExecutor(workers=1)
    rows, records = [], {}
    # before: legacy transport (pickled band arrays), one band per
    # worker; after: autotuned band size + shared-memory transport
    with TileExecutor(workers=WORKERS, pool="process", tile_rows=None,
                      transport="pickle") as pickled, \
         TileExecutor(workers=WORKERS, pool="process") as tuned:
        for name, size, _frame_obj, call in _tiled_cases():
            want = call(serial)
            for label, ex in (("pickle", pickled), ("tuned", tuned)):
                got = call(ex)
                # seam equivalence is the part that gates CI — tile
                # seams must be bit-identical to whole-frame execution
                assert np.array_equal(want, got), (
                    f"{name}/{label}: tiled output differs from whole-frame"
                )
            t_serial = _clock(lambda: call(serial), reps=2)
            t_pickle = _clock(lambda: call(pickled), reps=2)
            t_tuned = _clock(lambda: call(tuned), reps=2)
            records[name] = {
                "size": list(size),
                "tuned_tile_rows": tuned_tile_rows(name, size, WORKERS),
                "serial_s": t_serial,
                "pickle_s": t_pickle,
                "tuned_s": t_tuned,
                "speedup_pickle": t_serial / t_pickle,
                "speedup": t_serial / t_tuned,
                "seam_identical": True,
            }
            rows.append(
                [name, f"{size[0]}x{size[1]}",
                 1e3 * t_serial, 1e3 * t_pickle, 1e3 * t_tuned,
                 t_serial / t_tuned, "yes"]
            )

    aggregation = _bench_aggregation()
    report = {
        "bench": "kernels",
        "workers": WORKERS,
        "pool": "process",
        "transport": "shm" if shm_available() else "pickle",
        "cpu_count": os.cpu_count(),
        "max_disp": FULL_MAX_DISP,
        "smoke_size_cap": os.environ.get("ASV_BENCH_SIZE"),
        "kernels": records,
        "sgm_aggregation": aggregation,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_kernels.json"
    path.write_text(json.dumps(report, indent=2) + "\n")

    save_table(
        "kernels_tiled",
        render_table(
            f"Tiled kernel execution — {WORKERS} process workers on "
            f"{os.cpu_count()} cores (speedup = serial/tuned; "
            f"machine-dependent, asserted only with "
            f"ASV_BENCH_ASSERT_SPEEDUP=1)",
            ["kernel", "frame", "serial ms", "pickle ms", "tuned ms",
             "speedup", "seam-identical"],
            rows,
        ),
    )
    print(f"[saved to {path}]")
    print(f"aggregation vectorization: "
          f"{aggregation['vectorization_speedup']:.1f}x over scalar DP; "
          f"fused vs composed: {aggregation['fused_vs_composed']:.2f}x")

    # the shm transport must leave /dev/shm exactly as it found it
    segments_after = _shm_segments()
    if segments_before is not None:
        leaked = segments_after - segments_before
        assert not leaked, f"leaked shm segments: {sorted(leaked)}"

    if os.environ.get("ASV_BENCH_ASSERT_SPEEDUP"):
        # opt-in, multi-core-host-only gates (see module docstring)
        assert aggregation["vectorization_speedup"] >= 5.0, (
            "vectorized aggregate_path must beat the scalar DP >= 5x, "
            f"got {aggregation['vectorization_speedup']:.1f}x"
        )
        for name in ("sgm", "census"):
            assert records[name]["speedup"] > 1.0, (
                f"{name}: tuned tiled run slower than serial "
                f"({records[name]['speedup']:.2f}x)"
            )
        best = max(r["speedup"] for r in records.values())
        assert best >= 2.0, (
            f"expected >= 2x multi-worker speedup, best was {best:.2f}x "
            f"({os.cpu_count()} cores, {WORKERS} workers)"
        )


# ----------------------------------------------------------------------
# the non-key path: before/after for flow, guided search and ISM.step
# ----------------------------------------------------------------------
# "Before" baselines, kept in the pre-vectorization shape: Python tap
# loops over shifted whole-image views for the moment filters, one
# bilinear_sample / gaussian_blur call per channel in the iteration,
# and one gather + box filter per offset in the guided search.  The
# guided loop is bit-identical to the batched kernel (asserted); the
# correlate1d-based flow rounds differently at the last bit, so its
# max-abs deviation is measured and recorded instead.

def _tap_sep_correlate(img, ky, kx):
    pad_y = len(ky) // 2
    pad_x = len(kx) // 2
    padded = np.pad(img, ((pad_y, pad_y), (0, 0)), mode="edge")
    tmp = np.zeros_like(img)
    for i, t in enumerate(ky):
        if t:
            tmp += t * padded[i : i + img.shape[0], :]
    padded = np.pad(tmp, ((0, 0), (pad_x, pad_x)), mode="edge")
    out = np.zeros_like(img)
    for i, t in enumerate(kx):
        if t:
            out += t * padded[:, i : i + img.shape[1]]
    return out


def _tap_poly_expansion(img, sigma=1.5, radius=None, precision="float64"):
    img = np.asarray(img, dtype=np.float64)
    if radius is None:
        radius = max(2, int(round(3.0 * sigma)))
    g0 = gaussian_kernel1d(sigma, radius)
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    g1, g2 = g0 * x, g0 * x * x
    m00 = _tap_sep_correlate(img, g0, g0)
    m01 = _tap_sep_correlate(img, g0, g1)
    m10 = _tap_sep_correlate(img, g1, g0)
    m02 = _tap_sep_correlate(img, g0, g2)
    m20 = _tap_sep_correlate(img, g2, g0)
    m11 = _tap_sep_correlate(img, g1, g1)
    s0 = g0.sum()
    s2 = float((g0 * x * x).sum())
    s4 = float((g0 * x**4).sum())
    G = np.array(
        [
            [s0, 0, 0, s2, s2, 0],
            [0, s2, 0, 0, 0, 0],
            [0, 0, s2, 0, 0, 0],
            [s2, 0, 0, s4, s2 * s2, 0],
            [s2, 0, 0, s2 * s2, s4, 0],
            [0, 0, 0, 0, 0, s2 * s2],
        ]
    )
    moments = np.stack([m00, m01, m10, m02, m20, m11], axis=-1)
    coeffs = moments @ np.linalg.inv(G).T
    h, w = img.shape
    A = np.empty((h, w, 2, 2))
    A[..., 0, 0] = coeffs[..., 4]
    A[..., 1, 1] = coeffs[..., 3]
    A[..., 0, 1] = A[..., 1, 0] = coeffs[..., 5] / 2.0
    b = np.empty((h, w, 2))
    b[..., 0] = coeffs[..., 2]
    b[..., 1] = coeffs[..., 1]
    return A, b


def _tap_flow_iteration(A1, b1, A2, b2, flow, window_sigma=4.0):
    h, w = flow.shape[:2]
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
    sy = yy + flow[..., 0]
    sx = xx + flow[..., 1]
    A2w = np.stack(
        [bilinear_sample(A2[..., i, j], sy, sx) for i in range(2) for j in range(2)],
        axis=-1,
    ).reshape(h, w, 2, 2)
    b2w = np.stack(
        [bilinear_sample(b2[..., i], sy, sx) for i in range(2)], axis=-1
    )
    A = 0.5 * (A1 + A2w)
    db = -0.5 * (b2w - b1) + np.einsum("hwij,hwj->hwi", A, flow)
    G = np.einsum("hwki,hwkj->hwij", A, A)
    hvec = np.einsum("hwki,hwk->hwi", A, db)
    for i in range(2):
        hvec[..., i] = gaussian_blur(hvec[..., i], window_sigma)
        for j in range(2):
            G[..., i, j] = gaussian_blur(G[..., i, j], window_sigma)
    trace = G[..., 0, 0] + G[..., 1, 1]
    lam = 1e-3 * 0.5 * trace + 1e-12
    g00 = G[..., 0, 0] + lam
    g11 = G[..., 1, 1] + lam
    det = g00 * g11 - G[..., 0, 1] * G[..., 1, 0]
    new = np.empty_like(flow)
    new[..., 0] = (g11 * hvec[..., 0] - G[..., 0, 1] * hvec[..., 1]) / det
    new[..., 1] = (g00 * hvec[..., 1] - G[..., 1, 0] * hvec[..., 0]) / det
    return new


class _TapFlow:
    """The pre-vectorization flow stack behind the ``flow=`` duck
    interface, so a whole ISM can run on the "before" kernels."""

    @staticmethod
    def expand_frame(frame, levels=3, sigma=1.5, radius=None, precision="float64"):
        f = np.asarray(frame, dtype=np.float64)
        if f.ndim == 3:
            f = f.mean(axis=2)
        pyramid = [f]
        for _ in range(levels - 1):
            if min(pyramid[-1].shape) < 16:
                break
            pyramid.append(downsample2(pyramid[-1]))
        return FrameExpansion(
            coeffs=tuple(_tap_poly_expansion(p, sigma) for p in pyramid),
            shapes=tuple(p.shape for p in pyramid),
            levels=levels, sigma=sigma, radius=radius, precision=precision,
        )

    @staticmethod
    def flow_from_expansions(exp0, exp1, iterations=3, window_sigma=4.0):
        return flow_from_expansions(
            exp0, exp1, iterations, window_sigma, step=_tap_flow_iteration
        )


def _loop_guided(left, right, init, radius=4, block_size=9, subpixel=True,
                 accept_margin=0.1, precision="float64"):
    """Per-offset guided search (the pre-batching loop) — bit-identical
    to the batched kernel, so the comparison is asserted, not measured."""
    dtype = bm_mod.resolve_precision(precision)
    left = bm_mod._as_float(left, dtype)
    right = bm_mod._as_float(right, dtype)
    init = np.asarray(init, dtype=np.float64)
    h, w = left.shape
    yy, xx = np.mgrid[0:h, 0:w]
    base = np.rint(init).astype(int)
    offsets = np.arange(-radius, radius + 1)
    costs = np.empty((offsets.size, h, w), dtype=dtype)
    any_valid = np.zeros((h, w), dtype=bool)
    init_valid = None
    for i, off in enumerate(offsets):
        d = base + off
        sample_x = xx + d
        valid = (sample_x >= 0) & (sample_x < w) & (d >= 0)
        diff = np.abs(left - right[yy, np.clip(sample_x, 0, w - 1)])
        costs[i] = bm_mod._box_mean(diff, block_size)
        costs[i][~valid] = bm_mod._BIG
        any_valid |= valid
        if off == 0:
            init_valid = valid
    best = costs.argmin(axis=0)
    if accept_margin > 0:
        init_cost = costs[radius]
        best_cost = np.take_along_axis(costs, best[None], axis=0)[0]
        best = np.where(init_cost <= best_cost + accept_margin, radius, best)
    disp = (base + offsets[best]).astype(np.float64)
    if subpixel:
        frac = bm_mod._subpixel_refine(costs, best.astype(np.float64))
        disp = base + offsets[0] + frac
    keep_init = ~any_valid
    if accept_margin > 0:
        keep_init |= ~init_valid
    disp = np.where(
        keep_init, np.clip(init, 0.0, (w - 1 - xx).astype(np.float64)), disp
    )
    return np.maximum(disp, 0.0)


def _scalar_flow_iteration(A1, b1, A2, b2, flow, window_sigma):
    """Per-pixel scalar Farneback update — the same computation
    :func:`flow_iteration` vectorizes (pinned bit-identical by
    ``tests/test_flow.py``), timed on a small frame exactly like the
    scalar SGM DP above."""
    h, w = flow.shape[:2]
    stack = np.empty((5, h, w))
    for y in range(h):
        for x in range(w):
            sy = min(max(y + flow[y, x, 0], 0.0), h - 1.0)
            sx = min(max(x + flow[y, x, 1], 0.0), w - 1.0)
            y0, x0 = int(sy), int(sx)
            y1, x1 = min(y0 + 1, h - 1), min(x0 + 1, w - 1)
            fy, fx = sy - y0, sx - x0
            w00 = (1 - fy) * (1 - fx)
            w01 = (1 - fy) * fx
            w10 = fy * (1 - fx)
            w11 = fy * fx
            A2w = (A2[y0, x0] * w00 + A2[y0, x1] * w01
                   + A2[y1, x0] * w10 + A2[y1, x1] * w11)
            b2w = (b2[y0, x0] * w00 + b2[y0, x1] * w01
                   + b2[y1, x0] * w10 + b2[y1, x1] * w11)
            A = 0.5 * (A1[y, x] + A2w)
            db = -0.5 * (b2w - b1[y, x]) + A @ flow[y, x]
            G = A @ A
            hv = A @ db
            stack[0, y, x] = G[0, 0]
            stack[1, y, x] = G[0, 1]
            stack[2, y, x] = G[1, 1]
            stack[3, y, x] = hv[0]
            stack[4, y, x] = hv[1]
    taps = blur_kernel1d(window_sigma)
    r = taps.size // 2
    blurred = np.empty_like(stack)
    for p in range(5):
        tmp = np.empty((h, w))
        for y in range(h):
            for x in range(w):
                acc = 0.0
                for t in range(-r, r + 1):
                    acc += stack[p, min(max(y + t, 0), h - 1), x] * taps[r + t]
                tmp[y, x] = acc
        for y in range(h):
            for x in range(w):
                acc = 0.0
                for t in range(-r, r + 1):
                    acc += tmp[y, min(max(x + t, 0), w - 1)] * taps[r + t]
                blurred[p, y, x] = acc
    G00, G01, G11, h0, h1 = blurred
    new = np.empty_like(flow)
    for y in range(h):
        for x in range(w):
            lam = 1e-3 * 0.5 * (G00[y, x] + G11[y, x]) + 1e-12
            g00 = G00[y, x] + lam
            g11 = G11[y, x] + lam
            det = g00 * g11 - G01[y, x] * G01[y, x]
            new[y, x, 0] = (g11 * h0[y, x] - G01[y, x] * h1[y, x]) / det
            new[y, x, 1] = (g00 * h1[y, x] - G01[y, x] * h0[y, x]) / det
    return new


@contextmanager
def _pr7_medians():
    """Pin the median filtering of the non-key path back to scipy's
    generic rank filter — the implementation PR 7 shipped — so the
    "before" ISM pays PR-7's median cost while computing the same
    bits (``median2d`` is bit-identical to ``ndimage.median_filter``
    by construction and by ``tests/test_stereo_matchers.py``)."""
    saved = correspondence.median2d

    def scipy_median(a, size):
        full = (1,) * (a.ndim - 2) + (size, size)
        return ndimage.median_filter(a, size=full)

    correspondence.median2d = scipy_median
    try:
        yield
    finally:
        correspondence.median2d = saved


def _steady_state_step(make_ism, frames, reps=3):
    """Best-of-``reps`` latency of the third (steady-state non-key)
    step."""
    best, disps = float("inf"), None
    for _ in range(reps):
        ism = make_ism()
        ism.step(frames[0], is_key=True)
        d1, _ = ism.step(frames[1])
        t0 = time.perf_counter()
        d2, _ = ism.step(frames[2])
        best = min(best, time.perf_counter() - t0)
        disps = (d1, d2)
    return best, disps


def test_nonkey_path_before_after(save_table):
    """Before/after for every non-key kernel + the served ISM step.

    Always asserted, any machine: the batched guided search is
    bit-identical to the per-offset loop, the tiled flow is
    bit-identical to the vectorized flow, the cached ISM serves
    bit-identical disparities to the uncached one, and the per-pixel
    scalar flow baseline agrees with the kernel.  The wall-clock gates
    (vectorized flow >= 3x the scalar loops, cached step beating
    uncached, the served step >= 3x over the full PR-7 stack — tap
    flow, per-offset guided loop, scipy rank-filter medians, no
    cache) are opt-in via ``ASV_BENCH_ASSERT_SPEEDUP=1`` like every
    other speed assertion here.
    """
    size = _size_cap((270, 480))
    scene = sceneflow_scene(9, size=size, max_disp=min(32, size[1] // 2),
                            max_speed=1.5)
    frames = scene.sequence(3)
    f0 = np.asarray(frames[0].left, dtype=np.float64)
    f1 = np.asarray(frames[1].left, dtype=np.float64)
    if f0.ndim == 3:
        f0, f1 = f0.mean(axis=2), f1.mean(axis=2)

    # --- polynomial expansion: tap loops vs fused correlate1d sweeps
    t_tap_poly = _clock(lambda: _tap_poly_expansion(f0), reps=1)
    t_vec_poly = _clock(lambda: poly_expansion(f0), reps=3)
    A1, b1 = poly_expansion(f0)
    A2, b2 = poly_expansion(f1)
    A1t, b1t = _tap_poly_expansion(f0)
    poly_dev = max(np.abs(A1 - A1t).max(), np.abs(b1 - b1t).max())

    # --- one flow iteration: per-channel blurs vs fused stacked sweep
    flow0 = np.zeros(f0.shape + (2,))
    t_tap_iter = _clock(
        lambda: _tap_flow_iteration(A1, b1, A2, b2, flow0, 2.5), reps=1
    )
    t_vec_iter = _clock(
        lambda: flow_iteration(A1, b1, A2, b2, flow0, window_sigma=2.5), reps=3
    )
    iter_dev = np.abs(
        flow_iteration(A1, b1, A2, b2, flow0, window_sigma=2.5)
        - _tap_flow_iteration(A1, b1, A2, b2, flow0, 2.5)
    ).max()

    # --- tiled flow: bit-identical to the vectorized single-core flow
    vec_flow = farneback_flow(f0, f1, levels=3, iterations=2, window_sigma=2.5)
    with TileExecutor(workers=WORKERS, pool="process") as ex:
        tiled_flow = ex.farneback_flow(f0, f1, levels=3, iterations=2,
                                       window_sigma=2.5)
        assert np.array_equal(vec_flow, tiled_flow), (
            "tiled flow differs from single-core flow"
        )
        t_tiled_flow = _clock(
            lambda: ex.farneback_flow(f0, f1, levels=3, iterations=2,
                                      window_sigma=2.5), reps=2
        )
    t_vec_flow = _clock(
        lambda: farneback_flow(f0, f1, levels=3, iterations=2,
                               window_sigma=2.5), reps=2
    )

    # --- guided search: per-offset loop vs batched gather (bitwise)
    fr = frames[1]
    loop = _loop_guided(fr.left, fr.right, fr.disparity)
    batched = guided_block_match(fr.left, fr.right, fr.disparity)
    assert np.array_equal(loop, batched), (
        "batched guided_block_match must be bit-identical to the loop"
    )
    t_loop_guided = _clock(
        lambda: _loop_guided(fr.left, fr.right, fr.disparity), reps=2
    )
    t_batched_guided = _clock(
        lambda: guided_block_match(fr.left, fr.right, fr.disparity), reps=3
    )

    # --- scalar baseline: per-pixel loops at a small size, reps=1
    # (the honest pre-vectorization "before", like the scalar SGM DP)
    sh, sw = _size_cap((32, 48))
    rng = np.random.default_rng(7)
    s0, s1 = rng.random((sh, sw)), rng.random((sh, sw))
    sA1, sb1 = poly_expansion(s0)
    sA2, sb2 = poly_expansion(s1)
    sflow = rng.normal(size=(sh, sw, 2)) * 0.7
    scalar_dev = np.abs(
        _scalar_flow_iteration(sA1, sb1, sA2, sb2, sflow, 2.5)
        - flow_iteration(sA1, sb1, sA2, sb2, sflow, window_sigma=2.5)
    ).max()
    assert scalar_dev < 1e-9, "scalar baseline diverged from the kernel"
    t_scalar_iter = _clock(
        lambda: _scalar_flow_iteration(sA1, sb1, sA2, sb2, sflow, 2.5), reps=1
    )
    t_small_iter = _clock(
        lambda: flow_iteration(sA1, sb1, sA2, sb2, sflow, window_sigma=2.5),
        reps=3,
    )

    # --- the served non-key step at probe resolution: the PR-7 stack
    # (tap-loop flow, per-offset guided search, scipy rank-filter
    # medians, no cache) vs the vectorized path, uncached and cached
    step_size = SIZE
    step_scene = sceneflow_scene(11, size=step_size,
                                 max_disp=min(32, step_size[1] // 2),
                                 max_speed=1.5)
    step_frames = step_scene.sequence(3)
    config = ISMConfig(propagation_window=4)
    dnn = lambda f: f.disparity
    with _pr7_medians():
        t_pr7, _ = _steady_state_step(
            lambda: ISM(dnn, config=config, flow=_TapFlow(),
                        refiner=_loop_guided, expansion_cache=False),
            step_frames,
        )
    t_uncached, d_uncached = _steady_state_step(
        lambda: ISM(dnn, config=config, expansion_cache=False), step_frames
    )
    t_cached, d_cached = _steady_state_step(
        lambda: ISM(dnn, config=config), step_frames
    )
    for a, b in zip(d_uncached, d_cached):
        assert np.array_equal(a, b), (
            "cached non-key disparities differ from uncached"
        )
    # the full serving config: cached + every non-key kernel through
    # the tiled executor — byte-identical to the serial step, faster
    # where there are cores to tile across
    with TileExecutor(workers=WORKERS, pool="process") as step_ex:
        t_tiled_step, d_tiled = _steady_state_step(
            lambda: ISM(dnn, config=config, flow=step_ex,
                        refiner=step_ex.guided_block_match),
            step_frames,
        )
    for a, b in zip(d_cached, d_tiled):
        assert np.array_equal(a, b), (
            "tiled non-key disparities differ from serial"
        )
    t_step_best = min(t_cached, t_tiled_step)

    nonkey = {
        "size": list(size),
        "poly_expansion": {
            "tap_s": t_tap_poly, "vectorized_s": t_vec_poly,
            "speedup": t_tap_poly / t_vec_poly,
            "max_abs_dev": float(poly_dev),
        },
        "flow_iteration": {
            "tap_s": t_tap_iter, "vectorized_s": t_vec_iter,
            "speedup": t_tap_iter / t_vec_iter,
            "max_abs_dev": float(iter_dev),
        },
        "flow_iteration_scalar": {
            "size": [sh, sw],
            "scalar_s": t_scalar_iter, "vectorized_s": t_small_iter,
            "speedup": t_scalar_iter / t_small_iter,
            "max_abs_dev": float(scalar_dev),
        },
        "farneback": {
            "vectorized_s": t_vec_flow, "tiled_s": t_tiled_flow,
            "tiled_identical": True,
            "tuned_tile_rows": tuned_tile_rows("farneback", size, WORKERS),
        },
        "guided_bm": {
            "loop_s": t_loop_guided, "batched_s": t_batched_guided,
            "speedup": t_loop_guided / t_batched_guided,
            "bitwise_identical": True,
        },
        "ism_step": {
            "size": list(step_size),
            "pr7_s": t_pr7, "uncached_s": t_uncached, "cached_s": t_cached,
            "tiled_s": t_tiled_step,
            "speedup_vs_pr7": t_pr7 / t_step_best,
            "cache_gain": t_uncached / t_cached,
            "cached_equals_uncached": True,
            "tiled_equals_serial": True,
        },
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_kernels.json"
    report = json.loads(path.read_text()) if path.exists() else {
        "bench": "kernels"
    }
    report["nonkey"] = nonkey
    path.write_text(json.dumps(report, indent=2) + "\n")

    save_table(
        "nonkey_path",
        render_table(
            f"ISM non-key path — before/after at {size[0]}x{size[1]} "
            f"(speedups machine-dependent; gated only with "
            f"ASV_BENCH_ASSERT_SPEEDUP=1)",
            ["stage", "before ms", "after ms", "speedup", "equivalence"],
            [
                ["flow_iteration (scalar)", 1e3 * t_scalar_iter,
                 1e3 * t_small_iter, t_scalar_iter / t_small_iter,
                 f"<= {scalar_dev:.1e}"],
                ["poly_expansion", 1e3 * t_tap_poly, 1e3 * t_vec_poly,
                 t_tap_poly / t_vec_poly, f"<= {poly_dev:.1e}"],
                ["flow_iteration", 1e3 * t_tap_iter, 1e3 * t_vec_iter,
                 t_tap_iter / t_vec_iter, f"<= {iter_dev:.1e}"],
                ["guided_bm", 1e3 * t_loop_guided, 1e3 * t_batched_guided,
                 t_loop_guided / t_batched_guided, "bit-identical"],
                ["ISM.step (non-key)", 1e3 * t_pr7, 1e3 * t_step_best,
                 t_pr7 / t_step_best, "serial == tiled == cached"],
            ],
        ),
    )
    print(f"[nonkey results merged into {path}]")
    print(f"flow iteration {t_scalar_iter / t_small_iter:.1f}x vs scalar, "
          f"{t_tap_iter / t_vec_iter:.1f}x vs tap loops; "
          f"ISM step {t_pr7 / t_step_best:.1f}x vs the PR-7 stack "
          f"(cache gain {t_uncached / t_cached:.2f}x)")

    if os.environ.get("ASV_BENCH_ASSERT_SPEEDUP"):
        # opt-in gates, same contract as the tiled-execution gates
        # above: run on an idle multi-core box, never in CI
        assert t_scalar_iter / t_small_iter >= 3.0, (
            f"vectorized flow iteration must be >= 3x the scalar loops, "
            f"got {t_scalar_iter / t_small_iter:.1f}x"
        )
        assert t_cached < t_uncached, (
            f"cached steady-state step ({1e3 * t_cached:.1f} ms) must "
            f"beat uncached ({1e3 * t_uncached:.1f} ms)"
        )
        assert t_pr7 / t_step_best >= 3.0, (
            f"non-key ISM.step must be >= 3x the PR-7 stack, "
            f"got {t_pr7 / t_step_best:.1f}x"
        )
