"""Library kernel microbenchmarks + tiled multi-core measurements.

Two layers:

* the **microbenchmarks** (real repeated timing of the single-core
  kernels) keep substrate performance regressions visible, and pin the
  algorithmic ordering — guided search beats full search, the
  transformed deconvolution beats the zero-stuffed one;
* the **tiled execution bench** measures what
  :class:`repro.parallel.TileExecutor` buys on this machine: each
  matcher runs whole-frame and tiled across a process pool on a
  full-size frame, the seam-equivalence contract is asserted
  (bit-identical output — this is the part CI smoke-runs), and the
  wall-clock speedups are written to
  ``benchmarks/results/BENCH_kernels.json`` — the first point of the
  repo's machine-readable performance trajectory.

Wall-clock *speedup* is machine-dependent (worker count, core count,
thermal state), so it is printed and recorded but only asserted when
``ASV_BENCH_ASSERT_SPEEDUP=1`` is set — run that locally on a
multi-core box, never in CI.  Knobs:

* ``ASV_BENCH_SIZE``  — ``HxW`` cap for every frame in this file
  (CI smoke uses a tiny one);
* ``ASV_BENCH_WORKERS`` — pool size for the tiled runs (default: all
  cores, at least 2 so tiling is always exercised);
* ``ASV_BENCH_ASSERT_SPEEDUP`` — opt-in ``>= 2x`` speedup gate.
"""

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.datasets import sceneflow_scene
from repro.deconv import deconv_via_subconvolutions
from repro.flow import farneback_flow
from repro.nn.ops import deconvnd
from repro.parallel import TileExecutor, split_rows
from repro.stereo import block_match, guided_block_match, sgm
from repro.tables import render_table


def _size_cap(default):
    """Apply the ``ASV_BENCH_SIZE`` ``HxW`` cap to a default size."""
    txt = os.environ.get("ASV_BENCH_SIZE")
    if not txt:
        return default
    h, w = (int(v) for v in txt.lower().split("x"))
    return (min(h, default[0]), min(w, default[1]))


SIZE = _size_cap((96, 160))
MAX_DISP = min(32, SIZE[1] // 2)

#: the paper's serving resolution (qHD) for the tiled measurements;
#: SGM — whose aggregation is a Python-level DP sweep — runs at half
#: that so the whole bench stays minutes, not hours
FULL_SIZE = _size_cap((540, 960))
SGM_SIZE = _size_cap((270, 480))
FULL_MAX_DISP = min(64, FULL_SIZE[1] // 2)
WORKERS = int(
    os.environ.get("ASV_BENCH_WORKERS", str(max(2, os.cpu_count() or 2)))
)


@pytest.fixture(scope="module")
def frame():
    return sceneflow_scene(5, size=SIZE, max_disp=MAX_DISP).render(0)


@pytest.fixture(scope="module")
def pair():
    scene = sceneflow_scene(5, size=SIZE, max_disp=MAX_DISP, max_speed=1.5)
    return scene.render(0), scene.render(1)


def _clock(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# single-core microbenchmarks
# ----------------------------------------------------------------------
def test_block_match_kernel(benchmark, frame):
    disp = benchmark(block_match, frame.left, frame.right, MAX_DISP)
    assert disp.shape == SIZE


def test_guided_search_kernel(benchmark, frame):
    disp = benchmark(
        guided_block_match, frame.left, frame.right, frame.disparity, 4
    )
    assert disp.shape == SIZE


def test_guided_search_faster_than_full(frame):
    """The algorithmic point of ISM's refinement: a +/-4 window costs
    a fraction of the full search."""
    full = _clock(lambda: block_match(frame.left, frame.right, MAX_DISP))
    guided = _clock(
        lambda: guided_block_match(frame.left, frame.right, frame.disparity, 4)
    )
    assert guided < full


def test_float32_cost_volume_not_slower_by_much(frame):
    """The precision knob trades memory traffic for rounding; it must
    never cost meaningful extra time.  A 1.5x relative bound on a
    millisecond-scale call is noise-sensitive, so like the speedup
    gate it is printed always but asserted only opt-in (never in the
    CI smoke run)."""
    f64 = _clock(lambda: block_match(frame.left, frame.right, MAX_DISP))
    f32 = _clock(
        lambda: block_match(
            frame.left, frame.right, MAX_DISP, precision="float32"
        )
    )
    print(f"float32/float64 block_match: {f32 / f64:.2f}x")
    if os.environ.get("ASV_BENCH_ASSERT_SPEEDUP"):
        assert f32 < 1.5 * f64


def test_sgm_kernel(benchmark, frame):
    disp = benchmark(sgm, frame.left, frame.right, MAX_DISP)
    assert disp.shape == SIZE


def test_farneback_kernel(benchmark, pair):
    f0, f1 = pair
    flow = benchmark(farneback_flow, f0.left, f1.left)
    assert flow.shape == SIZE + (2,)


def test_deconv_transformation_kernel(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 24, 40))
    w = rng.normal(size=(16, 32, 4, 4))
    out = benchmark(deconv_via_subconvolutions, x, w, 2, 1)
    assert out.shape == (16, 48, 80)


def test_transformed_deconv_faster_than_naive():
    """The MAC reduction shows up in wall-clock too."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(32, 24, 40))
    w = rng.normal(size=(16, 32, 4, 4))

    naive = _clock(lambda: deconvnd(x, w, stride=2, padding=1))
    ours = _clock(lambda: deconv_via_subconvolutions(x, w, 2, 1))
    assert ours < naive


# ----------------------------------------------------------------------
# tiled multi-core execution: seams + speedup -> BENCH_kernels.json
# ----------------------------------------------------------------------
def _tiled_cases():
    """(name, size, serial call, tiled call) per matcher."""
    big = sceneflow_scene(
        7, size=FULL_SIZE, max_disp=min(FULL_MAX_DISP, 48)
    ).render(0)
    small = sceneflow_scene(
        7, size=SGM_SIZE, max_disp=min(FULL_MAX_DISP, 48)
    ).render(0)
    md = FULL_MAX_DISP
    return [
        ("bm", FULL_SIZE, big,
         lambda ex: ex.block_match(big.left, big.right, md)),
        ("census", FULL_SIZE, big,
         lambda ex: ex.census_block_match(big.left, big.right, md)),
        ("guided", FULL_SIZE, big,
         lambda ex: ex.guided_block_match(
             big.left, big.right, big.disparity, radius=4)),
        ("sgm", SGM_SIZE, small,
         lambda ex: ex.sgm(
             small.left, small.right, min(64, SGM_SIZE[1] // 2), paths=8)),
    ]


def test_tiled_execution_speedup_and_seams(save_table):
    serial = TileExecutor(workers=1)
    rows, records = [], {}
    with TileExecutor(workers=WORKERS, pool="process") as tiled:
        for name, size, _frame_obj, call in _tiled_cases():
            want = call(serial)
            got = call(tiled)
            identical = bool(np.array_equal(want, got))
            # seam equivalence is the part that gates CI — tile seams
            # must be bit-identical to whole-frame execution
            assert identical, f"{name}: tiled output differs from whole-frame"
            t_serial = _clock(lambda: call(serial), reps=2)
            t_tiled = _clock(lambda: call(tiled), reps=2)
            n_bands = len(split_rows(size[0], WORKERS, 0))
            records[name] = {
                "size": list(size),
                "n_bands": n_bands,
                "serial_s": t_serial,
                "tiled_s": t_tiled,
                "speedup": t_serial / t_tiled,
                "seam_identical": identical,
            }
            rows.append(
                [name, f"{size[0]}x{size[1]}", n_bands,
                 1e3 * t_serial, 1e3 * t_tiled, t_serial / t_tiled,
                 "yes" if identical else "NO"]
            )

    report = {
        "bench": "kernels",
        "workers": WORKERS,
        "pool": "process",
        "cpu_count": os.cpu_count(),
        "max_disp": FULL_MAX_DISP,
        "smoke_size_cap": os.environ.get("ASV_BENCH_SIZE"),
        "kernels": records,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_kernels.json"
    path.write_text(json.dumps(report, indent=2) + "\n")

    save_table(
        "kernels_tiled",
        render_table(
            f"Tiled kernel execution — {WORKERS} process workers on "
            f"{os.cpu_count()} cores (speedup is machine-dependent; "
            f"asserted only with ASV_BENCH_ASSERT_SPEEDUP=1)",
            ["kernel", "frame", "bands", "serial ms", "tiled ms",
             "speedup", "seam-identical"],
            rows,
        ),
    )
    print(f"[saved to {path}]")

    if os.environ.get("ASV_BENCH_ASSERT_SPEEDUP"):
        best = max(r["speedup"] for r in records.values())
        assert best >= 2.0, (
            f"expected >= 2x multi-worker speedup, best was {best:.2f}x "
            f"({os.cpu_count()} cores, {WORKERS} workers)"
        )
