"""Fig. 13 — ASV vs Eyeriss vs mobile GPU.

Shape assertions: the full ASV system is many times faster than
Eyeriss at a small fraction of its energy; Eyeriss itself benefits
from the (software!) deconvolution transformation; the GPU is both the
slowest and the most energy-hungry system.
"""

from benchmarks.conftest import once
from repro.evaluation import format_fig13, run_fig13


def test_fig13_eyeriss_gpu(benchmark, save_table):
    points = once(benchmark, run_fig13)
    save_table("fig13_eyeriss_gpu", format_fig13(points))
    by_name = {p.system: p for p in points}

    full = by_name["ASV-DCO+ISM"]
    assert 5.0 < full.speedup_vs_eyeriss < 14.0   # paper: 8.2x
    assert full.norm_energy < 0.25                # paper: 0.16

    dct = by_name["Eyeriss+DCT"]
    assert 1.2 < dct.speedup_vs_eyeriss < 2.2     # paper: 1.6x
    assert dct.norm_energy < 0.9                  # paper: 0.69

    gpu = by_name["GPU"]
    assert gpu.speedup_vs_eyeriss < 1.0           # slowest platform
    assert gpu.norm_energy > 1.5                  # most energy-hungry

    # variant ordering holds against Eyeriss too
    assert (
        by_name["ASV-DCO"].speedup_vs_eyeriss
        < by_name["ASV-ISM"].speedup_vs_eyeriss
        < full.speedup_vs_eyeriss
    )
