"""Stream engine — multi-camera serving throughput across backends.

Serves the same two concurrent camera streams (a KITTI-like street
camera on DispNet, a SceneFlow-like camera on FlowNetC) on every
execution backend and compares per-stream latency percentiles,
aggregate throughput, and how many 30 fps cameras each target could
sustain.  Shape assertions: the ISM-capable co-designed systolic
backend dominates — it sustains strictly more streams than the
Eyeriss-class array (which must run full inference every frame) and
keeps a lower worst-case tail latency than either alternative.
"""

from benchmarks.conftest import once
from repro.pipeline import (
    StreamEngine,
    format_backend_comparison,
    kitti_stream,
    sceneflow_stream,
)

SIZE = (135, 240)
N_FRAMES = 60
BACKENDS = ("systolic", "eyeriss", "gpu")


def _streams():
    return [
        kitti_stream(seed=1, name="kitti-cam", size=SIZE,
                     n_frames=N_FRAMES, network="DispNet", mode="ilar"),
        sceneflow_stream(seed=2, name="sceneflow-cam", size=SIZE,
                         n_frames=N_FRAMES, network="FlowNetC", mode="ilar"),
    ]


def _serve_all():
    return [StreamEngine(name).run(_streams()) for name in BACKENDS]


def test_stream_engine_backends(benchmark, save_table):
    reports = once(benchmark, _serve_all)
    save_table("stream_engine", format_backend_comparison(reports, 30.0))
    by_name = {r.backend: r for r in reports}

    # every backend served both streams, with ordered percentiles
    for report in reports:
        assert len(report.streams) == 2
        assert report.total_frames == 2 * N_FRAMES
        for s in report.streams:
            assert 0 < s.p50_ms <= s.p95_ms <= s.p99_ms

    systolic = by_name["systolic"]
    eyeriss = by_name["eyeriss"]
    gpu = by_name["gpu"]

    # ISM + DCO: the co-designed system sustains the most cameras ...
    assert (
        systolic.sustainable_streams(30.0)
        > eyeriss.sustainable_streams(30.0)
        >= 1
    )
    assert systolic.sustainable_streams(30.0) > gpu.sustainable_streams(30.0)
    # ... and has the least-bad tail
    assert systolic.worst_p99_ms < eyeriss.worst_p99_ms
    assert systolic.worst_p99_ms < gpu.worst_p99_ms

    # the ISM-less array pays full inference every frame
    assert all(s.key_frames == s.frames for s in eyeriss.streams)
    assert all(s.key_frames < s.frames for s in systolic.streams)

    # result cache: each distinct (network, mode, size) scheduled once
    assert systolic.cache.misses == 2
    assert systolic.cache.hit_rate > 0.5
