"""Ablation: DRAM-bandwidth sensitivity of the deconvolution
optimizations.

Shape assertions: DCO helps at every bandwidth; the gain is largest
when bandwidth is scarce (the naive deconvolution's zero traffic is
then the bottleneck) and settles towards the pure MAC-reduction factor
as bandwidth becomes abundant.
"""

from benchmarks.conftest import once
from repro.evaluation.ablation import format_bandwidth_sweep, run_bandwidth_sweep


def test_bandwidth_sweep(benchmark, save_table):
    rows = once(benchmark, run_bandwidth_sweep)
    save_table("ablation_bandwidth", format_bandwidth_sweep(rows))

    assert all(r.speedup > 1.1 for r in rows)
    # scarce bandwidth rewards traffic elimination the most
    assert rows[0].speedup >= rows[-1].speedup
    # baseline latency must fall monotonically with bandwidth
    base = [r.baseline_mcycles for r in rows]
    assert base == sorted(base, reverse=True)
