"""Fig. 10 — ISM / DCO / combined speedup and energy ablation.

Shape assertions against the paper's averages: combined ~4.9x speedup
and ~85 % energy saving; ISM contributes more than DCO; the Sec. 3.3
claim that non-key frames are orders of magnitude cheaper than DNN
inference.
"""

from benchmarks.conftest import once
from repro.core import ASVSystem
from repro.evaluation import format_fig10, run_fig10
from repro.evaluation.fig10 import averages


def test_fig10_ablation(benchmark, save_table):
    rows = once(benchmark, run_fig10)
    save_table("fig10_ablation", format_fig10(rows))

    avg = averages(rows)
    assert 3.5 < avg.combined_speedup < 7.0, avg.combined_speedup
    assert 78.0 < avg.combined_energy_red_pct < 95.0
    assert 2.5 < avg.ism_speedup < 4.2   # paper: 3.3x, bounded by PW=4
    assert 65.0 < avg.ism_energy_red_pct < 80.0  # paper: 75%
    assert 1.2 < avg.dco_speedup < 2.2   # paper: 1.57x
    assert 25.0 < avg.dco_energy_red_pct < 60.0

    for r in rows:
        assert r.ism_speedup > r.dco_speedup, r.network
        assert r.combined_speedup > max(r.ism_speedup, r.dco_speedup), r.network


def test_nonkey_frame_cost(benchmark):
    """Sec. 3.3: a non-key frame is 100-10000x cheaper than inference."""
    system = ASVSystem()
    nonkey = once(benchmark, system.nonkey_frame)
    for net in ("DispNet", "GC-Net"):
        key = system.dnn_frame(net, "baseline")
        assert 10 < key.cycles / nonkey.cycles < 100_000
