"""Fig. 14 — software deconvolution optimization vs the GANNX
accelerator on six GANs.

Shape assertions: both systems beat Eyeriss substantially; ASV beats
GANNX on average on *both* axes thanks to ILAR (the paper reports
5.0x/4.2x vs 3.6x/3.2x); the 3-D GAN gains the most (8x MAC
reduction for 3-D deconvolutions).
"""

from benchmarks.conftest import once
from repro.evaluation import format_fig14, run_fig14
from repro.evaluation.fig14 import averages


def test_fig14_gans(benchmark, save_table):
    rows = once(benchmark, run_fig14)
    save_table("fig14_gans", format_fig14(rows))

    avg = averages(rows)
    assert avg.asv_speedup > avg.gannx_speedup
    assert avg.asv_energy_reduction > avg.gannx_energy_reduction
    assert 2.5 < avg.asv_speedup < 8.0            # paper: 5.0x
    assert 2.0 < avg.gannx_speedup < 6.0          # paper: 3.6x

    by_name = {r.gan: r for r in rows}
    top = max(rows, key=lambda r: r.asv_speedup)
    assert top.gan == "3D-GAN"                    # paper annotates 10.23x
    assert by_name["3D-GAN"].asv_speedup > 8.0

    for r in rows:
        assert r.asv_speedup >= r.gannx_speedup * 0.95, r.gan
