"""Frame schedulers under overload — FIFO vs EDF vs priority vs shed.

Serves an overloaded eight-stream mix (~1.1x the systolic array's
capacity: four tight-deadline HUD streams at 8 ms budgets, four
patient logging streams at 600 ms) under every registered scheduling
discipline and tabulates the trade-offs.

Shape assertions (the QoS contract, also pinned at small scale in
``tests/test_schedulers.py``): ``edf`` misses strictly fewer
deadlines than ``fifo``; ``shed`` achieves a strictly lower p99
latency than ``fifo`` with a nonzero drop rate; ``fifo`` never drops;
every discipline accounts for every offered frame; and all outcomes
are deterministic across fresh runs.

``ASV_BENCH_FRAMES`` overrides the per-stream frame count so CI can
smoke-run the bench with a tiny budget (see ``.github/workflows/
ci.yml``).

This bench is latency-only; ``bench_quality.py`` serves the same
overloaded mix with a :class:`~repro.pipeline.quality.QualityProbe`
attached and prices each discipline's wins in depth accuracy (shed's
drop rate costs EPE, edf's reordering is free).
"""

import os

import numpy as np

from benchmarks.conftest import once
from repro.backends import get_backend
from repro.pipeline import (
    EngineReport,
    FrameStream,
    StreamEngine,
    format_report,
)
from repro.tables import render_table

SIZE = (68, 120)
N_FRAMES = int(os.environ.get("ASV_BENCH_FRAMES", "60"))
FPS = 60.0
SCHEDULERS = ("fifo", "edf", "priority", "shed")


def _streams():
    """Four tight-deadline streams + four patient ones, ~1.1x load."""
    tight = [
        FrameStream(f"hud-{i}", size=SIZE, n_frames=N_FRAMES, fps=FPS,
                    mode="baseline", pw=2, deadline_s=0.008, priority=1)
        for i in range(4)
    ]
    loose = [
        FrameStream(f"log-{i}", size=SIZE, n_frames=N_FRAMES, fps=FPS,
                    mode="baseline", pw=2, deadline_s=0.6)
        for i in range(4)
    ]
    return tight + loose


def _run_all():
    return {
        name: StreamEngine("systolic", scheduler=name).run(_streams())
        for name in SCHEDULERS
    }


def _p99_ms(report: EngineReport) -> float:
    return max(s.p99_ms for s in report.streams if s.frames)


def _comparison_table(reports) -> str:
    rows = [
        [name, r.total_frames, r.dropped_frames, r.deadline_miss_rate,
         r.drop_rate, _p99_ms(r), r.worst_lateness_ms, r.utilization]
        for name, r in reports.items()
    ]
    return render_table(
        f"Schedulers on an overloaded 8-stream mix "
        f"({N_FRAMES} frames/stream at {FPS:.0f} fps)",
        ["scheduler", "served", "dropped", "miss rate", "drop rate",
         "p99 ms", "worst late ms", "util"],
        rows,
    )


def test_scheduler_disciplines(benchmark, save_table):
    reports = once(benchmark, _run_all)

    save_table("scheduler_disciplines", _comparison_table(reports))
    save_table("scheduler_shed_streams", format_report(reports["shed"]))

    offered = sum(s.n_frames for s in _streams())
    for name, report in reports.items():
        assert report.scheduler == name
        assert report.offered_frames == offered
        assert 0.0 <= report.drop_rate <= report.deadline_miss_rate <= 1.0

    # EDF spends the machine on frames that can still make it
    assert (reports["edf"].deadline_miss_rate
            < reports["fifo"].deadline_miss_rate)

    # shedding bounds the tail and reports what it refused
    assert _p99_ms(reports["shed"]) < _p99_ms(reports["fifo"])
    assert reports["shed"].drop_rate > 0.0
    assert reports["fifo"].drop_rate == 0.0
    assert reports["priority"].drop_rate == 0.0

    # the high-priority HUD streams beat the logging streams under
    # the priority discipline
    by_name = {s.stream: s for s in reports["priority"].streams}
    worst_hud = max(by_name[f"hud-{i}"].p99_ms for i in range(4))
    best_log = min(by_name[f"log-{i}"].p99_ms for i in range(4))
    assert worst_hud < best_log

    # determinism: fresh engines reproduce every outcome exactly
    rerun = _run_all()
    for name in SCHEDULERS:
        assert rerun[name].streams == reports[name].streams
        assert rerun[name].makespan_s == reports[name].makespan_s
