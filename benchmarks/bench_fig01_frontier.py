"""Fig. 1 — the FPS/error frontier.

Shape assertions: classic algorithms are fast but inaccurate, DNNs
accurate but slow (GPU slowest), and ASV sits in the real-time,
DNN-accuracy corner.
"""

import os

import numpy as np

from benchmarks.conftest import once
from repro.evaluation import format_fig1, run_fig1

#: kernel worker-pool size for the classic matcher points; the
#: frontier numbers are bit-identical at any value (tiled execution)
WORKERS = int(os.environ.get("ASV_BENCH_WORKERS", "1"))


def test_fig1_frontier(benchmark, save_table):
    points = once(benchmark, run_fig1, workers=WORKERS)
    save_table("fig01_frontier", format_fig1(points))

    by_kind = {}
    for p in points:
        by_kind.setdefault(p.kind, []).append(p)

    classic_err = np.mean([p.error_pct for p in by_kind["classic"]])
    dnn_err = np.mean([p.error_pct for p in by_kind["dnn-acc"]])
    assert classic_err > dnn_err, "classic algorithms must be less accurate"

    # DNNs are orders of magnitude slower than classic algorithms
    classic_fps = np.median([p.fps for p in by_kind["classic"]])
    dnn_acc_fps = np.median([p.fps for p in by_kind["dnn-acc"]])
    assert classic_fps > dnn_acc_fps

    # GPU runs the same networks slower than the accelerator
    for acc, gpu in zip(by_kind["dnn-acc"], by_kind["dnn-gpu"]):
        assert acc.fps > gpu.fps, (acc.name, gpu.name)

    # ASV: >= 30 FPS at DNN-class accuracy (the paper's headline point)
    asv = by_kind["asv"][0]
    assert asv.fps >= 30.0
    assert asv.error_pct < classic_err
    assert asv.error_pct < dnn_err + 2.0

    # and it sits on the Pareto frontier of the whole design space
    from repro.evaluation.pareto import pareto_frontier

    frontier = pareto_frontier(points)
    assert any(p.name == "ASV" for p in frontier)
    # no GPU point survives on the frontier (dominated by its own
    # accelerator twin at equal accuracy)
    assert all(p.kind != "dnn-gpu" for p in frontier)
