"""Fig. 12 — DCO sensitivity to PE-array and buffer sizing.

Shape assertions: positive speedup and energy reduction in *every*
cell; gains concentrated in the compute-bound (small-PE) region; large
buffers reduce the marginal value of reuse optimization.
"""

import numpy as np

from benchmarks.conftest import once
from repro.evaluation import format_fig12, run_fig12

# the paper's full grid: seven array sizes x six buffer capacities
PE_SIZES = (8, 16, 24, 32, 40, 48, 56)
BUFFER_MB = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)


def test_fig12_sensitivity(benchmark, save_table):
    cells = once(
        benchmark, run_fig12, pe_sizes=PE_SIZES, buffer_mb=BUFFER_MB
    )
    save_table("fig12_sensitivity", format_fig12(cells))

    assert len(cells) == len(PE_SIZES) * len(BUFFER_MB)
    for c in cells:
        assert c.speedup > 1.1, f"pe={c.pe} buf={c.buffer_mb}: {c.speedup:.2f}"
        assert c.energy_reduction > 0.10, (c.pe, c.buffer_mb)

    # speedups in the paper's reported band (1.2-1.5x), widened for the
    # model: the bandwidth-starved corner (small buffer + huge array)
    # lets DCO's traffic elimination shine harder than on the paper's
    # RTL (see EXPERIMENTS.md)
    speeds = np.array([c.speedup for c in cells])
    assert speeds.min() > 1.1 and speeds.max() < 6.0
    assert np.median(speeds) < 2.5

    # paper trend 1: with a large buffer, reuse comes for free and the
    # benefit shrinks as the array grows (memory-bound masking)
    big_buf = {c.pe: c.speedup for c in cells if c.buffer_mb == max(BUFFER_MB)}
    assert big_buf[min(PE_SIZES)] >= big_buf[max(PE_SIZES)] * 0.95

    # paper trend 2: at any PE size, growing the buffer reduces the
    # marginal value of the reuse optimization (energy axis)
    for pe in PE_SIZES:
        column = sorted(
            (c.buffer_mb, c.energy_reduction) for c in cells if c.pe == pe
        )
        assert column[0][1] >= column[-1][1] - 0.02, f"pe={pe}: {column}"
