"""Fig. 11 — DCT / ConvR / ILAR dissection.

Shape assertions: DCT alone gives ~4x on 2-D deconvolutions (the MAC
reduction) and more on 3-D; reuse optimization adds on top; ConvR and
ILAR are close in *speed* but ILAR wins on *energy* (it is the only
variant that shares ifmap fetches); 3-D networks benefit most.
"""

from benchmarks.conftest import once
from repro.evaluation import format_fig11, run_fig11


def test_fig11_deconv_opts(benchmark, save_table):
    rows = once(benchmark, run_fig11)
    save_table("fig11_deconv_opts", format_fig11(rows))

    get = lambda net, var: next(
        r for r in rows if r.network == net and r.variant == var
    )

    for net in ("DispNet", "FlowNetC", "GC-Net", "PSMNet"):
        dct = get(net, "dct")
        convr = get(net, "convr")
        ilar = get(net, "ilar")
        # cumulative variants: reuse optimization never hurts
        assert convr.deconv_speedup >= dct.deconv_speedup * 0.95, net
        assert ilar.deconv_speedup >= convr.deconv_speedup * 0.95, net
        # ILAR never adds meaningful DRAM traffic over ConvR
        assert ilar.deconv_dram_bytes <= convr.deconv_dram_bytes * 1.05, net
        # whole-network gains are diluted but real
        assert ilar.network_speedup > 1.15, net

    # ILAR's defining property — fewer ifmap fetches — bites hardest on
    # the 3-D networks, whose transformed sub-convolutions have low
    # weight reuse and large shared ifmaps (Sec. 7.3)
    for net in ("GC-Net", "PSMNet"):
        assert (
            get(net, "ilar").deconv_dram_bytes
            < get(net, "convr").deconv_dram_bytes
        ), net
        assert (
            get(net, "ilar").deconv_energy_red_pct
            > get(net, "convr").deconv_energy_red_pct
        ), net

    # deconv-only transformation speedup: ~4x for 2-D, higher for 3-D
    assert 3.0 < get("DispNet", "dct").deconv_speedup < 5.0
    assert 3.0 < get("FlowNetC", "dct").deconv_speedup < 5.0
    assert get("GC-Net", "ilar").deconv_speedup > get(
        "DispNet", "ilar"
    ).deconv_speedup * 0.9

    # average deconv-layer speedup with full optimization in the
    # paper's reported region (5.6x; band widened for the model)
    avg_ilar = sum(
        get(n, "ilar").deconv_speedup
        for n in ("DispNet", "FlowNetC", "GC-Net", "PSMNet")
    ) / 4
    assert 3.5 < avg_ilar < 9.0, avg_ilar
