"""Cluster serving — placement policies on a heterogeneous fleet.

Serves eight mixed camera streams (ISM-heavy ilar traffic, all-key
dct traffic, one high-resolution stream) on a 2x systolic + 1x
eyeriss + 1x gpu fleet under every placement policy, and sizes the
same workload with the capacity planner.

Shape assertions: every policy serves every frame; the cost-aware
policies spread load no worse than blind round-robin (lower or equal
peak shard utilization); the capability-aware policy never strands an
ISM-heavy stream on the ISM-less Eyeriss shard while ISM-capable
shards exist; and the planner ranks the co-designed systolic array as
the cheapest homogeneous fleet for this ISM-heavy mix while excluding
eyeriss outright (one stream alone overloads an eyeriss instance, and
streams cannot split across instances).
"""

from benchmarks.conftest import once
from repro.cluster import (
    ClusterEngine,
    format_capacity_plan,
    format_cluster_report,
    format_policy_comparison,
    plan_capacity,
)
from repro.pipeline import FrameStream, plan_keys

SIZE = (96, 160)
N_FRAMES = 45
TARGET_FPS = 30.0
FLEET = ("systolic", "systolic", "eyeriss", "gpu")
POLICIES = ("round-robin", "least-loaded", "capability-aware")


def _streams():
    streams = [
        FrameStream(f"street-{i}", network="DispNet", size=SIZE,
                    n_frames=N_FRAMES, mode="ilar", pw=4)
        for i in range(4)
    ]
    streams += [
        FrameStream(f"gate-{i}", network="FlowNetC", size=SIZE,
                    n_frames=N_FRAMES, mode="dct", pw=1)
        for i in range(2)
    ]
    streams.append(FrameStream("dock-0", network="DispNet", size=(135, 240),
                               n_frames=N_FRAMES, mode="ilar", pw=2))
    streams.append(FrameStream("dock-1", network="PSMNet", size=SIZE,
                               n_frames=N_FRAMES, mode="ilar", pw=8))
    return streams


def _run_all():
    reports = [
        ClusterEngine(list(FLEET), policy=policy).run(_streams())
        for policy in POLICIES
    ]
    plan = plan_capacity(_streams(), target_fps=TARGET_FPS)
    return reports, plan


def test_cluster_policies(benchmark, save_table):
    reports, plan = once(benchmark, _run_all)
    by_policy = dict(zip(POLICIES, reports))

    save_table("cluster_policies",
               format_policy_comparison(reports, TARGET_FPS))
    save_table("cluster_serving",
               format_cluster_report(by_policy["capability-aware"]))
    save_table("cluster_capacity", format_capacity_plan(plan))

    n_frames_expected = sum(s.n_frames for s in _streams())
    for report in reports:
        # every stream served to completion, on some shard
        assert report.total_frames == n_frames_expected
        assert len(report.placement) == 8
        assert report.aggregate_fps > 0
        for shard in report.shards:
            assert 0.0 <= shard.utilization <= 1.0

    # cost-aware placement packs no worse than blind round-robin
    def peak_util(report):
        return max(s.utilization for s in report.shards)

    assert peak_util(by_policy["least-loaded"]) <= \
        peak_util(by_policy["round-robin"])
    assert peak_util(by_policy["capability-aware"]) <= \
        peak_util(by_policy["round-robin"])

    # capability routing: ISM-heavy streams avoid the Eyeriss shard
    ism_heavy = {
        s.name for s in _streams() if not all(plan_keys(s))
    }
    placement = dict(by_policy["capability-aware"].placement)
    for name in ism_heavy:
        assert not placement[name].startswith("eyeriss")

    # determinism: placements are identical across fresh runs
    rerun = ClusterEngine(list(FLEET), policy="capability-aware").run(
        _streams())
    assert rerun.placement == by_policy["capability-aware"].placement

    # the planner ranks the co-designed array cheapest for this mix,
    # and honestly excludes eyeriss: dock-1 alone demands ~1.8 of an
    # eyeriss instance (over the 0.9 cap), and streams cannot split,
    # so no eyeriss fleet size serves this workload
    by_name = {p.backend: p for p in plan.options}
    assert "eyeriss" not in by_name
    assert by_name["systolic"].demand < by_name["gpu"].demand
    assert plan.best.backend == "systolic"
    assert all(p.instances >= 1 for p in plan.options)
