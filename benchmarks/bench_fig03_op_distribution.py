"""Fig. 3 — MAC distribution across FE/MO/DR stages.

Shape assertions: conv+deconv dominate (>99 %), deconvolution averages
near the paper's 38.2 % with a ~50 % maximum, and the 3-D cost-volume
networks are the heaviest.
"""

from benchmarks.conftest import once
from repro.evaluation import format_fig3, run_fig3
from repro.evaluation.fig3 import average_dr_share


def test_fig3_distribution(benchmark, save_table):
    shares = once(benchmark, run_fig3)
    save_table("fig03_op_distribution", format_fig3(shares))

    avg_dr = average_dr_share(shares)
    assert 30.0 < avg_dr < 45.0, f"avg deconv share {avg_dr:.1f}% vs paper 38.2%"
    assert max(s.dr_pct for s in shares) > 45.0  # FlowNetC ~50%

    for s in shares:
        conv_deconv = s.fe_pct + s.mo_pct + s.dr_pct
        assert conv_deconv > 99.0, f"{s.network}: conv+deconv only {conv_deconv:.1f}%"

    by_name = {s.network: s for s in shares}
    assert by_name["GC-Net"].total_gmacs > by_name["DispNet"].total_gmacs * 10
    assert by_name["PSMNet"].total_gmacs > by_name["FlowNetC"].total_gmacs * 5
