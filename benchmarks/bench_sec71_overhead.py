"""Sec. 7.1 — hardware overhead of the ASV extensions.

Shape assertions: the paper's per-PE figures (+6.3 % area, +2.3 %
power) and the headline "total overhead below 0.5 %".
"""

from benchmarks.conftest import once
from repro.evaluation import format_overhead, run_overhead


def test_sec71_overhead(benchmark, save_table):
    model, report = once(benchmark, run_overhead)
    save_table("sec71_overhead", format_overhead(model, report))

    assert abs(model.pe_area_overhead_pct() - 6.3) < 0.2
    assert abs(model.pe_power_overhead_pct() - 2.3) < 0.2
    assert report.area_overhead_pct < 0.5
    assert report.power_overhead_pct < 0.5
