"""The streaming multi-camera pipeline: streams, engine, reports."""

import numpy as np
import pytest

from repro.backends import BackendCapabilities, ExecutionBackend, get_backend
from repro.core.keyframe import StaticKeyFramePolicy
from repro.hw.energy import EnergyBreakdown
from repro.hw.systolic import LayerResult, RunResult
from repro.pipeline import (
    FrameStream,
    StreamEngine,
    format_backend_comparison,
    format_report,
    kitti_stream,
    plan_keys,
    sceneflow_stream,
    stress_stream,
)

TINY = (68, 120)


def _cost_stream(name, n_frames=12, fps=30.0, **kwargs):
    kwargs.setdefault("network", "DispNet")
    kwargs.setdefault("mode", "baseline")
    return FrameStream(name, size=TINY, n_frames=n_frames, fps=fps, **kwargs)


@pytest.fixture(scope="module")
def systolic_report():
    engine = StreamEngine("systolic")
    return engine.run([
        _cost_stream("cam0", pw=4),
        _cost_stream("cam1", pw=2, network="FlowNetC"),
    ])


class TestFrameStream:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrameStream("x", n_frames=0)
        with pytest.raises(ValueError):
            FrameStream("x", fps=0)
        with pytest.raises(ValueError):
            FrameStream("x", pw=0)

    def test_cost_only_stream_has_no_pixels(self):
        stream = _cost_stream("cam")
        assert not stream.has_pixels
        with pytest.raises(ValueError, match="cost-only"):
            next(stream.frames())

    def test_default_policy_is_static_pw(self):
        policy = _cost_stream("cam", pw=3).make_policy()
        assert isinstance(policy, StaticKeyFramePolicy)
        assert policy.window == 3

    @pytest.mark.parametrize("factory,kwargs", [
        (sceneflow_stream, {}),
        (kitti_stream, {}),
        (stress_stream, {"kind": "textureless"}),
        (stress_stream, {"kind": "repetitive"}),
    ])
    def test_factories_render_frames(self, factory, kwargs):
        stream = factory(seed=3, size=(64, 96), n_frames=3, **kwargs)
        frames = list(stream.frames())
        assert len(frames) == 3
        for f in frames:
            assert f.left.shape == (64, 96)
            assert np.isfinite(f.disparity).all()

    def test_kitti_stream_chains_scene_pairs(self):
        stream = kitti_stream(seed=0, size=(64, 96), n_frames=5)
        assert len(list(stream.frames())) == 5

    def test_unknown_stress_kind(self):
        with pytest.raises(ValueError, match="unknown stress kind"):
            stress_stream(kind="foggy")


class TestStreamEngine:
    def test_report_shape(self, systolic_report):
        report = systolic_report
        assert report.backend == "systolic"
        assert [s.stream for s in report.streams] == ["cam0", "cam1"]
        assert report.total_frames == 24
        assert report.aggregate_fps > 0
        assert report.makespan_s > 0

    def test_key_frame_counts_follow_policy(self, systolic_report):
        cam0, cam1 = systolic_report.streams
        assert cam0.key_frames == 3   # PW-4 over 12 frames: 0, 4, 8
        assert cam1.key_frames == 6   # PW-2 over 12 frames
        assert cam0.frames == cam1.frames == 12

    def test_percentiles_ordered(self, systolic_report):
        for s in systolic_report.streams:
            assert 0 < s.p50_ms <= s.p95_ms <= s.p99_ms <= s.max_ms

    def test_cache_reused_across_frames(self, systolic_report):
        info = systolic_report.cache
        assert info.hits > 0
        assert info.misses == 2  # one schedule per distinct (net, mode, size)

    def test_ism_less_backend_runs_dnn_every_frame(self):
        report = StreamEngine("eyeriss").run([_cost_stream("cam", n_frames=6)])
        assert report.streams[0].key_frames == 6

    def test_gpu_backend_serves_streams(self):
        report = StreamEngine("gpu").run([
            _cost_stream("a", n_frames=6),
            _cost_stream("b", n_frames=6),
        ])
        assert len(report.streams) == 2
        assert report.aggregate_fps > 0

    def test_mode_degrades_to_backend_capability(self):
        engine = StreamEngine("eyeriss")
        assert engine.effective_mode("ilar") == "dct"
        assert engine.effective_mode("dct") == "dct"
        assert StreamEngine("gpu").effective_mode("ilar") == "baseline"
        assert StreamEngine("systolic").effective_mode("ilar") == "ilar"
        with pytest.raises(ValueError):
            engine.effective_mode("magic")

    def test_custom_policy_factory(self):
        stream = _cost_stream(
            "cam", n_frames=6, policy_factory=lambda: StaticKeyFramePolicy(1)
        )
        report = StreamEngine("systolic").run([stream])
        assert report.streams[0].key_frames == 6

    def test_backend_instance_accepted(self):
        backend = get_backend("systolic")
        report = StreamEngine(backend).run([_cost_stream("cam", n_frames=4)])
        assert report.backend == "systolic"
        with pytest.raises(ValueError):
            StreamEngine(backend, cache_size=4)

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            StreamEngine("systolic").run([])

    def test_sustainable_streams_positive(self, systolic_report):
        n = systolic_report.sustainable_streams(30.0)
        assert n >= 1
        with pytest.raises(ValueError):
            systolic_report.sustainable_streams(0)

    def test_saturation_shows_in_tail(self):
        """An overloaded server queues: p99 far above p50."""
        hot = _cost_stream("hot", n_frames=20, fps=10_000.0, pw=1)
        report = StreamEngine("systolic").run([hot])
        s = report.streams[0]
        # queue grows linearly: the tail is ~2x the median, far above
        # the flat profile of an unloaded server
        assert s.p99_ms > 1.5 * s.p50_ms


class _RecordingBackend(ExecutionBackend):
    """A stub target with configurable capabilities that records the
    execution mode each scheduled network actually ran under."""

    name = "recording-stub"
    frequency_hz = 1.0e9

    def __init__(self, capabilities: BackendCapabilities):
        super().__init__()
        self.capabilities = capabilities
        self.modes_run: list[str] = []

    def _result(self, name, cycles):
        return LayerResult(
            name=name, cycles=cycles, compute_cycles=cycles,
            memory_cycles=0, macs=cycles, dram_bytes=0, sram_bytes=0,
            energy=EnergyBreakdown(),
        )

    def run_network(self, specs, mode="baseline"):
        self.require_mode(mode)
        self.modes_run.append(mode)
        return RunResult([self._result("stub-net", 1000)])

    def nonkey_frame(self, size=(68, 120), config=None):
        return self._result("stub-nonkey", 10)


class TestModeDegradation:
    """Requested modes degrade along ilar -> convr -> dct -> baseline
    to the best mode a restricted backend supports."""

    CASES = [
        # (dct, ilar) capability -> expected chain per requested mode
        ((True, True), {"ilar": "ilar", "convr": "convr",
                        "dct": "dct", "baseline": "baseline"}),
        ((True, False), {"ilar": "dct", "convr": "dct",
                         "dct": "dct", "baseline": "baseline"}),
        # ILAR without DCT: reuse modes run natively, but a plain DCT
        # request must skip to baseline (dct is not below convr)
        ((False, True), {"ilar": "ilar", "convr": "convr",
                         "dct": "baseline", "baseline": "baseline"}),
        ((False, False), {"ilar": "baseline", "convr": "baseline",
                          "dct": "baseline", "baseline": "baseline"}),
    ]

    @pytest.mark.parametrize("caps,expected", CASES)
    def test_effective_mode_chain(self, caps, expected):
        dct, ilar = caps
        backend = _RecordingBackend(BackendCapabilities(
            supports_dct=dct, supports_ilar=ilar, supports_ism=True))
        engine = StreamEngine(backend)
        for requested, effective in expected.items():
            assert engine.effective_mode(requested) == effective

    def test_degraded_mode_reaches_the_backend(self):
        """The engine schedules the *degraded* mode, not the request."""
        backend = _RecordingBackend(BackendCapabilities(
            supports_dct=True, supports_ilar=False, supports_ism=True))
        engine = StreamEngine(backend)
        report = engine.run([FrameStream(
            "cam", size=(68, 120), n_frames=4, pw=2, mode="ilar")])
        assert backend.modes_run == ["dct"]  # scheduled once, cached
        assert report.total_frames == 4

    def test_ism_less_restricted_backend_keys_every_frame(self):
        backend = _RecordingBackend(BackendCapabilities(
            supports_dct=False, supports_ilar=False, supports_ism=False))
        report = StreamEngine(backend).run([FrameStream(
            "cam", size=(68, 120), n_frames=5, pw=4, mode="ilar")])
        assert report.streams[0].key_frames == 5
        assert backend.modes_run == ["baseline"]

    def test_plan_keys_matches_served_key_counts(self):
        stream = FrameStream("cam", size=(68, 120), n_frames=9, pw=3)
        assert sum(plan_keys(stream)) == 3
        assert plan_keys(stream, supports_ism=False) == [True] * 9


class TestReportFormatting:
    def test_format_report(self, systolic_report):
        text = format_report(systolic_report)
        assert "cam0" in text and "p99 ms" in text and "systolic" in text

    def test_format_backend_comparison(self, systolic_report):
        text = format_backend_comparison([systolic_report], target_fps=30.0)
        assert "systolic" in text and "streams@30fps" in text
