"""Edge-case tests for the lowering and model-summary paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deconv.lowering import lower_spec
from repro.deconv.optimizer import build_schedule, optimize_layer, pack_filter_groups
from repro.hw import ASV_BASE, SystolicModel
from repro.models.summary import network_summary, zoo_summary
from repro.nn.ops import avg_pool2d
from repro.nn.workload import ConvSpec

MODEL = SystolicModel(ASV_BASE)


class TestLoweringEdgeCases:
    def test_projection_deconv_1x1_input(self):
        """GAN z-projection: deconv over a 1x1 map (stride 1, pad 0)."""
        spec = ConvSpec("g1", 100, 512, (4, 4), (1, 1), 1, 0, deconv=True)
        (group,) = lower_spec(spec)
        sched = optimize_layer(group, ASV_BASE, MODEL)
        res = MODEL.run_schedule(sched)
        assert res.macs == spec.macs_effective == spec.macs  # stride 1: dense

    def test_one_by_one_kernel_conv(self):
        spec = ConvSpec("pw", 256, 64, (1, 1), (68, 120), 1, 0)
        (layer,) = lower_spec(spec)
        sched = optimize_layer(layer, ASV_BASE, MODEL)
        assert MODEL.run_schedule(sched).macs == spec.macs

    def test_1d_spec_lowers(self):
        spec = ConvSpec("c1d", 8, 16, (5,), (200,), (1,), (2,))
        (layer,) = lower_spec(spec)
        assert layer.ifmap_rows == 1
        assert layer.ifmap_cols == 200
        sched = optimize_layer(layer, ASV_BASE, MODEL)
        assert MODEL.run_schedule(sched).macs == spec.macs

    def test_kernel_smaller_than_stride_deconv(self):
        """k < stride leaves some ofmap positions without any taps —
        the parity classes are empty there and the effective MACs drop
        below 1/s^2 of the dense count."""
        spec = ConvSpec("sparse", 8, 8, (2, 2), (10, 10), 3, 0, deconv=True)
        groups = lower_spec(spec, transform=True, ilar=True)
        total = sum(g.total_macs for g in groups)
        assert total == spec.macs_effective
        assert total < spec.macs / 4

    def test_anisotropic_deconv_lowers(self):
        spec = ConvSpec("a", 16, 8, (4, 2), (12, 20), (2, 1), (1, 0),
                        deconv=True)
        (group,) = lower_spec(spec)
        sched = optimize_layer(group, ASV_BASE, MODEL)
        assert MODEL.run_schedule(sched).macs == spec.macs_effective


class TestBuildScheduleProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        n_row=st.integers(1, 12),
        n_col=st.sampled_from([1, 2, 4]),
        n_ic=st.sampled_from([1, 2, 8]),
        weight_resident=st.booleans(),
    )
    def test_arbitrary_grids_conserve_work(self, n_row, n_col, n_ic, weight_resident):
        """Any grid + any legal filter grouping covers the layer exactly."""
        spec = ConvSpec("d", 16, 12, (4, 4), (24, 40), 2, 1, deconv=True)
        (group,) = lower_spec(spec)
        w_cost = [s.taps * 16 * 2 for s in group.subconvs]
        p_cost = [64] * len(group.subconvs)
        value = [s.taps for s in group.subconvs]
        groups = pack_filter_groups(group, 100_000, w_cost, p_cost, value)
        sched = build_schedule(
            group, ASV_BASE, n_row, n_col, n_ic, groups, weight_resident
        )
        sched.check_complete()  # Eq. 11 for every grid shape

    def test_zero_capacity_rejected(self):
        spec = ConvSpec("d", 16, 12, (4, 4), (24, 40), 2, 1, deconv=True)
        (group,) = lower_spec(spec)
        with pytest.raises(ValueError):
            pack_filter_groups(group, 10, [1000] * 4, [0] * 4, [1] * 4)


class TestModelSummaries:
    def test_network_summary_contains_layers(self):
        text = network_summary("FlowNetC", size=(135, 240))
        assert "deconv5" in text and "TOTAL" in text and "GMACs" in text

    def test_gan_summary_by_name(self):
        text = network_summary("DCGAN")
        assert "generator" in text

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            network_summary("NotANet")

    def test_zoo_summary_lists_all(self):
        text = zoo_summary(size=(135, 240))
        for name in ("DispNet", "FlowNetC", "GC-Net", "PSMNet"):
            assert name in text


class TestPoolingStride:
    def test_avg_pool_custom_stride(self):
        x = np.arange(36, dtype=float).reshape(1, 6, 6)
        out = avg_pool2d(x, 2, stride=1)
        assert out.shape == (1, 5, 5)
        assert np.isclose(out[0, 0, 0], np.mean([0, 1, 6, 7]))
