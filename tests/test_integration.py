"""Cross-module integration tests: the full pipelines end to end."""

import numpy as np
import pytest

from repro.core import ISM, ASVSystem, ISMConfig
from repro.datasets import sceneflow_scene
from repro.deconv import lower_network, optimize_layers, transform_network
from repro.deconv.runtime import TransformedDeconv
from repro.hw import ASV_BASE, SystolicModel
from repro.models.proxy import StereoDNNProxy
from repro.models.runnable import mini_dispnet_graph, mini_flownetc_graph
from repro.nn.layers import Deconv
from repro.stereo import error_rate


class TestRunnableMiniatures:
    def test_mini_dispnet_full_res_output(self):
        g = mini_dispnet_graph()
        out = g(np.zeros((2, 32, 48)))
        assert out.shape == (1, 32, 48)

    def test_mini_flownetc_output(self):
        g = mini_flownetc_graph()
        assert g(np.zeros((2, 24, 40))).shape == (1, 24, 40)

    @pytest.mark.parametrize("builder", [mini_dispnet_graph, mini_flownetc_graph])
    def test_transformed_miniature_is_exact(self, builder):
        """Numeric closure: DCT applied to a runnable network with skip
        connections changes nothing in the output."""
        g = builder(seed=3)
        x = np.random.default_rng(4).normal(size=(2, 32, 48))
        baseline = g(x)
        for i, node in enumerate(g.nodes):
            if isinstance(node.layer, Deconv):
                g.nodes[i] = type(node)(
                    node.name, TransformedDeconv(node.layer), node.inputs
                )
        assert np.allclose(g(x), baseline)

    def test_miniature_specs_schedule(self):
        """Geometry extracted from the runnable graph feeds the
        scheduling stack without modification."""
        g = mini_dispnet_graph()
        specs = g.conv_specs((2, 64, 96))
        model = SystolicModel(ASV_BASE)
        layers = lower_network(specs, transform=True, ilar=True)
        schedules = optimize_layers(layers, ASV_BASE, model)
        res = model.run_schedules(schedules, validate=True)
        assert res.cycles > 0


class TestAlgorithmToHardwareStory:
    """The paper's headline claims, asserted through the public API."""

    def test_asv_reaches_real_time_where_baseline_cannot(self):
        system = ASVSystem()
        base = system.frame_cost("DispNet", use_ism=False, mode="baseline")
        asv = system.frame_cost("DispNet", use_ism=True, mode="ilar", pw=4)
        assert base.fps(system.hw) < 30.0 < asv.fps(system.hw)

    def test_accuracy_survives_the_speedup(self):
        video = sceneflow_scene(33, size=(160, 280), max_speed=1.5).sequence(4)
        proxy = StereoDNNProxy("DispNet", seed=0)
        dnn_err = np.mean(
            [error_rate(StereoDNNProxy("DispNet", seed=0)(f), f.disparity)
             for f in video]
        )
        ism = ISM(proxy, ISMConfig(propagation_window=2))
        res = ism.run_sequence(video)
        ism_err = np.mean(
            [error_rate(d, f.disparity) for d, f in zip(res.disparities, video)]
        )
        assert ism_err < dnn_err + 1.5

    def test_energy_story_consistent_across_layers_of_the_stack(self):
        """The per-layer profile's totals agree with the system model
        for the same configuration."""
        from repro.evaluation.profiling import profile_network

        size = (135, 240)
        system = ASVSystem()
        frame = system.dnn_frame("FlowNetC", "baseline", size)
        profiles = profile_network("FlowNetC", "baseline", size=size)
        assert sum(p.cycles for p in profiles) == frame.cycles

    def test_transformation_conserves_work_through_the_stack(self):
        """spec-level effective MACs == lowered MACs == scheduled MACs
        == simulated MACs, across every stereo network's DR layers."""
        from repro.models import network_specs

        model = SystolicModel(ASV_BASE)
        for net in ("DispNet", "FlowNetC"):
            specs = [s for s in network_specs(net, (135, 240)) if s.deconv]
            for spec in specs:
                layers = lower_network([spec], transform=True, ilar=True)
                (sched,) = optimize_layers(layers, ASV_BASE, model)
                res = model.run_schedule(sched, validate=True)
                assert res.macs == spec.macs_effective, spec.name
