"""The documentation suite: pages exist, links resolve, doctests run.

Two rot vectors are guarded here: cross-references (a renamed file
silently orphans every ``[text](path)`` pointing at it) and code
examples (an API change silently breaks every ``>>>`` block).  Both
are cheap to check on every tier-1 run; CI additionally runs the
module doctests (``pytest --doctest-modules``) over the documented
packages.
"""

import doctest
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
REQUIRED_PAGES = (
    "architecture.md",
    "backends.md",
    "serving.md",
    "scheduling.md",
    "quality.md",
    "performance.md",
    "reproducing.md",
    "resilience.md",
    "static-analysis.md",
)

#: markdown inline links: [text](target), excluding images
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _doc_pages():
    return sorted(DOCS.glob("*.md"))


def _markdown_files():
    return [REPO / "README.md", *_doc_pages()]


def test_docs_suite_is_complete():
    assert DOCS.is_dir(), "docs/ directory is missing"
    names = {p.name for p in _doc_pages()}
    missing = set(REQUIRED_PAGES) - names
    assert not missing, f"docs/ is missing required pages: {sorted(missing)}"
    assert len(names) >= 4


@pytest.mark.parametrize("page", REQUIRED_PAGES)
def test_every_page_carries_runnable_examples(page):
    text = (DOCS / page).read_text()
    assert ">>>" in text, f"docs/{page} has no doctest examples"


@pytest.mark.parametrize(
    "path", _markdown_files(), ids=lambda p: str(p.relative_to(REPO))
)
def test_relative_links_resolve(path):
    """Every non-URL link target in README/docs points at a real file."""
    broken = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} has broken links: {broken}"


@pytest.mark.parametrize("page", REQUIRED_PAGES)
def test_docs_doctests_pass(page):
    """Run each page's ``>>>`` examples exactly as CI does."""
    failures, tests = doctest.testfile(
        str(DOCS / page), module_relative=False, verbose=False
    )
    assert tests > 0, f"docs/{page} collected no doctests"
    assert failures == 0, f"docs/{page} has {failures} failing doctests"
