"""Tests for the procedural stereo dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    SceneObject,
    StereoScene,
    kitti_pairs,
    kitti_scene_pair,
    make_texture,
    sceneflow_scene,
    sceneflow_videos,
)
from repro.flow.warp import bilinear_sample


class TestTexture:
    def test_range(self):
        tex = make_texture(np.random.default_rng(0), (32, 32))
        assert np.abs(tex).max() <= 1.0 + 1e-9

    def test_deterministic(self):
        a = make_texture(np.random.default_rng(5), (16, 16))
        b = make_texture(np.random.default_rng(5), (16, 16))
        assert np.array_equal(a, b)


class TestStereoScene:
    def _scene(self):
        obj = SceneObject(
            center=(30.0, 40.0), size=(20, 24), disparity=10.0,
            velocity=(1.0, 2.0), texture_seed=3,
        )
        return StereoScene(64, 96, [obj], background_disparity=2.0, seed=1)

    def test_render_shapes(self):
        frame = self._scene().render(0)
        assert frame.left.shape == (64, 96)
        assert frame.right.shape == (64, 96)
        assert frame.disparity.shape == (64, 96)

    def test_ground_truth_levels(self):
        frame = self._scene().render(0)
        assert set(np.unique(frame.disparity)) == {2.0, 10.0}

    def test_epipolar_consistency(self):
        """right(x + d) must equal left(x) wherever the same surface is
        visible in both views — the defining property of the rendering."""
        frame = self._scene().render(0)
        h, w = frame.shape
        yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
        sampled = bilinear_sample(frame.right, yy, xx + frame.disparity)
        # exclude pixels whose correspondence is occluded in the right
        # view (object band of width=disparity right of the object)
        err = np.abs(sampled - frame.left)
        assert np.median(err) < 1e-6
        assert (err < 1e-6).mean() > 0.9

    def test_objects_move_over_time(self):
        scene = self._scene()
        f0, f1 = scene.render(0), scene.render(1)
        assert not np.allclose(f0.left, f1.left)
        # object mask (disparity 10) shifts by the velocity
        m0 = f0.disparity == 10.0
        m1 = f1.disparity == 10.0
        cy0, cx0 = np.argwhere(m0).mean(axis=0)
        cy1, cx1 = np.argwhere(m1).mean(axis=0)
        assert np.isclose(cy1 - cy0, 1.0, atol=0.2)
        assert np.isclose(cx1 - cx0, 2.0, atol=0.2)

    def test_occlusion_order(self):
        near = SceneObject(center=(32.0, 48.0), size=(20, 20), disparity=20.0,
                           texture_seed=1)
        far = SceneObject(center=(32.0, 48.0), size=(30, 30), disparity=5.0,
                          texture_seed=2)
        scene = StereoScene(64, 96, [far, near], seed=0)
        frame = scene.render(0)
        assert frame.disparity[32, 48] == 20.0  # nearer object on top

    def test_sequence_length(self):
        assert len(self._scene().sequence(5)) == 5

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            StereoScene(4, 4, [])

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            SceneObject(center=(0, 0), size=(4, 4), disparity=1.0, shape="blob")


class TestGenerators:
    def test_sceneflow_scene_deterministic(self):
        a = sceneflow_scene(11).render(0)
        b = sceneflow_scene(11).render(0)
        assert np.array_equal(a.left, b.left)
        assert np.array_equal(a.disparity, b.disparity)

    def test_sceneflow_videos_count(self):
        videos = list(sceneflow_videos(n_videos=3, n_frames=2, size=(64, 96)))
        assert len(videos) == 3
        assert all(len(v) == 2 for v in videos)

    def test_sceneflow_disparity_in_range(self):
        frame = sceneflow_scene(2, max_disp=32).render(0)
        assert frame.disparity.max() < 32
        assert frame.disparity.min() >= 0

    def test_kitti_pair_is_two_frames(self):
        pair = kitti_scene_pair(0)
        assert len(pair) == 2
        assert pair[0].shape == pair[1].shape

    def test_kitti_road_gradient(self):
        """Road disparity must increase towards the bottom of the image."""
        frame = kitti_scene_pair(3)[0]
        h, w = frame.shape
        col = frame.disparity[:, w // 2]
        assert col[-1] > col[h // 2]

    def test_kitti_epipolar_consistency(self):
        """Most pixels verify right(x + d) == left(x); the exceptions
        are genuine right-view occlusions at object borders, which the
        street scenes have plenty of."""
        frame = kitti_scene_pair(5)[0]
        h, w = frame.shape
        yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
        sampled = bilinear_sample(frame.right, yy, xx + frame.disparity)
        err = np.abs(sampled - frame.left)
        assert np.median(err) < 1e-2
        assert (err < 1e-2).mean() > 0.55

    def test_kitti_pairs_generator(self):
        pairs = list(kitti_pairs(n_scenes=2, size=(48, 96)))
        assert len(pairs) == 2
