"""Smoke and shape tests for the per-figure experiment drivers.

The benchmarks assert the paper-level claims at full scale; these
tests exercise the same drivers at miniature scale so the whole
evaluation package stays covered by the fast suite.
"""

import numpy as np
import pytest

from repro.evaluation import (
    ExperimentScale,
    format_fig1,
    format_fig3,
    format_fig4,
    format_fig9,
    format_fig10,
    format_fig12,
    format_fig13,
    format_fig14,
    render_table,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig9,
    run_fig10,
    run_fig12,
    run_fig13,
    run_fig14,
)
from repro.evaluation.ablation import (
    format_pw_sweep,
    format_scheduler_ablation,
    run_pw_sweep,
    run_scheduler_ablation,
)

TINY = ExperimentScale(
    n_sceneflow_videos=1,
    n_sceneflow_frames=2,
    n_kitti_scenes=2,
    accuracy_size=(96, 160),
    accuracy_max_disp=32,
)

SMALL_SIZE = (135, 240)


class TestTableRenderer:
    def test_renders_all_cells(self):
        out = render_table("T", ["a", "bb"], [[1, 2.5], ["x", 0.001]])
        assert "T" in out and "bb" in out and "2.50" in out and "0.001" in out

    def test_empty_rows(self):
        out = render_table("T", ["a"], [])
        assert "a" in out


class TestFig3Driver:
    def test_rows_and_format(self):
        shares = run_fig3(size=SMALL_SIZE)
        assert len(shares) == 4
        text = format_fig3(shares)
        assert "DR deconv" in text and "AVG" in text

    def test_shares_sum_to_100(self):
        for s in run_fig3(size=SMALL_SIZE):
            total = s.fe_pct + s.mo_pct + s.dr_pct + s.other_pct
            assert total == pytest.approx(100.0)


class TestFig4Driver:
    def test_three_curves(self):
        curves = run_fig4()
        assert [c.distance_m for c in curves] == [10.0, 15.0, 30.0]
        assert "Bumblebee2" in format_fig4(curves)

    def test_zero_error_at_zero(self):
        for c in run_fig4():
            assert c.depth_errors_m[0] == 0.0


class TestFig9Driver:
    def test_tiny_run(self):
        rows = run_fig9(TINY)
        assert len(rows) == 8
        datasets = {r.dataset for r in rows}
        assert datasets == {"SceneFlow", "KITTI"}
        text = format_fig9(rows)
        assert "PW-2" in text

    def test_kitti_has_no_pw4(self):
        rows = run_fig9(TINY)
        assert all(
            r.pw4_error_pct is None for r in rows if r.dataset == "KITTI"
        )


class TestFig10Driver:
    def test_single_network(self):
        rows = run_fig10(networks=["FlowNetC"])
        assert len(rows) == 1
        r = rows[0]
        assert r.combined_speedup > r.dco_speedup
        assert "FlowNetC" in format_fig10(rows)


class TestFig12Driver:
    def test_small_grid(self):
        cells = run_fig12(
            pe_sizes=(16, 32), buffer_mb=(1.0, 2.0), size=(135, 240)
        )
        assert len(cells) == 4
        assert all(c.speedup > 1.0 for c in cells)
        assert "Fig. 12a" in format_fig12(cells)


class TestFig13Driver:
    def test_subset(self):
        points = run_fig13(size=SMALL_SIZE, networks=["DispNet"])
        names = [p.system for p in points]
        assert names[0] == "Eyeriss"
        assert points[0].speedup_vs_eyeriss == 1.0
        asv = next(p for p in points if p.system == "ASV-DCO+ISM")
        assert asv.speedup_vs_eyeriss > 1.0
        assert "Eyeriss" in format_fig13(points)


class TestFig14Driver:
    def test_subset(self):
        rows = run_fig14(gans=["DCGAN", "3D-GAN"])
        assert len(rows) == 2
        assert all(r.asv_speedup > 1.0 for r in rows)
        assert "GANNX" in format_fig14(rows)


class TestFig1Driver:
    def test_tiny_frontier(self):
        points = run_fig1(TINY)
        kinds = {p.kind for p in points}
        assert kinds == {"classic", "dnn-acc", "dnn-gpu", "asv"}
        assert all(np.isfinite(p.fps) and p.fps > 0 for p in points)
        assert "frontier" in format_fig1(points)


class TestAblations:
    def test_scheduler_ablation_rows(self):
        from repro.nn.workload import ConvSpec

        small = ConvSpec(
            "d", 64, 32, (4, 4), (34, 60), 2, 1, deconv=True, stage="DR"
        )
        rows = run_scheduler_ablation(small)
        names = [r.strategy for r in rows]
        assert "optimizer, full (paper)" in names
        assert "optimizer, beta=ifmap-resident" in names
        assert "cycles" in format_scheduler_ablation(rows)

    def test_pw_sweep_monotone(self):
        rows = run_pw_sweep(windows=(1, 2, 4))
        speeds = [r.speedup for r in rows]
        assert speeds == sorted(speeds)
        assert "Propagation-window" in format_pw_sweep(rows)


class TestScaleConfig:
    def test_default_scale_reduced(self, monkeypatch):
        from repro.evaluation import default_scale

        monkeypatch.delenv("REPRO_FULL", raising=False)
        scale = default_scale()
        assert scale.n_sceneflow_videos < 26

    def test_repro_full_env(self, monkeypatch):
        from repro.evaluation import default_scale

        monkeypatch.setenv("REPRO_FULL", "1")
        scale = default_scale()
        assert scale.n_sceneflow_videos == 26
        assert scale.n_kitti_scenes == 200
