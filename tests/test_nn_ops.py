"""Unit + property tests for the functional NN ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import signal

from repro.nn import ops


def scatter_deconv(x, w, stride, padding, output_padding=0):
    """Brute-force transposed convolution by scattering contributions.

    Derived from the zero-stuffing definition: output position
    ``o = s*t + (K-1-k) - p`` accumulates ``x[t] * w[k]`` (the kernel
    appears flipped relative to the scatter because the paper defines
    deconvolution as cross-correlation over the zero-stuffed input).
    """
    ndim = w.ndim - 2
    f, c = w.shape[:2]
    kshape = w.shape[2:]
    strides = (stride,) * ndim if isinstance(stride, int) else tuple(stride)
    pads = (padding,) * ndim if isinstance(padding, int) else tuple(padding)
    opads = (
        (output_padding,) * ndim
        if isinstance(output_padding, int)
        else tuple(output_padding)
    )
    out_spatial = tuple(
        (n - 1) * s - 2 * p + k + op
        for n, s, p, k, op in zip(x.shape[1:], strides, pads, kshape, opads)
    )
    out = np.zeros((f,) + out_spatial)
    for t in np.ndindex(*x.shape[1:]):
        for k in np.ndindex(*kshape):
            o = tuple(
                s * ti + (kk - 1 - ki) - p
                for s, ti, kk, ki, p in zip(strides, t, kshape, k, pads)
            )
            if all(0 <= oi < n for oi, n in zip(o, out_spatial)):
                for fi in range(f):
                    out[(fi,) + o] += float(
                        np.dot(x[(slice(None),) + t], w[(fi, slice(None)) + k])
                    )
    return out


class TestShapes:
    def test_conv_output_size(self):
        assert ops.conv_output_size(7, 3, 1, 0) == 5
        assert ops.conv_output_size(7, 3, 2, 1) == 4
        assert ops.conv_output_size(5, 5, 1, 2) == 5

    def test_conv_output_collapse_raises(self):
        with pytest.raises(ValueError):
            ops.conv_output_size(2, 5, 1, 0)

    def test_deconv_output_size(self):
        # The paper's Fig. 6 example: 3x3 in, k=3, s=2, p=1 -> 5x5 out.
        assert ops.deconv_output_size(3, 3, 2, 1) == 5
        assert ops.deconv_output_size(4, 4, 2, 1) == 8

    def test_deconv_output_padding(self):
        assert ops.deconv_output_size(3, 3, 2, 1, output_padding=1) == 6


class TestConv:
    def test_identity_kernel(self):
        x = np.arange(25, dtype=float).reshape(1, 5, 5)
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        assert np.allclose(ops.conv2d(x, w, padding=1), x)

    def test_matches_scipy_correlate(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 9, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        ours = ops.conv2d(x, w)
        ref = signal.correlate(x[0], w[0, 0], mode="valid")
        assert np.allclose(ours[0], ref)

    def test_multichannel_sums_inputs(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 6, 6))
        w = rng.normal(size=(2, 3, 3, 3))
        full = ops.conv2d(x, w)
        per_channel = sum(
            ops.conv2d(x[c : c + 1], w[:, c : c + 1]) for c in range(3)
        )
        assert np.allclose(full, per_channel)

    def test_stride_subsamples(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        dense = ops.conv2d(x, w)
        strided = ops.conv2d(x, w, stride=2)
        assert np.allclose(strided, dense[:, ::2, ::2])

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            ops.conv2d(np.zeros((2, 5, 5)), np.zeros((1, 3, 3, 3)))

    def test_kernel_too_large_raises(self):
        with pytest.raises(ValueError):
            ops.conv2d(np.zeros((1, 2, 2)), np.zeros((1, 1, 5, 5)))

    def test_conv3d_shape(self):
        x = np.zeros((2, 4, 6, 8))
        w = np.zeros((5, 2, 3, 3, 3))
        assert ops.conv3d(x, w, padding=1).shape == (5, 4, 6, 8)

    def test_conv1d_via_convnd(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 10))
        w = rng.normal(size=(1, 1, 3))
        ref = signal.correlate(x[0], w[0, 0], mode="valid")
        assert np.allclose(ops.convnd(x, w)[0], ref)


class TestUpsampleZero:
    def test_stride2_interleave(self):
        x = np.array([[[1.0, 2.0], [3.0, 4.0]]])
        up = ops.upsample_zero(x, 2, 0)
        expected = np.array([[[1, 0, 2], [0, 0, 0], [3, 0, 4]]], dtype=float)
        assert np.array_equal(up, expected)

    def test_border(self):
        x = np.ones((1, 1, 1))
        up = ops.upsample_zero(x, 1, 2)
        assert up.shape == (1, 5, 5)
        assert up.sum() == 1.0 and up[0, 2, 2] == 1.0

    def test_asymmetric_border(self):
        x = np.ones((1, 2, 2))
        up = ops.upsample_zero(x, 2, ((1, 2), (0, 1)))
        assert up.shape == (1, 6, 4)


class TestDeconv:
    def test_paper_fig6_example(self):
        """Reproduce the worked example of the paper's Fig. 6 exactly."""
        A, B, C, D, E, F, G, H, I = np.arange(1.0, 10.0)
        a, b, c, d, e, f, g, h, i = np.arange(1.0, 10.0) * 0.1
        x = np.array([[[A, B, C], [D, E, F], [G, H, I]]])
        w = np.array([[[[a, b, c], [d, e, f], [g, h, i]]]])
        out = ops.deconv2d(x, w, stride=2, padding=1)[0]
        assert out.shape == (5, 5)
        assert np.isclose(out[0, 0], A * e)
        assert np.isclose(out[0, 1], A * d + B * f)
        assert np.isclose(out[1, 0], A * b + D * h)
        assert np.isclose(out[1, 1], A * a + B * c + D * g + E * i)
        assert np.isclose(out[3, 3], E * a + F * c + H * g + I * i)
        assert np.isclose(out[3, 4], F * b + I * h)
        assert np.isclose(out[4, 3], H * d + I * f)
        assert np.isclose(out[4, 4], I * e)

    def test_matches_scatter_reference_2d(self):
        rng = np.random.default_rng(4)
        for stride, padding, k in [(2, 1, 3), (2, 1, 4), (2, 0, 3), (1, 0, 3), (3, 2, 5)]:
            x = rng.normal(size=(2, 4, 5))
            w = rng.normal(size=(3, 2, k, k))
            ours = ops.deconvnd(x, w, stride=stride, padding=padding)
            ref = scatter_deconv(x, w, stride, padding)
            assert np.allclose(ours, ref), (stride, padding, k)

    def test_matches_scatter_reference_3d(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 3, 3, 4))
        w = rng.normal(size=(2, 1, 3, 3, 3))
        ours = ops.deconv3d(x, w, stride=2, padding=1)
        ref = scatter_deconv(x, w, 2, 1)
        assert np.allclose(ours, ref)

    def test_output_padding(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(1, 3, 3))
        w = rng.normal(size=(1, 1, 3, 3))
        out = ops.deconv2d(x, w, stride=2, padding=1, output_padding=1)
        assert out.shape == (1, 6, 6)
        ref = scatter_deconv(x, w, 2, 1, output_padding=1)
        assert np.allclose(out, ref)

    def test_stride1_deconv_is_full_conv(self):
        """Stride-1 deconv with p=0 is a 'full' correlation."""
        rng = np.random.default_rng(7)
        x = rng.normal(size=(1, 5, 5))
        w = rng.normal(size=(1, 1, 3, 3))
        out = ops.deconv2d(x, w, stride=1, padding=0)
        assert out.shape == (1, 7, 7)
        ref = signal.correlate(np.pad(x[0], 2), w[0, 0], mode="valid")
        assert np.allclose(out[0], ref)

    def test_excess_padding_raises(self):
        with pytest.raises(ValueError):
            ops.deconv2d(np.zeros((1, 3, 3)), np.zeros((1, 1, 3, 3)), stride=2, padding=3)

    def test_output_padding_ge_stride_raises(self):
        with pytest.raises(ValueError):
            ops.deconv2d(
                np.zeros((1, 3, 3)), np.zeros((1, 1, 3, 3)),
                stride=2, padding=1, output_padding=2,
            )


@settings(max_examples=30, deadline=None)
@given(
    h=st.integers(2, 5),
    w_=st.integers(2, 5),
    cin=st.integers(1, 3),
    cout=st.integers(1, 3),
    k=st.integers(1, 4),
    stride=st.integers(1, 3),
    seed=st.integers(0, 2**31 - 1),
)
def test_deconv_property_matches_scatter(h, w_, cin, cout, k, stride, seed):
    """Zero-stuffed deconv == scatter reference for random geometry."""
    padding = min(k - 1, 1)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(cin, h, w_))
    kw = rng.normal(size=(cout, cin, k, k))
    ours = ops.deconvnd(x, kw, stride=stride, padding=padding)
    ref = scatter_deconv(x, kw, stride, padding)
    assert np.allclose(ours, ref)


class TestActivations:
    def test_relu(self):
        assert np.array_equal(ops.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_leaky_relu(self):
        out = ops.leaky_relu(np.array([-10.0, 5.0]), 0.1)
        assert np.allclose(out, [-1.0, 5.0])

    def test_sigmoid_range(self):
        x = np.linspace(-10, 10, 21)
        y = ops.sigmoid(x)
        assert np.all((y > 0) & (y < 1))
        assert np.isclose(ops.sigmoid(np.array([0.0]))[0], 0.5)

    def test_tanh_odd(self):
        x = np.linspace(-3, 3, 13)
        assert np.allclose(ops.tanh(-x), -ops.tanh(x))

    def test_batchnorm_normalises(self):
        rng = np.random.default_rng(8)
        x = rng.normal(3.0, 2.0, size=(4, 16, 16))
        mean = x.mean(axis=(1, 2))
        var = x.var(axis=(1, 2))
        out = ops.batchnorm(x, mean, var)
        assert np.allclose(out.mean(axis=(1, 2)), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=(1, 2)), 1.0, atol=1e-3)


class TestCorrelation:
    def test_zero_displacement_is_dot_product(self):
        rng = np.random.default_rng(9)
        left = rng.normal(size=(4, 5, 6))
        out = ops.correlation2d(left, left, max_displacement=2)
        assert np.allclose(out[0], (left * left).mean(axis=0))

    def test_shifted_input_peaks_at_displacement(self):
        rng = np.random.default_rng(10)
        left = rng.normal(size=(64, 8, 20))
        d_true = 3
        right = np.zeros_like(left)
        right[:, :, : -d_true] = left[:, :, d_true:]
        out = ops.correlation2d(left, right, max_displacement=6)
        # at columns where the shift is valid, the argmax over the
        # displacement axis should be d_true
        valid = out[:, :, d_true : -d_true or None]
        assert (valid.argmax(axis=0) == d_true).mean() > 0.9

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ops.correlation2d(np.zeros((1, 4, 4)), np.zeros((1, 4, 5)), 2)


class TestPooling:
    def test_avg_pool_constant(self):
        x = np.full((2, 8, 8), 3.0)
        out = ops.avg_pool2d(x, 2)
        assert out.shape == (2, 4, 4)
        assert np.allclose(out, 3.0)

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = ops.avg_pool2d(x, 2)
        assert np.allclose(out[0], [[2.5, 4.5], [10.5, 12.5]])
