"""The heterogeneous cluster layer: placement, serving, planning."""

import pytest

from repro.backends import get_backend
from repro.cluster import (
    ClusterEngine,
    available_policies,
    format_capacity_plan,
    format_cluster_report,
    format_policy_comparison,
    get_policy,
    plan_capacity,
    register_placement_policy,
)
from repro.pipeline import FrameStream, StreamEngine

TINY = (68, 120)
POLICIES = ("round-robin", "least-loaded", "capability-aware")


def _stream(name, **kwargs):
    kwargs.setdefault("network", "DispNet")
    kwargs.setdefault("mode", "baseline")
    kwargs.setdefault("n_frames", 8)
    return FrameStream(name, size=TINY, **kwargs)


def _mixed_streams():
    return [
        _stream("cam0", pw=4),
        _stream("cam1", pw=2, network="FlowNetC"),
        _stream("cam2", pw=1, mode="dct"),
        _stream("cam3", pw=8),
    ]


# ----------------------------------------------------------------------
# placement policies
# ----------------------------------------------------------------------
class TestPlacementPolicies:
    def test_registry(self):
        assert set(POLICIES) <= set(available_policies())
        for name in POLICIES:
            assert get_policy(name).name == name
        with pytest.raises(ValueError, match="unknown placement policy"):
            get_policy("random")

    def test_round_robin_pattern(self):
        engine = ClusterEngine(["gpu", "gpu", "gpu"], policy="round-robin")
        streams = [_stream(f"cam{i}") for i in range(5)]
        assert engine.place(streams) == [0, 1, 2, 0, 1]

    def test_least_loaded_balances_identical_streams(self):
        engine = ClusterEngine(["gpu", "gpu"], policy="least-loaded")
        streams = [_stream(f"cam{i}") for i in range(4)]
        assert engine.place(streams) == [0, 1, 0, 1]

    def test_least_loaded_prefers_cheaper_backend(self):
        # one ilar stream: the co-designed systolic array is far
        # cheaper per frame than the dense GPU, so it goes there
        engine = ClusterEngine(["gpu", "systolic"], policy="least-loaded")
        assert engine.place([_stream("cam", mode="ilar", pw=4)]) == [1]

    def test_capability_aware_routes_ism_streams(self):
        engine = ClusterEngine(["eyeriss", "gpu"], policy="capability-aware")
        # PW-4 leaves non-key frames to propagate: needs ISM -> gpu
        assert engine.place([_stream("ism-heavy", pw=4)]) == [1]
        # PW-1 never propagates; eyeriss natively schedules dct
        assert engine.place([_stream("all-key", pw=1, mode="dct")]) == [0]

    def test_capability_aware_falls_back_without_ism_backends(self):
        engine = ClusterEngine(
            ["eyeriss", "eyeriss"], policy="capability-aware"
        )
        placement = engine.place([_stream("cam", pw=4)])
        assert placement in ([0], [1])

    @pytest.mark.parametrize("policy", POLICIES)
    def test_placement_is_deterministic(self, policy):
        def fresh_placement():
            engine = ClusterEngine(
                ["systolic", "eyeriss", "gpu"], policy=policy
            )
            return engine.place(_mixed_streams())

        first = fresh_placement()
        assert fresh_placement() == first
        assert len(first) == 4
        assert all(0 <= i < 3 for i in first)

    def test_custom_policy_plugs_in(self):
        @register_placement_policy("pin-last")
        class PinLast:
            name = "pin-last"

            def assign(self, streams, costers):
                return [len(costers) - 1] * len(streams)

        engine = ClusterEngine(["gpu", "gpu"], policy="pin-last")
        report = engine.run([_stream("cam", n_frames=4)])
        assert report.shard_for("cam") == "gpu:1"

    def test_bad_policy_output_rejected(self):
        class Broken:
            name = "broken"

            def assign(self, streams, costers):
                return [99] * len(streams)

        engine = ClusterEngine(["gpu"], policy=Broken())
        with pytest.raises(ValueError, match="outside the fleet"):
            engine.place([_stream("cam")])

        class Short:
            name = "short"

            def assign(self, streams, costers):
                return []

        engine = ClusterEngine(["gpu"], policy=Short())
        with pytest.raises(ValueError, match="placed 0 of 1"):
            engine.place([_stream("cam")])


# ----------------------------------------------------------------------
# the cluster engine
# ----------------------------------------------------------------------
class TestClusterEngine:
    @pytest.mark.parametrize("backend", ["gpu", "systolic"])
    def test_one_backend_cluster_is_exactly_stream_engine(self, backend):
        """The degenerate case: ClusterEngine([b]) == StreamEngine(b).

        round-robin never probes costs, so even the cache statistics
        match and the embedded report is *equal*, field for field.
        """
        streams = _mixed_streams()
        single = StreamEngine(backend).run(streams)
        cluster = ClusterEngine([backend], policy="round-robin").run(streams)
        assert len(cluster.shards) == 1
        assert cluster.shards[0].report == single
        assert cluster.makespan_s == single.makespan_s
        assert cluster.aggregate_fps == single.aggregate_fps

    @pytest.mark.parametrize("policy", POLICIES)
    def test_degenerate_latencies_match_across_policies(self, policy):
        """Cost-probing policies may touch the cache, but the served
        latencies, key counts and makespan are still identical."""
        streams = _mixed_streams()
        single = StreamEngine("gpu").run(streams)
        cluster = ClusterEngine(["gpu"], policy=policy).run(streams)
        assert cluster.shards[0].report.streams == single.streams
        assert cluster.makespan_s == single.makespan_s

    def test_labels_disambiguate_repeated_types(self):
        engine = ClusterEngine(["systolic", "systolic", "gpu"])
        assert engine.labels == ["systolic:0", "systolic:1", "gpu:0"]

    def test_run_conserves_streams_and_frames(self):
        streams = _mixed_streams()
        report = ClusterEngine(
            ["systolic", "eyeriss", "gpu"], policy="capability-aware"
        ).run(streams)
        assert report.total_frames == sum(s.n_frames for s in streams)
        assert sorted(name for name, _ in report.placement) == sorted(
            s.name for s in streams
        )
        assert [s.stream for s in report.stream_stats] == [
            s.name for s in streams
        ]
        assert report.aggregate_fps > 0
        assert report.worst_p99_ms > 0

    def test_idle_shard_reported_as_headroom(self):
        backends = [get_backend("gpu"), get_backend("gpu")]
        report = ClusterEngine(backends, policy="round-robin").run(
            [_stream("cam", n_frames=4)]
        )
        busy, idle = report.shards
        assert not busy.idle and idle.idle
        assert idle.utilization == 0.0
        assert idle.report.streams == []
        # an idle shard's empty serve is not a run in the ledger
        assert backends[1].occupancy.runs == 0
        assert backends[0].occupancy.runs == 1

    def test_shard_utilizations_bounded(self):
        report = ClusterEngine(
            ["systolic", "gpu"], policy="least-loaded"
        ).run(_mixed_streams())
        for shard in report.shards:
            assert 0.0 <= shard.utilization <= 1.0
        assert max(s.utilization for s in report.shards) > 0.0

    def test_occupancy_ledger_filled(self):
        backend = get_backend("gpu")
        report = ClusterEngine([backend]).run([_stream("cam", n_frames=6)])
        assert backend.occupancy.frames == 6
        assert backend.occupancy.runs == 1
        assert backend.occupancy.busy_s > 0
        assert report.shards[0].report.total_frames == 6

    def test_sustainable_streams_sums_shards(self):
        report = ClusterEngine(["gpu", "gpu"], policy="round-robin").run(
            [_stream("a", n_frames=6), _stream("b", n_frames=6)]
        )
        per_shard = [
            shard.report.sustainable_streams(30.0) for shard in report.shards
        ]
        assert report.sustainable_streams(30.0) == sum(per_shard)

    def test_shard_for_unknown_stream(self):
        report = ClusterEngine(["gpu"]).run([_stream("cam", n_frames=2)])
        with pytest.raises(KeyError):
            report.shard_for("ghost")

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one backend"):
            ClusterEngine([])
        with pytest.raises(ValueError, match="at least one stream"):
            ClusterEngine(["gpu"]).run([])

    def test_duplicate_stream_names_rejected(self):
        """Placement and reports are keyed by name; dupes would
        silently alias one stream's stats onto the other."""
        with pytest.raises(ValueError, match="unique.*'cam'"):
            ClusterEngine(["gpu"]).run(
                [_stream("cam", n_frames=2), _stream("cam", n_frames=6)]
            )

    def test_idle_shard_worst_p99_is_zero(self):
        report = ClusterEngine(["gpu", "gpu", "gpu"]).run(
            [_stream("cam", n_frames=4)]
        )
        idle = [s for s in report.shards if s.idle]
        assert idle and all(s.report.worst_p99_ms == 0.0 for s in idle)
        assert report.worst_p99_ms > 0

    def test_formatting(self):
        streams = [_stream("cam", n_frames=4)]
        reports = [
            ClusterEngine(["gpu", "gpu"], policy=p).run(streams)
            for p in POLICIES
        ]
        text = format_cluster_report(reports[0])
        assert "gpu:0" in text and "util" in text and "cam" in text
        comparison = format_policy_comparison(reports, target_fps=30.0)
        for policy in POLICIES:
            assert policy in comparison


# ----------------------------------------------------------------------
# the capacity planner
# ----------------------------------------------------------------------
class TestCapacityPlanner:
    def test_plan_shape_and_ranking(self):
        plan = plan_capacity(
            _mixed_streams(), target_fps=30.0, catalog=("eyeriss", "gpu")
        )
        assert plan.n_streams == 4
        keys = [(p.instances, p.demand, p.backend) for p in plan.options]
        assert keys == sorted(keys)
        assert plan.best is plan.options[0]
        for option in plan.options:
            assert option.instances >= 1
            assert option.demand > 0
            assert option.fleet_utilization <= option.utilization_cap + 1e-9

    def test_ism_capable_systolic_needs_least_capacity(self):
        # ISM-heavy mix: the co-designed array's demand is lowest
        streams = [_stream(f"cam{i}", pw=4, mode="ilar") for i in range(3)]
        plan = plan_capacity(
            streams, target_fps=30.0, catalog=("systolic", "eyeriss", "gpu")
        )
        by_name = {p.backend: p for p in plan.options}
        assert by_name["systolic"].demand < by_name["eyeriss"].demand
        assert by_name["systolic"].demand < by_name["gpu"].demand
        assert plan.best.backend == "systolic"

    def test_demand_scales_linearly_with_target_fps(self):
        streams = [_stream("cam")]
        at30 = plan_capacity(streams, 30.0, catalog=("gpu",))
        at60 = plan_capacity(streams, 60.0, catalog=("gpu",))
        assert at60.options[0].demand == pytest.approx(
            2 * at30.options[0].demand
        )

    def test_large_fleet_scales_out(self):
        streams = [_stream(f"cam{i}", pw=1) for i in range(64)]
        plan = plan_capacity(streams, 60.0, catalog=("gpu",))
        gpu = plan.options[0]
        assert gpu.instances > 1
        assert gpu.streams_per_instance == pytest.approx(64 / gpu.instances)

    def test_determinism(self):
        streams = _mixed_streams()
        first = plan_capacity(streams, 30.0, catalog=("eyeriss", "gpu"))
        second = plan_capacity(streams, 30.0, catalog=("eyeriss", "gpu"))
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one stream"):
            plan_capacity([], 30.0)
        with pytest.raises(ValueError, match="target fps"):
            plan_capacity([_stream("cam")], 0.0)
        with pytest.raises(ValueError, match="utilization cap"):
            plan_capacity([_stream("cam")], 30.0, utilization_cap=1.5)
        with pytest.raises(ValueError, match="catalog"):
            plan_capacity([_stream("cam")], 30.0, catalog=())

    def test_formatting(self):
        plan = plan_capacity([_stream("cam")], 30.0, catalog=("gpu",))
        text = format_capacity_plan(plan)
        assert "gpu" in text and "instances" in text


# ----------------------------------------------------------------------
# planner edge cases: infeasible inputs fail loudly, never 0 replicas
# ----------------------------------------------------------------------
class TestPlannerEdgeCases:
    def test_backend_plan_rejects_zero_instances(self):
        from repro.cluster import BackendPlan

        with pytest.raises(ValueError, match="at least one instance"):
            BackendPlan(backend="gpu", demand=0.0, instances=0,
                        utilization_cap=0.9, n_streams=1)

    def test_catalog_entry_slower_than_deadline_rejected(self):
        # eyeriss key frames on this workload take ~14 ms: a 1 ms
        # per-frame deadline is unmeetable at any fleet size
        stream = _stream("cam", deadline_s=0.001)
        with pytest.raises(ValueError, match="cannot meet stream"):
            plan_capacity([stream], 30.0, catalog=("eyeriss",))
        # the same stream with slack plans fine
        relaxed = _stream("cam", deadline_s=0.5)
        assert plan_capacity([relaxed], 30.0,
                             catalog=("eyeriss",)).best.instances >= 1

    def test_stream_too_heavy_for_one_instance_rejected(self):
        # a single stream demanding more than the cap cannot be
        # served by any number of instances (streams don't split)
        stream = _stream("cam", pw=1)
        with pytest.raises(ValueError, match="cannot split"):
            plan_capacity([stream], 400.0, catalog=("gpu",))

    def test_error_names_the_offender(self):
        stream = _stream("badcam", deadline_s=0.001)
        with pytest.raises(ValueError, match="badcam"):
            plan_capacity([stream], 30.0, catalog=("eyeriss",))


# ----------------------------------------------------------------------
# failover determinism: byte-identical reports, any quality pool
# ----------------------------------------------------------------------
class TestFailoverDeterminism:
    """Identical (fault_schedule, seed) => byte-identical reports.

    The chaos loop's only stochastic ingredient is the flaky-fault
    draw, which is a pure SHA-256 function of the schedule seed — so
    two runs of the same schedule must render identically, and the
    quality probe's worker pool (process vs thread) must not leak
    into the report either.
    """

    @staticmethod
    def _schedule():
        from repro.cluster import CrashFault, FaultSchedule, FlakyFault

        return FaultSchedule(
            faults=(
                CrashFault("gpu:1", at_s=0.05),
                FlakyFault("gpu:0", start_s=0.0, duration_s=10.0,
                           failure_rate=0.3),
            ),
            seed=11,
        )

    def _report(self, quality=None):
        from repro.cluster import ChaosClusterEngine, RetryPolicy

        engine = ChaosClusterEngine(
            ["gpu", "gpu"], policy="round-robin",
            faults=self._schedule(),
            retry=RetryPolicy(max_attempts=2, backoff_s=0.001),
            quality=quality,
        )
        return engine.run([_stream(f"cam{i}", deadline_s=0.05)
                           for i in range(4)])

    def test_identical_schedule_and_seed_byte_identical(self):
        first, second = self._report(), self._report()
        assert format_cluster_report(first) == format_cluster_report(second)
        assert first.resilience == second.resilience
        assert first.placement == second.placement

    def test_pool_choice_never_leaks_into_report(self):
        from repro.pipeline import sceneflow_stream
        from repro.cluster import ChaosClusterEngine, RetryPolicy
        from repro.pipeline.quality import QualityProbe

        def render(pool):
            engine = ChaosClusterEngine(
                ["gpu", "gpu"], policy="round-robin",
                faults=self._schedule(),
                retry=RetryPolicy(max_attempts=2, backoff_s=0.001),
                quality=QualityProbe(max_disp=16, workers=2, pool=pool),
            )
            streams = [
                sceneflow_stream(seed=i, size=(48, 64), n_frames=6,
                                 deadline_s=0.05)
                for i in range(2)
            ]
            return format_cluster_report(engine.run(streams))

        assert render("process") == render("thread")
