"""Property-based tests on the tiling scheduler.

For random layer geometry, every schedule the optimizer emits must
satisfy the paper's feasibility constraints (Eq. 10/11) and its cost
accounting must be conserved.  These are the invariants DESIGN.md
commits to.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deconv.lowering import lower_naive_deconv, lower_spec, lower_transformed
from repro.deconv.optimizer import optimize_layer
from repro.hw import ASV_BASE, SystolicModel
from repro.nn.workload import ConvSpec

HW = ASV_BASE
MODEL = SystolicModel(HW)


conv_geometry = st.fixed_dictionaries(
    dict(
        in_channels=st.sampled_from([1, 3, 16, 64, 128]),
        out_channels=st.sampled_from([1, 8, 32, 64]),
        k=st.sampled_from([1, 3, 5, 7]),
        h=st.integers(8, 80),
        w=st.integers(8, 80),
        stride=st.sampled_from([1, 2]),
    )
)

deconv_geometry = st.fixed_dictionaries(
    dict(
        in_channels=st.sampled_from([8, 32, 128, 512]),
        out_channels=st.sampled_from([4, 16, 64]),
        k=st.sampled_from([2, 3, 4, 5]),
        h=st.integers(5, 40),
        w=st.integers(5, 40),
    )
)


@settings(max_examples=25, deadline=None)
@given(g=conv_geometry)
def test_conv_schedules_valid_and_conserved(g):
    spec = ConvSpec(
        "c", g["in_channels"], g["out_channels"], (g["k"], g["k"]),
        (g["h"], g["w"]), g["stride"], min(1, g["k"] - 1),
    )
    (layer,) = lower_spec(spec)
    sched = optimize_layer(layer, HW, MODEL)
    sched.validate(HW)  # Eq. 10 + Eq. 11
    res = MODEL.run_schedule(sched, validate=False)
    assert res.macs == spec.macs
    # everything produced is eventually stored exactly once
    assert sched.dram_store_elems == spec.ofmap_elems


@settings(max_examples=25, deadline=None)
@given(g=deconv_geometry)
def test_transformed_deconv_schedules_valid(g):
    p = min(1, g["k"] - 1)
    spec = ConvSpec(
        "d", g["in_channels"], g["out_channels"], (g["k"], g["k"]),
        (g["h"], g["w"]), 2, p, deconv=True,
    )
    (group,) = lower_transformed(spec, ilar=True)
    sched = optimize_layer(group, HW, MODEL)
    sched.validate(HW)
    res = MODEL.run_schedule(sched, validate=False)
    assert res.macs == spec.macs_effective
    assert sched.dram_store_elems == spec.ofmap_elems


@settings(max_examples=15, deadline=None)
@given(g=deconv_geometry)
def test_transformed_never_slower_than_naive(g):
    """The transformation plus optimized scheduling must never lose to
    the naive dense execution of the same deconvolution."""
    p = min(1, g["k"] - 1)
    spec = ConvSpec(
        "d", g["in_channels"], g["out_channels"], (g["k"], g["k"]),
        (g["h"], g["w"]), 2, p, deconv=True,
    )
    naive = MODEL.run_schedule(
        optimize_layer(lower_naive_deconv(spec), HW, MODEL), validate=False
    )
    (group,) = lower_transformed(spec, ilar=True)
    trans = MODEL.run_schedule(
        optimize_layer(group, HW, MODEL), validate=False
    )
    assert trans.cycles <= naive.cycles
    assert trans.macs < naive.macs


@settings(max_examples=10, deadline=None)
@given(
    g=deconv_geometry,
    pe=st.sampled_from([8, 16, 32, 56]),
    buf_mb=st.sampled_from([0.5, 1.5, 3.0]),
)
def test_schedules_valid_across_hw_configs(g, pe, buf_mb):
    hw = ASV_BASE.with_resources(
        pe_rows=pe, pe_cols=pe, buffer_bytes=int(buf_mb * 1024 * 1024)
    )
    model = SystolicModel(hw)
    p = min(1, g["k"] - 1)
    spec = ConvSpec(
        "d", g["in_channels"], g["out_channels"], (g["k"], g["k"]),
        (g["h"], g["w"]), 2, p, deconv=True,
    )
    (group,) = lower_transformed(spec, ilar=True)
    sched = optimize_layer(group, hw, model)
    sched.validate(hw)


@settings(max_examples=15, deadline=None)
@given(g=conv_geometry, seed=st.integers(0, 100))
def test_more_resources_never_hurt(g, seed):
    """Doubling the PE array never slows the optimized schedule."""
    spec = ConvSpec(
        "c", g["in_channels"], g["out_channels"], (g["k"], g["k"]),
        (g["h"], g["w"]), g["stride"], min(1, g["k"] - 1),
    )
    (layer,) = lower_spec(spec)
    small_hw = ASV_BASE.with_resources(pe_rows=12, pe_cols=12)
    big_hw = ASV_BASE.with_resources(pe_rows=24, pe_cols=24)
    small = SystolicModel(small_hw).run_schedule(
        optimize_layer(layer, small_hw), validate=False
    )
    big = SystolicModel(big_hw).run_schedule(
        optimize_layer(layer, big_hw), validate=False
    )
    assert big.cycles <= small.cycles
