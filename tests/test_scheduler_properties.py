"""Property-based tests on the tiling and frame schedulers.

Two invariant families live here.  For random layer geometry, every
schedule the tiling optimizer emits must satisfy the paper's
feasibility constraints (Eq. 10/11) and its cost accounting must be
conserved — the invariants DESIGN.md commits to.  And for random
stream mixes under random (but seeded) fault schedules, every frame
scheduling discipline must preserve the serving invariants the chaos
layer builds on: frames of one stream never reorder internally, key
frames never drop, and every offered frame is either served or
explicitly dropped.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import get_backend
from repro.cluster import (
    ChaosClusterEngine,
    CrashFault,
    FaultSchedule,
    FlakyFault,
    RetryPolicy,
    SlowdownFault,
    format_cluster_report,
)
from repro.deconv.lowering import lower_naive_deconv, lower_spec, lower_transformed
from repro.deconv.optimizer import optimize_layer
from repro.hw import ASV_BASE, SystolicModel
from repro.nn.workload import ConvSpec
from repro.pipeline import FrameCoster, FrameStream
from repro.pipeline.costing import plan_keys

HW = ASV_BASE
MODEL = SystolicModel(HW)


conv_geometry = st.fixed_dictionaries(
    dict(
        in_channels=st.sampled_from([1, 3, 16, 64, 128]),
        out_channels=st.sampled_from([1, 8, 32, 64]),
        k=st.sampled_from([1, 3, 5, 7]),
        h=st.integers(8, 80),
        w=st.integers(8, 80),
        stride=st.sampled_from([1, 2]),
    )
)

deconv_geometry = st.fixed_dictionaries(
    dict(
        in_channels=st.sampled_from([8, 32, 128, 512]),
        out_channels=st.sampled_from([4, 16, 64]),
        k=st.sampled_from([2, 3, 4, 5]),
        h=st.integers(5, 40),
        w=st.integers(5, 40),
    )
)


@settings(max_examples=25, deadline=None)
@given(g=conv_geometry)
def test_conv_schedules_valid_and_conserved(g):
    spec = ConvSpec(
        "c", g["in_channels"], g["out_channels"], (g["k"], g["k"]),
        (g["h"], g["w"]), g["stride"], min(1, g["k"] - 1),
    )
    (layer,) = lower_spec(spec)
    sched = optimize_layer(layer, HW, MODEL)
    sched.validate(HW)  # Eq. 10 + Eq. 11
    res = MODEL.run_schedule(sched, validate=False)
    assert res.macs == spec.macs
    # everything produced is eventually stored exactly once
    assert sched.dram_store_elems == spec.ofmap_elems


@settings(max_examples=25, deadline=None)
@given(g=deconv_geometry)
def test_transformed_deconv_schedules_valid(g):
    p = min(1, g["k"] - 1)
    spec = ConvSpec(
        "d", g["in_channels"], g["out_channels"], (g["k"], g["k"]),
        (g["h"], g["w"]), 2, p, deconv=True,
    )
    (group,) = lower_transformed(spec, ilar=True)
    sched = optimize_layer(group, HW, MODEL)
    sched.validate(HW)
    res = MODEL.run_schedule(sched, validate=False)
    assert res.macs == spec.macs_effective
    assert sched.dram_store_elems == spec.ofmap_elems


@settings(max_examples=15, deadline=None)
@given(g=deconv_geometry)
def test_transformed_never_slower_than_naive(g):
    """The transformation plus optimized scheduling must never lose to
    the naive dense execution of the same deconvolution."""
    p = min(1, g["k"] - 1)
    spec = ConvSpec(
        "d", g["in_channels"], g["out_channels"], (g["k"], g["k"]),
        (g["h"], g["w"]), 2, p, deconv=True,
    )
    naive = MODEL.run_schedule(
        optimize_layer(lower_naive_deconv(spec), HW, MODEL), validate=False
    )
    (group,) = lower_transformed(spec, ilar=True)
    trans = MODEL.run_schedule(
        optimize_layer(group, HW, MODEL), validate=False
    )
    assert trans.cycles <= naive.cycles
    assert trans.macs < naive.macs


@settings(max_examples=10, deadline=None)
@given(
    g=deconv_geometry,
    pe=st.sampled_from([8, 16, 32, 56]),
    buf_mb=st.sampled_from([0.5, 1.5, 3.0]),
)
def test_schedules_valid_across_hw_configs(g, pe, buf_mb):
    hw = ASV_BASE.with_resources(
        pe_rows=pe, pe_cols=pe, buffer_bytes=int(buf_mb * 1024 * 1024)
    )
    model = SystolicModel(hw)
    p = min(1, g["k"] - 1)
    spec = ConvSpec(
        "d", g["in_channels"], g["out_channels"], (g["k"], g["k"]),
        (g["h"], g["w"]), 2, p, deconv=True,
    )
    (group,) = lower_transformed(spec, ilar=True)
    sched = optimize_layer(group, hw, model)
    sched.validate(hw)


@settings(max_examples=15, deadline=None)
@given(g=conv_geometry, seed=st.integers(0, 100))
def test_more_resources_never_hurt(g, seed):
    """Doubling the PE array never slows the optimized schedule."""
    spec = ConvSpec(
        "c", g["in_channels"], g["out_channels"], (g["k"], g["k"]),
        (g["h"], g["w"]), g["stride"], min(1, g["k"] - 1),
    )
    (layer,) = lower_spec(spec)
    small_hw = ASV_BASE.with_resources(pe_rows=12, pe_cols=12)
    big_hw = ASV_BASE.with_resources(pe_rows=24, pe_cols=24)
    small = SystolicModel(small_hw).run_schedule(
        optimize_layer(layer, small_hw), validate=False
    )
    big = SystolicModel(big_hw).run_schedule(
        optimize_layer(layer, big_hw), validate=False
    )
    assert big.cycles <= small.cycles


# ----------------------------------------------------------------------
# frame schedulers x fault schedules: serving invariants
# ----------------------------------------------------------------------
# shared backend instances: only cache/occupancy ledgers are stateful
# and neither affects modeled latencies, so reuse keeps sweeps fast
GPU_A, GPU_B = get_backend("gpu"), get_backend("gpu")
TINY = (68, 120)
DISCIPLINES = ("fifo", "edf", "priority", "shed")

stream_mix = st.lists(
    st.fixed_dictionaries(
        dict(
            pw=st.sampled_from([1, 2, 4]),
            deadline_ms=st.sampled_from([8, 25, 60, None]),
            priority=st.integers(0, 2),
            fps=st.sampled_from([15.0, 30.0, 60.0]),
        )
    ),
    min_size=1,
    max_size=4,
)

fault_mix = st.fixed_dictionaries(
    dict(
        crash_ms=st.sampled_from([None, 20, 60, 150]),
        slow=st.booleans(),
        slow_factor=st.sampled_from([2.0, 5.0]),
        flaky_rate=st.sampled_from([0.0, 0.3, 0.6]),
        seed=st.integers(0, 2**16),
        attempts=st.integers(1, 3),
    )
)


def _build_streams(mix):
    return [
        FrameStream(
            f"cam{i}", size=TINY, n_frames=8, mode="baseline",
            pw=m["pw"], fps=m["fps"], priority=m["priority"],
            deadline_s=None if m["deadline_ms"] is None
            else m["deadline_ms"] / 1e3,
        )
        for i, m in enumerate(mix)
    ]


def _build_schedule(f):
    faults = []
    if f["crash_ms"] is not None:
        faults.append(CrashFault("gpu:1", at_s=f["crash_ms"] / 1e3))
    if f["slow"]:
        faults.append(SlowdownFault("gpu:0", start_s=0.02,
                                    duration_s=0.08,
                                    factor=f["slow_factor"]))
    if f["flaky_rate"] > 0:
        faults.append(FlakyFault("gpu:0", start_s=0.0, duration_s=10.0,
                                 failure_rate=f["flaky_rate"]))
    return FaultSchedule(faults=tuple(faults), seed=f["seed"])


@settings(max_examples=30, deadline=None)
@given(mix=stream_mix, faults=fault_mix,
       discipline=st.sampled_from(DISCIPLINES))
def test_serving_invariants_hold_under_faults(mix, faults, discipline):
    """Offered == served + dropped and key frames never drop, for
    every discipline under every seeded fault schedule."""
    streams = _build_streams(mix)
    engine = ChaosClusterEngine(
        [GPU_A, GPU_B], scheduler=discipline,
        faults=_build_schedule(faults),
        retry=RetryPolicy(max_attempts=faults["attempts"],
                          backoff_s=0.001),
    )
    report = engine.run(streams)

    stats = {s.stream: s for s in report.stream_stats}
    assert set(stats) == {s.name for s in streams}
    for stream in streams:
        s = stats[stream.name]
        # conservation: every offered frame is served or dropped
        assert s.frames + s.dropped_frames == stream.n_frames
        # key frames never drop: at least every planned key served
        # (re-keys after drops/migrations can only add more)
        planned = sum(plan_keys(stream, supports_ism=True))
        assert s.key_frames >= planned
        assert s.key_frames <= s.frames
    assert report.total_frames == sum(s.frames for s in stats.values())
    # the resilience ledger agrees with the per-stream accounting
    res = report.resilience
    assert len(res.events_of("retry-drop")) <= sum(
        s.dropped_frames for s in stats.values()
    )
    for entry in res.streams:
        assert entry.retries >= 0 and entry.migrations >= 0


@settings(max_examples=12, deadline=None)
@given(mix=stream_mix, faults=fault_mix,
       discipline=st.sampled_from(DISCIPLINES))
def test_chaos_reports_deterministic(mix, faults, discipline):
    """Identical (streams, fault schedule, seed) render identically."""
    def render():
        engine = ChaosClusterEngine(
            [GPU_A, GPU_B], scheduler=discipline,
            faults=_build_schedule(faults),
            retry=RetryPolicy(max_attempts=faults["attempts"],
                              backoff_s=0.001),
        )
        return format_cluster_report(engine.run(_build_streams(mix)))

    assert render() == render()


@settings(max_examples=20, deadline=None)
@given(mix=stream_mix, discipline=st.sampled_from(DISCIPLINES))
def test_streams_never_reorder_internally(mix, discipline):
    """Per-stream completion times are monotone: the serve loop only
    ever dispatches stream heads, so frame i+1 finishes after frame i
    (dropped frames never complete and are skipped)."""
    streams = _build_streams(mix)
    outcome = FrameCoster(GPU_A).serve(streams, scheduler=discipline)
    for si, stream in enumerate(streams):
        latencies = list(outcome.latencies_s[si])
        dispositions = outcome.dispositions[si]
        assert len(dispositions) == stream.n_frames
        served_idx = [i for i, what in enumerate(dispositions)
                      if what != "drop"]
        assert len(served_idx) == len(latencies)
        completions = [
            idx / stream.fps + lat
            for idx, lat in zip(served_idx, latencies)
        ]
        assert completions == sorted(completions)
        # a drop breaks the ISM chain: the next served frame is key
        for pos, what in enumerate(dispositions):
            if what == "drop":
                rest = [d for d in dispositions[pos + 1:] if d != "drop"]
                if rest:
                    assert rest[0] == "key"
