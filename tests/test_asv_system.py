"""Tests for the system-level composition (repro.core.asv)."""

import pytest

from repro.core import ASVSystem, FrameCost, MODES
from repro.core.ism import ISMConfig
from repro.hw import ASV_BASE


@pytest.fixture(scope="module")
def system():
    return ASVSystem()


SMALL = (135, 240)  # qHD/4 keeps the scheduling fast for unit tests


class TestDNNFrame:
    def test_modes_exist(self):
        assert MODES == ("baseline", "dct", "convr", "ilar")

    def test_unknown_mode_raises(self, system):
        with pytest.raises(ValueError):
            system.dnn_frame("DispNet", mode="magic")

    def test_all_modes_run(self, system):
        results = {
            m: system.dnn_frame("DispNet", mode=m, size=SMALL) for m in MODES
        }
        for m, res in results.items():
            assert res.cycles > 0, m

    def test_mode_ordering(self, system):
        """Each optimization level is at least as fast as the previous."""
        base = system.dnn_frame("DispNet", "baseline", SMALL).cycles
        dct = system.dnn_frame("DispNet", "dct", SMALL).cycles
        ilar = system.dnn_frame("DispNet", "ilar", SMALL).cycles
        assert dct < base
        assert ilar <= dct * 1.05

    def test_transformation_reduces_macs(self, system):
        base = system.dnn_frame("DispNet", "baseline", SMALL)
        ilar = system.dnn_frame("DispNet", "ilar", SMALL)
        assert ilar.macs < base.macs

    def test_cache_returns_same_object(self, system):
        a = system.dnn_frame("DispNet", "ilar", SMALL)
        b = system.dnn_frame("DispNet", "ilar", SMALL)
        assert a is b


class TestNonKeyFrame:
    def test_cost_positive(self, system):
        res = system.nonkey_frame(SMALL)
        assert res.cycles > 0 and res.energy_j > 0

    def test_much_cheaper_than_dnn(self, system):
        nonkey = system.nonkey_frame(SMALL)
        key = system.dnn_frame("DispNet", "baseline", SMALL)
        assert key.cycles / nonkey.cycles > 5

    def test_scales_with_resolution(self, system):
        small = system.nonkey_frame((100, 200))
        big = system.nonkey_frame((200, 400))
        assert 2.0 < big.cycles / small.cycles < 8.0

    def test_config_radius_increases_cost(self, system):
        narrow = system.nonkey_frame(SMALL, ISMConfig(search_radius=2))
        wide = system.nonkey_frame(SMALL, ISMConfig(search_radius=8))
        assert wide.macs > narrow.macs


class TestFrameCost:
    def test_pw1_equals_dnn(self, system):
        dnn = system.dnn_frame("DispNet", "ilar", SMALL)
        cost = system.frame_cost("DispNet", use_ism=True, mode="ilar",
                                 pw=1, size=SMALL)
        assert cost.cycles == dnn.cycles

    def test_larger_pw_is_cheaper(self, system):
        costs = [
            system.frame_cost("DispNet", use_ism=True, mode="ilar",
                              pw=pw, size=SMALL).cycles
            for pw in (1, 2, 4, 8)
        ]
        assert costs == sorted(costs, reverse=True)

    def test_fps_seconds_consistent(self, system):
        cost = system.frame_cost("DispNet", use_ism=False, mode="baseline",
                                 size=SMALL)
        assert cost.fps(ASV_BASE) == pytest.approx(
            1.0 / cost.seconds(ASV_BASE)
        )

    def test_frame_cost_is_dataclass(self, system):
        cost = system.frame_cost("DispNet", use_ism=False, mode="baseline",
                                 size=SMALL)
        assert isinstance(cost, FrameCost)


class TestSpeedups:
    def test_combined_beats_parts(self, system):
        dco, _ = system.speedup_over_baseline(
            "DispNet", use_ism=False, mode="ilar", size=SMALL
        )
        ism, _ = system.speedup_over_baseline(
            "DispNet", use_ism=True, mode="baseline", size=SMALL
        )
        both, _ = system.speedup_over_baseline(
            "DispNet", use_ism=True, mode="ilar", size=SMALL
        )
        assert both > max(dco, ism) > 1.0

    def test_energy_reduction_fraction(self, system):
        _, er = system.speedup_over_baseline(
            "DispNet", use_ism=True, mode="ilar", size=SMALL
        )
        assert 0.0 < er < 1.0

    def test_ism_speedup_bounded_by_pw(self, system):
        sp, _ = system.speedup_over_baseline(
            "DispNet", use_ism=True, mode="baseline", pw=4, size=SMALL
        )
        assert sp <= 4.0  # can never beat the key-frame dilution bound
