"""Tests for the per-layer profiler and the CLI entry point."""

import pytest

from repro.evaluation.__main__ import FIGURES, main
from repro.evaluation.profiling import format_profile, profile_network

SMALL = (135, 240)


class TestProfiler:
    def test_baseline_profile(self):
        profiles = profile_network("FlowNetC", "baseline", size=SMALL)
        assert profiles
        assert sum(p.cycle_share_pct for p in profiles) == pytest.approx(100.0)

    def test_deconvs_tagged(self):
        profiles = profile_network("FlowNetC", "baseline", size=SMALL)
        assert any(p.is_deconv for p in profiles)
        assert any(not p.is_deconv for p in profiles)

    def test_deconv_share_drops_after_transformation(self):
        """The point of the whole exercise, per layer."""
        base = profile_network("FlowNetC", "baseline", size=SMALL)
        opt = profile_network("FlowNetC", "ilar", size=SMALL)
        share = lambda ps: sum(p.cycle_share_pct for p in ps if p.is_deconv)
        assert share(opt) < share(base)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            profile_network("FlowNetC", "turbo", size=SMALL)

    def test_format_contains_total(self):
        profiles = profile_network("DispNet", "baseline", size=SMALL)
        text = format_profile("DispNet", "baseline", profiles)
        assert "TOTAL deconv share" in text


class TestCLI:
    def test_figure_registry_complete(self):
        for fig in ("fig1", "fig3", "fig4", "fig9", "fig10", "fig11",
                    "fig12", "fig13", "fig14", "overhead"):
            assert fig in FIGURES

    def test_unknown_figure_rejected(self, capsys):
        assert main(["figZZ"]) == 2
        assert "unknown figures" in capsys.readouterr().out

    def test_single_cheap_figure_runs(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Bumblebee2" in out and "[fig4" in out

    def test_profile_subcommand(self, capsys):
        assert main(["profile", "DispNet", "dct"]) == 0
        assert "Per-layer profile" in capsys.readouterr().out
