"""Deadline-aware frame scheduling across the serving stack.

Covers the scheduler registry, the pinned bit-exact FIFO regression,
the QoS disciplines (EDF / priority / shed) on hand-computable stub
backends and on an overloaded accelerator mix, the queue-wait vs
service-time breakdown, deadline accounting under mode degradation,
the deadline-aware placement policy, and the ``plan_keys`` forced-key
state-sync fix.
"""

import numpy as np
import pytest

from repro.backends import BackendCapabilities, ExecutionBackend, get_backend
from repro.cluster import ClusterEngine, DeadlineAwarePolicy, get_policy
from repro.core.keyframe import MotionAdaptivePolicy
from repro.hw.energy import EnergyBreakdown
from repro.hw.systolic import LayerResult, RunResult
from repro.pipeline import (
    FrameCoster,
    FrameScheduler,
    FrameStream,
    StreamEngine,
    available_schedulers,
    get_scheduler,
    plan_keys,
    register_scheduler,
)

TINY = (68, 120)
SCHEDULERS = ("fifo", "edf", "priority", "shed")

# ----------------------------------------------------------------------
# pinned seed values: FrameCoster.serve on "systolic" before the
# scheduler refactor (PR 3).  The fifo discipline must reproduce these
# bit-exactly, through StreamEngine and a 1-backend ClusterEngine.
# ----------------------------------------------------------------------
PINNED_MAKESPAN_S = 0.36687891266666667
PINNED_BUSY_S = 0.037708874999999996
PINNED_LATENCIES_CAM0 = (
    0.00458476, 0.00010612299999999963, 0.00010612299999999963,
    0.00010612299999999963, 0.004584759999999993, 0.00010612300000001351,
    0.00010612300000001351, 0.00010612300000001351, 0.004584760000000021,
    0.00010612300000001351, 0.00010612300000001351, 0.00010612300000001351,
)
PINNED_LATENCIES_CAM1 = (
    0.008311885, 0.00021224599999999927, 0.0038332479999999974,
    0.00021224599999999927, 0.008311884999999991, 0.00021224600000002702,
    0.0038332480000000113, 0.00021224600000002702, 0.008311885000000019,
    0.00021224600000002702, 0.0038332480000000113, 0.00021224600000002702,
)


def _pinned_streams():
    return [
        FrameStream("cam0", size=TINY, n_frames=12, mode="baseline", pw=4),
        FrameStream("cam1", size=TINY, n_frames=12, mode="baseline", pw=2,
                    network="FlowNetC"),
    ]


def _overloaded_mix(n_frames=40, fps=60.0):
    """~1.1x overload on systolic: 4 tight-deadline + 4 loose streams."""
    tight = [
        FrameStream(f"hud{i}", size=TINY, n_frames=n_frames, fps=fps,
                    mode="baseline", pw=2, deadline_s=0.008, priority=1)
        for i in range(4)
    ]
    loose = [
        FrameStream(f"log{i}", size=TINY, n_frames=n_frames, fps=fps,
                    mode="baseline", pw=2, deadline_s=0.6)
        for i in range(4)
    ]
    return tight + loose


class _ClockBackend(ExecutionBackend):
    """A 1 Hz stub: cycles read directly as seconds, so service times
    and deadline arithmetic are hand-computable integers."""

    name = "clock-stub"
    frequency_hz = 1.0

    def __init__(self, capabilities=None, key_cycles=4, nonkey_cycles=1):
        super().__init__()
        if capabilities is not None:
            self.capabilities = capabilities
        self.key_cycles = key_cycles
        self.nonkey_cycles = nonkey_cycles
        self.modes_run: list[str] = []

    def _layer(self, name, cycles):
        return LayerResult(
            name=name, cycles=cycles, compute_cycles=cycles,
            memory_cycles=0, macs=cycles, dram_bytes=0, sram_bytes=0,
            energy=EnergyBreakdown(),
        )

    def run_network(self, specs, mode="baseline"):
        self.require_mode(mode)
        self.modes_run.append(mode)
        return RunResult([self._layer("stub-net", self.key_cycles)])

    def nonkey_frame(self, size=TINY, config=None):
        return self._layer("stub-nonkey", self.nonkey_cycles)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert set(SCHEDULERS) <= set(available_schedulers())
        for name in SCHEDULERS:
            assert get_scheduler(name).name == name

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            get_scheduler("lottery")
        with pytest.raises(ValueError, match="unknown scheduler"):
            StreamEngine("gpu", scheduler="lottery")

    def test_custom_scheduler_plugs_in(self):
        @register_scheduler("test-lifo")
        class LifoScheduler(FrameScheduler):
            name = "test-lifo"

            def select(self, ready, now_s):
                return self.stream_heads(ready)[-1]

        try:
            report = StreamEngine("gpu", scheduler="test-lifo").run(
                [FrameStream("cam", size=TINY, n_frames=4)]
            )
            assert report.scheduler == "test-lifo"
            assert report.total_frames == 4
        finally:
            from repro.pipeline import schedulers
            schedulers._REGISTRY.pop("test-lifo")

    def test_engines_accept_instances(self):
        sched = get_scheduler("edf")
        assert StreamEngine("gpu", scheduler=sched).scheduler is sched
        assert ClusterEngine(["gpu"], scheduler=sched).scheduler is sched

    def test_select_receives_the_dispatch_instant(self):
        """Custom time-aware disciplines see the decision time: the
        server-free time, or the arrival instant after an idle jump."""
        seen = []

        class Recording(FrameScheduler):
            name = "test-recording"

            def select(self, ready, now_s):
                seen.append(now_s)
                return 0

        backend = _ClockBackend(key_cycles=1)
        # 0.1 fps: frame 1 arrives at t=10, long after frame 0's
        # service ends at t=1 — the second decision happens at t=10
        streams = [FrameStream("a", size=TINY, n_frames=2, fps=0.1, pw=1,
                               mode="baseline")]
        FrameCoster(backend).serve(streams, scheduler=Recording())
        assert seen == [0.0, 10.0]


# ----------------------------------------------------------------------
# fifo: the pinned bit-exact regression
# ----------------------------------------------------------------------
class TestFifoRegression:
    def test_coster_serve_matches_pinned_seed_values(self):
        out = FrameCoster(get_backend("systolic")).serve(_pinned_streams())
        assert out.scheduler == "fifo"
        assert out.makespan_s == PINNED_MAKESPAN_S
        assert out.busy_s == PINNED_BUSY_S
        assert out.key_counts == (3, 6)
        assert out.total_frames == 24
        assert out.latencies_s[0] == PINNED_LATENCIES_CAM0
        assert out.latencies_s[1] == PINNED_LATENCIES_CAM1
        assert out.dropped_frames == (0, 0)
        assert out.deadline_miss_rate == 0.0  # no deadlines set

    def test_stream_engine_fifo_matches_pinned_seed_values(self):
        report = StreamEngine("systolic", scheduler="fifo").run(
            _pinned_streams())
        assert report.makespan_s == PINNED_MAKESPAN_S
        assert report.busy_s == PINNED_BUSY_S

    def test_one_backend_cluster_fifo_matches_pinned_seed_values(self):
        report = ClusterEngine(["systolic"], policy="round-robin",
                               scheduler="fifo").run(_pinned_streams())
        assert report.makespan_s == PINNED_MAKESPAN_S
        assert report.shards[0].report.busy_s == PINNED_BUSY_S

    def test_explicit_fifo_equals_default(self):
        streams = _pinned_streams()
        default = FrameCoster(get_backend("systolic")).serve(streams)
        explicit = FrameCoster(get_backend("systolic")).serve(
            streams, scheduler="fifo")
        assert default == explicit


# ----------------------------------------------------------------------
# wait vs service breakdown
# ----------------------------------------------------------------------
class TestWaitServiceBreakdown:
    def test_latency_decomposes_into_wait_plus_service(self):
        out = FrameCoster(get_backend("systolic")).serve(_pinned_streams())
        total_service = 0.0
        for lats, waits, services in zip(
            out.latencies_s, out.waits_s, out.services_s
        ):
            assert len(lats) == len(waits) == len(services)
            for lat, wait, service in zip(lats, waits, services):
                assert wait >= 0.0 and service > 0.0
                assert lat == pytest.approx(wait + service, abs=1e-12)
            total_service += sum(services)
        assert total_service == pytest.approx(out.busy_s)

    def test_report_exposes_mean_wait(self):
        # an overloaded run queues: waiting dominates the latency
        report = StreamEngine("systolic").run(_overloaded_mix(n_frames=20))
        waits = [s.mean_wait_ms for s in report.streams]
        assert all(w > 0 for w in waits)
        for s in report.streams:
            assert s.mean_wait_ms < s.mean_ms


# ----------------------------------------------------------------------
# the QoS disciplines, hand-computable on the 1 Hz clock stub
# ----------------------------------------------------------------------
class TestEdf:
    def test_edf_serves_urgent_stream_first(self):
        # service = 1s each, frame period 1s; B's deadline is tight
        backend = _ClockBackend(key_cycles=1)
        streams = [
            FrameStream("a", size=TINY, n_frames=2, fps=1.0, pw=1,
                        mode="baseline", deadline_s=10.0),
            FrameStream("b", size=TINY, n_frames=2, fps=1.0, pw=1,
                        mode="baseline", deadline_s=1.5),
        ]
        fifo = FrameCoster(backend).serve(streams, scheduler="fifo")
        # FIFO: a0 done@1, b0 done@2 (miss), a1 done@3, b1 done@4 (miss)
        assert fifo.missed_deadlines == (0, 2)
        assert fifo.worst_lateness_s == (0.0, 1.5)
        edf = FrameCoster(_ClockBackend(key_cycles=1)).serve(
            streams, scheduler="edf")
        # EDF: b0 done@1, b1 (d2.5, arrived @1) beats a0 (d10) -> done@2,
        # then a0 done@3, a1 done@4 — every deadline met
        assert edf.missed_deadlines == (0, 0)
        assert edf.latencies_s[1] == (1.0, 1.0)
        assert edf.worst_lateness_s == (0.0, 0.0)

    def test_edf_without_deadlines_degenerates_to_fifo(self):
        streams = _pinned_streams()
        fifo = FrameCoster(get_backend("systolic")).serve(
            streams, scheduler="fifo")
        edf = FrameCoster(get_backend("systolic")).serve(
            streams, scheduler="edf")
        assert edf.latencies_s == fifo.latencies_s
        assert edf.makespan_s == fifo.makespan_s


class TestPriority:
    def test_high_priority_stream_jumps_the_queue(self):
        backend = _ClockBackend(key_cycles=1)
        streams = [
            FrameStream("lo", size=TINY, n_frames=2, fps=1.0, pw=1,
                        mode="baseline", priority=0),
            FrameStream("hi", size=TINY, n_frames=2, fps=1.0, pw=1,
                        mode="baseline", priority=5),
        ]
        out = FrameCoster(backend).serve(streams, scheduler="priority")
        # hi wins every decision: hi0 done@1, hi1 (arrived @1) done@2,
        # then lo0 done@3, lo1 done@4
        assert out.waits_s[1] == (0.0, 0.0)
        assert out.latencies_s[1] == (1.0, 1.0)
        assert out.latencies_s[0] == (3.0, 3.0)

    def test_key_frames_break_priority_ties(self):
        backend = _ClockBackend(key_cycles=1, nonkey_cycles=1)
        streams = [
            FrameStream("a", size=TINY, n_frames=2, fps=1.0, pw=2,
                        mode="baseline"),   # keys: [T, F]
            FrameStream("b", size=TINY, n_frames=2, fps=1.0, pw=1,
                        mode="baseline"),   # keys: [T, T]
        ]
        out = FrameCoster(backend).serve(streams, scheduler="priority")
        # t0: a0/b0 both key -> arrival order, a0 done@1; then b0 (key)
        # beats a1 (non-key), and so does b1 once b0 finishes
        assert out.latencies_s[1] == (2.0, 2.0)   # b0 done@2, b1 done@3
        assert out.latencies_s[0] == (1.0, 3.0)   # a0 done@1, a1 done@4

    def test_streams_never_reorder_internally(self):
        # stream a: non-key frame 1 arrives before its own key frame 2
        # (pw=2 over 3 frames: T F T); priority must not serve frame 2
        # before frame 1 even though key frames win ties
        backend = _ClockBackend(key_cycles=2, nonkey_cycles=1)
        streams = [FrameStream("a", size=TINY, n_frames=3, fps=1.0, pw=2,
                               mode="baseline")]
        out = FrameCoster(backend).serve(streams, scheduler="priority")
        # served strictly in frame order: 0(key,2s), 1(nonkey,1s), 2(key,2s)
        assert out.services_s[0] == (2.0, 1.0, 2.0)


class TestShed:
    def test_drop_on_late_and_rekey(self):
        # keys planned [T, F, F]; service: key 4s, nonkey 1s; period 1s;
        # deadline 2s.  frame0 done@4 (late).  frame1 would start @4 >
        # deadline 3 -> dropped, chain broken.  frame2 was planned
        # non-key but must re-key: served as a key frame.
        backend = _ClockBackend(key_cycles=4, nonkey_cycles=1)
        streams = [FrameStream("cam", size=TINY, n_frames=3, fps=1.0, pw=3,
                               mode="baseline", deadline_s=2.0)]
        out = FrameCoster(backend).serve(streams, scheduler="shed")
        assert out.dropped_frames == (1,)
        assert out.total_frames == 2
        assert out.key_counts == (2,)          # planned 1 key, re-key adds 1
        assert out.services_s[0] == (4.0, 4.0)  # both served at key cost
        # frame0 late by 2, frame2 done@8 vs deadline 4 -> late by 4;
        # misses: 2 late completions + 1 drop
        assert out.missed_deadlines == (3,)
        assert out.worst_lateness_s == (4.0,)
        assert out.drop_rate == pytest.approx(1 / 3)
        assert out.deadline_miss_rate == 1.0

    def test_key_frames_are_never_dropped(self):
        # every frame key (pw=1) and hopelessly late: nothing sheds
        backend = _ClockBackend(key_cycles=4)
        streams = [FrameStream("cam", size=TINY, n_frames=4, fps=1.0, pw=1,
                               mode="baseline", deadline_s=0.5)]
        out = FrameCoster(backend).serve(streams, scheduler="shed")
        assert out.dropped_frames == (0,)
        assert out.total_frames == 4

    def test_all_nonkey_frames_dropped_stream_still_reported(self):
        # one key then a long-late tail: the report survives streams
        # whose served latencies are sparse
        backend = _ClockBackend(key_cycles=8, nonkey_cycles=1)
        report = StreamEngine(backend, scheduler="shed").run([
            FrameStream("cam", size=TINY, n_frames=3, fps=1.0, pw=2,
                        mode="baseline", deadline_s=1.0),
        ])
        s = report.streams[0]
        assert s.frames + s.dropped_frames == 3
        assert s.offered_frames == 3
        assert report.drop_rate > 0


# ----------------------------------------------------------------------
# the acceptance-criteria overload comparison on a real backend
# ----------------------------------------------------------------------
class TestOverloadedMix:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return {
            name: FrameCoster(get_backend("systolic")).serve(
                _overloaded_mix(), scheduler=name)
            for name in SCHEDULERS
        }

    @staticmethod
    def _p99_ms(outcome):
        lat = np.concatenate(
            [np.asarray(l) for l in outcome.latencies_s if len(l)])
        return 1e3 * float(np.percentile(lat, 99.0))

    def test_edf_misses_fewer_deadlines_than_fifo(self, outcomes):
        assert (outcomes["edf"].deadline_miss_rate
                < outcomes["fifo"].deadline_miss_rate)

    def test_shed_cuts_the_tail_and_reports_drops(self, outcomes):
        assert self._p99_ms(outcomes["shed"]) < self._p99_ms(outcomes["fifo"])
        assert outcomes["shed"].drop_rate > 0.0
        assert outcomes["fifo"].drop_rate == 0.0

    def test_every_discipline_conserves_offered_frames(self, outcomes):
        offered = sum(s.n_frames for s in _overloaded_mix())
        for outcome in outcomes.values():
            assert outcome.offered_frames == offered

    def test_disciplines_are_deterministic(self, outcomes):
        for name, outcome in outcomes.items():
            rerun = FrameCoster(get_backend("systolic")).serve(
                _overloaded_mix(), scheduler=name)
            assert rerun == outcome


# ----------------------------------------------------------------------
# mode degradation x scheduling (satellite): restricted backends stay
# deterministic and the deadline arithmetic stays exact
# ----------------------------------------------------------------------
class TestModeDegradationWithScheduling:
    RESTRICTED = BackendCapabilities(
        supports_dct=True, supports_ilar=False, supports_ism=True)

    def _streams(self):
        return [
            FrameStream("a", size=TINY, n_frames=3, fps=1.0, pw=3,
                        mode="ilar", deadline_s=2.0),
            FrameStream("b", size=TINY, n_frames=3, fps=1.0, pw=1,
                        mode="ilar", deadline_s=6.0),
        ]

    @pytest.mark.parametrize("scheduler", ["edf", "shed"])
    def test_degraded_mode_reaches_backend_under_qos_schedulers(
        self, scheduler
    ):
        backend = _ClockBackend(capabilities=self.RESTRICTED, key_cycles=2)
        FrameCoster(backend).serve(self._streams(), scheduler=scheduler)
        # ilar degrades to dct, scheduled once then cached
        assert backend.modes_run == ["dct"]

    @pytest.mark.parametrize("scheduler", ["edf", "shed"])
    def test_restricted_backend_outcomes_deterministic(self, scheduler):
        def run():
            backend = _ClockBackend(
                capabilities=self.RESTRICTED, key_cycles=2)
            return FrameCoster(backend).serve(
                self._streams(), scheduler=scheduler)

        assert run() == run()

    def test_edf_deadline_accounting_exact_on_restricted_backend(self):
        # key 2s, non-key 1s.  a: keys [T F F] deadlines 2,3,4;
        # b: all key, deadlines 6,7,8.  EDF order by absolute deadline:
        # a0(d2) done@2, a1(d3, arr1) done@3, a2(d4) done@4,
        # b0(d6, arr0) done@6, b1 done@8 (miss by 1), b2 done@10 (miss 2)
        backend = _ClockBackend(capabilities=self.RESTRICTED, key_cycles=2)
        out = FrameCoster(backend).serve(self._streams(), scheduler="edf")
        assert out.latencies_s[0] == (2.0, 2.0, 2.0)
        assert out.missed_deadlines == (0, 2)
        assert out.worst_lateness_s == (0.0, 2.0)
        assert out.makespan_s == 10.0

    def test_ism_less_backend_never_sheds_key_frames(self):
        # without ISM every frame is key, so shed cannot drop anything
        no_ism = BackendCapabilities(
            supports_dct=True, supports_ilar=False, supports_ism=False)
        backend = _ClockBackend(capabilities=no_ism, key_cycles=4)
        out = FrameCoster(backend).serve(
            [FrameStream("cam", size=TINY, n_frames=4, fps=1.0, pw=4,
                         mode="ilar", deadline_s=0.5)],
            scheduler="shed",
        )
        assert out.key_counts == (4,)
        assert out.dropped_frames == (0,)
        assert out.total_frames == 4


# ----------------------------------------------------------------------
# engines and reports carry the QoS accounting through every layer
# ----------------------------------------------------------------------
class TestReportsAcrossLayers:
    def test_stream_engine_report_carries_qos(self):
        report = StreamEngine("systolic", scheduler="shed").run(
            _overloaded_mix(n_frames=20))
        assert report.scheduler == "shed"
        assert report.drop_rate > 0
        assert report.deadline_miss_rate > 0
        assert report.offered_frames == 160
        assert report.worst_lateness_ms > 0
        assert report.dropped_frames == sum(
            s.dropped_frames for s in report.streams)

    def test_cluster_report_aggregates_qos(self):
        report = ClusterEngine(
            ["systolic", "systolic"], policy="deadline-aware",
            scheduler="shed",
        ).run(_overloaded_mix(n_frames=20))
        assert report.scheduler == "shed"
        assert report.offered_frames == 160
        assert report.dropped_frames == sum(
            shard.report.dropped_frames for shard in report.shards)
        assert report.missed_deadlines == sum(
            shard.report.missed_deadlines for shard in report.shards)
        assert 0.0 <= report.drop_rate <= report.deadline_miss_rate <= 1.0

    def test_sharding_relieves_overload(self):
        # the same overloaded mix spread over two shards meets more
        # deadlines than on one backend
        one = ClusterEngine(["systolic"], scheduler="edf").run(
            _overloaded_mix(n_frames=20))
        two = ClusterEngine(["systolic", "systolic"],
                            policy="deadline-aware", scheduler="edf").run(
            _overloaded_mix(n_frames=20))
        assert two.deadline_miss_rate < one.deadline_miss_rate


# ----------------------------------------------------------------------
# deadline-aware placement
# ----------------------------------------------------------------------
class TestDeadlineAwarePlacement:
    def test_registered(self):
        assert get_policy("deadline-aware").name == "deadline-aware"

    def test_spreads_tight_deadline_streams(self):
        # two tight + two loose: raw demand is identical, pressure is
        # not — each shard gets one tight and one loose stream
        streams = [
            FrameStream("tight0", size=TINY, fps=30.0, deadline_s=1 / 120.0),
            FrameStream("tight1", size=TINY, fps=30.0, deadline_s=1 / 120.0),
            FrameStream("loose0", size=TINY, fps=30.0),
            FrameStream("loose1", size=TINY, fps=30.0),
        ]
        engine = ClusterEngine(["gpu", "gpu"], policy="deadline-aware")
        placement = engine.place(streams)
        assert placement[:2] == [0, 1]
        assert sorted(placement) == [0, 0, 1, 1]

    def test_without_deadlines_matches_least_loaded(self):
        streams = [FrameStream(f"cam{i}", size=TINY, n_frames=4)
                   for i in range(5)]
        costers = [FrameCoster(get_backend("gpu")) for _ in range(3)]
        assert (DeadlineAwarePolicy().assign(streams, costers)
                == get_policy("least-loaded").assign(streams, costers))

    def test_pressure_requires_positive_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            FrameStream("cam", deadline_s=0.0)
        with pytest.raises(ValueError, match="deadline"):
            FrameStream("cam", deadline_s=-1.0)


# ----------------------------------------------------------------------
# plan_keys forced-key state sync (satellite regression)
# ----------------------------------------------------------------------
class _EveryThirdPolicy:
    """Stateful adaptive stand-in that says *non-key* for frame 0:
    keys whenever 3 frames have passed since the last key."""

    def __init__(self):
        self.since_key = 0
        self.forced: list[int] = []

    def is_key(self, index, context=None):
        self.since_key += 1
        if self.since_key >= 3:
            self.since_key = 0
            return True
        return False

    def sync_forced_key(self, index):
        self.forced.append(index)
        self.since_key = 0


class TestPlanKeysForcedKeySync:
    def test_forced_key_resyncs_stateful_policy(self):
        stream = FrameStream("cam", size=TINY, n_frames=6,
                             policy_factory=_EveryThirdPolicy)
        plan = plan_keys(stream)
        # with the sync hook the forced key at 0 restarts the policy's
        # key clock: a regular every-3rd cadence from frame 0, instead
        # of the desynced [T, F, T, F, F, T] the stale state produced
        assert plan == [True, False, False, True, False, False]

    def test_hook_is_called_exactly_for_frame_zero(self):
        policy = _EveryThirdPolicy()
        stream = FrameStream("cam", size=TINY, n_frames=4,
                             policy_factory=lambda: policy)
        plan_keys(stream)
        assert policy.forced == [0]

    def test_policies_without_hook_still_plan(self):
        class NoHook:
            def is_key(self, index, context=None):
                return False  # never keys; frame 0 still forced

        stream = FrameStream("cam", size=TINY, n_frames=3,
                             policy_factory=NoHook)
        assert plan_keys(stream) == [True, False, False]

    def test_motion_adaptive_policy_implements_hook(self):
        policy = MotionAdaptivePolicy(max_window=4)
        policy._since_key = 3
        policy.sync_forced_key(0)
        assert policy._since_key == 0

    def test_served_key_counts_match_synced_plan(self):
        stream = FrameStream("cam", size=TINY, n_frames=6, mode="baseline",
                             policy_factory=_EveryThirdPolicy)
        report = StreamEngine("systolic").run([stream])
        assert report.streams[0].key_frames == 2


# ----------------------------------------------------------------------
# FrameStream deadline plumbing
# ----------------------------------------------------------------------
class TestFrameDeadlines:
    def test_frame_deadline_arithmetic(self):
        stream = FrameStream("cam", fps=10.0, deadline_s=0.05)
        assert stream.frame_deadline(0) == 0.05
        assert stream.frame_deadline(2) == pytest.approx(0.25)

    def test_no_deadline_is_never_late(self):
        assert FrameStream("cam").frame_deadline(7) == float("inf")

    def test_deadline_pressure_scales_demand(self):
        coster = FrameCoster(get_backend("gpu"))
        loose = FrameStream("a", size=TINY, fps=30.0)
        tight = FrameStream("b", size=TINY, fps=30.0, deadline_s=1 / 60.0)
        assert coster.deadline_pressure(loose) == coster.stream_demand(loose)
        assert coster.deadline_pressure(tight) == pytest.approx(
            2 * coster.stream_demand(tight))
