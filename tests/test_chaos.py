"""Deterministic chaos suite: faults, failover, autoscaling.

Every test replays a *pinned* fault schedule through
:class:`~repro.cluster.faults.ChaosClusterEngine` and asserts the
resilience contract the serving stack declares:

* **bounded degradation** — under every injected fault class (crash,
  slowdown, flaky) latency (p99, miss rate) and depth quality
  (bad-pixel rate / EPE) stay inside the envelopes declared at the top
  of this file, during the fault window and after recovery;
* **exact re-key bookkeeping** — a crashed shard's streams migrate and
  their first post-migration served frame is a key frame, pinned in
  the replayed dispositions (the quality probe independently raises on
  any chain violation, so every probed run re-checks the invariant);
* **bit-identical determinism** — identical ``(fault_schedule, seed)``
  inputs render byte-identical cluster reports, run to run.

The final test folds the canonical crash scenario's failover latency
and degraded-window p99 into ``benchmarks/results/BENCH_chaos.json``
(uploaded by CI next to the kernel bench artifact).

``ASV_BENCH_FRAMES`` caps the per-stream frame count so CI can smoke
the suite cheaply (see ``.github/workflows/ci.yml``).
"""

import json
import os
import pathlib

import pytest

from repro.cluster import (
    Autoscaler,
    AutoscalerState,
    ChaosClusterEngine,
    ClusterEngine,
    CrashFault,
    FaultSchedule,
    FlakyFault,
    RetryPolicy,
    SlowdownFault,
    format_cluster_report,
    format_resilience,
)
from repro.pipeline import FrameStream
from repro.pipeline.quality import QualityProbe
from repro.pipeline.stream import sceneflow_stream

TINY = (68, 120)
PIXEL = (48, 64)
N_FRAMES = int(os.environ.get("ASV_BENCH_FRAMES", "12"))
RESULTS_DIR = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"

# the declared degradation envelopes the suite enforces: under any
# single injected fault the fleet may degrade, but boundedly —
# relative to the same fleet serving the same streams fault-free
ENVELOPE = {
    "p99_factor": 4.0,        # chaos p99 <= 4x the fault-free p99
    "miss_rate": 0.35,        # <= 35% of offered frames miss/drop
    "bad_px_penalty": 0.15,   # mean bad-pixel rate +15 points max
    "recovery_factor": 1.5,   # post-window p99 back within 1.5x
}


def _streams(n=4, frames=None, deadline=0.05, **kw):
    kw.setdefault("mode", "baseline")
    return [
        FrameStream(f"cam{i}", size=TINY, n_frames=frames or N_FRAMES,
                    deadline_s=deadline, **kw)
        for i in range(n)
    ]


def _pixel_streams(n=2, frames=8, deadline=0.05):
    return [
        sceneflow_stream(seed=i, size=PIXEL, n_frames=frames,
                         deadline_s=deadline)
        for i in range(n)
    ]


def _probe():
    return QualityProbe(max_disp=16)


# ----------------------------------------------------------------------
# fault model validation
# ----------------------------------------------------------------------
class TestFaultModel:
    def test_crash_rejects_negative_time(self):
        with pytest.raises(ValueError, match="crash time"):
            CrashFault("gpu:0", at_s=-1.0)

    def test_flaky_rejects_certain_failure(self):
        # rate 1.0 + never-dropped key frames would retry forever
        with pytest.raises(ValueError, match="retry forever"):
            FlakyFault("gpu:0", start_s=0.0, duration_s=1.0,
                       failure_rate=1.0)

    def test_slowdown_rejects_empty_window(self):
        with pytest.raises(ValueError, match="window"):
            SlowdownFault("gpu:0", start_s=0.0, duration_s=0.0, factor=2.0)
        with pytest.raises(ValueError, match="factor"):
            SlowdownFault("gpu:0", start_s=0.0, duration_s=1.0, factor=0.0)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout_s=0.0)

    def test_unknown_shard_rejected_at_construction(self):
        schedule = FaultSchedule(faults=(CrashFault("gpu:7", at_s=0.1),))
        with pytest.raises(ValueError, match="unknown shards"):
            ChaosClusterEngine(["gpu", "gpu"], faults=schedule)

    def test_double_crash_rejected(self):
        schedule = FaultSchedule(faults=(
            CrashFault("gpu:0", at_s=0.1),
            CrashFault("gpu:0", at_s=0.2),
        ))
        with pytest.raises(ValueError, match="crash twice"):
            ChaosClusterEngine(["gpu"], faults=schedule).run(_streams(n=1))

    def test_killing_every_replica_is_an_error(self):
        schedule = FaultSchedule(faults=(
            CrashFault("gpu:0", at_s=0.02),
            CrashFault("gpu:1", at_s=0.03),
        ))
        engine = ChaosClusterEngine(["gpu", "gpu"], faults=schedule)
        with pytest.raises(ValueError, match="killed every replica"):
            engine.run(_streams())

    def test_schedule_accessors(self):
        crash = CrashFault("gpu:1", at_s=0.5)
        slow = SlowdownFault("gpu:0", start_s=0.1, duration_s=0.2,
                             factor=2.0)
        flaky = FlakyFault("gpu:0", start_s=0.0, duration_s=1.0,
                           failure_rate=0.25)
        schedule = FaultSchedule(faults=(crash, slow, flaky), seed=9)
        assert schedule.shards() == {"gpu:0", "gpu:1"}
        assert schedule.crashes() == [crash]
        assert schedule.slowdowns_for("gpu:0") == [slow]
        assert schedule.flaky_for("gpu:0") == [flaky]
        assert schedule.flaky_for("gpu:1") == []


# ----------------------------------------------------------------------
# fault-free parity: the chaos loop is an extension, not a fork
# ----------------------------------------------------------------------
class TestFaultFreeParity:
    @pytest.mark.parametrize("discipline", ["fifo", "edf", "priority",
                                            "shed"])
    def test_no_faults_matches_plain_engine(self, discipline):
        streams = _streams(deadline=0.03)
        plain = ClusterEngine(["gpu", "eyeriss"],
                              scheduler=discipline).run(streams)
        chaos = ChaosClusterEngine(["gpu", "eyeriss"],
                                   scheduler=discipline).run(streams)
        assert chaos.placement == plain.placement
        assert chaos.total_frames == plain.total_frames
        assert chaos.makespan_s == plain.makespan_s
        assert chaos.stream_stats == plain.stream_stats

    def test_no_faults_empty_resilience_ledger(self):
        report = ChaosClusterEngine(["gpu"]).run(_streams(n=2))
        res = report.resilience
        assert res.events == ()
        assert res.total_migrations == 0
        assert res.total_retries == 0
        assert res.crashes == 0
        assert res.degraded_windows == ()
        assert res.degraded_p99_ms == 0.0


# ----------------------------------------------------------------------
# crash + failover
# ----------------------------------------------------------------------
class TestCrashFailover:
    SCHEDULE = FaultSchedule(faults=(CrashFault("gpu:1", at_s=0.06),))

    def _run(self, streams=None):
        engine = ChaosClusterEngine(["gpu", "gpu"], policy="round-robin",
                                    faults=self.SCHEDULE)
        return engine.run(streams or _streams())

    def test_streams_migrate_to_survivor(self):
        report = self._run()
        assert all(label == "gpu:0" for _, label in report.placement)
        # no frame is lost to the crash itself: everything offered is
        # served (fifo never drops) even though a shard died mid-run
        assert report.total_frames == 4 * N_FRAMES

    def test_failover_accounting(self):
        res = self._run().resilience
        assert res.crashes == 1
        migrated = [s for s in res.streams if s.migrations]
        untouched = [s for s in res.streams if not s.migrations]
        assert {s.stream for s in migrated} == {"cam1", "cam3"}
        for s in migrated:
            assert s.downtime_s > 0
            assert s.failover_latency_s > 0
            assert s.failover_latency_s <= 0.2  # declared failover SLO
        for s in untouched:
            assert s.downtime_s == 0
            assert s.failover_latency_s == 0
        assert res.worst_failover_latency_s == max(
            s.failover_latency_s for s in res.streams
        )

    def test_crashed_shard_stops_at_crash_instant(self):
        report = self._run()
        dead = next(s for s in report.shards if s.label == "gpu:1")
        assert dead.report.makespan_s <= 0.06
        assert dead.report.busy_s <= 0.06
        # final stats live on the survivor: the dead shard keeps the
        # frames it actually served but carries no stream's history
        assert dead.report.streams == []
        assert dead.report.total_frames > 0

    def test_migrated_streams_rekey(self):
        # the extra key frame the migration forces shows up in the
        # key counts: migrated streams serve one more key than the
        # same run without the fault
        base = ClusterEngine(["gpu", "gpu"],
                             policy="round-robin").run(_streams())
        chaos = self._run()
        base_keys = {s.stream: s.key_frames for s in base.stream_stats}
        for s in chaos.stream_stats:
            expected = base_keys[s.stream]
            if s.stream in ("cam1", "cam3"):
                expected += 1
            assert s.key_frames == expected

    def test_bounded_latency_degradation(self):
        base = ClusterEngine(["gpu", "gpu"],
                             policy="round-robin").run(_streams())
        chaos = self._run()
        assert chaos.worst_p99_ms <= ENVELOPE["p99_factor"] * base.worst_p99_ms
        offered = 4 * N_FRAMES
        missed = sum(s.missed_deadlines for s in chaos.stream_stats)
        assert missed / offered <= ENVELOPE["miss_rate"]

    def test_first_post_migration_frame_is_key_pinned(self):
        # pinned dispositions: sceneflow-0 starts on gpu:0 (pw=4, so
        # planned keys at 0 and 4); the crash at t=0.05 migrates it
        # and the next served frame — frame 2 — is forced key
        schedule = FaultSchedule(faults=(CrashFault("gpu:0", at_s=0.05),))
        engine = ChaosClusterEngine(["gpu", "gpu"], policy="round-robin",
                                    faults=schedule, quality=_probe())
        report = engine.run(_pixel_streams())
        dispositions = {
            s.stream: tuple(f.disposition for f in s.quality.frames)
            for s in report.stream_stats
        }
        assert dispositions["sceneflow-0"] == (
            "key", "nonkey", "key", "nonkey",
            "key", "nonkey", "nonkey", "nonkey",
        )
        # the co-placed stream that never migrated keeps its plan
        assert dispositions["sceneflow-1"] == (
            "key", "nonkey", "nonkey", "nonkey",
            "key", "nonkey", "nonkey", "nonkey",
        )
        events = report.resilience.events_of("migrate")
        assert [e.stream for e in events] == ["sceneflow-0"]

    def test_bounded_quality_degradation(self):
        schedule = FaultSchedule(faults=(CrashFault("gpu:0", at_s=0.05),))
        chaos = ChaosClusterEngine(["gpu", "gpu"], policy="round-robin",
                                   faults=schedule, quality=_probe())
        base = ClusterEngine(["gpu", "gpu"], policy="round-robin",
                             quality=_probe())
        streams = _pixel_streams()
        chaos_q = {s.stream: s.quality
                   for s in chaos.run(streams).stream_stats}
        base_q = {s.stream: s.quality
                  for s in base.run(_pixel_streams()).stream_stats}
        for name, quality in chaos_q.items():
            assert quality.bad_pixel_rate <= (
                base_q[name].bad_pixel_rate + ENVELOPE["bad_px_penalty"]
            )
            assert quality.epe_px <= 2.0 * base_q[name].epe_px


# ----------------------------------------------------------------------
# transient slowdown
# ----------------------------------------------------------------------
class TestSlowdown:
    SCHEDULE = FaultSchedule(faults=(
        SlowdownFault("gpu:0", start_s=0.05, duration_s=0.1, factor=4.0),
    ))

    def _run(self):
        engine = ChaosClusterEngine(["gpu"], faults=self.SCHEDULE)
        return engine.run(_streams())

    def test_window_latency_split(self):
        res = self._run().resilience
        # the fault hurts inside its (drain-extended) window and the
        # fleet recovers outside it
        assert res.degraded_p99_ms > res.steady_p99_ms
        assert len(res.degraded_windows) == 1
        start, end = res.degraded_windows[0]
        assert start == 0.05
        # the envelope outlives the fault: backlog drains after end
        assert end >= 0.15

    def test_no_frames_lost_and_bounded(self):
        base = ClusterEngine(["gpu"]).run(_streams())
        report = self._run()
        assert report.total_frames == 4 * N_FRAMES
        assert sum(s.dropped_frames for s in report.stream_stats) == 0
        assert report.worst_p99_ms <= (
            ENVELOPE["p99_factor"] * base.worst_p99_ms
        )

    def test_recovery_after_window(self):
        res = self._run().resilience
        base = ClusterEngine(["gpu"]).run(_streams())
        # steady-state frames (outside the degraded window) look like
        # the fault never happened, within the declared recovery factor
        assert res.steady_p99_ms <= (
            ENVELOPE["recovery_factor"] * base.worst_p99_ms
        )

    def test_slowdown_never_changes_key_plan(self):
        # slow frames are late, not lost: key counts match fault-free
        base = ClusterEngine(["gpu"]).run(_streams())
        report = self._run()
        assert (
            [s.key_frames for s in report.stream_stats]
            == [s.key_frames for s in base.stream_stats]
        )
        assert report.resilience.total_migrations == 0


# ----------------------------------------------------------------------
# flaky failures with retry / backoff
# ----------------------------------------------------------------------
class TestFlaky:
    def _engine(self, seed=3, rate=0.4, attempts=2):
        schedule = FaultSchedule(
            faults=(FlakyFault("gpu:0", start_s=0.0, duration_s=10.0,
                               failure_rate=rate),),
            seed=seed,
        )
        return ChaosClusterEngine(
            ["gpu"], faults=schedule,
            retry=RetryPolicy(max_attempts=attempts, backoff_s=0.001),
        )

    def test_retries_accounted(self):
        res = self._engine().run(_streams()).resilience
        assert res.total_retries > 0
        assert res.total_retries == sum(s.retries for s in res.streams)
        assert len(res.events_of("flaky-fail")) == res.total_retries

    def test_offered_equals_served_plus_dropped(self):
        report = self._engine().run(_streams())
        served = sum(s.frames for s in report.stream_stats)
        dropped = sum(s.dropped_frames for s in report.stream_stats)
        assert served == report.total_frames
        assert served + dropped == 4 * N_FRAMES
        assert len(report.resilience.events_of("retry-drop")) == dropped

    def test_key_frames_survive_heavy_flakiness(self):
        # drop-after-one-failure and a fierce failure rate: every
        # non-key frame is at risk, but key frames retry until they
        # land — the planned keys are all served
        report = self._engine(rate=0.7, attempts=1).run(_streams())
        base = ClusterEngine(["gpu"]).run(_streams())
        base_keys = {s.stream: s.key_frames for s in base.stream_stats}
        for s in report.stream_stats:
            assert s.key_frames >= base_keys[s.stream]
            assert s.frames >= s.key_frames  # sanity: keys were served

    def test_drop_rekeys_next_frame(self):
        # the quality probe hard-fails if any served frame after a
        # drop is non-key, so a clean probed run is itself the proof
        schedule = FaultSchedule(
            faults=(FlakyFault("gpu:0", start_s=0.0, duration_s=10.0,
                               failure_rate=0.5),),
            seed=5,
        )
        engine = ChaosClusterEngine(
            ["gpu"], faults=schedule,
            retry=RetryPolicy(max_attempts=1, backoff_s=0.001),
            quality=_probe(),
        )
        report = engine.run(_pixel_streams(n=1))
        quality = report.stream_stats[0].quality
        dispositions = [f.disposition for f in quality.frames]
        assert "drop" in dispositions  # the scenario actually dropped
        for i, what in enumerate(dispositions):
            if what == "drop":
                served_after = [d for d in dispositions[i + 1:]
                                if d != "drop"]
                if served_after:
                    assert served_after[0] == "key"

    def test_bounded_degradation(self):
        base = ClusterEngine(["gpu"]).run(_streams())
        report = self._engine().run(_streams())
        assert report.worst_p99_ms <= (
            ENVELOPE["p99_factor"] * base.worst_p99_ms
        )
        offered = 4 * N_FRAMES
        missed = sum(s.missed_deadlines for s in report.stream_stats)
        assert missed / offered <= ENVELOPE["miss_rate"]

    def test_seed_changes_outcomes(self):
        a = self._engine(seed=0).run(_streams()).resilience
        b = self._engine(seed=1).run(_streams()).resilience
        # a different seed redraws every per-attempt coin toss: the
        # failure pattern (which frames fail, when) must change even
        # if the total happens to coincide
        assert (
            [(e.stream, e.detail) for e in a.events_of("flaky-fail")]
            != [(e.stream, e.detail) for e in b.events_of("flaky-fail")]
        )


# ----------------------------------------------------------------------
# autoscaling
# ----------------------------------------------------------------------
class TestAutoscaler:
    def test_desired_replicas_matches_planner_sizing(self):
        scaler = Autoscaler(high_pressure=0.9, max_replicas=8)
        assert scaler.desired_replicas(0.0) == 1
        assert scaler.desired_replicas(0.9) == 1
        assert scaler.desired_replicas(2.2) == 3
        assert scaler.desired_replicas(100.0) == 8

    def test_hysteresis_holds_before_scaling(self):
        state = AutoscalerState(Autoscaler(up_hold=3))
        assert state.observe(5.0, n_replicas=1) is None
        assert state.observe(5.0, n_replicas=1) is None
        assert state.observe(5.0, n_replicas=1) == "up"
        # the decision resets the counter: the next hot interval
        # starts the hold from scratch
        assert state.observe(5.0, n_replicas=2) is None

    def test_dead_band_resets_counters(self):
        state = AutoscalerState(Autoscaler(up_hold=2, high_pressure=0.8,
                                           low_pressure=0.3))
        assert state.observe(5.0, n_replicas=1) is None
        assert state.observe(0.5, n_replicas=1) is None  # inside band
        assert state.observe(5.0, n_replicas=1) is None  # hold restarts
        assert state.observe(5.0, n_replicas=1) == "up"

    def test_fleet_bounds_bind(self):
        state = AutoscalerState(Autoscaler(up_hold=1, down_hold=1,
                                           min_replicas=1, max_replicas=2))
        assert state.observe(9.0, n_replicas=2) is None  # at the ceiling
        assert state.observe(0.0, n_replicas=1) is None  # at the floor

    def test_config_validation(self):
        with pytest.raises(ValueError, match="dead band"):
            Autoscaler(low_pressure=0.9, high_pressure=0.8)
        with pytest.raises(ValueError, match="hold counts"):
            Autoscaler(up_hold=0)
        with pytest.raises(ValueError, match="min_replicas"):
            Autoscaler(min_replicas=5, max_replicas=2)

    def test_scales_up_after_crash_overload(self):
        # losing a shard doubles the survivor's pressure past the
        # watermark; the autoscaler buys a replacement replica
        schedule = FaultSchedule(faults=(CrashFault("gpu:0", at_s=0.02),))
        engine = ChaosClusterEngine(
            ["gpu", "gpu"], faults=schedule,
            autoscaler=Autoscaler(up_hold=1, interval_s=0.03,
                                  max_replicas=4),
        )
        report = engine.run(_streams(n=8, frames=16, deadline=0.01))
        res = report.resilience
        assert res.replicas_added >= 1
        ups = res.events_of("scale-up")
        assert ups and ups[0].shard == "gpu:2"
        assert report.total_frames == 8 * 16

    def test_scale_down_drains_idle_replicas(self):
        engine = ChaosClusterEngine(
            ["gpu", "gpu", "gpu"],
            autoscaler=Autoscaler(down_hold=1, interval_s=0.02,
                                  low_pressure=0.5),
        )
        report = engine.run(_streams(n=2, frames=16))
        res = report.resilience
        assert res.replicas_removed >= 1
        assert report.total_frames == 2 * 16
        downs = res.events_of("scale-down")
        assert downs
        retired = {e.shard for e in downs}
        assert all(label not in retired for _, label in report.placement)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    SCHEDULE = FaultSchedule(
        faults=(
            CrashFault("gpu:1", at_s=0.06),
            SlowdownFault("gpu:0", start_s=0.02, duration_s=0.05,
                          factor=3.0),
            FlakyFault("gpu:0", start_s=0.0, duration_s=10.0,
                       failure_rate=0.3),
        ),
        seed=42,
    )

    def _render(self, scheduler="fifo"):
        engine = ChaosClusterEngine(
            ["gpu", "gpu"], policy="round-robin", scheduler=scheduler,
            faults=self.SCHEDULE,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.001),
        )
        return format_cluster_report(engine.run(_streams()))

    @pytest.mark.parametrize("discipline", ["fifo", "edf", "shed"])
    def test_identical_inputs_render_identically(self, discipline):
        assert self._render(discipline) == self._render(discipline)

    def test_resilience_section_rendered(self):
        text = self._render()
        assert "Resilience" in text
        assert "failover ms" in text
        assert "degraded-window p99" in text
        assert format_resilience(None) == ""


# ----------------------------------------------------------------------
# CI artifact: failover latency + degraded-window p99
# ----------------------------------------------------------------------
class TestBenchArtifact:
    def test_writes_chaos_bench_json(self):
        schedule = FaultSchedule(faults=(CrashFault("gpu:1", at_s=0.06),))
        engine = ChaosClusterEngine(["gpu", "gpu"], policy="round-robin",
                                    faults=schedule)
        res = engine.run(_streams()).resilience
        report = {
            "n_streams": 4,
            "n_frames": N_FRAMES,
            "fault": "crash gpu:1 @ 60ms",
            "failover_latency_ms": 1e3 * res.worst_failover_latency_s,
            "degraded_p99_ms": res.degraded_p99_ms,
            "steady_p99_ms": res.steady_p99_ms,
            "migrations": res.total_migrations,
            "degraded_windows_s": [list(w) for w in res.degraded_windows],
        }
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "BENCH_chaos.json"
        path.write_text(json.dumps(report, indent=2) + "\n")
        on_disk = json.loads(path.read_text())
        assert on_disk["failover_latency_ms"] > 0
        assert on_disk["migrations"] == 2
