"""Tests for layer objects and the Sequential container."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Conv,
    Deconv,
    LeakyReLU,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.workload import Stage


class TestConvLayer:
    def test_forward_shape(self):
        layer = Conv(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        x = np.zeros((3, 16, 16))
        out = layer(x)
        assert out.shape == (8, 8, 8)
        assert layer.output_shape((3, 16, 16)) == (8, 8, 8)

    def test_bias_added(self):
        w = np.zeros((2, 1, 1, 1))
        layer = Conv(1, 2, 1, weight=w, bias=np.array([1.0, -2.0]))
        out = layer(np.zeros((1, 3, 3)))
        assert np.allclose(out[0], 1.0) and np.allclose(out[1], -2.0)

    def test_weight_shape_validated(self):
        with pytest.raises(ValueError):
            Conv(3, 8, 3, weight=np.zeros((8, 3, 5, 5)))

    def test_channel_mismatch_raises(self):
        layer = Conv(3, 8, 3)
        with pytest.raises(ValueError):
            layer.output_shape((4, 16, 16))

    def test_spec_roundtrip(self):
        layer = Conv(3, 8, 5, stride=2, padding=2, name="c1", stage=Stage.MO)
        spec = layer.spec((20, 20))
        assert spec.name == "c1"
        assert spec.stage == Stage.MO
        assert spec.output_size == layer.output_shape((3, 20, 20))[1:]

    def test_conv3d_layer(self):
        layer = Conv(2, 4, (3, 3, 3), padding=1, rng=np.random.default_rng(1))
        out = layer(np.zeros((2, 4, 6, 8)))
        assert out.shape == (4, 4, 6, 8)


class TestDeconvLayer:
    def test_forward_shape(self):
        layer = Deconv(4, 2, 4, stride=2, padding=1, rng=np.random.default_rng(0))
        out = layer(np.zeros((4, 8, 8)))
        assert out.shape == (2, 16, 16)
        assert layer.output_shape((4, 8, 8)) == (2, 16, 16)

    def test_default_stage_is_dr(self):
        layer = Deconv(4, 2, 4, stride=2, padding=1)
        assert layer.spec((8, 8)).stage == Stage.DR
        assert layer.spec((8, 8)).deconv

    def test_output_padding(self):
        layer = Deconv(1, 1, 3, stride=2, padding=1, output_padding=1)
        assert layer.output_shape((1, 5, 5)) == (1, 10, 10)


class TestActivationsAndNorm:
    def test_relu_layer(self):
        assert np.array_equal(ReLU()(np.array([-1.0, 1.0])), [0.0, 1.0])

    def test_leaky_relu_layer(self):
        assert np.allclose(LeakyReLU(0.2)(np.array([-5.0])), [-1.0])

    def test_sigmoid_tanh_layers(self):
        x = np.array([0.0])
        assert np.isclose(Sigmoid()(x)[0], 0.5)
        assert np.isclose(Tanh()(x)[0], 0.0)

    def test_activation_preserves_shape(self):
        for layer in (ReLU(), LeakyReLU(), Sigmoid(), Tanh()):
            assert layer.output_shape((3, 5, 7)) == (3, 5, 7)

    def test_batchnorm_channel_check(self):
        bn = BatchNorm(4)
        with pytest.raises(ValueError):
            bn(np.zeros((3, 2, 2)))

    def test_batchnorm_identity_stats(self):
        bn = BatchNorm(2)
        x = np.random.default_rng(0).normal(size=(2, 4, 4))
        assert np.allclose(bn(x), x)


class TestSequential:
    def _small_net(self):
        rng = np.random.default_rng(0)
        return Sequential(
            [
                Conv(1, 4, 3, stride=2, padding=1, name="enc", rng=rng),
                ReLU(),
                Deconv(4, 1, 4, stride=2, padding=1, name="dec", rng=rng),
            ],
            name="tiny",
        )

    def test_forward_and_shape_agree(self):
        net = self._small_net()
        x = np.random.default_rng(1).normal(size=(1, 16, 16))
        out = net(x)
        assert out.shape == net.output_shape((1, 16, 16))
        assert out.shape == (1, 16, 16)

    def test_conv_specs_collects_convs_only(self):
        net = self._small_net()
        specs = net.conv_specs((1, 16, 16))
        assert [s.name for s in specs] == ["enc", "dec"]
        assert specs[0].input_size == (16, 16)
        assert specs[1].input_size == (8, 8)
        assert specs[1].deconv

    def test_summary_mentions_layers(self):
        net = self._small_net()
        text = net.summary((1, 16, 16))
        assert "enc" in text and "dec" in text and "MACs" in text
