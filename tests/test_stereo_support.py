"""Tests for refinement, triangulation, metrics and matcher internals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stereo import (
    BUMBLEBEE2,
    StereoCamera,
    end_point_error,
    error_rate,
    fill_invalid,
    left_right_check,
    median_clean,
    three_pixel_error,
)
from repro.stereo.elas import interpolate_prior, support_points
from repro.stereo.refine import fill_background
from repro.stereo.seeds import grow_seeds


class TestTriangulation:
    def test_bumblebee2_constants(self):
        assert BUMBLEBEE2.baseline_m == 0.120
        assert BUMBLEBEE2.focal_length_m == 2.5e-3
        assert BUMBLEBEE2.pixel_size_m == 7.4e-6

    def test_depth_disparity_roundtrip(self):
        depths = np.array([1.0, 5.0, 10.0, 30.0])
        disp = BUMBLEBEE2.disparity_from_depth(depths)
        back = BUMBLEBEE2.depth_from_disparity(disp)
        assert np.allclose(back, depths)

    @settings(max_examples=40, deadline=None)
    @given(depth=st.floats(0.5, 100.0))
    def test_roundtrip_property(self, depth):
        d = BUMBLEBEE2.disparity_from_depth(depth)
        assert float(BUMBLEBEE2.depth_from_disparity(d)) == pytest.approx(depth)

    def test_zero_disparity_is_infinite_depth(self):
        assert BUMBLEBEE2.depth_from_disparity(0.0) == np.inf

    def test_nearer_means_larger_disparity(self):
        d_near = BUMBLEBEE2.disparity_from_depth(2.0)
        d_far = BUMBLEBEE2.disparity_from_depth(20.0)
        assert d_near > d_far

    def test_depth_error_grows_quadratically(self):
        e10 = BUMBLEBEE2.depth_error(10.0, 0.1)
        e20 = BUMBLEBEE2.depth_error(20.0, 0.1)
        assert 3.0 < float(e20 / e10) < 5.0  # ~(20/10)^2 to first order

    def test_paper_headline(self):
        """0.2 px error at moderate range costs 0.5-5 m (Sec. 2.2)."""
        errs = [float(BUMBLEBEE2.depth_error(d, 0.2)) for d in (10, 15, 30)]
        assert 0.4 < errs[0] < 1.0
        assert 2.5 < errs[2] < 5.5

    def test_invalid_camera_raises(self):
        with pytest.raises(ValueError):
            StereoCamera(0.0, 1e-3, 1e-6)


class TestMetrics:
    def test_perfect_prediction(self):
        gt = np.full((8, 8), 5.0)
        assert three_pixel_error(gt, gt) == 0.0
        assert end_point_error(gt, gt) == 0.0

    def test_all_wrong(self):
        gt = np.full((8, 8), 5.0)
        assert three_pixel_error(gt + 10.0, gt) == 1.0

    def test_threshold_boundary(self):
        gt = np.zeros((4, 4))
        assert three_pixel_error(gt + 2.99, gt) == 0.0
        assert three_pixel_error(gt + 3.0, gt) == 1.0

    def test_error_rate_is_percentage(self):
        gt = np.zeros((2, 2))
        pred = np.array([[0.0, 0.0], [10.0, 10.0]])
        assert error_rate(pred, gt) == pytest.approx(50.0)

    def test_valid_mask_respected(self):
        gt = np.zeros((2, 2))
        pred = np.array([[0.0, 10.0], [0.0, 0.0]])
        valid = np.array([[True, False], [True, True]])
        assert three_pixel_error(pred, gt, valid) == 0.0

    def test_nan_gt_excluded(self):
        gt = np.array([[np.nan, 0.0]])
        pred = np.array([[99.0, 0.0]])
        assert three_pixel_error(pred, gt) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            three_pixel_error(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_no_valid_pixels_raises(self):
        gt = np.full((2, 2), np.nan)
        with pytest.raises(ValueError):
            three_pixel_error(np.zeros((2, 2)), gt)


class TestLeftRightCheck:
    def test_consistent_maps_pass(self):
        dl = np.full((6, 20), 4.0)
        dr = np.full((6, 20), 4.0)
        mask = left_right_check(dl, dr)
        assert mask[:, :-4].all()

    def test_inconsistent_fails(self):
        dl = np.full((6, 20), 4.0)
        dr = np.full((6, 20), 9.0)
        assert not left_right_check(dl, dr).any()

    def test_out_of_frame_fails(self):
        dl = np.full((4, 10), 50.0)  # correspondence beyond image edge
        dr = np.full((4, 10), 50.0)
        assert not left_right_check(dl, dr).any()


class TestFills:
    def test_fill_invalid_interpolates(self):
        disp = np.array([[1.0, 0.0, 3.0]])
        valid = np.array([[True, False, True]])
        out = fill_invalid(disp, valid)
        assert out[0, 1] == pytest.approx(2.0)

    def test_fill_invalid_all_bad_row(self):
        out = fill_invalid(np.ones((1, 4)), np.zeros((1, 4), dtype=bool))
        assert (out == 0).all()

    def test_fill_background_takes_min(self):
        disp = np.array([[10.0, 0.0, 2.0]])
        valid = np.array([[True, False, True]])
        out = fill_background(disp, valid)
        assert out[0, 1] == 2.0  # the farther neighbour

    def test_fill_background_edge_holes(self):
        disp = np.array([[0.0, 5.0, 7.0, 0.0]])
        valid = np.array([[False, True, True, False]])
        out = fill_background(disp, valid)
        assert out[0, 0] == 5.0 and out[0, 3] == 7.0

    def test_fill_background_keeps_valid(self):
        disp = np.array([[1.0, 2.0, 3.0]])
        valid = np.ones((1, 3), dtype=bool)
        assert np.array_equal(fill_background(disp, valid), disp)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_fill_background_no_new_extremes(self, seed):
        rng = np.random.default_rng(seed)
        disp = rng.uniform(0, 30, size=(6, 24))
        valid = rng.random((6, 24)) > 0.3
        if not valid.any():
            valid[0, 0] = True
        out = fill_background(disp, valid)
        # row-wise: filled values come from valid values in that row
        for y in range(6):
            if valid[y].any():
                assert out[y].max() <= disp[y][valid[y]].max() + 1e-9
                assert out[y].min() >= min(0.0, disp[y][valid[y]].min())

    def test_median_clean_removes_speckle(self):
        disp = np.full((7, 7), 4.0)
        disp[3, 3] = 40.0
        out = median_clean(disp, 3)
        assert out[3, 3] == 4.0


class TestSupportPointsAndPriors:
    def test_support_points_on_uniform_shift(self):
        from tests.test_stereo_matchers import synthetic_pair

        left, right = synthetic_pair(d=5, size=(60, 100), seed=3)
        ys, xs, ds = support_points(left, right, 12, grid_step=8)
        assert ds.size > 5
        assert np.abs(ds - 5).mean() < 1.0

    def test_interpolate_prior_constant(self):
        ys = np.array([5, 5, 25, 25])
        xs = np.array([5, 35, 5, 35])
        ds = np.array([7.0, 7.0, 7.0, 7.0])
        prior = interpolate_prior(ys, xs, ds, (30, 40))
        assert np.allclose(prior, 7.0)

    def test_interpolate_prior_gradient(self):
        ys = np.array([0, 0, 29, 29])
        xs = np.array([0, 39, 0, 39])
        ds = np.array([0.0, 0.0, 29.0, 29.0])
        prior = interpolate_prior(ys, xs, ds, (30, 40))
        assert prior[0].mean() < prior[-1].mean()

    def test_interpolate_prior_empty(self):
        prior = interpolate_prior(
            np.array([]), np.array([]), np.array([]), (8, 8)
        )
        assert (prior == 0).all()

    def test_interpolate_prior_few_points(self):
        prior = interpolate_prior(
            np.array([2]), np.array([3]), np.array([6.0]), (8, 8)
        )
        assert np.allclose(prior, 6.0)


class TestGrowSeeds:
    def test_grows_from_single_seed(self):
        cost = np.zeros((4, 10, 12))  # disparity 0..3, all costs equal
        cost[1] -= 1.0                # disparity 1 is everywhere best
        seeds = (np.array([5]), np.array([6]), np.array([1]))
        disp = grow_seeds(cost, seeds, accept_cost=0.0)
        assert (disp == 1).all()

    def test_respects_accept_threshold(self):
        cost = np.ones((3, 6, 6))
        seeds = (np.array([0]), np.array([0]), np.array([0]))
        disp = grow_seeds(cost, seeds, accept_cost=-1.0)  # nothing accepted
        assert disp[0, 0] == 0          # the seed itself is placed
        assert (disp < 0).sum() == 35   # nothing else grows
