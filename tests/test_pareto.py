"""Tests for the Pareto-frontier analysis."""

from repro.evaluation.fig1 import FrontierPoint
from repro.evaluation.pareto import dominates, pareto_frontier


def pt(name, err, fps, kind="classic"):
    return FrontierPoint(name, kind, err, fps)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates(pt("a", 1.0, 30.0), pt("b", 2.0, 20.0))

    def test_equal_points_do_not_dominate(self):
        a, b = pt("a", 1.0, 30.0), pt("b", 1.0, 30.0)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_tradeoff_points_incomparable(self):
        fast = pt("fast", 10.0, 100.0)
        accurate = pt("acc", 1.0, 1.0)
        assert not dominates(fast, accurate)
        assert not dominates(accurate, fast)

    def test_one_axis_tie(self):
        assert dominates(pt("a", 1.0, 30.0), pt("b", 1.0, 20.0))


class TestFrontier:
    def test_dominated_points_removed(self):
        points = [
            pt("good", 1.0, 30.0),
            pt("bad", 2.0, 20.0),      # dominated by good
            pt("fast", 5.0, 100.0),    # trade-off: survives
        ]
        names = [p.name for p in pareto_frontier(points)]
        assert names == ["good", "fast"]

    def test_sorted_by_error(self):
        points = [pt("c", 3.0, 50.0), pt("a", 1.0, 10.0), pt("b", 2.0, 30.0)]
        frontier = pareto_frontier(points)
        errs = [p.error_pct for p in frontier]
        assert errs == sorted(errs)

    def test_single_point(self):
        points = [pt("only", 1.0, 1.0)]
        assert pareto_frontier(points) == points

    def test_frontier_is_antichain(self):
        points = [pt(f"p{i}", float(i), float(10 - i)) for i in range(10)]
        frontier = pareto_frontier(points)
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not dominates(a, b)
