"""Tests for the Farneback optical flow and warping utilities."""

import numpy as np
import pytest
from scipy import ndimage

from repro.flow import (
    bilinear_sample,
    downsample2,
    farneback_flow,
    farneback_ops,
    forward_warp_disparity,
    gaussian_blur,
    gaussian_blur_ops,
    gaussian_kernel1d,
    poly_expansion,
    warp_backward,
)


def textured(seed=0, size=(100, 140), smooth=2.0):
    rng = np.random.default_rng(seed)
    return ndimage.gaussian_filter(rng.normal(size=size), smooth) * 10


class TestGaussian:
    def test_kernel_normalised(self):
        k = gaussian_kernel1d(1.5)
        assert np.isclose(k.sum(), 1.0)
        assert k.argmax() == len(k) // 2

    def test_kernel_symmetric(self):
        k = gaussian_kernel1d(2.0)
        assert np.allclose(k, k[::-1])

    def test_invalid_sigma_raises(self):
        with pytest.raises(ValueError):
            gaussian_kernel1d(0.0)

    def test_blur_preserves_mean(self):
        img = textured(1)
        out = gaussian_blur(img, 2.0)
        assert np.isclose(out.mean(), img.mean(), rtol=1e-2)

    def test_blur_reduces_variance(self):
        img = textured(2, smooth=0.5)
        assert gaussian_blur(img, 2.0).var() < img.var()

    def test_downsample_halves(self):
        img = textured(3, size=(64, 80))
        assert downsample2(img).shape == (32, 40)

    def test_ops_positive(self):
        assert gaussian_blur_ops(100, 100, 1.5) > 0


class TestBilinearSample:
    def test_integer_coordinates_exact(self):
        img = np.arange(20.0).reshape(4, 5)
        ys, xs = np.mgrid[0:4, 0:5].astype(float)
        assert np.allclose(bilinear_sample(img, ys, xs), img)

    def test_halfway_interpolates(self):
        img = np.array([[0.0, 2.0]])
        val = bilinear_sample(img, np.array([0.0]), np.array([0.5]))
        assert np.isclose(val[0], 1.0)

    def test_out_of_range_clamped(self):
        img = np.array([[1.0, 2.0], [3.0, 4.0]])
        val = bilinear_sample(img, np.array([-5.0]), np.array([99.0]))
        assert np.isclose(val[0], 2.0)


class TestPolyExpansion:
    def test_constant_image_zero_gradient(self):
        A, b = poly_expansion(np.full((32, 32), 5.0))
        assert np.allclose(A, 0.0, atol=1e-8)
        assert np.allclose(b, 0.0, atol=1e-8)

    def test_linear_ramp_recovers_gradient(self):
        ys, xs = np.mgrid[0:40, 0:40].astype(float)
        img = 2.0 * xs + 3.0 * ys
        A, b = poly_expansion(img, sigma=1.5)
        inner = (slice(8, -8), slice(8, -8))
        assert np.allclose(b[inner][..., 1], 2.0, atol=0.05)  # d/dx
        assert np.allclose(b[inner][..., 0], 3.0, atol=0.05)  # d/dy
        assert np.allclose(A[inner], 0.0, atol=0.05)

    def test_quadratic_recovers_curvature(self):
        ys, xs = np.mgrid[0:40, 0:40].astype(float)
        img = 0.5 * (xs - 20) ** 2
        A, _ = poly_expansion(img, sigma=1.5)
        inner = (slice(10, -10), slice(10, -10))
        assert np.allclose(A[inner][..., 1, 1], 0.5, atol=0.05)
        assert np.allclose(A[inner][..., 0, 0], 0.0, atol=0.05)

    def test_colour_rejected(self):
        with pytest.raises(ValueError):
            poly_expansion(np.zeros((8, 8, 3)))


class TestFarneback:
    @pytest.mark.parametrize("shift", [(1, 2), (3, -2), (0, 4)])
    def test_recovers_global_translation(self, shift):
        tex = textured(4, size=(120, 160))
        f0 = tex
        f1 = np.roll(tex, shift, axis=(0, 1))
        flow = farneback_flow(f0, f1, levels=3, iterations=3)
        inner = flow[24:-24, 24:-24]
        assert np.abs(inner[..., 0].mean() - shift[0]) < 0.3
        assert np.abs(inner[..., 1].mean() - shift[1]) < 0.3

    def test_subpixel_translation(self):
        ys, xs = np.mgrid[0:80, 0:100].astype(float)
        make = lambda dx: np.sin(0.3 * (xs + dx)) + np.cos(0.25 * ys)
        flow = farneback_flow(make(0), make(-0.5), levels=1, iterations=3)
        inner = flow[16:-16, 16:-16]
        assert np.abs(inner[..., 1].mean() - 0.5) < 0.15

    def test_zero_motion(self):
        tex = textured(5)
        flow = farneback_flow(tex, tex, levels=2, iterations=2)
        assert np.abs(flow).max() < 0.1

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            farneback_flow(np.zeros((8, 8)), np.zeros((8, 9)))

    def test_ops_scale_with_resolution(self):
        small = farneback_ops(100, 100)
        large = farneback_ops(200, 200)
        assert 3.0 < large / small < 4.5


class TestWarps:
    def test_backward_warp_inverts_roll(self):
        tex = textured(6)
        shifted = np.roll(tex, (2, 3), axis=(0, 1))
        flow = np.zeros(tex.shape + (2,))
        flow[..., 0] = 2.0
        flow[..., 1] = 3.0
        # shifted(p + (2,3)) == tex(p)... sample shifted at p + flow
        recovered = warp_backward(shifted, flow)
        inner = (slice(6, -6), slice(6, -6))
        assert np.allclose(recovered[inner], tex[inner], atol=1e-6)

    def test_forward_warp_zero_flow_identity(self):
        disp = np.full((10, 12), 5.0)
        flow = np.zeros((10, 12, 2))
        out, known = forward_warp_disparity(disp, flow, flow)
        assert known.all()
        assert np.allclose(out, 5.0)

    def test_forward_warp_translation(self):
        disp = np.zeros((10, 12))
        disp[4, 6] = 9.0
        flow = np.zeros((10, 12, 2))
        flow[..., 1] = 2.0  # everything moves 2 px right
        out, known = forward_warp_disparity(disp, flow, flow)
        assert out[4, 8] == 9.0

    def test_forward_warp_occlusion_keeps_nearer(self):
        disp = np.zeros((6, 8))
        disp[2, 2] = 3.0   # far
        disp[2, 4] = 11.0  # near
        flow = np.zeros((6, 8, 2))
        flow[2, 2, 1] = 2.0  # far pixel moves onto (2, 4)
        out, _ = forward_warp_disparity(disp, flow, None)
        assert out[2, 4] == 11.0  # nearer surface wins

    def test_forward_warp_disparity_rate(self):
        """Right-stream motion differing from left adjusts disparity."""
        disp = np.full((8, 20), 4.0)
        fl = np.zeros((8, 20, 2))
        fr = np.zeros((8, 20, 2))
        fr[..., 1] = 1.0  # right correspondences drift +1 px
        out, known = forward_warp_disparity(disp, fl, fr)
        assert np.allclose(out[known], 5.0)
