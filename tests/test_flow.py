"""Tests for the Farneback optical flow and warping utilities."""

import numpy as np
import pytest
from scipy import ndimage

from repro.flow import (
    bilinear_sample,
    downsample2,
    farneback_flow,
    farneback_ops,
    forward_warp_disparity,
    gaussian_blur,
    gaussian_blur_ops,
    gaussian_kernel1d,
    poly_expansion,
    warp_backward,
)


def textured(seed=0, size=(100, 140), smooth=2.0):
    rng = np.random.default_rng(seed)
    return ndimage.gaussian_filter(rng.normal(size=size), smooth) * 10


class TestGaussian:
    def test_kernel_normalised(self):
        k = gaussian_kernel1d(1.5)
        assert np.isclose(k.sum(), 1.0)
        assert k.argmax() == len(k) // 2

    def test_kernel_symmetric(self):
        k = gaussian_kernel1d(2.0)
        assert np.allclose(k, k[::-1])

    def test_invalid_sigma_raises(self):
        with pytest.raises(ValueError):
            gaussian_kernel1d(0.0)

    def test_blur_preserves_mean(self):
        img = textured(1)
        out = gaussian_blur(img, 2.0)
        assert np.isclose(out.mean(), img.mean(), rtol=1e-2)

    def test_blur_reduces_variance(self):
        img = textured(2, smooth=0.5)
        assert gaussian_blur(img, 2.0).var() < img.var()

    def test_downsample_halves(self):
        img = textured(3, size=(64, 80))
        assert downsample2(img).shape == (32, 40)

    def test_ops_positive(self):
        assert gaussian_blur_ops(100, 100, 1.5) > 0


class TestBilinearSample:
    def test_integer_coordinates_exact(self):
        img = np.arange(20.0).reshape(4, 5)
        ys, xs = np.mgrid[0:4, 0:5].astype(float)
        assert np.allclose(bilinear_sample(img, ys, xs), img)

    def test_halfway_interpolates(self):
        img = np.array([[0.0, 2.0]])
        val = bilinear_sample(img, np.array([0.0]), np.array([0.5]))
        assert np.isclose(val[0], 1.0)

    def test_out_of_range_clamped(self):
        img = np.array([[1.0, 2.0], [3.0, 4.0]])
        val = bilinear_sample(img, np.array([-5.0]), np.array([99.0]))
        assert np.isclose(val[0], 2.0)


class TestPolyExpansion:
    def test_constant_image_zero_gradient(self):
        A, b = poly_expansion(np.full((32, 32), 5.0))
        assert np.allclose(A, 0.0, atol=1e-8)
        assert np.allclose(b, 0.0, atol=1e-8)

    def test_linear_ramp_recovers_gradient(self):
        ys, xs = np.mgrid[0:40, 0:40].astype(float)
        img = 2.0 * xs + 3.0 * ys
        A, b = poly_expansion(img, sigma=1.5)
        inner = (slice(8, -8), slice(8, -8))
        assert np.allclose(b[inner][..., 1], 2.0, atol=0.05)  # d/dx
        assert np.allclose(b[inner][..., 0], 3.0, atol=0.05)  # d/dy
        assert np.allclose(A[inner], 0.0, atol=0.05)

    def test_quadratic_recovers_curvature(self):
        ys, xs = np.mgrid[0:40, 0:40].astype(float)
        img = 0.5 * (xs - 20) ** 2
        A, _ = poly_expansion(img, sigma=1.5)
        inner = (slice(10, -10), slice(10, -10))
        assert np.allclose(A[inner][..., 1, 1], 0.5, atol=0.05)
        assert np.allclose(A[inner][..., 0, 0], 0.0, atol=0.05)

    def test_colour_rejected(self):
        with pytest.raises(ValueError):
            poly_expansion(np.zeros((8, 8, 3)))


class TestFarneback:
    @pytest.mark.parametrize("shift", [(1, 2), (3, -2), (0, 4)])
    def test_recovers_global_translation(self, shift):
        tex = textured(4, size=(120, 160))
        f0 = tex
        f1 = np.roll(tex, shift, axis=(0, 1))
        flow = farneback_flow(f0, f1, levels=3, iterations=3)
        inner = flow[24:-24, 24:-24]
        assert np.abs(inner[..., 0].mean() - shift[0]) < 0.3
        assert np.abs(inner[..., 1].mean() - shift[1]) < 0.3

    def test_subpixel_translation(self):
        ys, xs = np.mgrid[0:80, 0:100].astype(float)
        make = lambda dx: np.sin(0.3 * (xs + dx)) + np.cos(0.25 * ys)
        flow = farneback_flow(make(0), make(-0.5), levels=1, iterations=3)
        inner = flow[16:-16, 16:-16]
        assert np.abs(inner[..., 1].mean() - 0.5) < 0.15

    def test_zero_motion(self):
        tex = textured(5)
        flow = farneback_flow(tex, tex, levels=2, iterations=2)
        assert np.abs(flow).max() < 0.1

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            farneback_flow(np.zeros((8, 8)), np.zeros((8, 9)))

    def test_ops_scale_with_resolution(self):
        small = farneback_ops(100, 100)
        large = farneback_ops(200, 200)
        assert 3.0 < large / small < 4.5


class TestWarps:
    def test_backward_warp_inverts_roll(self):
        tex = textured(6)
        shifted = np.roll(tex, (2, 3), axis=(0, 1))
        flow = np.zeros(tex.shape + (2,))
        flow[..., 0] = 2.0
        flow[..., 1] = 3.0
        # shifted(p + (2,3)) == tex(p)... sample shifted at p + flow
        recovered = warp_backward(shifted, flow)
        inner = (slice(6, -6), slice(6, -6))
        assert np.allclose(recovered[inner], tex[inner], atol=1e-6)

    def test_forward_warp_zero_flow_identity(self):
        disp = np.full((10, 12), 5.0)
        flow = np.zeros((10, 12, 2))
        out, known = forward_warp_disparity(disp, flow, flow)
        assert known.all()
        assert np.allclose(out, 5.0)

    def test_forward_warp_translation(self):
        disp = np.zeros((10, 12))
        disp[4, 6] = 9.0
        flow = np.zeros((10, 12, 2))
        flow[..., 1] = 2.0  # everything moves 2 px right
        out, known = forward_warp_disparity(disp, flow, flow)
        assert out[4, 8] == 9.0

    def test_forward_warp_occlusion_keeps_nearer(self):
        disp = np.zeros((6, 8))
        disp[2, 2] = 3.0   # far
        disp[2, 4] = 11.0  # near
        flow = np.zeros((6, 8, 2))
        flow[2, 2, 1] = 2.0  # far pixel moves onto (2, 4)
        out, _ = forward_warp_disparity(disp, flow, None)
        assert out[2, 4] == 11.0  # nearer surface wins

    def test_forward_warp_disparity_rate(self):
        """Right-stream motion differing from left adjusts disparity."""
        disp = np.full((8, 20), 4.0)
        fl = np.zeros((8, 20, 2))
        fr = np.zeros((8, 20, 2))
        fr[..., 1] = 1.0  # right correspondences drift +1 px
        out, known = forward_warp_disparity(disp, fl, fr)
        assert np.allclose(out[known], 5.0)


# ----------------------------------------------------------------------
# scalar references for the vectorized hot path
# ----------------------------------------------------------------------

def _scalar_correlate1d(img, w, axis):
    """Per-pixel mirror of ``ndimage.correlate1d(mode="nearest")``.

    scipy buffers each line in double precision, accumulates the
    centre product first and then the symmetric (or antisymmetric) tap
    pairs outermost-in, and casts back to the input dtype after the
    pass — this reproduces that order bit for bit, which is what makes
    the vectorized sweeps pinnable by ``array_equal``.
    """
    img = np.asarray(img)
    if axis == 0:
        return _scalar_correlate1d(img.T, w, 1).T
    r = len(w) // 2
    w = np.asarray(w, dtype=np.float64)
    sym = np.allclose(w[::-1], w, rtol=0, atol=2.3e-16)
    anti = np.allclose(w[::-1], -w, rtol=0, atol=2.3e-16)
    assert sym or anti, "moment filters are symmetric or antisymmetric"
    out = np.empty(img.shape, np.float64)
    for row in range(img.shape[0]):
        line = img[row].astype(np.float64)
        pad = np.pad(line, r, mode="edge")
        for i in range(len(line)):
            c = r + i
            acc = pad[c] * w[r]
            for jj in range(-r, 0):
                if sym:
                    acc += (pad[c + jj] + pad[c - jj]) * w[r + jj]
                else:
                    acc += (pad[c + jj] - pad[c - jj]) * w[r + jj]
            out[row, i] = acc
    return out.astype(img.dtype)


def _scalar_poly_expansion(img, sigma=1.5, precision="float64"):
    """Per-pixel mirror of :func:`poly_expansion` (same filter order,
    same explicit Gram-inverse products, scalar arithmetic)."""
    from repro.stereo.block_matching import resolve_precision

    dtype = resolve_precision(precision)
    img = np.asarray(img, dtype=dtype)
    radius = max(2, int(round(3.0 * sigma)))
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    g0 = np.exp(-0.5 * (x / sigma) ** 2)
    g0 /= g0.sum()
    g1, g2 = g0 * x, g0 * x * x

    t0 = _scalar_correlate1d(img, g0, axis=0)
    t1 = _scalar_correlate1d(img, g1, axis=0)
    t2 = _scalar_correlate1d(img, g2, axis=0)
    m00 = _scalar_correlate1d(t0, g0, axis=1)
    m01 = _scalar_correlate1d(t0, g1, axis=1)
    m02 = _scalar_correlate1d(t0, g2, axis=1)
    m10 = _scalar_correlate1d(t1, g0, axis=1)
    m11 = _scalar_correlate1d(t1, g1, axis=1)
    m20 = _scalar_correlate1d(t2, g0, axis=1)

    s0 = float(g0.sum())
    s2 = float((g0 * x * x).sum())
    s4 = float((g0 * x**4).sum())
    inv3 = np.linalg.inv(
        np.array([[s0, s2, s2], [s2, s4, s2 * s2], [s2, s2 * s2, s4]])
    ).astype(dtype)
    inv_s2 = dtype(1.0 / s2)
    inv_s2s2 = dtype(1.0 / (s2 * s2))

    h, w = img.shape
    A = np.empty((h, w, 2, 2), dtype)
    b = np.empty((h, w, 2), dtype)
    for i in range(h):
        for j in range(w):
            A[i, j, 1, 1] = (
                inv3[1, 0] * m00[i, j] + inv3[1, 1] * m02[i, j] + inv3[1, 2] * m20[i, j]
            )
            A[i, j, 0, 0] = (
                inv3[2, 0] * m00[i, j] + inv3[2, 1] * m02[i, j] + inv3[2, 2] * m20[i, j]
            )
            off = 0.5 * (m11[i, j] * inv_s2s2)
            A[i, j, 0, 1] = off
            A[i, j, 1, 0] = off
            b[i, j, 0] = m10[i, j] * inv_s2
            b[i, j, 1] = m01[i, j] * inv_s2
    return A, b


def _scalar_flow_iteration(A1, b1, A2, b2, flow, window_sigma):
    """Per-pixel mirror of :func:`flow_iteration`: scalar bilinear
    warp, scalar matrix update, scalar-mirrored Gaussian averaging,
    scalar 2x2 solve."""
    from repro.flow import blur_kernel1d

    dtype = flow.dtype.type
    h, w = flow.shape[:2]
    fh, fw = A2.shape[:2]
    A00 = np.empty((h, w), dtype)
    A01 = np.empty((h, w), dtype)
    A11 = np.empty((h, w), dtype)
    db0 = np.empty((h, w), dtype)
    db1 = np.empty((h, w), dtype)
    for i in range(h):
        for j in range(w):
            yy = dtype(i)
            xx = dtype(j)
            sy = np.clip(yy + flow[i, j, 0], 0, fh - 1)
            sx = np.clip(xx + flow[i, j, 1], 0, fw - 1)
            y0 = int(np.floor(sy))
            x0 = int(np.floor(sx))
            y1 = min(y0 + 1, fh - 1)
            x1 = min(x0 + 1, fw - 1)
            fy = sy - y0
            fx = sx - x0

            def warp(c):
                top = c[y0, x0] * (1 - fx) + c[y0, x1] * fx
                bot = c[y1, x0] * (1 - fx) + c[y1, x1] * fx
                return top * (1 - fy) + bot * fy

            a00 = 0.5 * (A1[i, j, 0, 0] + warp(A2[..., 0, 0]))
            a01 = 0.5 * (A1[i, j, 0, 1] + warp(A2[..., 0, 1]))
            a11 = 0.5 * (A1[i, j, 1, 1] + warp(A2[..., 1, 1]))
            f0 = flow[i, j, 0]
            f1 = flow[i, j, 1]
            d0 = -0.5 * (warp(b2[..., 0]) - b1[i, j, 0]) + (a00 * f0 + a01 * f1)
            d1 = -0.5 * (warp(b2[..., 1]) - b1[i, j, 1]) + (a01 * f0 + a11 * f1)
            A00[i, j], A01[i, j], A11[i, j] = a00, a01, a11
            db0[i, j], db1[i, j] = d0, d1

    taps = blur_kernel1d(window_sigma)

    def blur(m):
        return _scalar_correlate1d(_scalar_correlate1d(m, taps, 0), taps, 1)

    G00 = blur(A00 * A00 + A01 * A01)
    G01 = blur(A00 * A01 + A01 * A11)
    G11 = blur(A01 * A01 + A11 * A11)
    h0 = blur(A00 * db0 + A01 * db1)
    h1 = blur(A01 * db0 + A11 * db1)

    new = np.empty_like(flow)
    for i in range(h):
        for j in range(w):
            lam = 1e-3 * 0.5 * (G00[i, j] + G11[i, j]) + 1e-12
            g00 = G00[i, j] + lam
            g11 = G11[i, j] + lam
            det = g00 * g11 - G01[i, j] * G01[i, j]
            new[i, j, 0] = (g11 * h0[i, j] - G01[i, j] * h1[i, j]) / det
            new[i, j, 1] = (g00 * h1[i, j] - G01[i, j] * h0[i, j]) / det
    return new


class TestScalarPinning:
    """The vectorized non-key hot path, pinned bit-identical to
    per-pixel scalar references (both precisions)."""

    @pytest.mark.parametrize("precision", ["float64", "float32"])
    def test_correlate1d_mirror(self, precision):
        from repro.stereo.block_matching import resolve_precision

        img = textured(7, size=(6, 40)).astype(resolve_precision(precision))
        radius = 4
        x = np.arange(-radius, radius + 1, dtype=np.float64)
        g0 = np.exp(-0.5 * (x / 1.5) ** 2)
        g0 /= g0.sum()
        for taps in (g0, g0 * x, g0 * x * x):
            for axis in (0, 1):
                got = ndimage.correlate1d(img, taps, axis=axis, mode="nearest")
                assert np.array_equal(got, _scalar_correlate1d(img, taps, axis))

    @pytest.mark.parametrize("precision", ["float64", "float32"])
    def test_poly_expansion_matches_scalar(self, precision):
        img = textured(8, size=(14, 17))
        A, b = poly_expansion(img, precision=precision)
        A_ref, b_ref = _scalar_poly_expansion(img, precision=precision)
        assert A.dtype == A_ref.dtype
        assert np.array_equal(A, A_ref)
        assert np.array_equal(b, b_ref)

    @pytest.mark.parametrize("shape", [(1, 30), (30, 1)])
    @pytest.mark.parametrize("precision", ["float64", "float32"])
    def test_poly_expansion_degenerate_frames(self, shape, precision):
        img = textured(9, size=shape)
        A, b = poly_expansion(img, precision=precision)
        assert np.isfinite(A).all() and np.isfinite(b).all()
        A_ref, b_ref = _scalar_poly_expansion(img, precision=precision)
        assert np.array_equal(A, A_ref)
        assert np.array_equal(b, b_ref)

    @pytest.mark.parametrize("precision", ["float64", "float32"])
    def test_flow_iteration_matches_scalar(self, precision):
        from repro.flow import flow_iteration
        from repro.stereo.block_matching import resolve_precision

        dtype = resolve_precision(precision)
        f0 = textured(10, size=(12, 15))
        f1 = np.roll(f0, (1, -1), axis=(0, 1))
        A1, b1 = poly_expansion(f0, precision=precision)
        A2, b2 = poly_expansion(f1, precision=precision)
        rng = np.random.default_rng(11)
        flow = rng.normal(scale=0.7, size=(12, 15, 2)).astype(dtype)
        got = flow_iteration(A1, b1, A2, b2, flow, window_sigma=1.5)
        ref = _scalar_flow_iteration(A1, b1, A2, b2, flow, window_sigma=1.5)
        assert got.dtype == ref.dtype
        assert np.array_equal(got, ref)


class TestExpansionReuse:
    """Cross-frame expansion sharing (the ISM cache's enabler)."""

    def test_shared_expansion_bitwise(self):
        from repro.flow import expand_frame, flow_from_expansions

        frames = [textured(s, size=(40, 56)) for s in (12, 13, 14)]
        exps = [expand_frame(f, levels=2) for f in frames]
        for a, b in ((0, 1), (1, 2)):
            direct = farneback_flow(frames[a], frames[b], levels=2)
            shared = flow_from_expansions(exps[a], exps[b])
            assert np.array_equal(direct, shared)

    def test_matches_validation(self):
        from repro.flow import expand_frame

        exp = expand_frame(textured(15, size=(32, 40)), levels=2)
        assert exp.matches((32, 40), 2, 1.5, None, "float64")
        assert not exp.matches((32, 41), 2, 1.5, None, "float64")
        assert not exp.matches((32, 40), 3, 1.5, None, "float64")
        assert not exp.matches((32, 40), 2, 2.0, None, "float64")
        assert not exp.matches((32, 40), 2, 1.5, None, "float32")

    def test_float32_close_to_float64(self):
        f0 = textured(16, size=(48, 64))
        f1 = np.roll(f0, (1, 2), axis=(0, 1))
        f64 = farneback_flow(f0, f1, levels=2, iterations=2)
        f32 = farneback_flow(f0, f1, levels=2, iterations=2, precision="float32")
        assert f32.dtype == np.float32
        assert np.allclose(f32, f64, atol=5e-2)
