"""Characterisation of the matcher zoo on the classic failure modes."""

import numpy as np
import pytest

from repro.datasets.stress import repetitive_scene, textureless_scene
from repro.stereo import block_match, elas, error_rate, sgm


@pytest.fixture(scope="module")
def flat_frame():
    return textureless_scene(seed=1).render(0)


@pytest.fixture(scope="module")
def striped_frame():
    return repetitive_scene(seed=2).render(0)


class TestTexturelessRegion:
    def test_bm_fails_inside_flat_patch(self, flat_frame):
        """Plain block matching has no evidence in the flat region."""
        disp = block_match(flat_frame.left, flat_frame.right, 32)
        flat_mask = flat_frame.disparity == np.max(flat_frame.disparity)
        err_inside = np.abs(disp - flat_frame.disparity)[flat_mask]
        assert (err_inside >= 3).mean() > 0.3

    def test_sgm_beats_bm_on_flat(self, flat_frame):
        """Semi-global smoothness propagates evidence across the patch."""
        bm_err = error_rate(
            block_match(flat_frame.left, flat_frame.right, 32),
            flat_frame.disparity,
        )
        sgm_err = error_rate(
            sgm(flat_frame.left, flat_frame.right, 32),
            flat_frame.disparity,
        )
        assert sgm_err < bm_err

    def test_elas_prior_helps(self, flat_frame):
        """ELAS stays in BM's ballpark overall and clearly beats it
        *inside* the flat patch, where its prior actually applies."""
        elas_disp = elas(flat_frame.left, flat_frame.right, 32)
        bm_disp = block_match(flat_frame.left, flat_frame.right, 32)
        elas_err = error_rate(elas_disp, flat_frame.disparity)
        bm_err = error_rate(bm_disp, flat_frame.disparity)
        # the epipolar row-wise prior keeps horizontally-fattened
        # boundary supports from bleeding across the patch, so ELAS
        # now beats BM outright here (the old Delaunay prior only
        # stayed within a +2.5 ballpark, and that relied on rounding
        # noise fabricating extra in-patch support points)
        assert elas_err < bm_err
        flat_mask = flat_frame.disparity == np.max(flat_frame.disparity)
        elas_inside = np.abs(elas_disp - flat_frame.disparity)[flat_mask]
        bm_inside = np.abs(bm_disp - flat_frame.disparity)[flat_mask]
        assert (elas_inside >= 3).mean() < (bm_inside >= 3).mean()


class TestRepetitiveTexture:
    def test_bm_aliases(self, striped_frame):
        """Errors cluster at multiples of the stripe period."""
        disp = block_match(striped_frame.left, striped_frame.right, 32,
                           subpixel=False)
        mask = striped_frame.disparity == np.max(striped_frame.disparity)
        err = (disp - striped_frame.disparity)[mask]
        wrong = err[np.abs(err) >= 3]
        if wrong.size:  # aliased matches sit near +/- one period (11 px)
            near_period = np.abs(np.abs(wrong) - 11) <= 2
            assert near_period.mean() > 0.5

    def test_smoothness_reduces_aliasing(self, striped_frame):
        bm_err = error_rate(
            block_match(striped_frame.left, striped_frame.right, 32),
            striped_frame.disparity,
        )
        sgm_err = error_rate(
            sgm(striped_frame.left, striped_frame.right, 32),
            striped_frame.disparity,
        )
        assert sgm_err <= bm_err

    def test_ground_truth_is_periodic_hazard(self, striped_frame):
        """Sanity: the scene really contains the stripe pattern."""
        mask = striped_frame.disparity == np.max(striped_frame.disparity)
        patch = striped_frame.left[mask]
        assert patch.std() > 0.3
