"""Tests for the fixed-point datapath model and its accuracy neutrality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.quantize import Q2_13, Q8_8, FixedPointFormat, quantize, quantization_error


class TestFormats:
    def test_q88_properties(self):
        assert Q8_8.total_bits == 16
        assert Q8_8.resolution == pytest.approx(1 / 128)
        assert Q8_8.max_value > 250

    def test_q213_covers_activations(self):
        assert Q2_13.total_bits == 16
        assert Q2_13.max_value >= 3.99
        assert Q2_13.resolution < 2e-4

    def test_invalid_format(self):
        with pytest.raises(ValueError):
            FixedPointFormat(0, 8)
        with pytest.raises(ValueError):
            FixedPointFormat(16, 32)


class TestQuantize:
    def test_grid_values_exact(self):
        x = np.array([0.0, 1.0, -2.5, 0.5])
        assert np.array_equal(quantize(x, Q8_8), x)

    def test_rounds_to_nearest(self):
        fmt = FixedPointFormat(4, 2)  # resolution 0.25
        assert quantize(np.array([0.3]), fmt)[0] == pytest.approx(0.25)
        assert quantize(np.array([0.4]), fmt)[0] == pytest.approx(0.5)

    def test_saturates(self):
        fmt = FixedPointFormat(2, 4)
        assert quantize(np.array([100.0]), fmt)[0] == fmt.max_value
        assert quantize(np.array([-100.0]), fmt)[0] == fmt.min_value

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_error_bounded_by_half_lsb(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-200, 200, size=64)
        err = quantization_error(x, Q8_8)
        assert err <= Q8_8.resolution / 2 + 1e-12


class TestAccuracyNeutrality:
    """The Sec. 5.2 datapath choice: 16-bit fixed point does not move
    the three-pixel error — checked end to end."""

    def test_disparity_quantization_is_invisible(self):
        from repro.datasets import sceneflow_scene
        from repro.models.proxy import StereoDNNProxy
        from repro.stereo import error_rate

        frame = sceneflow_scene(6, size=(120, 200)).render(0)
        disp = StereoDNNProxy("DispNet", seed=0)(frame)
        e_fp = error_rate(disp, frame.disparity)
        e_q = error_rate(quantize(disp, Q8_8), frame.disparity)
        assert abs(e_fp - e_q) < 0.05

    def test_image_quantization_barely_moves_matching(self):
        from repro.datasets import sceneflow_scene
        from repro.stereo import block_match, error_rate

        frame = sceneflow_scene(8, size=(100, 160)).render(0)
        e_fp = error_rate(
            block_match(frame.left, frame.right, 40), frame.disparity
        )
        e_q = error_rate(
            block_match(
                quantize(frame.left, Q2_13), quantize(frame.right, Q2_13), 40
            ),
            frame.disparity,
        )
        assert abs(e_fp - e_q) < 1.0
