"""Tests for the schedule IR, feasibility checks and the systolic model."""

import math

import pytest

from repro.hw import (
    ASV_BASE,
    HWConfig,
    LayerWork,
    RoundPlan,
    Schedule,
    SubAllocation,
    SubConvWork,
    SystolicModel,
)


def simple_layer(filters=8, rows=16, cols=16, taps=9, in_ch=4, repeat=1):
    sub = SubConvWork(
        name="s0",
        taps=taps,
        filters=filters,
        out_rows=rows,
        out_cols=cols,
        tile_kernel_extent=3,
        tile_stride=1,
        col_kernel_extent=3,
        col_stride=1,
    )
    return LayerWork(
        name="layer",
        in_channels=in_ch,
        ifmap_rows=rows + 2,
        ifmap_cols=cols + 2,
        subconvs=(sub,),
        repeat=repeat,
    )


def one_shot_schedule(layer):
    """Everything in a single round (fits for small layers)."""
    sub = layer.subconvs[0]
    alloc = SubAllocation(0, sub.filters, sub.out_rows, sub.out_cols, layer.in_channels)
    plan = RoundPlan(
        allocations=(alloc,),
        ifmap_resident_elems=layer.ifmap_elems,
        ifmap_loads_elems=layer.ifmap_elems,
        weight_resident_elems=layer.weight_elems,
        weight_loads_elems=layer.weight_elems,
        psum_resident_elems=layer.ofmap_elems,
        output_store_elems=layer.ofmap_elems,
    )
    return Schedule(layer=layer, rounds=[plan])


class TestHWConfig:
    def test_defaults_match_paper(self):
        assert ASV_BASE.pe_count == 576
        assert ASV_BASE.buffer_bytes == int(1.5 * 1024 * 1024)
        # 24x24 PEs @ 1 GHz = 1.152 Tops/s counting MAC as 2 ops
        assert math.isclose(2 * ASV_BASE.peak_macs_per_sec, 1.152e12)

    def test_usable_buffer_is_half(self):
        assert ASV_BASE.usable_buffer_bytes == ASV_BASE.buffer_bytes // 2

    def test_with_resources(self):
        small = ASV_BASE.with_resources(pe_rows=8, pe_cols=8)
        assert small.pe_count == 64
        assert small.buffer_bytes == ASV_BASE.buffer_bytes

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            HWConfig(pe_rows=0)
        with pytest.raises(ValueError):
            HWConfig(buffer_bytes=1024)


class TestWorkStructures:
    def test_rows_for(self):
        sub = SubConvWork("s", 9, 4, 10, 10, tile_kernel_extent=3, tile_stride=2)
        assert sub.rows_for(1) == 3
        assert sub.rows_for(5) == 11
        assert sub.rows_for(0) == 0

    def test_macs_for(self):
        sub = SubConvWork("s", 9, 4, 10, 12)
        assert sub.macs_for(8, 4, 10, 12) == 9 * 8 * 4 * 10 * 12

    def test_layer_totals(self):
        layer = simple_layer()
        sub = layer.subconvs[0]
        assert layer.total_macs == sub.macs_for(4, 8, 16, 16)
        assert layer.weight_elems == 9 * 4 * 8
        assert layer.ofmap_elems == 8 * 16 * 16

    def test_invalid_work_raises(self):
        with pytest.raises(ValueError):
            SubConvWork("s", 0, 1, 1, 1)
        with pytest.raises(ValueError):
            LayerWork("l", 1, 1, 1, ())


class TestScheduleChecks:
    def test_complete_schedule_validates(self):
        layer = simple_layer()
        sched = one_shot_schedule(layer)
        sched.validate(ASV_BASE)  # should not raise

    def test_incomplete_macs_detected(self):
        layer = simple_layer()
        sched = one_shot_schedule(layer)
        short = SubAllocation(0, 4, 16, 16, 4)  # half the filters
        bad = RoundPlan(
            allocations=(short,),
            ifmap_resident_elems=layer.ifmap_elems,
            ifmap_loads_elems=layer.ifmap_elems,
            weight_resident_elems=layer.weight_elems,
            weight_loads_elems=layer.weight_elems,
            psum_resident_elems=layer.ofmap_elems,
            output_store_elems=layer.ofmap_elems,
        )
        sched.rounds = [bad]
        sched.counts = [1]
        with pytest.raises(ValueError, match="MACs"):
            sched.check_complete()

    def test_missing_stores_detected(self):
        layer = simple_layer()
        sched = one_shot_schedule(layer)
        plan = sched.rounds[0]
        sched.rounds = [
            RoundPlan(
                allocations=plan.allocations,
                ifmap_resident_elems=plan.ifmap_resident_elems,
                ifmap_loads_elems=plan.ifmap_loads_elems,
                weight_resident_elems=plan.weight_resident_elems,
                weight_loads_elems=plan.weight_loads_elems,
                psum_resident_elems=plan.psum_resident_elems,
                output_store_elems=0,
            )
        ]
        with pytest.raises(ValueError, match="output"):
            sched.check_complete()

    def test_buffer_overflow_detected(self):
        layer = simple_layer(filters=64, rows=256, cols=256, in_ch=64)
        sched = one_shot_schedule(layer)
        with pytest.raises(ValueError, match="working set"):
            sched.check_feasible(ASV_BASE)

    def test_counts_multiply(self):
        layer = simple_layer()
        sched = one_shot_schedule(layer)
        doubled = Schedule(layer=layer, rounds=list(sched.rounds), counts=[2])
        assert doubled.total_macs == 2 * sched.total_macs
        assert doubled.n_rounds == 2

    def test_counts_length_mismatch_raises(self):
        layer = simple_layer()
        plan = one_shot_schedule(layer).rounds[0]
        with pytest.raises(ValueError):
            Schedule(layer=layer, rounds=[plan], counts=[1, 1])


class TestSystolicModel:
    def test_compute_bound_layer(self):
        """A tiny memory footprint keeps the round compute-bound;
        cycles must equal ceil(macs / PEs)."""
        layer = simple_layer()
        model = SystolicModel(ASV_BASE)
        res = model.run_schedule(one_shot_schedule(layer))
        l_c = math.ceil(layer.total_macs / ASV_BASE.pe_count)
        moved = (
            layer.ifmap_elems + layer.weight_elems + layer.ofmap_elems
        ) * ASV_BASE.bytes_per_elem
        l_m = math.ceil(moved / ASV_BASE.dram_bytes_per_cycle)
        assert res.cycles == max(l_c, l_m)
        assert res.macs == layer.total_macs

    def test_memory_bound_layer(self):
        """Starving bandwidth makes memory time dominate."""
        layer = simple_layer()
        slow = ASV_BASE.with_resources(dram_bytes_per_sec=1e6)
        res = SystolicModel(slow).run_schedule(one_shot_schedule(layer))
        assert res.memory_cycles > res.compute_cycles
        assert res.cycles == res.memory_cycles

    def test_repeat_scales_everything(self):
        base = simple_layer(repeat=1)
        tripled = simple_layer(repeat=3)
        model = SystolicModel(ASV_BASE)
        r1 = model.run_schedule(one_shot_schedule(base))
        r3 = model.run_schedule(one_shot_schedule(tripled))
        assert r3.cycles == 3 * r1.cycles
        assert r3.macs == 3 * r1.macs
        assert r3.dram_bytes == 3 * r1.dram_bytes

    def test_energy_positive_and_dram_dominated_when_streaming(self):
        layer = simple_layer()
        model = SystolicModel(ASV_BASE)
        res = model.run_schedule(one_shot_schedule(layer))
        assert res.energy.total_j > 0
        assert res.energy.dram_j > res.energy.sram_j > 0

    def test_run_result_aggregates(self):
        layer = simple_layer()
        model = SystolicModel(ASV_BASE)
        res = model.run_schedules([one_shot_schedule(layer)] * 3)
        single = model.run_schedule(one_shot_schedule(layer))
        assert res.cycles == 3 * single.cycles
        assert res.energy_j == pytest.approx(3 * single.energy_j)
        assert res.seconds(ASV_BASE) == res.cycles / ASV_BASE.frequency_hz

    def test_scalar_op_result(self):
        model = SystolicModel(ASV_BASE)
        res = model.scalar_op_result("relu", ops=1_000_000, elems_touched=1_000_000)
        # 1M ops / 8 lanes @ 250 MHz = 0.5 ms = 500k accelerator cycles
        assert res.cycles == pytest.approx(500_000, rel=0.01)
        assert res.energy_j > 0

    def test_more_pes_never_slower(self):
        layer = simple_layer(filters=32, rows=64, cols=64, in_ch=32)
        sched = one_shot_schedule(layer)
        small = SystolicModel(ASV_BASE.with_resources(pe_rows=8, pe_cols=8))
        big = SystolicModel(ASV_BASE.with_resources(pe_rows=48, pe_cols=48))
        assert big.run_schedule(sched).cycles <= small.run_schedule(sched).cycles
