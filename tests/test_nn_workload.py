"""Tests for ConvSpec geometry and MAC accounting."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import ops
from repro.nn.workload import ConvSpec, Stage, macs_by_stage, total_macs


def make_spec(**kw):
    base = dict(
        name="layer",
        in_channels=8,
        out_channels=16,
        kernel=(3, 3),
        input_size=(32, 32),
        stride=(1, 1),
        padding=(1, 1),
    )
    base.update(kw)
    return ConvSpec(**base)


class TestConvSpec:
    def test_conv_output_size(self):
        spec = make_spec()
        assert spec.output_size == (32, 32)

    def test_strided_conv_output(self):
        spec = make_spec(stride=(2, 2))
        assert spec.output_size == (16, 16)

    def test_deconv_output_size(self):
        spec = make_spec(deconv=True, stride=(2, 2), input_size=(16, 16))
        assert spec.output_size == (31, 31)

    def test_conv_macs(self):
        spec = make_spec()
        assert spec.macs == 32 * 32 * 8 * 16 * 9

    def test_conv_effective_equals_dense(self):
        spec = make_spec(stride=(2, 2))
        assert spec.macs_effective == spec.macs

    def test_deconv_effective_lt_dense(self):
        spec = make_spec(deconv=True, stride=(2, 2), input_size=(16, 16))
        assert spec.macs_effective < spec.macs
        # for stride 2 the reduction approaches 4x for large maps
        assert spec.macs / spec.macs_effective > 3.0

    def test_deconv3d_reduction_near_8x(self):
        spec = ConvSpec(
            "d3", 32, 32, (3, 3, 3), (24, 64, 64), (2, 2, 2), (1, 1, 1), deconv=True
        )
        ratio = spec.macs / spec.macs_effective
        # boundary effects can push the ratio slightly past the ideal 8x
        assert 6.0 < ratio < 8.5

    def test_params(self):
        spec = make_spec()
        assert spec.params == 8 * 16 * 9

    def test_repeat_multiplies(self):
        one = make_spec()
        five = make_spec(repeat=5)
        assert five.macs == 5 * one.macs
        assert five.params == 5 * one.params
        assert five.macs_effective == 5 * one.macs_effective

    def test_int_broadcast(self):
        spec = ConvSpec("b", 1, 1, (3, 3), (8, 8), 2, 1)
        assert spec.stride == (2, 2) and spec.padding == (1, 1)

    def test_invalid_stage_raises(self):
        with pytest.raises(ValueError):
            make_spec(stage="XX")

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            ConvSpec("r", 1, 1, (3, 3), (8, 8, 8), (1, 1), (0, 0))

    def test_nonpositive_channels_raise(self):
        with pytest.raises(ValueError):
            make_spec(in_channels=0)

    def test_ifmap_ofmap_elems(self):
        spec = make_spec(stride=(2, 2))
        assert spec.ifmap_elems == 8 * 32 * 32
        assert spec.ofmap_elems == 16 * 16 * 16

    def test_scaled_replaces(self):
        spec = make_spec().scaled(out_channels=4)
        assert spec.out_channels == 4 and spec.in_channels == 8


class TestEffectiveMacsAgainstNumericCount:
    """macs_effective must equal the dense MACs of the sub-convolutions
    actually produced by the transformation (checked numerically via
    shape bookkeeping in repro.deconv once that package exists; here we
    verify against an independent enumeration)."""

    @settings(max_examples=25, deadline=None)
    @given(
        h=st.integers(2, 9),
        w=st.integers(2, 9),
        k=st.integers(1, 5),
        stride=st.integers(1, 3),
    )
    def test_effective_counts_match_enumeration(self, h, w, k, stride):
        padding = min(1, k - 1)
        spec = ConvSpec("p", 2, 3, (k, k), (h, w), stride, padding, deconv=True)
        out_h, out_w = spec.output_size
        b = k - 1 - padding
        # Enumerate every (output pixel, kernel tap) pair whose upsampled
        # coordinate lands on the input parity grid.  These are exactly
        # the MACs the dense sub-convolutions execute (taps that fall on
        # the sub-convolution's zero padding included, matching the
        # standard convention of counting a padded conv's MACs).
        taps = 0
        for oy in range(out_h):
            for ox in range(out_w):
                for ky in range(k):
                    for kx in range(k):
                        qy, qx = oy + ky - b, ox + kx - b
                        if qy % stride == 0 and qx % stride == 0:
                            taps += 1
        assert spec.macs_effective == taps * 2 * 3

    def test_effective_never_exceeds_dense(self):
        for stride in (1, 2, 3):
            spec = ConvSpec("q", 4, 4, (4, 4), (10, 10), stride, 1, deconv=True)
            assert spec.macs_effective <= spec.macs


class TestAggregation:
    def test_total_macs(self):
        specs = [make_spec(), make_spec(out_channels=32)]
        assert total_macs(specs) == specs[0].macs + specs[1].macs

    def test_total_effective(self):
        specs = [
            make_spec(deconv=True, stride=(2, 2), input_size=(16, 16)),
            make_spec(),
        ]
        assert total_macs(specs, effective=True) == sum(
            s.macs_effective for s in specs
        )

    def test_macs_by_stage(self):
        specs = [
            make_spec(stage=Stage.FE),
            make_spec(stage=Stage.MO),
            make_spec(stage=Stage.DR, deconv=True, stride=(2, 2), input_size=(16, 16)),
        ]
        dist = macs_by_stage(specs)
        assert dist[Stage.FE] == specs[0].macs
        assert dist[Stage.MO] == specs[1].macs
        assert dist[Stage.DR] == specs[2].macs
        assert dist[Stage.OTHER] == 0


class TestSpecMatchesNumericOps:
    """The spec's shape formulas must agree with the numeric ops."""

    def test_conv_shape_agrees(self):
        spec = make_spec(stride=(2, 2), kernel=(5, 5), padding=(2, 2))
        x = np.zeros((spec.in_channels,) + spec.input_size)
        w = np.zeros((spec.out_channels, spec.in_channels) + spec.kernel)
        out = ops.convnd(x, w, stride=spec.stride, padding=spec.padding)
        assert out.shape[1:] == spec.output_size

    def test_deconv_shape_agrees(self):
        spec = make_spec(deconv=True, stride=(2, 2), input_size=(7, 9))
        x = np.zeros((spec.in_channels,) + spec.input_size)
        w = np.zeros((spec.out_channels, spec.in_channels) + spec.kernel)
        out = ops.deconvnd(x, w, stride=spec.stride, padding=spec.padding)
        assert out.shape[1:] == spec.output_size

    def test_upsampled_size_matches_op(self):
        spec = make_spec(deconv=True, stride=(2, 2), input_size=(7, 9))
        x = np.zeros((1,) + spec.input_size)
        b = tuple(k - 1 - p for k, p in zip(spec.kernel, spec.padding))
        up = ops.upsample_zero(x, spec.stride, b)
        assert up.shape[1:] == spec.upsampled_size
