"""Tests for the stereo-network and GAN layer tables."""

import math

import pytest

from repro.models import (
    GAN_NETWORKS,
    QHD,
    STEREO_NETWORKS,
    gan_specs,
    network_specs,
)
from repro.nn.workload import Stage, macs_by_stage, total_macs


class TestStereoNetworks:
    def test_four_networks(self):
        assert set(STEREO_NETWORKS) == {"DispNet", "FlowNetC", "GC-Net", "PSMNet"}

    def test_lookup_by_name(self):
        specs = network_specs("DispNet")
        assert specs and specs[0].name == "conv1"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown network"):
            network_specs("ResNet")

    @pytest.mark.parametrize("name", list(STEREO_NETWORKS))
    def test_all_specs_consistent(self, name):
        for spec in network_specs(name):
            assert spec.macs > 0
            assert spec.output_size == tuple(
                max(1, s) for s in spec.output_size
            )
            assert spec.stage in Stage.ALL

    @pytest.mark.parametrize("name", list(STEREO_NETWORKS))
    def test_every_network_has_deconvs_in_dr(self, name):
        specs = network_specs(name)
        dr = [s for s in specs if s.stage == Stage.DR]
        assert dr, f"{name} has no refinement stage"
        assert all(s.deconv for s in dr), f"{name}: DR must be deconvolution"

    def test_3d_networks_use_3d_kernels(self):
        for name in ("GC-Net", "PSMNet"):
            specs = network_specs(name)
            assert any(s.ndim == 3 for s in specs), name

    def test_2d_networks_stay_2d(self):
        for name in ("DispNet", "FlowNetC"):
            assert all(s.ndim == 2 for s in network_specs(name)), name

    def test_deconv_share_matches_paper(self):
        """Fig. 3: deconv averages near 38.2 %, max ~50 %."""
        shares = []
        for name in STEREO_NETWORKS:
            specs = network_specs(name)
            shares.append(
                macs_by_stage(specs)[Stage.DR] / total_macs(specs)
            )
        avg = sum(shares) / len(shares)
        assert 0.30 < avg < 0.45
        assert 0.44 < max(shares) < 0.55

    def test_op_count_ordering(self):
        """GC-Net is the heaviest, 2-D networks the lightest."""
        totals = {n: total_macs(network_specs(n)) for n in STEREO_NETWORKS}
        assert totals["GC-Net"] > totals["PSMNet"] > totals["DispNet"]
        assert totals["GC-Net"] > 20 * totals["FlowNetC"]

    def test_resolution_scaling(self):
        half = tuple(s // 2 for s in QHD)
        for name in STEREO_NETWORKS:
            big = total_macs(network_specs(name, QHD))
            small = total_macs(network_specs(name, half))
            assert 2.5 < big / small < 6.0, name  # ~4x for 2x linear scale

    def test_dnn_vs_nonkey_cost_gap(self):
        """Sec. 3.3: DNNs need 100-10000x the ops of a non-key frame."""
        nonkey = 87e6  # the paper's qHD estimate
        for name in STEREO_NETWORKS:
            ratio = total_macs(network_specs(name)) / nonkey
            assert 100 < ratio < 50_000, (name, ratio)


class TestGANs:
    def test_six_gans(self):
        assert len(GAN_NETWORKS) == 6

    def test_lookup_and_unknown(self):
        assert gan_specs("DCGAN")
        with pytest.raises(ValueError, match="unknown GAN"):
            gan_specs("StyleGAN")

    @pytest.mark.parametrize("name", list(GAN_NETWORKS))
    def test_generators_are_deconv_heavy(self, name):
        specs = gan_specs(name)
        deconv = sum(s.macs for s in specs if s.deconv)
        assert deconv / total_macs(specs) > 0.25, name

    def test_3dgan_uses_3d_deconvs(self):
        specs = gan_specs("3D-GAN")
        assert all(s.ndim == 3 and s.deconv for s in specs)

    def test_projection_layers_shape(self):
        """z-projection deconvs produce the documented seed maps."""
        g1 = gan_specs("DCGAN")[0]
        assert g1.input_size == (1, 1)
        assert g1.output_size == (4, 4)

    def test_dcgan_output_resolution(self):
        last = gan_specs("DCGAN")[-1]
        assert last.output_size == (64, 64)
        assert last.out_channels == 3

    def test_transformation_benefits_gans(self):
        for name in GAN_NETWORKS:
            specs = gan_specs(name)
            dense = total_macs(specs)
            effective = total_macs(specs, effective=True)
            assert dense / effective > 1.2, name
