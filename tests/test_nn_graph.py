"""Tests for the DAG network container (skip connections)."""

import numpy as np
import pytest

from repro.nn import Conv, Deconv, Graph, LeakyReLU, ReLU


def mini_dispnet(rng=None):
    """A runnable miniature encoder-decoder with a skip connection."""
    rng = rng or np.random.default_rng(0)
    g = Graph("mini-dispnet")
    g.add("conv1", Conv(1, 8, 3, stride=2, padding=1, name="conv1", rng=rng))
    g.add("relu1", ReLU(), inputs="conv1")
    g.add("conv2", Conv(8, 16, 3, stride=2, padding=1, name="conv2", rng=rng),
          inputs="relu1")
    g.add("up1", Deconv(16, 8, 4, stride=2, padding=1, name="up1", rng=rng),
          inputs="conv2")
    # skip connection: decoder sees encoder features
    g.add("iconv", Conv(16, 8, 3, padding=1, name="iconv", rng=rng),
          inputs=("up1", "relu1"))
    g.add("up2", Deconv(8, 1, 4, stride=2, padding=1, name="up2", rng=rng),
          inputs="iconv")
    return g


class TestGraphConstruction:
    def test_duplicate_name_rejected(self):
        g = Graph()
        g.add("a", ReLU())
        with pytest.raises(ValueError, match="duplicate"):
            g.add("a", ReLU())

    def test_unknown_input_rejected(self):
        g = Graph()
        with pytest.raises(ValueError, match="unknown input"):
            g.add("a", ReLU(), inputs="missing")

    def test_string_input_accepted(self):
        g = Graph()
        g.add("a", ReLU(), inputs="input")
        assert g.nodes[0].inputs == ("input",)


class TestGraphExecution:
    def test_forward_shape(self):
        g = mini_dispnet()
        out = g(np.zeros((1, 32, 48)))
        assert out.shape == (1, 32, 48)

    def test_output_shape_matches_forward(self):
        g = mini_dispnet()
        assert g.output_shape((1, 32, 48)) == g(np.zeros((1, 32, 48))).shape

    def test_skip_concatenation_order(self):
        """The iconv node must see up1 channels then relu1 channels."""
        g = mini_dispnet()
        values = g.forward(
            np.random.default_rng(1).normal(size=(1, 16, 16)), return_all=True
        )
        assert values["up1"].shape[0] + values["relu1"].shape[0] == 16

    def test_spatial_mismatch_raises(self):
        g = Graph()
        g.add("a", Conv(1, 2, 3, stride=2, padding=1, rng=np.random.default_rng(0)))
        g.add("b", Conv(3, 2, 3, padding=1, rng=np.random.default_rng(1)),
              inputs=("a", "input"))
        with pytest.raises(ValueError, match="concatenate|mismatch"):
            g(np.zeros((1, 16, 16)))

    def test_linear_graph_equals_sequential(self):
        from repro.nn import Sequential

        rng = np.random.default_rng(2)
        conv = Conv(2, 4, 3, padding=1, rng=rng)
        act = LeakyReLU()
        seq = Sequential([conv, act])
        g = Graph().add("c", conv).add("a", act, inputs="c")
        x = rng.normal(size=(2, 10, 12))
        assert np.allclose(seq(x), g(x))


class TestGraphSpecs:
    def test_conv_specs_account_for_concat(self):
        g = mini_dispnet()
        specs = {s.name: s for s in g.conv_specs((1, 32, 48))}
        assert specs["iconv"].in_channels == 16  # 8 (up1) + 8 (relu1)
        assert specs["up2"].deconv

    def test_transformed_graph_runs(self):
        """Swapping the graph's deconvolutions for transformed layers
        must be numerically invisible."""
        from repro.deconv.runtime import TransformedDeconv

        g = mini_dispnet()
        x = np.random.default_rng(3).normal(size=(1, 32, 48))
        baseline = g(x)
        for i, node in enumerate(g.nodes):
            if isinstance(node.layer, Deconv):
                g.nodes[i] = type(node)(
                    node.name, TransformedDeconv(node.layer), node.inputs
                )
        assert np.allclose(g(x), baseline)
