"""The example scripts must stay importable (API drift guard).

Each example is a documented entry point; importing the module compiles
it and resolves every symbol it pulls from the library, which catches
API breakage without paying the full runtime in the unit suite (the
examples run for real in the repository's final verification).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main") or hasattr(module, "power_table") or \
        hasattr(module, "step1_equivalence")


def test_examples_present():
    assert len(EXAMPLES) >= 4
