"""Tests for the classic stereo matching substrate."""

import numpy as np
import pytest

from repro.datasets import sceneflow_scene
from repro.stereo import (
    block_match,
    elas,
    error_rate,
    gcsf,
    guided_block_match,
    sad_cost_volume,
    sgm,
    shift_right_image,
)

MAX_DISP = 48


@pytest.fixture(scope="module")
def frame():
    return sceneflow_scene(7).render(0)


def synthetic_pair(d=6, size=(40, 80), seed=0):
    """Uniform-disparity pair with the paper's convention
    ``right[y, x + d] = left[y, x]``: both views crop a shared texture,
    the right view starting ``d`` columns earlier."""
    rng = np.random.default_rng(seed)
    from scipy import ndimage

    tex = ndimage.gaussian_filter(rng.normal(size=(size[0], size[1] + d)), 1.0)
    left = tex[:, d:]
    right = tex[:, :-d] if d else tex
    return left, right


class TestShift:
    def test_zero_shift_identity(self):
        img = np.arange(12.0).reshape(3, 4)
        assert shift_right_image(img, 0) is img

    def test_positive_shift(self):
        img = np.arange(12.0).reshape(3, 4)
        out = shift_right_image(img, 1)
        assert np.array_equal(out[:, :-1], img[:, 1:])

    def test_negative_shift(self):
        img = np.arange(12.0).reshape(3, 4)
        out = shift_right_image(img, -1)
        assert np.array_equal(out[:, 1:], img[:, :-1])


class TestCostVolume:
    def test_shape(self, frame):
        cost = sad_cost_volume(frame.left, frame.right, 16, block_size=5)
        assert cost.shape == (16,) + frame.shape

    def test_true_disparity_minimises_cost(self):
        left, right = synthetic_pair(d=6)
        cost = sad_cost_volume(left, right, 12, block_size=7)
        wta = cost.argmin(axis=0)
        inner = wta[5:-5, 5:-11]
        assert (inner == 6).mean() > 0.95

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            sad_cost_volume(np.zeros((4, 4)), np.zeros((4, 5)), 4)

    def test_bad_max_disp_raises(self):
        with pytest.raises(ValueError):
            sad_cost_volume(np.zeros((4, 4)), np.zeros((4, 4)), 0)

    def test_color_input_collapsed(self):
        rng = np.random.default_rng(0)
        img = rng.normal(size=(16, 24, 3))
        cost = sad_cost_volume(img, img, 4)
        assert cost.shape == (4, 16, 24)
        assert np.allclose(cost[0], 0.0)


class TestBlockMatch:
    def test_recovers_uniform_disparity(self):
        left, right = synthetic_pair(d=6)
        disp = block_match(left, right, 12, block_size=7)
        inner = disp[5:-5, 5:-11]
        assert np.abs(inner - 6).mean() < 0.5

    def test_subpixel_within_half_pixel_of_integer(self):
        left, right = synthetic_pair(d=4)
        d_int = block_match(left, right, 8, subpixel=False)
        d_sub = block_match(left, right, 8, subpixel=True)
        assert np.abs(d_int - d_sub).max() <= 0.5

    def test_scene_error_reasonable(self, frame):
        disp = block_match(frame.left, frame.right, MAX_DISP)
        assert error_rate(disp, frame.disparity) < 25.0


class TestGuidedBlockMatch:
    def test_perfect_init_kept(self, frame):
        disp = guided_block_match(
            frame.left, frame.right, frame.disparity, radius=3
        )
        assert error_rate(disp, frame.disparity) < 10.0

    def test_refines_noisy_init(self, frame):
        rng = np.random.default_rng(0)
        noisy = frame.disparity + rng.normal(0, 1.5, frame.disparity.shape)
        refined = guided_block_match(frame.left, frame.right, noisy, radius=4)
        assert error_rate(refined, frame.disparity) <= error_rate(
            noisy, frame.disparity
        ) + 5.0

    def test_init_shape_checked(self, frame):
        with pytest.raises(ValueError):
            guided_block_match(frame.left, frame.right, np.zeros((3, 3)))

    def test_never_negative(self, frame):
        init = np.zeros(frame.shape)
        disp = guided_block_match(frame.left, frame.right, init, radius=2)
        assert (disp >= 0).all()


class TestSGM:
    def test_beats_plain_bm_on_scene(self, frame):
        bm = block_match(frame.left, frame.right, MAX_DISP)
        sg = sgm(frame.left, frame.right, MAX_DISP)
        assert error_rate(sg, frame.disparity) < error_rate(bm, frame.disparity) + 2.0

    def test_paths_validation(self, frame):
        with pytest.raises(ValueError):
            sgm(frame.left, frame.right, 8, paths=3)

    def test_more_paths_not_worse(self, frame):
        e4 = error_rate(sgm(frame.left, frame.right, MAX_DISP, paths=4), frame.disparity)
        e8 = error_rate(sgm(frame.left, frame.right, MAX_DISP, paths=8), frame.disparity)
        assert e8 <= e4 + 2.0

    def test_smoothness_reduces_speckle(self, frame):
        bm = block_match(frame.left, frame.right, MAX_DISP, subpixel=False)
        sg = sgm(frame.left, frame.right, MAX_DISP, subpixel=False)
        # total variation should drop under the smoothness prior
        tv = lambda d: np.abs(np.diff(d, axis=1)).sum()
        assert tv(sg) < tv(bm)


class TestELASAndGCSF:
    def test_elas_reasonable(self, frame):
        disp = elas(frame.left, frame.right, MAX_DISP)
        assert error_rate(disp, frame.disparity) < 30.0

    def test_gcsf_reasonable(self, frame):
        disp = gcsf(frame.left, frame.right, MAX_DISP)
        assert error_rate(disp, frame.disparity) < 30.0

    def test_gcsf_all_pixels_assigned(self, frame):
        disp = gcsf(frame.left, frame.right, MAX_DISP)
        assert (disp >= 0).all()
